//! End-to-end architectural correctness: for every synthetic workload and
//! every technique, running the out-of-order core to completion must produce
//! exactly the architectural state (registers and the ordered stream of
//! committed stores) of the in-order reference interpreter. This is the
//! central safety property of runahead execution — however aggressively a
//! technique speculates, prefetches and discards, it must never change what
//! the program computes.
//!
//! The assembled RISC-V kernels get the same treatment (with per-kernel
//! iteration budgets) in `asm_vs_interpreter.rs`.

use precise_runahead::core::OooCore;
use precise_runahead::model::config::SimConfig;
use precise_runahead::model::program::Interpreter;
use precise_runahead::runahead::Technique;
use precise_runahead::workloads::{Workload, WorkloadParams};

/// Runs `workload` under `technique` to completion and compares against the
/// interpreter.
fn check(workload: Workload, technique: Technique, iterations: u64) {
    let params = WorkloadParams::short(iterations);
    let program = workload.build(&params);

    let mut interp = Interpreter::new(&program);
    while interp.step() {}
    let reference = interp.snapshot();

    let cfg = SimConfig::haswell_like();
    let mut core = OooCore::new(&cfg, &program, technique).expect("core builds");
    core.run(u64::MAX, 20_000_000);
    assert!(
        core.halted(),
        "{workload} under {technique} did not retire the whole program"
    );
    assert!(
        !core.deadlocked(),
        "{workload} under {technique} deadlocked"
    );

    let result = core.arch_snapshot();
    assert_eq!(
        result.retired, reference.retired,
        "{workload} under {technique}: retired-instruction count differs"
    );
    assert_eq!(
        result.regs, reference.regs,
        "{workload} under {technique}: architectural register state differs"
    );
    assert_eq!(
        result.stores, reference.stores,
        "{workload} under {technique}: committed store count differs"
    );
    assert_eq!(
        result.store_checksum, reference.store_checksum,
        "{workload} under {technique}: committed store stream differs"
    );
}

#[test]
fn baseline_matches_interpreter_on_every_workload() {
    for workload in Workload::SYNTHETIC {
        check(workload, Technique::OutOfOrder, 120);
    }
}

#[test]
fn traditional_runahead_matches_interpreter_on_every_workload() {
    for workload in Workload::SYNTHETIC {
        check(workload, Technique::Runahead, 120);
    }
}

#[test]
fn runahead_buffer_matches_interpreter_on_every_workload() {
    for workload in Workload::SYNTHETIC {
        check(workload, Technique::RunaheadBuffer, 120);
    }
}

#[test]
fn pre_matches_interpreter_on_every_workload() {
    for workload in Workload::SYNTHETIC {
        check(workload, Technique::Pre, 120);
    }
}

#[test]
fn pre_emq_matches_interpreter_on_every_workload() {
    for workload in Workload::SYNTHETIC {
        check(workload, Technique::PreEmq, 120);
    }
}

#[test]
fn longer_runs_stay_correct_for_the_paper_contribution() {
    // A longer run of the multi-slice workloads under PRE and PRE+EMQ, the
    // configurations with the most intrusive speculation machinery.
    for workload in [Workload::LbmLike, Workload::MilcLike, Workload::McfLike] {
        check(workload, Technique::Pre, 400);
        check(workload, Technique::PreEmq, 400);
    }
}
