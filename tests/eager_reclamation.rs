//! Acceptance tests for eager PRDQ-driven register freeing: the
//! `asm-box-blur` reproduction finding (ROADMAP) was that the integer PRF is
//! exhausted at every full-window stall, so PRE entered runahead but could
//! never inject a slice micro-op (PRDQ allocations = 0) and paid pure
//! overhead. With the eager drain, PRE must inject on the integer-only
//! kernels and never lose to the out-of-order baseline on the asm matrix.

use precise_runahead::core::OooCore;
use precise_runahead::model::config::SimConfig;
use precise_runahead::model::stats::SimStats;
use precise_runahead::runahead::Technique;
use precise_runahead::trace::collect::IntervalLog;
use precise_runahead::trace::IntervalCollector;
use precise_runahead::workloads::{Workload, WorkloadParams};

fn run(workload: Workload, technique: Technique, uops: u64) -> SimStats {
    run_with_events(workload, technique, uops).0
}

fn run_with_events(workload: Workload, technique: Technique, uops: u64) -> (SimStats, IntervalLog) {
    let program = workload.build(&WorkloadParams::default());
    let cfg = SimConfig::haswell_like();
    let mut core = OooCore::new(&cfg, &program, technique).expect("core builds");
    core.set_tracer(Box::new(IntervalCollector::new()));
    core.run(uops, 50_000_000);
    assert!(
        !core.deadlocked(),
        "{workload} under {technique} deadlocked"
    );
    let collector = core
        .take_tracer()
        .expect("tracer survives the run")
        .into_any()
        .downcast::<IntervalCollector>()
        .expect("tracer is the collector attached above");
    (core.stats().clone(), collector.log)
}

#[test]
fn pre_injects_slice_uops_on_the_integer_only_box_blur() {
    let stats = run(Workload::ASM_SUITE[3], Technique::Pre, 15_000);
    assert_eq!(Workload::ASM_SUITE[3].name(), "asm-box-blur");
    assert!(stats.runahead_entries > 0, "box-blur must trigger runahead");
    // The reproduction finding itself: the integer PRF is exhausted at
    // (almost) every full-window stall…
    assert!(stats.int_free_at_stall_hist.count() > 0);
    assert!(
        stats.int_free_at_stall_hist.fraction_below(5) > 0.9,
        "box-blur should exhaust the integer PRF at stalls"
    );
    // …and the eager drain turns that into injected slice micro-ops anyway.
    assert!(
        stats.prdq_eager_reclaims > 0,
        "the eager drain must free window registers"
    );
    assert!(
        stats.prdq_allocations > 0,
        "PRE must allocate PRDQ entries (inject runahead micro-ops)"
    );
    assert!(
        stats.runahead_uops_executed > 0,
        "injected slice micro-ops must execute"
    );
    assert!(
        stats.runahead_prefetches_issued > 0,
        "runahead must prefetch the stream"
    );
}

#[test]
fn pre_beats_the_baseline_on_box_blur() {
    let base = run(Workload::ASM_SUITE[3], Technique::OutOfOrder, 15_000);
    let pre = run(Workload::ASM_SUITE[3], Technique::Pre, 15_000);
    assert!(
        pre.ipc() > base.ipc() * 1.5,
        "PRE ({:.3}) should clearly beat OoO ({:.3}) on box-blur now that it injects",
        pre.ipc(),
        base.ipc()
    );
}

#[test]
fn pre_injects_on_chase_large_without_losing_to_the_baseline() {
    let base = run(Workload::ASM_SUITE[6], Technique::OutOfOrder, 4_000);
    let pre = run(Workload::ASM_SUITE[6], Technique::Pre, 4_000);
    assert_eq!(Workload::ASM_SUITE[6].name(), "asm-chase-large");
    assert!(
        pre.runahead_entries > 0,
        "chase-large must trigger runahead"
    );
    assert!(
        pre.prdq_allocations > 0,
        "PRE must inject the chase slice even though it cannot prefetch it"
    );
    // A serially dependent chase cannot be run ahead (the next address is
    // the missing data), so the win is bounded — but PRE must not lose,
    // because it never flushes the preserved window.
    assert!(
        pre.ipc() >= base.ipc() * 0.99,
        "PRE ({:.3}) must not lose to OoO ({:.3}) on chase-large",
        pre.ipc(),
        base.ipc()
    );
}

#[test]
fn pre_matches_or_beats_the_baseline_across_the_asm_matrix() {
    for workload in Workload::ASM_SUITE {
        let budget = if workload.name() == "asm-chase-large" {
            3_000 // every hop is a serial LLC miss; keep the cell fast
        } else {
            10_000
        };
        let base = run(workload, Technique::OutOfOrder, budget);
        let pre = run(workload, Technique::Pre, budget);
        assert!(
            pre.ipc() >= base.ipc() * 0.99,
            "PRE ({:.3}) lost to OoO ({:.3}) on {workload}",
            pre.ipc(),
            base.ipc()
        );
    }
}

#[test]
fn exit_restores_the_free_lists_so_normal_mode_is_unaffected() {
    // The eager drain must be fully undone at exit: every interval's exit
    // event reports the same free-register counts that normal commit later
    // observes, and the run retires to completion with identical
    // architectural state to the interpreter (covered exhaustively by
    // asm_vs_interpreter; this checks the event plumbing).
    let (stats, events) = run_with_events(Workload::ASM_SUITE[3], Technique::Pre, 10_000);
    assert_eq!(stats.runahead_entries, stats.runahead_exits);
    let entries = events
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                precise_runahead::model::stats::RunaheadEventKind::Entry
            )
        })
        .count() as u64;
    assert_eq!(
        events.dropped(),
        0,
        "budget small enough to keep all events"
    );
    assert_eq!(entries, stats.runahead_entries);
    assert!(
        events
            .events()
            .iter()
            .any(|e| e.int_eager_freed > 0 || e.fp_eager_freed > 0),
        "entry events must show the eager drain at work"
    );
}
