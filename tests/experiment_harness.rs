//! End-to-end tests of the experiment harness (`pre-sim`): the machinery that
//! regenerates the paper's figures must itself be trustworthy.

use precise_runahead::model::config::SimConfigBuilder;
use precise_runahead::runahead::Technique;
use precise_runahead::sim::experiments::{fig2_table, fig3_table, table1};
use precise_runahead::sim::matrix::EvaluationMatrix;
use precise_runahead::sim::runner::{run_one, RunSpec};
use precise_runahead::workloads::{Workload, WorkloadParams};

#[test]
fn a_small_evaluation_matrix_produces_all_figures() {
    let workloads = [Workload::LbmLike, Workload::LibquantumLike];
    let config = SimConfigBuilder::haswell_like().build().unwrap();
    let matrix = EvaluationMatrix::run(
        &workloads,
        &Technique::ALL,
        &config,
        &WorkloadParams::default(),
        8_000,
        |_| {},
    )
    .expect("matrix runs");
    assert!(!matrix.any_deadlocked());
    assert_eq!(
        matrix.results().len(),
        workloads.len() * Technique::ALL.len()
    );

    // Speedups exist and are positive for every cell.
    for workload in workloads {
        for technique in Technique::RUNAHEAD {
            let s = matrix.speedup(workload, technique).expect("cell present");
            assert!(s > 0.3 && s < 10.0, "implausible speedup {s}");
            let e = matrix
                .energy_savings(workload, technique)
                .expect("cell present");
            assert!(e.abs() < 0.9, "implausible energy delta {e}");
        }
    }
    assert!(matrix.gmean_speedup(Technique::Pre) > 0.5);

    let fig2 = fig2_table(&matrix);
    assert_eq!(
        fig2.len(),
        workloads.len() + 1,
        "per-workload rows plus gmean"
    );
    let fig3 = fig3_table(&matrix);
    assert_eq!(fig3.len(), workloads.len() + 1);
    assert!(fig2.render().contains("gmean"));
    assert!(fig3.to_csv().lines().count() == workloads.len() + 2);
}

#[test]
fn table1_reflects_the_live_configuration() {
    let rendered = table1().render();
    for needle in [
        "192",
        "92/64/64",
        "168 int, 168 fp",
        "256 entry",
        "DDR3-1600",
    ] {
        assert!(rendered.contains(needle), "Table 1 is missing `{needle}`");
    }
}

#[test]
fn run_one_honours_configuration_overrides() {
    let small_sst = SimConfigBuilder::haswell_like()
        .sst_entries(8)
        .build()
        .unwrap();
    let spec = RunSpec::new(Workload::CactusLike, Technique::Pre)
        .with_budget(6_000)
        .with_config(small_sst);
    let result = run_one(&spec).expect("run succeeds");
    assert!(result.stats.committed_uops >= 6_000);
    // An 8-entry SST under a many-slice workload must show capacity pressure.
    assert!(
        result.stats.sst_evictions > 0,
        "expected SST evictions with 8 entries"
    );
    assert!(result.energy_mj() > 0.0);
}

#[test]
fn deterministic_runs_produce_identical_statistics() {
    let spec = RunSpec::new(Workload::MilcLike, Technique::Pre).with_budget(5_000);
    let a = run_one(&spec).expect("first run");
    let b = run_one(&spec).expect("second run");
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.committed_uops, b.stats.committed_uops);
    assert_eq!(a.stats.runahead_entries, b.stats.runahead_entries);
    assert_eq!(a.stats.store_checksum, b.stats.store_checksum);
}
