//! End-to-end architectural correctness for the assembled RISC-V kernels:
//! for every bundled kernel and every technique, running the out-of-order
//! core to completion must produce exactly the architectural state
//! (registers and the ordered stream of committed stores) of the in-order
//! reference interpreter.
//!
//! This is the credibility test of the `pre-asm` frontend: the kernels have
//! real control flow — nested loops, recursion through a software stack,
//! data-dependent branches, the `jalr` return dispatch — so agreement here
//! covers program shapes the synthetic generators never produce (see
//! `correctness_vs_interpreter.rs` for the synthetic suite).

use precise_runahead::asm::AsmKernel;
use precise_runahead::core::OooCore;
use precise_runahead::model::config::SimConfig;
use precise_runahead::model::program::Interpreter;
use precise_runahead::runahead::Technique;
use precise_runahead::workloads::{Workload, WorkloadParams};

/// Outer iteration count per kernel, sized so every (kernel, technique)
/// cell stays fast in debug builds while still crossing each kernel's
/// interesting control flow many times.
fn iterations(kernel: AsmKernel) -> u64 {
    match kernel {
        AsmKernel::Matmul => 3,
        AsmKernel::Quicksort => 4,
        AsmKernel::PointerChase => 3,
        AsmKernel::BoxBlur => 4,
        AsmKernel::PrimeSieve => 3,
        AsmKernel::BinarySearch => 4,
        // Every hop is a serial LLC miss (~250 cycles), so one round of
        // 512 hops is already a long run in debug builds.
        AsmKernel::ChaseLarge => 1,
        // Sub-word kernels: enough rounds to re-walk their byte-granular
        // structures (and re-hit the histogram/accumulator stores) several
        // times.
        AsmKernel::ByteHisto => 2,
        AsmKernel::StructChase => 4,
    }
}

/// Runs one assembled kernel under `technique` to completion and compares
/// against the interpreter.
fn check(kernel: AsmKernel, technique: Technique) {
    let workload = Workload::Asm(kernel);
    let params = WorkloadParams::short(iterations(kernel));
    let program = workload.build(&params);
    program.validate().expect("assembled kernel validates");

    let mut interp = Interpreter::new(&program);
    while interp.step() {}
    let reference = interp.snapshot();
    assert!(
        reference.stores > 0,
        "asm kernel {kernel} committed no stores — the checksum would be vacuous"
    );

    let cfg = SimConfig::haswell_like();
    let mut core = OooCore::new(&cfg, &program, technique).expect("core builds");
    core.run(u64::MAX, 50_000_000);
    assert!(
        core.halted(),
        "{workload} under {technique} did not retire the whole program"
    );
    assert!(
        !core.deadlocked(),
        "{workload} under {technique} deadlocked"
    );

    let result = core.arch_snapshot();
    assert_eq!(
        result.retired, reference.retired,
        "{workload} under {technique}: retired-instruction count differs"
    );
    assert_eq!(
        result.regs, reference.regs,
        "{workload} under {technique}: architectural register state differs"
    );
    assert_eq!(
        result.stores, reference.stores,
        "{workload} under {technique}: committed store count differs"
    );
    assert_eq!(
        result.store_checksum, reference.store_checksum,
        "{workload} under {technique}: committed store stream differs"
    );
}

#[test]
fn baseline_matches_interpreter_on_every_asm_kernel() {
    for kernel in AsmKernel::ALL {
        check(kernel, Technique::OutOfOrder);
    }
}

#[test]
fn traditional_runahead_matches_interpreter_on_every_asm_kernel() {
    for kernel in AsmKernel::ALL {
        check(kernel, Technique::Runahead);
    }
}

#[test]
fn runahead_buffer_matches_interpreter_on_every_asm_kernel() {
    for kernel in AsmKernel::ALL {
        check(kernel, Technique::RunaheadBuffer);
    }
}

#[test]
fn pre_matches_interpreter_on_every_asm_kernel() {
    for kernel in AsmKernel::ALL {
        check(kernel, Technique::Pre);
    }
}

#[test]
fn pre_emq_matches_interpreter_on_every_asm_kernel() {
    for kernel in AsmKernel::ALL {
        check(kernel, Technique::PreEmq);
    }
}

/// The struct-chase kernel's tag write-then-read (a byte store partially
/// overlapped by an 8-byte load) must exercise the LSQ's partial-overlap
/// path: the load may not forward and the block is counted.
#[test]
fn struct_chase_exercises_partial_overlap_blocking() {
    let workload = Workload::Asm(AsmKernel::StructChase);
    let program = workload.build(&WorkloadParams::short(2));
    let cfg = SimConfig::haswell_like();
    let mut core = OooCore::new(&cfg, &program, Technique::OutOfOrder).expect("core builds");
    core.run(u64::MAX, 50_000_000);
    assert!(core.halted() && !core.deadlocked());
    let stats = core.stats();
    assert!(
        stats.forward_blocked_partial > 0,
        "tag write-then-read should hit forward_blocked_partial"
    );
}

#[test]
fn asm_workloads_are_first_class_in_the_suite() {
    assert_eq!(Workload::ASM_SUITE.len(), AsmKernel::ALL.len());
    for workload in Workload::ASM_SUITE {
        assert!(workload.is_asm());
        assert!(workload.name().starts_with("asm-"));
        // Round-trip through the command-line name.
        assert_eq!(workload.name().parse::<Workload>().unwrap(), workload);
    }
    // The asm suite rides in `ALL` next to the synthetic suite.
    assert_eq!(
        Workload::ALL.len(),
        Workload::SYNTHETIC.len() + Workload::ASM_SUITE.len()
    );
}
