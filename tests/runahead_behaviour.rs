//! Cross-crate behavioural tests of the runahead machinery: the paper's
//! qualitative claims that do not depend on exact performance numbers.

use precise_runahead::core::OooCore;
use precise_runahead::model::config::SimConfig;
use precise_runahead::model::stats::SimStats;
use precise_runahead::runahead::Technique;
use precise_runahead::workloads::{Workload, WorkloadParams};

fn run(workload: Workload, technique: Technique, uops: u64) -> SimStats {
    let program = workload.build(&WorkloadParams::default());
    let cfg = SimConfig::haswell_like();
    let mut core = OooCore::new(&cfg, &program, technique).expect("core builds");
    core.run(uops, 50_000_000);
    assert!(
        !core.deadlocked(),
        "{workload} under {technique} deadlocked"
    );
    core.stats().clone()
}

#[test]
fn memory_bound_workloads_stall_and_enter_runahead() {
    let stats = run(Workload::LbmLike, Technique::Pre, 20_000);
    assert!(
        stats.full_window_stalls > 10,
        "expected frequent full-window stalls"
    );
    assert!(stats.runahead_entries > 10, "PRE should enter runahead");
    assert_eq!(
        stats.runahead_entries, stats.runahead_exits,
        "every entry must exit"
    );
    assert!(stats.runahead_cycles > 0);
    assert!(
        stats.runahead_prefetches_issued > 0,
        "runahead should prefetch"
    );
}

#[test]
fn compute_bound_workloads_never_enter_runahead() {
    for technique in Technique::RUNAHEAD {
        let stats = run(Workload::ComputeBound, technique, 20_000);
        assert_eq!(
            stats.runahead_entries, 0,
            "{technique} entered runahead without misses"
        );
        assert_eq!(stats.runahead_prefetches_issued, 0);
    }
}

#[test]
fn pre_invokes_runahead_more_often_than_traditional_runahead() {
    // Section 5.1: PRE enters runahead more frequently because entry and exit
    // are cheap and short intervals are still profitable.
    let ra = run(Workload::MilcLike, Technique::Runahead, 20_000);
    let pre = run(Workload::MilcLike, Technique::Pre, 20_000);
    assert!(
        pre.runahead_entries > ra.runahead_entries,
        "PRE entries {} should exceed RA entries {}",
        pre.runahead_entries,
        ra.runahead_entries
    );
    // The efficient-runahead policy must actually skip some short intervals.
    assert!(ra.runahead_entries_skipped_short + ra.runahead_entries_skipped_overlap > 0);
    assert_eq!(
        pre.runahead_entries_skipped_short, 0,
        "PRE never skips entries"
    );
}

#[test]
fn flush_style_runahead_pays_refill_overhead_and_pre_does_not() {
    let ra = run(Workload::LbmLike, Technique::Runahead, 20_000);
    let pre = run(Workload::LbmLike, Technique::Pre, 20_000);
    assert!(
        ra.flush_refill_cycles > 0,
        "RA must pay flush/refill cycles"
    );
    assert_eq!(pre.flush_refill_cycles, 0, "PRE never flushes the pipeline");
    // Stat A: the per-invocation penalty is 8 + 192/4 = 56 cycles.
    let per_invocation = ra.flush_refill_cycles as f64 / ra.runahead_exits.max(1) as f64;
    assert!(
        (per_invocation - 56.0).abs() < 1.0,
        "penalty {per_invocation} != 56"
    );
}

#[test]
fn pre_uses_sst_and_prdq_while_prior_techniques_do_not() {
    let pre = run(Workload::LbmLike, Technique::Pre, 20_000);
    assert!(
        pre.sst_lookups > 0 && pre.sst_hits > 0,
        "PRE exercises the SST"
    );
    assert!(
        pre.sst_inserts >= 2,
        "the SST learns more than the stalling load"
    );
    assert!(
        pre.prdq_allocations > 0,
        "runahead renaming allocates PRDQ entries"
    );
    assert!(
        pre.prdq_reclaims > 0,
        "runahead register reclamation frees registers"
    );

    let ra = run(Workload::LbmLike, Technique::Runahead, 20_000);
    assert_eq!(ra.sst_lookups, 0);
    assert_eq!(ra.prdq_allocations, 0);

    let rab = run(Workload::LbmLike, Technique::RunaheadBuffer, 20_000);
    assert!(
        rab.runahead_buffer_walks > 0,
        "RA-buffer performs data-flow walks"
    );
    assert!(
        rab.runahead_buffer_replays > 0,
        "RA-buffer replays its chain"
    );
    assert_eq!(pre.runahead_buffer_walks, 0);
}

#[test]
fn emq_captures_and_redispatches_runahead_uops() {
    let pre_emq = run(Workload::LbmLike, Technique::PreEmq, 20_000);
    assert!(
        pre_emq.emq_writes > 0,
        "runahead micro-ops are captured in the EMQ"
    );
    assert!(
        pre_emq.emq_reads > 0,
        "captured micro-ops dispatch from the EMQ after exit"
    );
    assert!(pre_emq.emq_reads <= pre_emq.emq_writes);
    let pre = run(Workload::LbmLike, Technique::Pre, 20_000);
    assert_eq!(pre.emq_writes, 0, "plain PRE does not use the EMQ");
}

#[test]
fn runahead_prefetches_are_overwhelmingly_useful() {
    // Runahead prefetches real future addresses, so almost every prefetch
    // that initiated a DRAM fill should later be hit by a demand access.
    for technique in [Technique::Runahead, Technique::Pre] {
        let stats = run(Workload::LbmLike, technique, 20_000);
        assert!(
            stats.runahead_prefetches_issued > 50,
            "{technique} prefetched too little"
        );
        let accuracy =
            stats.runahead_prefetches_useful as f64 / stats.runahead_prefetches_issued as f64;
        assert!(
            accuracy > 0.7,
            "{technique} prefetch accuracy {accuracy:.2} too low"
        );
    }
}

#[test]
fn free_resources_exist_at_runahead_entry_for_fp_workloads() {
    // Stat C: for the FP streaming workloads a healthy fraction of the issue
    // queue and of both register files is free when the window stalls.
    let stats = run(Workload::LbmLike, Technique::Pre, 20_000);
    assert!(stats.iq_free_at_entry.samples() > 0);
    assert!(stats.iq_free_at_entry.mean() > 0.1);
    assert!(stats.fp_regs_free_at_entry.mean() > 0.1);
}

#[test]
fn runahead_interval_lengths_are_recorded() {
    let stats = run(Workload::MilcLike, Technique::Pre, 20_000);
    let hist = &stats.runahead_interval_hist;
    assert_eq!(hist.count(), stats.runahead_exits);
    assert!(hist.mean() > 1.0);
    assert!(
        hist.max() < 100_000,
        "interval lengths must be bounded by the miss latency"
    );
}
