//! Qualitative performance relations from the paper's evaluation, checked
//! with reduced budgets so they hold in debug builds. Exact magnitudes are
//! asserted loosely (this is a simulator, not the authors' testbed); the
//! *ordering* is what the paper's Figure 2 establishes.

use precise_runahead::core::OooCore;
use precise_runahead::model::config::SimConfig;
use precise_runahead::runahead::Technique;
use precise_runahead::workloads::{Workload, WorkloadParams};

fn ipc(workload: Workload, technique: Technique, uops: u64) -> f64 {
    let program = workload.build(&WorkloadParams::default());
    let cfg = SimConfig::haswell_like();
    let mut core = OooCore::new(&cfg, &program, technique).expect("core builds");
    core.run(uops, 60_000_000);
    assert!(!core.deadlocked());
    core.stats().ipc()
}

#[test]
fn pre_beats_the_baseline_on_streaming_fp_workloads() {
    let base = ipc(Workload::LbmLike, Technique::OutOfOrder, 25_000);
    let pre = ipc(Workload::LbmLike, Technique::Pre, 25_000);
    assert!(
        pre > base * 1.15,
        "PRE ({pre:.3}) should clearly beat OoO ({base:.3}) on lbm-like"
    );
}

#[test]
fn pre_beats_the_baseline_on_gather_workloads() {
    let base = ipc(Workload::MilcLike, Technique::OutOfOrder, 25_000);
    let pre = ipc(Workload::MilcLike, Technique::Pre, 25_000);
    assert!(
        pre > base * 1.3,
        "PRE ({pre:.3}) should clearly beat OoO ({base:.3}) on milc-like"
    );
}

#[test]
fn traditional_runahead_also_helps_memory_bound_workloads() {
    let base = ipc(Workload::MilcLike, Technique::OutOfOrder, 25_000);
    let ra = ipc(Workload::MilcLike, Technique::Runahead, 25_000);
    assert!(
        ra > base * 1.1,
        "RA ({ra:.3}) should beat OoO ({base:.3}) on milc-like"
    );
}

#[test]
fn pre_is_at_least_as_good_as_traditional_runahead_on_multi_slice_workloads() {
    let ra = ipc(Workload::MilcLike, Technique::Runahead, 25_000);
    let pre = ipc(Workload::MilcLike, Technique::Pre, 25_000);
    assert!(
        pre >= ra * 0.95,
        "PRE ({pre:.3}) should not lose to RA ({ra:.3}) on a multi-slice workload"
    );
}

#[test]
fn runahead_never_changes_compute_bound_performance() {
    let base = ipc(Workload::ComputeBound, Technique::OutOfOrder, 25_000);
    for technique in Technique::RUNAHEAD {
        let t = ipc(Workload::ComputeBound, technique, 25_000);
        let ratio = t / base;
        assert!(
            (0.99..=1.01).contains(&ratio),
            "{technique} changed compute-bound IPC by {ratio:.3}"
        );
    }
}

#[test]
fn dependent_pointer_chases_gain_little_from_any_technique() {
    // A fundamental property of runahead execution, not a bug: when the next
    // address depends on the missing data there is nothing to run ahead to.
    let base = ipc(Workload::GccLike, Technique::OutOfOrder, 15_000);
    for technique in [Technique::Runahead, Technique::Pre] {
        let t = ipc(Workload::GccLike, technique, 15_000);
        assert!(
            t < base * 1.3,
            "{technique} gained implausibly much on a chase-dominated workload"
        );
        assert!(
            t > base * 0.7,
            "{technique} should not cripple a chase workload"
        );
    }
}
