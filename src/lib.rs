//! Precise Runahead Execution (PRE) — a from-scratch reproduction in Rust.
//!
//! This facade crate re-exports the whole workspace so that examples and
//! downstream users need a single dependency:
//!
//! * [`model`] — ISA, configuration (Table 1 defaults) and statistics.
//! * [`asm`] — RISC-V (RV64I subset) assembler + loader and the bundled
//!   assembly kernel suite, so the simulator runs real programs.
//! * [`mem`] — caches, MSHRs and DDR3-like DRAM.
//! * [`frontend`] — branch prediction and front-end queues.
//! * [`core`] — the execution-driven out-of-order pipeline with integrated
//!   runahead modes.
//! * [`runahead`] — the paper's contribution: SST, PRDQ, EMQ, runahead
//!   buffer, entry policies and the [`runahead::Technique`] selector.
//! * [`trace`] — the zero-cost-when-off tracing and metrics subsystem
//!   (pipeview, Chrome spans, time-series, committed-stream capture).
//! * [`workloads`] — the SPEC-CPU2006-like synthetic kernel suite.
//! * [`energy`] — the McPAT/CACTI-style energy and area model.
//! * [`sim`] — the experiment runner that regenerates the paper's figures.
//!
//! # Quickstart
//!
//! ```
//! use precise_runahead::core::OooCore;
//! use precise_runahead::model::config::SimConfig;
//! use precise_runahead::runahead::Technique;
//! use precise_runahead::workloads::{Workload, WorkloadParams};
//!
//! let program = Workload::LbmLike.build(&WorkloadParams::default());
//! let mut core = OooCore::new(&SimConfig::haswell_like(), &program, Technique::Pre)?;
//! core.run(20_000, 10_000_000);
//! assert!(core.stats().ipc() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use pre_asm as asm;
pub use pre_core as core;
pub use pre_energy as energy;
pub use pre_frontend as frontend;
pub use pre_mem as mem;
pub use pre_model as model;
pub use pre_runahead as runahead;
pub use pre_sim as sim;
pub use pre_trace as trace;
pub use pre_workloads as workloads;
