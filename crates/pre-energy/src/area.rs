//! Hardware-overhead (storage) accounting — Section 3.6 of the paper.

use pre_model::config::RunaheadConfig;
use pre_model::reg::NUM_ARCH_REGS;
use std::fmt;

/// Storage overhead of the runahead structures, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareOverhead {
    /// Stalling Slice Table (4-byte PC tags).
    pub sst_bytes: usize,
    /// Precise Register Deallocation Queue (4 bytes per entry).
    pub prdq_bytes: usize,
    /// RAT extension: one 4-byte producer PC per architectural register.
    pub rat_extension_bytes: usize,
    /// Extended Micro-op Queue (4 bytes per buffered micro-op), optional.
    pub emq_bytes: usize,
    /// The prior-work runahead buffer (two 32-entry chain buffers of decoded
    /// micro-ops), for comparison.
    pub runahead_buffer_bytes: usize,
}

impl HardwareOverhead {
    /// Computes the overhead for a given runahead configuration.
    pub fn for_config(cfg: &RunaheadConfig) -> Self {
        HardwareOverhead {
            sst_bytes: cfg.sst_entries * 4,
            prdq_bytes: cfg.prdq_entries * 4,
            rat_extension_bytes: NUM_ARCH_REGS * 4,
            emq_bytes: cfg.emq_entries * 4,
            runahead_buffer_bytes: 2 * cfg.runahead_buffer_chain_max * 28,
        }
    }

    /// PRE's overhead without the optional EMQ (the paper reports 2 KB).
    pub fn pre_total_bytes(&self) -> usize {
        self.sst_bytes + self.prdq_bytes + self.rat_extension_bytes
    }

    /// PRE + EMQ overhead (the paper reports 2 KB + 3 KB).
    pub fn pre_emq_total_bytes(&self) -> usize {
        self.pre_total_bytes() + self.emq_bytes
    }
}

impl fmt::Display for HardwareOverhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SST                 : {:>6} B", self.sst_bytes)?;
        writeln!(f, "PRDQ                : {:>6} B", self.prdq_bytes)?;
        writeln!(f, "RAT extension       : {:>6} B", self.rat_extension_bytes)?;
        writeln!(f, "PRE total           : {:>6} B", self.pre_total_bytes())?;
        writeln!(f, "EMQ (optional)      : {:>6} B", self.emq_bytes)?;
        writeln!(
            f,
            "PRE+EMQ total       : {:>6} B",
            self.pre_emq_total_bytes()
        )?;
        write!(
            f,
            "runahead buffer     : {:>6} B (prior work, for comparison)",
            self.runahead_buffer_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_paper_for_the_default_configuration() {
        let hw = HardwareOverhead::for_config(&RunaheadConfig::default());
        assert_eq!(hw.sst_bytes, 1024);
        assert_eq!(hw.prdq_bytes, 768);
        assert_eq!(hw.rat_extension_bytes, 256);
        assert_eq!(hw.pre_total_bytes(), 2048);
        assert_eq!(hw.emq_bytes, 3072);
        assert_eq!(hw.pre_emq_total_bytes(), 5120);
        // ≈1.7 KB for the prior-work runahead buffer.
        assert!((1600..1900).contains(&hw.runahead_buffer_bytes));
    }

    #[test]
    fn scales_with_configuration() {
        let cfg = RunaheadConfig {
            sst_entries: 512,
            emq_entries: 1536,
            ..Default::default()
        };
        let hw = HardwareOverhead::for_config(&cfg);
        assert_eq!(hw.sst_bytes, 2048);
        assert_eq!(hw.emq_bytes, 6144);
    }

    #[test]
    fn display_lists_all_structures() {
        let hw = HardwareOverhead::for_config(&RunaheadConfig::default());
        let text = hw.to_string();
        assert!(text.contains("SST"));
        assert!(text.contains("PRDQ"));
        assert!(text.contains("EMQ"));
    }
}
