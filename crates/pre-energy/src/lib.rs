//! Energy and area model for the PRE simulator.
//!
//! The paper reports energy with McPAT (22 nm) plus CACTI 6.5 for the SST,
//! PRDQ and EMQ. Neither tool can be embedded here, so this crate implements
//! the standard event-based substitution (see DESIGN.md §3): total energy is
//! the sum of
//!
//! * per-event dynamic energies (fetch, decode, rename, issue-queue, ROB,
//!   physical-register-file, LSQ and functional-unit activity, cache and
//!   DRAM accesses, and the runahead structures), scaled by the activity
//!   counters the simulator records in [`pre_model::stats::SimStats`], and
//! * static (leakage plus background) power integrated over the runtime.
//!
//! Per-event constants are representative of published McPAT/CACTI numbers
//! for a 22 nm, 4-wide core; absolute joules are not claimed, but the
//! *relative* behaviour the paper reports — runahead's extra dynamic work
//! versus the static/background energy saved by running faster, and the
//! re-fetch/re-dispatch energy that flush-style runahead pays but PRE
//! avoids — is captured because those terms are all driven by the measured
//! event counts.
//!
//! # Example
//!
//! ```
//! use pre_energy::EnergyModel;
//! use pre_model::{config::SimConfig, stats::SimStats};
//!
//! let model = EnergyModel::default();
//! let mut stats = SimStats::new();
//! stats.cycles = 1_000_000;
//! stats.committed_uops = 800_000;
//! let breakdown = model.evaluate(&stats, &SimConfig::haswell_like());
//! assert!(breakdown.total_mj() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod model;

pub use area::HardwareOverhead;
pub use model::{EnergyBreakdown, EnergyModel, EnergyParams};
