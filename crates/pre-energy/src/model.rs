//! The event-based energy model.

use pre_model::config::SimConfig;
use pre_model::stats::SimStats;

/// Per-event dynamic energies (nanojoules) and static powers (watts).
///
/// Defaults are representative of a 22 nm, 4-wide out-of-order core as
/// reported by McPAT, with SRAM/CAM structure energies in the range CACTI
/// reports for kilobyte-scale arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Instruction-cache access + fetch datapath, per fetched micro-op.
    pub fetch_nj: f64,
    /// Decode, per decoded micro-op.
    pub decode_nj: f64,
    /// Rename (RAT read/write ports), per renamed micro-op.
    pub rename_nj: f64,
    /// Issue-queue write, per dispatched micro-op.
    pub iq_write_nj: f64,
    /// Issue-queue wakeup/select broadcast, per completed micro-op.
    pub iq_wakeup_nj: f64,
    /// Physical-register-file read, per operand.
    pub prf_read_nj: f64,
    /// Physical-register-file write, per result.
    pub prf_write_nj: f64,
    /// ROB write (dispatch) or read (commit), per micro-op.
    pub rob_nj: f64,
    /// Load/store-queue associative search, per load.
    pub lsq_search_nj: f64,
    /// Integer ALU operation.
    pub int_alu_nj: f64,
    /// Integer multiply.
    pub int_mul_nj: f64,
    /// Floating-point operation.
    pub fp_op_nj: f64,
    /// Branch-unit operation.
    pub branch_nj: f64,
    /// L1 (instruction or data) access.
    pub l1_access_nj: f64,
    /// L2 access.
    pub l2_access_nj: f64,
    /// L3 access.
    pub l3_access_nj: f64,
    /// DRAM access (64-byte line, including I/O).
    pub dram_access_nj: f64,
    /// SST lookup (256-entry fully-associative CAM).
    pub sst_lookup_nj: f64,
    /// SST insert.
    pub sst_insert_nj: f64,
    /// PRDQ entry allocation/deallocation.
    pub prdq_nj: f64,
    /// EMQ write or read.
    pub emq_nj: f64,
    /// Runahead-buffer backward data-flow walk (CAM search across the ROB
    /// and store queue; the original proposal notes this is expensive).
    pub runahead_buffer_walk_nj: f64,
    /// Runahead-buffer chain replay, per replayed micro-op.
    pub runahead_buffer_replay_nj: f64,
    /// Core leakage plus clock-tree power (watts).
    pub core_static_w: f64,
    /// DRAM background (refresh, PLL, idle) power (watts).
    pub dram_static_w: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            fetch_nj: 0.055,
            decode_nj: 0.06,
            rename_nj: 0.04,
            iq_write_nj: 0.035,
            iq_wakeup_nj: 0.02,
            prf_read_nj: 0.02,
            prf_write_nj: 0.03,
            rob_nj: 0.03,
            lsq_search_nj: 0.04,
            int_alu_nj: 0.04,
            int_mul_nj: 0.18,
            fp_op_nj: 0.22,
            branch_nj: 0.04,
            l1_access_nj: 0.1,
            l2_access_nj: 0.4,
            l3_access_nj: 1.5,
            dram_access_nj: 16.0,
            sst_lookup_nj: 0.015,
            sst_insert_nj: 0.02,
            prdq_nj: 0.005,
            emq_nj: 0.01,
            runahead_buffer_walk_nj: 2.5,
            runahead_buffer_replay_nj: 0.08,
            core_static_w: 2.3,
            dram_static_w: 1.4,
        }
    }
}

/// An energy total broken down by component (all in nanojoules).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Core pipeline dynamic energy (front end, rename, window, execution).
    pub core_dynamic_nj: f64,
    /// Dynamic energy of the runahead-specific structures (SST, PRDQ, EMQ,
    /// runahead buffer).
    pub runahead_structures_nj: f64,
    /// Cache dynamic energy (L1I, L1D, L2, L3).
    pub cache_dynamic_nj: f64,
    /// DRAM dynamic energy.
    pub dram_dynamic_nj: f64,
    /// Core static (leakage + clock) energy.
    pub core_static_nj: f64,
    /// DRAM background energy.
    pub dram_static_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.core_dynamic_nj
            + self.runahead_structures_nj
            + self.cache_dynamic_nj
            + self.dram_dynamic_nj
            + self.core_static_nj
            + self.dram_static_nj
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_nj() / 1.0e6
    }

    /// Fraction of the total that is static (core + DRAM background).
    pub fn static_fraction(&self) -> f64 {
        let total = self.total_nj();
        if total == 0.0 {
            0.0
        } else {
            (self.core_static_nj + self.dram_static_nj) / total
        }
    }

    /// Energy saving of `self` relative to `baseline`, as a fraction
    /// (positive = this breakdown consumes less energy).
    pub fn savings_vs(&self, baseline: &EnergyBreakdown) -> f64 {
        let base = baseline.total_nj();
        if base == 0.0 {
            0.0
        } else {
            1.0 - self.total_nj() / base
        }
    }
}

/// The energy model: applies [`EnergyParams`] to a run's statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Creates a model with custom parameters.
    pub fn new(params: EnergyParams) -> Self {
        EnergyModel { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Computes the energy breakdown for one run.
    pub fn evaluate(&self, stats: &SimStats, cfg: &SimConfig) -> EnergyBreakdown {
        let p = &self.params;
        let f = |count: u64, nj: f64| count as f64 * nj;

        let core_dynamic_nj = f(stats.fetched_uops, p.fetch_nj)
            + f(stats.decoded_uops, p.decode_nj)
            + f(stats.renamed_uops, p.rename_nj)
            + f(stats.rat_reads + stats.rat_writes, p.rename_nj * 0.25)
            + f(stats.dispatched_uops, p.iq_write_nj)
            + f(stats.iq_wakeups, p.iq_wakeup_nj)
            + f(stats.prf_reads, p.prf_read_nj)
            + f(stats.prf_writes, p.prf_write_nj)
            + f(stats.rob_writes + stats.rob_reads, p.rob_nj)
            + f(stats.lsq_searches, p.lsq_search_nj)
            + f(stats.int_alu_ops, p.int_alu_nj)
            + f(stats.int_mul_ops, p.int_mul_nj)
            + f(stats.fp_ops, p.fp_op_nj)
            + f(stats.branch_ops, p.branch_nj)
            + f(stats.emq_reads, p.iq_write_nj);

        let runahead_structures_nj = f(stats.sst_lookups, p.sst_lookup_nj)
            + f(stats.sst_inserts, p.sst_insert_nj)
            + f(stats.prdq_allocations + stats.prdq_reclaims, p.prdq_nj)
            + f(stats.emq_writes + stats.emq_reads, p.emq_nj)
            + f(stats.runahead_buffer_walks, p.runahead_buffer_walk_nj)
            + f(stats.runahead_buffer_replays, p.runahead_buffer_replay_nj);

        let cache_dynamic_nj = f(stats.l1i_accesses + stats.l1d_accesses, p.l1_access_nj)
            + f(stats.l2_accesses, p.l2_access_nj)
            + f(stats.l3_accesses, p.l3_access_nj);

        let dram_dynamic_nj = f(stats.dram_reads + stats.dram_writes, p.dram_access_nj);

        let seconds = stats.cycles as f64 / (cfg.core.freq_ghz * 1.0e9);
        let core_static_nj = p.core_static_w * seconds * 1.0e9;
        let dram_static_nj = p.dram_static_w * seconds * 1.0e9;

        EnergyBreakdown {
            core_dynamic_nj,
            runahead_structures_nj,
            cache_dynamic_nj,
            dram_dynamic_nj,
            core_static_nj,
            dram_static_nj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_stats() -> SimStats {
        let mut s = SimStats::new();
        s.cycles = 1_000_000;
        s.committed_uops = 1_000_000;
        s.fetched_uops = 1_200_000;
        s.decoded_uops = 1_200_000;
        s.renamed_uops = 1_100_000;
        s.dispatched_uops = 1_100_000;
        s.issued_uops = 1_050_000;
        s.prf_reads = 2_000_000;
        s.prf_writes = 1_000_000;
        s.rob_writes = 1_100_000;
        s.rob_reads = 1_000_000;
        s.int_alu_ops = 700_000;
        s.fp_ops = 200_000;
        s.l1d_accesses = 300_000;
        s.l2_accesses = 60_000;
        s.l3_accesses = 40_000;
        s.dram_reads = 30_000;
        s
    }

    #[test]
    fn breakdown_components_are_positive() {
        let model = EnergyModel::default();
        let b = model.evaluate(&base_stats(), &SimConfig::haswell_like());
        assert!(b.core_dynamic_nj > 0.0);
        assert!(b.cache_dynamic_nj > 0.0);
        assert!(b.dram_dynamic_nj > 0.0);
        assert!(b.core_static_nj > 0.0);
        assert!(b.total_nj() > b.core_dynamic_nj);
    }

    #[test]
    fn static_energy_scales_with_runtime() {
        let model = EnergyModel::default();
        let cfg = SimConfig::haswell_like();
        let mut fast = base_stats();
        let slow = base_stats();
        fast.cycles = 500_000;
        let fast_b = model.evaluate(&fast, &cfg);
        let slow_b = model.evaluate(&slow, &cfg);
        assert!(fast_b.core_static_nj < slow_b.core_static_nj);
        assert!((slow_b.core_static_nj / fast_b.core_static_nj - 2.0).abs() < 1e-9);
        assert!(fast_b.savings_vs(&slow_b) > 0.0);
    }

    #[test]
    fn dram_accesses_dominate_per_event_costs() {
        let p = EnergyParams::default();
        assert!(p.dram_access_nj > 10.0 * p.l3_access_nj / 2.0);
        assert!(p.l3_access_nj > p.l2_access_nj);
        assert!(p.l2_access_nj > p.l1_access_nj);
    }

    #[test]
    fn static_fraction_is_meaningful_for_memory_bound_runs() {
        // A memory-bound run (low IPC): static + background should be a
        // substantial fraction, which is what makes runahead's speedup an
        // energy win despite the extra dynamic work.
        let model = EnergyModel::default();
        let mut s = base_stats();
        s.cycles = 5_000_000; // IPC 0.2
        let b = model.evaluate(&s, &SimConfig::haswell_like());
        let frac = b.static_fraction();
        assert!(frac > 0.3 && frac < 0.9, "static fraction {frac}");
    }

    #[test]
    fn runahead_structures_add_energy_when_active() {
        let model = EnergyModel::default();
        let cfg = SimConfig::haswell_like();
        let base = model.evaluate(&base_stats(), &cfg);
        let mut s = base_stats();
        s.sst_lookups = 500_000;
        s.emq_writes = 400_000;
        s.runahead_buffer_walks = 1_000;
        let with = model.evaluate(&s, &cfg);
        assert!(with.runahead_structures_nj > base.runahead_structures_nj);
        assert!(with.total_nj() > base.total_nj());
    }

    #[test]
    fn savings_vs_is_symmetric_zero_for_identical_runs() {
        let model = EnergyModel::default();
        let cfg = SimConfig::haswell_like();
        let a = model.evaluate(&base_stats(), &cfg);
        let b = model.evaluate(&base_stats(), &cfg);
        assert!(a.savings_vs(&b).abs() < 1e-12);
    }
}
