//! The Stalling Slice Table (SST).
//!
//! Section 3.2 of the paper: the SST is a small, fully-associative cache of
//! instruction addresses (PCs). An instruction whose PC hits in the SST is
//! part of a *stalling slice* — the backward dependence chain of a load that
//! blocked the ROB. The table is populated iteratively: when the stalling
//! load blocks the ROB its PC is inserted; on subsequent decodes of an
//! SST-resident instruction, the renaming unit supplies the PCs of the
//! producers of its source registers, and those PCs are inserted too. After
//! a few loop iterations the SST holds the complete slice (or slices — unlike
//! the runahead buffer, the SST is not limited to a single chain).
//!
//! The paper provisions 256 entries with LRU replacement and finds that this
//! captures the stalling slices of SPEC CPU2006 with almost no misses
//! (Section 3.6); `stat_f`/`sst_sensitivity` in `pre-sim` reproduces that
//! sweep.

/// A fully-associative, LRU-replaced table of instruction addresses.
#[derive(Debug, Clone)]
pub struct StallingSliceTable {
    capacity: usize,
    /// `(pc, last-use timestamp)` pairs; at most `capacity` of them.
    entries: Vec<(u32, u64)>,
    clock: u64,
    lookups: u64,
    hits: u64,
    inserts: u64,
    evictions: u64,
}

impl StallingSliceTable {
    /// Creates an SST with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SST capacity must be non-zero");
        StallingSliceTable {
            capacity,
            entries: Vec::with_capacity(capacity),
            clock: 0,
            lookups: 0,
            hits: 0,
            inserts: 0,
            evictions: 0,
        }
    }

    /// Looks up `pc`, refreshing its LRU position on a hit.
    pub fn lookup(&mut self, pc: u32) -> bool {
        self.lookups += 1;
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.entries.iter_mut().find(|(p, _)| *p == pc) {
            entry.1 = clock;
            self.hits += 1;
            true
        } else {
            false
        }
    }

    /// Checks for `pc` without updating LRU or statistics.
    pub fn contains(&self, pc: u32) -> bool {
        self.entries.iter().any(|(p, _)| *p == pc)
    }

    /// Records `n` consecutive hitting lookups of `pc` in one call, exactly
    /// as `n` [`StallingSliceTable::lookup`] calls would: the lookup, hit and
    /// LRU clocks each advance by `n` and the entry's last-use stamp lands on
    /// the final clock value. Used by the pipeline's quiescent fast-forward,
    /// which skips cycles during which the PRE decode filter re-looks-up the
    /// same resource-blocked micro-op.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is not resident (a bulk hit must really be a hit).
    pub fn record_bulk_hits(&mut self, pc: u32, n: u64) {
        if n == 0 {
            return;
        }
        self.lookups += n;
        self.hits += n;
        self.clock += n;
        let clock = self.clock;
        let entry = self
            .entries
            .iter_mut()
            .find(|(p, _)| *p == pc)
            .expect("bulk-hit PC must be resident");
        entry.1 = clock;
    }

    /// Inserts `pc`, evicting the least-recently-used entry if the table is
    /// full. Returns `true` if the PC was newly inserted (`false` if it was
    /// already present, in which case its LRU position is refreshed).
    pub fn insert(&mut self, pc: u32) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.entries.iter_mut().find(|(p, _)| *p == pc) {
            entry.1 = clock;
            return false;
        }
        self.inserts += 1;
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("SST is non-empty when full");
            self.entries.swap_remove(lru);
            self.evictions += 1;
        }
        self.entries.push((pc, clock));
        true
    }

    /// Number of PCs currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no PCs are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Number of lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of distinct insertions (not counting LRU refreshes).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Number of LRU evictions (capacity pressure).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Storage cost in bytes assuming 4-byte PC tags (Section 3.6 reports
    /// 1 KB for 256 entries).
    pub fn storage_bytes(&self) -> usize {
        self.capacity * 4
    }

    /// Removes every stored PC (not used by PRE itself — the SST persists
    /// across runahead intervals — but useful for experiments).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::rng::SmallRng;

    #[test]
    fn insert_then_lookup_hits() {
        let mut sst = StallingSliceTable::new(4);
        assert!(sst.insert(100));
        assert!(sst.lookup(100));
        assert!(!sst.lookup(200));
        assert_eq!(sst.hits(), 1);
        assert_eq!(sst.lookups(), 2);
    }

    #[test]
    fn duplicate_insert_is_a_refresh() {
        let mut sst = StallingSliceTable::new(4);
        assert!(sst.insert(7));
        assert!(!sst.insert(7));
        assert_eq!(sst.len(), 1);
        assert_eq!(sst.inserts(), 1);
    }

    #[test]
    fn lru_eviction_keeps_recently_used() {
        let mut sst = StallingSliceTable::new(2);
        sst.insert(1);
        sst.insert(2);
        // Touch 1 so that 2 is the LRU victim.
        assert!(sst.lookup(1));
        sst.insert(3);
        assert!(sst.contains(1));
        assert!(!sst.contains(2));
        assert!(sst.contains(3));
        assert_eq!(sst.evictions(), 1);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut sst = StallingSliceTable::new(8);
        for pc in 0..100 {
            sst.insert(pc);
        }
        assert_eq!(sst.len(), 8);
    }

    #[test]
    fn storage_matches_paper() {
        let sst = StallingSliceTable::new(256);
        assert_eq!(sst.storage_bytes(), 1024);
    }

    #[test]
    fn clear_empties_table() {
        let mut sst = StallingSliceTable::new(4);
        sst.insert(1);
        sst.clear();
        assert!(sst.is_empty());
        assert!(!sst.contains(1));
    }

    #[test]
    fn contains_does_not_count_as_lookup() {
        let mut sst = StallingSliceTable::new(4);
        sst.insert(1);
        let before = sst.lookups();
        assert!(sst.contains(1));
        assert_eq!(sst.lookups(), before);
    }

    /// Randomized: `record_bulk_hits(pc, n)` is indistinguishable from `n`
    /// sequential `lookup(pc)` calls — counters, LRU victim selection and
    /// later behaviour all match.
    #[test]
    fn prop_bulk_hits_equal_sequential_lookups() {
        let mut rng = SmallRng::seed_from_u64(0x557_0003);
        for _case in 0..64 {
            let cap = rng.gen_range_usize(2..8);
            let mut bulk = StallingSliceTable::new(cap);
            let mut seq = StallingSliceTable::new(cap);
            for _ in 0..rng.gen_range_usize(1..60) {
                let pc = rng.gen_range_u64(0..12) as u32;
                match rng.gen_below(3) {
                    0 => {
                        bulk.insert(pc);
                        seq.insert(pc);
                    }
                    1 => {
                        assert_eq!(bulk.lookup(pc), seq.lookup(pc));
                    }
                    _ => {
                        if bulk.contains(pc) {
                            let n = rng.gen_range_u64(1..5);
                            bulk.record_bulk_hits(pc, n);
                            for _ in 0..n {
                                assert!(seq.lookup(pc));
                            }
                        }
                    }
                }
                assert_eq!(bulk.lookups(), seq.lookups());
                assert_eq!(bulk.hits(), seq.hits());
                assert_eq!(bulk.evictions(), seq.evictions());
                let mut b: Vec<_> = bulk.entries.clone();
                let mut s: Vec<_> = seq.entries.clone();
                b.sort_unstable();
                s.sort_unstable();
                assert_eq!(b, s, "entry/LRU state diverged");
            }
        }
    }

    #[test]
    fn bulk_hits_of_zero_is_a_no_op() {
        let mut sst = StallingSliceTable::new(4);
        sst.insert(1);
        let before = (sst.lookups(), sst.hits());
        sst.record_bulk_hits(1, 0);
        assert_eq!((sst.lookups(), sst.hits()), before);
    }

    /// Randomized: the SST never exceeds its capacity and the most recently
    /// inserted PC is always still present.
    #[test]
    fn prop_capacity_and_recency() {
        let mut rng = SmallRng::seed_from_u64(0x557_0001);
        for _case in 0..64 {
            let len = rng.gen_range_usize(1..200);
            let cap = rng.gen_range_usize(1..16);
            let mut sst = StallingSliceTable::new(cap);
            for _ in 0..len {
                let pc = rng.gen_range_u64(0..64) as u32;
                sst.insert(pc);
                assert!(sst.len() <= cap);
                assert!(sst.contains(pc), "most recent insert must be present");
            }
        }
    }

    /// Randomized: lookups never report more hits than lookups, and hit
    /// entries are retained over misses.
    #[test]
    fn prop_hits_bounded() {
        let mut rng = SmallRng::seed_from_u64(0x557_0002);
        for _case in 0..64 {
            let len = rng.gen_range_usize(1..200);
            let mut sst = StallingSliceTable::new(8);
            for _ in 0..len {
                let pc = rng.gen_range_u64(0..32) as u32;
                if rng.gen_bool(0.5) {
                    sst.insert(pc);
                } else {
                    sst.lookup(pc);
                }
            }
            assert!(sst.hits() <= sst.lookups());
        }
    }
}
