//! Runahead entry policies.
//!
//! Traditional runahead and the runahead buffer pay a full pipeline flush and
//! refill on every runahead exit, so they only enter runahead mode when the
//! interval is expected to be long enough to amortize that cost (the
//! "efficient runahead" optimizations of Mutlu et al.), and they avoid
//! re-entering runahead for a load that already ran ahead. PRE keeps the ROB
//! intact and exits for free, so it enters runahead unconditionally — the
//! paper measures PRE invoking runahead 1.62× (and PRE+EMQ 1.95×) more often
//! than traditional runahead, which is where much of its extra memory-level
//! parallelism comes from.

/// The outcome of consulting an [`EntryPolicy`] on a full-window stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryDecision {
    /// Enter runahead mode.
    Enter,
    /// Skip: the stalling load is expected back too soon to amortize the
    /// flush/refill overhead.
    SkipShortInterval,
    /// Skip: runahead was already performed for this stall (overlap
    /// avoidance).
    SkipOverlap,
    /// Skip: too few free destination registers to inject any slice
    /// micro-op (PRE's free-register entry gate).
    SkipNoFreeRegs,
}

impl EntryDecision {
    /// `true` when the decision is to enter runahead mode.
    pub fn should_enter(&self) -> bool {
        matches!(self, EntryDecision::Enter)
    }
}

/// Entry policy shared by the runahead flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryPolicy {
    /// Minimum expected remaining latency (cycles) of the stalling load for
    /// entry to be worthwhile. Zero disables the check (PRE).
    pub min_expected_cycles: u64,
    /// Whether to refuse re-entering runahead for the same stalling-load
    /// instance (overlap avoidance). PRE disables this as well.
    pub avoid_overlap: bool,
    /// Minimum free integer physical registers (including registers the
    /// eager PRDQ drain can release) for entry to be useful. Zero disables
    /// the gate. Runahead micro-ops execute on free registers, so entering
    /// with an exhausted register class is pure overhead.
    pub min_free_int_regs: usize,
    /// Minimum free floating-point physical registers. Zero disables the
    /// gate.
    pub min_free_fp_regs: usize,
}

impl EntryPolicy {
    /// The Mutlu-style policy used by traditional runahead and the runahead
    /// buffer.
    pub fn efficient(min_expected_cycles: u64) -> Self {
        EntryPolicy {
            min_expected_cycles,
            avoid_overlap: true,
            min_free_int_regs: 0,
            min_free_fp_regs: 0,
        }
    }

    /// PRE's policy: always enter (entry and exit are cheap because the ROB
    /// is preserved).
    pub fn always() -> Self {
        EntryPolicy {
            min_expected_cycles: 0,
            avoid_overlap: false,
            min_free_int_regs: 0,
            min_free_fp_regs: 0,
        }
    }

    /// PRE's policy with the free-register entry gate enabled.
    pub fn gated(min_free_int_regs: usize, min_free_fp_regs: usize) -> Self {
        EntryPolicy {
            min_free_int_regs,
            min_free_fp_regs,
            ..EntryPolicy::always()
        }
    }

    /// `true` when [`EntryPolicy::decide`] inspects the free-register
    /// counts, so callers can skip computing them otherwise.
    pub fn needs_free_reg_counts(&self) -> bool {
        self.min_free_int_regs > 0 || self.min_free_fp_regs > 0
    }

    /// Decides whether to enter runahead mode.
    ///
    /// * `expected_remaining_cycles` — cycles until the stalling load's data
    ///   is expected to arrive.
    /// * `already_ran_for_this_stall` — a runahead interval was already
    ///   executed for this stalling-load instance.
    /// * `free_int_regs` / `free_fp_regs` — per-class free destination
    ///   registers available to runahead renaming, counting registers an
    ///   eager PRDQ drain would release (only consulted when the gate is
    ///   enabled; pass the raw free counts otherwise).
    pub fn decide(
        &self,
        expected_remaining_cycles: u64,
        already_ran_for_this_stall: bool,
        free_int_regs: usize,
        free_fp_regs: usize,
    ) -> EntryDecision {
        if self.avoid_overlap && already_ran_for_this_stall {
            EntryDecision::SkipOverlap
        } else if expected_remaining_cycles < self.min_expected_cycles {
            EntryDecision::SkipShortInterval
        } else if free_int_regs < self.min_free_int_regs || free_fp_regs < self.min_free_fp_regs {
            EntryDecision::SkipNoFreeRegs
        } else {
            EntryDecision::Enter
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficient_policy_skips_short_intervals() {
        let p = EntryPolicy::efficient(20);
        assert_eq!(p.decide(10, false, 0, 0), EntryDecision::SkipShortInterval);
        assert_eq!(p.decide(20, false, 0, 0), EntryDecision::Enter);
        assert_eq!(p.decide(200, false, 0, 0), EntryDecision::Enter);
    }

    #[test]
    fn efficient_policy_skips_overlapping_intervals() {
        let p = EntryPolicy::efficient(20);
        assert_eq!(p.decide(200, true, 0, 0), EntryDecision::SkipOverlap);
    }

    #[test]
    fn always_policy_never_skips() {
        let p = EntryPolicy::always();
        assert!(p.decide(1, false, 0, 0).should_enter());
        assert!(p.decide(0, true, 0, 0).should_enter());
        assert!(!p.needs_free_reg_counts());
    }

    #[test]
    fn gated_policy_requires_free_registers() {
        let p = EntryPolicy::gated(4, 2);
        assert!(p.needs_free_reg_counts());
        assert_eq!(p.decide(100, false, 3, 10), EntryDecision::SkipNoFreeRegs);
        assert_eq!(p.decide(100, false, 10, 1), EntryDecision::SkipNoFreeRegs);
        assert_eq!(p.decide(100, false, 4, 2), EntryDecision::Enter);
        // The gate keeps PRE's unconditional entry otherwise.
        assert!(!p.avoid_overlap);
        assert_eq!(p.min_expected_cycles, 0);
    }

    #[test]
    fn should_enter_only_for_enter() {
        assert!(EntryDecision::Enter.should_enter());
        assert!(!EntryDecision::SkipShortInterval.should_enter());
        assert!(!EntryDecision::SkipOverlap.should_enter());
        assert!(!EntryDecision::SkipNoFreeRegs.should_enter());
    }
}
