//! Runahead entry policies.
//!
//! Traditional runahead and the runahead buffer pay a full pipeline flush and
//! refill on every runahead exit, so they only enter runahead mode when the
//! interval is expected to be long enough to amortize that cost (the
//! "efficient runahead" optimizations of Mutlu et al.), and they avoid
//! re-entering runahead for a load that already ran ahead. PRE keeps the ROB
//! intact and exits for free, so it enters runahead unconditionally — the
//! paper measures PRE invoking runahead 1.62× (and PRE+EMQ 1.95×) more often
//! than traditional runahead, which is where much of its extra memory-level
//! parallelism comes from.

/// The outcome of consulting an [`EntryPolicy`] on a full-window stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryDecision {
    /// Enter runahead mode.
    Enter,
    /// Skip: the stalling load is expected back too soon to amortize the
    /// flush/refill overhead.
    SkipShortInterval,
    /// Skip: runahead was already performed for this stall (overlap
    /// avoidance).
    SkipOverlap,
}

impl EntryDecision {
    /// `true` when the decision is to enter runahead mode.
    pub fn should_enter(&self) -> bool {
        matches!(self, EntryDecision::Enter)
    }
}

/// Entry policy shared by the runahead flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryPolicy {
    /// Minimum expected remaining latency (cycles) of the stalling load for
    /// entry to be worthwhile. Zero disables the check (PRE).
    pub min_expected_cycles: u64,
    /// Whether to refuse re-entering runahead for the same stalling-load
    /// instance (overlap avoidance). PRE disables this as well.
    pub avoid_overlap: bool,
}

impl EntryPolicy {
    /// The Mutlu-style policy used by traditional runahead and the runahead
    /// buffer.
    pub fn efficient(min_expected_cycles: u64) -> Self {
        EntryPolicy {
            min_expected_cycles,
            avoid_overlap: true,
        }
    }

    /// PRE's policy: always enter (entry and exit are cheap because the ROB
    /// is preserved).
    pub fn always() -> Self {
        EntryPolicy {
            min_expected_cycles: 0,
            avoid_overlap: false,
        }
    }

    /// Decides whether to enter runahead mode.
    ///
    /// * `expected_remaining_cycles` — cycles until the stalling load's data
    ///   is expected to arrive.
    /// * `already_ran_for_this_stall` — a runahead interval was already
    ///   executed for this stalling-load instance.
    pub fn decide(
        &self,
        expected_remaining_cycles: u64,
        already_ran_for_this_stall: bool,
    ) -> EntryDecision {
        if self.avoid_overlap && already_ran_for_this_stall {
            EntryDecision::SkipOverlap
        } else if expected_remaining_cycles < self.min_expected_cycles {
            EntryDecision::SkipShortInterval
        } else {
            EntryDecision::Enter
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficient_policy_skips_short_intervals() {
        let p = EntryPolicy::efficient(20);
        assert_eq!(p.decide(10, false), EntryDecision::SkipShortInterval);
        assert_eq!(p.decide(20, false), EntryDecision::Enter);
        assert_eq!(p.decide(200, false), EntryDecision::Enter);
    }

    #[test]
    fn efficient_policy_skips_overlapping_intervals() {
        let p = EntryPolicy::efficient(20);
        assert_eq!(p.decide(200, true), EntryDecision::SkipOverlap);
    }

    #[test]
    fn always_policy_never_skips() {
        let p = EntryPolicy::always();
        assert!(p.decide(1, false).should_enter());
        assert!(p.decide(0, true).should_enter());
    }

    #[test]
    fn should_enter_only_for_enter() {
        assert!(EntryDecision::Enter.should_enter());
        assert!(!EntryDecision::SkipShortInterval.should_enter());
        assert!(!EntryDecision::SkipOverlap.should_enter());
    }
}
