//! The runahead buffer (Hashemi et al., MICRO 2015) — the prior work PRE is
//! compared against.
//!
//! On a full-window stall, the runahead buffer performs a backward data-flow
//! walk in the ROB (and store queue) to find the dependence chain that leads
//! to another dynamic instance of the stalling load, stores that chain
//! (up to 32 micro-ops) in a dedicated buffer in front of the rename stage,
//! and then — after discarding the window as traditional runahead does —
//! replays only that chain in a loop for the duration of the runahead
//! interval. The front-end is power-gated while the chain replays.
//!
//! Two pieces are implemented here:
//!
//! * [`extract_chain`] — the backward data-flow walk over a program-order
//!   snapshot of the ROB.
//! * [`ChainReplayEngine`] — the loop that renames/executes the buffered
//!   chain with data-flow timing, issuing prefetches into the memory
//!   hierarchy. The engine maintains its own small register context seeded
//!   from the architectural values at runahead entry, so pointer-chasing and
//!   induction-variable chains generate successive addresses exactly as the
//!   hardware would.

use pre_mem::{AccessKind, HitLevel, MemoryHierarchy};
use pre_model::isa::{extract_forwarded_bytes, range_contains, OpClass, StaticInst};
use pre_model::reg::{ArchReg, NUM_ARCH_REGS};
use std::collections::VecDeque;

/// A program-order view of one ROB entry, as needed by the chain walk.
#[derive(Debug, Clone, Copy)]
pub struct WindowUop {
    /// The instruction's PC.
    pub pc: u32,
    /// The static instruction.
    pub inst: StaticInst,
}

/// Extracts the dependence chain leading to the *youngest* in-window instance
/// of the stalling load (PC `stalling_pc`).
///
/// `window` is the ROB contents in program order, oldest first (the stalling
/// load at the head is expected at index 0). The walk starts from the
/// youngest other instance of the same PC — replaying the chain from that
/// instance generates the addresses of *future* instances. Returns `None`
/// when the window contains no second instance (the caller falls back to
/// traditional runahead for this interval, as the original proposal does when
/// no chain can be built).
///
/// The returned chain is in program order and ends with the stalling load
/// itself; it is truncated to `max_len` micro-ops (32 in the original
/// proposal).
pub fn extract_chain(
    window: &[WindowUop],
    stalling_pc: u32,
    max_len: usize,
) -> Option<Vec<StaticInst>> {
    // The walk needs *another* dynamic instance of the stalling load: at
    // least two entries with the stalling PC must be in the window. Start
    // from the youngest one.
    let instances = window.iter().filter(|u| u.pc == stalling_pc).count();
    if instances < 2 {
        return None;
    }
    let start_idx = window
        .iter()
        .enumerate()
        .rev()
        .find(|(_, u)| u.pc == stalling_pc)
        .map(|(i, _)| i)?;

    let mut needed = [false; NUM_ARCH_REGS];
    for src in window[start_idx].inst.sources() {
        needed[src.flat_index()] = true;
    }
    let mut chain_rev: Vec<StaticInst> = vec![window[start_idx].inst];
    let mut chain_pcs: Vec<u32> = vec![stalling_pc];

    for uop in window[..start_idx].iter().rev() {
        if chain_rev.len() >= max_len {
            break;
        }
        let dest = match uop.inst.dest {
            Some(d) => d,
            None => continue,
        };
        if !needed[dest.flat_index()] {
            continue;
        }
        // This micro-op produces a value the chain needs: absorb it and chase
        // its own sources instead. Only one instance of each static
        // instruction enters the chain — the buffer stores a loop body, not
        // an unrolled trace (Hashemi et al. deduplicate by PC).
        needed[dest.flat_index()] = false;
        for src in uop.inst.sources() {
            needed[src.flat_index()] = true;
        }
        if !chain_pcs.contains(&uop.pc) {
            chain_pcs.push(uop.pc);
            chain_rev.push(uop.inst);
        }
    }

    chain_rev.reverse();
    Some(chain_rev)
}

/// The runahead buffer itself: the extracted chain plus bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct RunaheadBuffer {
    chain: Vec<StaticInst>,
    /// Number of backward data-flow walks performed (each is an expensive
    /// CAM search over the ROB, charged by the energy model).
    walks: u64,
    /// Number of walks that failed to find a second instance of the load.
    failed_walks: u64,
}

impl RunaheadBuffer {
    /// Creates an empty runahead buffer.
    pub fn new() -> Self {
        RunaheadBuffer::default()
    }

    /// Performs the backward data-flow walk and loads the buffer. Returns
    /// `true` when a chain was found.
    pub fn fill_from_window(
        &mut self,
        window: &[WindowUop],
        stalling_pc: u32,
        max_len: usize,
    ) -> bool {
        self.walks += 1;
        match extract_chain(window, stalling_pc, max_len) {
            Some(chain) => {
                self.chain = chain;
                true
            }
            None => {
                self.failed_walks += 1;
                self.chain.clear();
                false
            }
        }
    }

    /// The buffered chain (empty if the last walk failed).
    pub fn chain(&self) -> &[StaticInst] {
        &self.chain
    }

    /// Number of data-flow walks performed.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Number of walks that found no chain.
    pub fn failed_walks(&self) -> u64 {
        self.failed_walks
    }

    /// Storage cost in bytes: the original proposal provisions two 32-entry
    /// chain buffers of ~28-byte decoded micro-ops, ≈ 1.7 KB.
    pub fn storage_bytes(&self) -> usize {
        2 * 32 * 28
    }
}

/// Loads whose data is further away than this many cycles are treated as
/// prefetches during chain replay: the destination is marked invalid and the
/// replay continues (Mutlu et al.'s INV semantics), instead of blocking the
/// whole loop behind one miss.
const REPLAY_INV_THRESHOLD: u64 = 40;

#[derive(Debug, Clone, Copy)]
struct RegState {
    value: u64,
    ready_at: u64,
    inv: bool,
}

/// Data-flow replay of a buffered chain during a runahead interval.
#[derive(Debug, Clone)]
pub struct ChainReplayEngine {
    chain: Vec<StaticInst>,
    regs: Vec<RegState>,
    pos: usize,
    /// Completed loop iterations over the chain.
    iterations: u64,
    uops_executed: u64,
    loads_executed: u64,
    prefetches_issued: u64,
    inv_loads: u64,
    /// Pending store-forwarding `(addr, len, value)` byte ranges produced by
    /// chain stores (rarely used; chains are address-generation slices).
    store_buffer: VecDeque<(u64, u64, u64)>,
}

impl ChainReplayEngine {
    /// Creates a replay engine for `chain`.
    ///
    /// `initial_regs` supplies the architectural register values at runahead
    /// entry (speculative rename-table values, exactly what the hardware
    /// reads); `inv_regs` lists registers whose values are invalid because
    /// they depend on the stalling load's missing data.
    pub fn new(
        chain: Vec<StaticInst>,
        initial_regs: &[u64],
        inv_regs: &[ArchReg],
        now: u64,
    ) -> Self {
        assert_eq!(
            initial_regs.len(),
            NUM_ARCH_REGS,
            "need all architectural registers"
        );
        let mut regs = vec![
            RegState {
                value: 0,
                ready_at: now,
                inv: false
            };
            NUM_ARCH_REGS
        ];
        for (i, &v) in initial_regs.iter().enumerate() {
            regs[i].value = v;
        }
        for r in inv_regs {
            regs[r.flat_index()].inv = true;
        }
        ChainReplayEngine {
            chain,
            regs,
            pos: 0,
            iterations: 0,
            uops_executed: 0,
            loads_executed: 0,
            prefetches_issued: 0,
            inv_loads: 0,
            store_buffer: VecDeque::new(),
        }
    }

    /// Replays up to `width` chain micro-ops at cycle `now`, issuing
    /// prefetches into `mem`. Micro-ops whose source operands are not ready
    /// yet (e.g. waiting on a previous chain load) stall the replay for this
    /// cycle, exactly like an in-order dispatch of the buffered chain.
    ///
    /// `latency_of` supplies the execution latency per operation class.
    /// `read_mem` supplies the raw bytes a (non-binding, speculative) chain
    /// load of the given `(address, length)` observes — the pipeline wires
    /// this to its functional memory so chains that traverse loaded values
    /// (pointer chases, indexed gathers) compute real future addresses; the
    /// engine applies the load's sign/zero extension itself.
    pub fn step(
        &mut self,
        now: u64,
        width: usize,
        mem: &mut MemoryHierarchy,
        latency_of: impl Fn(OpClass) -> u64,
        read_mem: impl Fn(u64, u64) -> u64,
    ) {
        if self.chain.is_empty() {
            return;
        }
        for _ in 0..width {
            let inst = self.chain[self.pos];
            // Source readiness / validity.
            let mut start = now;
            let mut inv = false;
            for src in inst.sources() {
                let s = self.regs[src.flat_index()];
                if s.ready_at > now {
                    return; // data-flow stall this cycle
                }
                start = start.max(s.ready_at);
                inv |= s.inv;
            }
            let src1 = inst
                .src1
                .map(|r| self.regs[r.flat_index()].value)
                .unwrap_or(0);
            let src2 = inst
                .src2
                .map(|r| self.regs[r.flat_index()].value)
                .unwrap_or(0);

            let (result, ready_at) = if let Some(load_access) = inst.opcode.load_access() {
                self.loads_executed += 1;
                if inv {
                    self.inv_loads += 1;
                    (0, now + 1)
                } else {
                    let len = load_access.width.bytes();
                    let addr = inst.effective_address(src1);
                    // The replay shares the core's MSHRs: when no miss slot
                    // is free the chain stalls for this cycle, which bounds
                    // how fast the buffer can flood the memory system.
                    if !mem.in_l1d(addr) && !mem.data_mshr_available(now) {
                        self.loads_executed -= 1;
                        return;
                    }
                    // Youngest chain store whose byte range contains the
                    // load's forwards its overlapping bytes.
                    let forwarded = self
                        .store_buffer
                        .iter()
                        .rev()
                        .find(|&&(a, l, _)| range_contains(a, l, addr, len))
                        .map(|&(a, _, v)| extract_forwarded_bytes(a, v, addr, len));
                    let access = mem.load_range(addr, len, now, AccessKind::Prefetch);
                    if access.initiated_dram_fill || access.level == HitLevel::L3 {
                        self.prefetches_issued += 1;
                    }
                    let raw = forwarded.unwrap_or_else(|| read_mem(addr, len));
                    let value = load_access.extend(raw);
                    if access.completion_cycle.saturating_sub(now) > REPLAY_INV_THRESHOLD {
                        // Off-chip access: it has served its purpose as a
                        // prefetch; invalidate the destination and keep the
                        // replay loop moving.
                        inv = true;
                        (value, now + 1)
                    } else {
                        (value, access.completion_cycle)
                    }
                }
            } else if let Some(store_width) = inst.opcode.store_width() {
                if !inv {
                    let addr = inst.effective_address(src1);
                    self.store_buffer.push_back((
                        addr,
                        store_width.bytes(),
                        src2 & store_width.mask(),
                    ));
                    if self.store_buffer.len() > 64 {
                        self.store_buffer.pop_front();
                    }
                }
                (0, now + latency_of(inst.opcode.class()))
            } else {
                let out = inst.execute(0, src1, src2, None);
                (
                    out.result.unwrap_or(0),
                    now + latency_of(inst.opcode.class()),
                )
            };

            if let Some(dest) = inst.dest {
                self.regs[dest.flat_index()] = RegState {
                    value: result,
                    ready_at,
                    inv,
                };
            }
            self.uops_executed += 1;
            self.pos += 1;
            if self.pos == self.chain.len() {
                self.pos = 0;
                self.iterations += 1;
            }
        }
    }

    /// Completed iterations over the whole chain.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Micro-ops replayed.
    pub fn uops_executed(&self) -> u64 {
        self.uops_executed
    }

    /// Loads replayed.
    pub fn loads_executed(&self) -> u64 {
        self.loads_executed
    }

    /// Prefetches issued to L3/DRAM.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    /// Loads skipped because their address depended on invalid data.
    pub fn inv_loads(&self) -> u64 {
        self.inv_loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::config::SimConfig;
    use pre_model::isa::AluOp;
    use pre_model::reg::ArchReg;

    /// Build a window that looks like a strided-load loop:
    ///   i = i + 8 ; addr = base + i ; x = load [addr] ; (acc += x)
    /// repeated, with the stalling load at the head.
    fn strided_window() -> Vec<WindowUop> {
        let i = ArchReg::int(1);
        let base = ArchReg::int(2);
        let addr = ArchReg::int(3);
        let x = ArchReg::int(4);
        let acc = ArchReg::int(5);
        let body = [
            (10, StaticInst::int_alu_imm(AluOp::Add, i, i, 8)),
            (11, StaticInst::int_alu(AluOp::Add, addr, base, i)),
            (12, StaticInst::load(x, addr, 0)),
            (13, StaticInst::int_alu(AluOp::Add, acc, acc, x)),
        ];
        let mut window = Vec::new();
        for _ in 0..4 {
            for (pc, inst) in body {
                window.push(WindowUop { pc, inst });
            }
        }
        window
    }

    #[test]
    fn extract_chain_finds_address_slice() {
        let window = strided_window();
        let chain = extract_chain(&window, 12, 32).expect("chain exists");
        // The chain ends with the load and contains the address computation
        // and the induction update, but not the accumulator add.
        assert!(chain.last().unwrap().opcode.is_load());
        assert!(chain.iter().any(|i| i.dest == Some(ArchReg::int(3))));
        assert!(chain.iter().any(|i| i.dest == Some(ArchReg::int(1))));
        assert!(!chain.iter().any(|i| i.dest == Some(ArchReg::int(5))));
        assert!(chain.len() <= 32);
    }

    #[test]
    fn extract_chain_requires_second_instance() {
        let window = &strided_window()[..4]; // single loop body only
        assert!(extract_chain(window, 12, 32).is_none());
    }

    #[test]
    fn extract_chain_respects_max_len() {
        let window = strided_window();
        let chain = extract_chain(&window, 12, 2).unwrap();
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn buffer_tracks_walk_statistics() {
        let mut buf = RunaheadBuffer::new();
        assert!(buf.fill_from_window(&strided_window(), 12, 32));
        assert!(!buf.fill_from_window(&strided_window()[..4], 12, 32));
        assert_eq!(buf.walks(), 2);
        assert_eq!(buf.failed_walks(), 1);
        assert!(buf.chain().is_empty());
        assert!(buf.storage_bytes() > 1024);
    }

    #[test]
    fn replay_generates_distinct_prefetch_addresses() {
        let window = strided_window();
        let chain = extract_chain(&window, 12, 32).unwrap();
        let mut regs = vec![0u64; NUM_ARCH_REGS];
        regs[ArchReg::int(1).flat_index()] = 0; // i
        regs[ArchReg::int(2).flat_index()] = 0x10_0000; // base
        let cfg = SimConfig::haswell_like();
        let mut mem = MemoryHierarchy::new(&cfg);
        let mut engine = ChainReplayEngine::new(chain, &regs, &[], 0);
        for cycle in 0..2000 {
            engine.step(
                cycle,
                4,
                &mut mem,
                |_| 1,
                |a, _len| a.wrapping_mul(0x9E3779B97F4A7C15),
            );
        }
        assert!(engine.iterations() >= 2, "chain should loop");
        assert!(
            engine.prefetches_issued() >= 2,
            "strided chain should prefetch"
        );
        assert_eq!(engine.inv_loads(), 0);
    }

    #[test]
    fn replay_with_invalid_source_issues_no_prefetches() {
        // A pure pointer chase whose seed register is invalid (it is the
        // stalling load's destination): nothing can be prefetched.
        let p = ArchReg::int(1);
        let chain = vec![StaticInst::load(p, p, 0)];
        let regs = vec![0u64; NUM_ARCH_REGS];
        let cfg = SimConfig::haswell_like();
        let mut mem = MemoryHierarchy::new(&cfg);
        let mut engine = ChainReplayEngine::new(chain, &regs, &[p], 0);
        for cycle in 0..200 {
            engine.step(
                cycle,
                4,
                &mut mem,
                |_| 1,
                |a, _len| a.wrapping_mul(0x9E3779B97F4A7C15),
            );
        }
        assert_eq!(engine.prefetches_issued(), 0);
        assert!(engine.inv_loads() > 0);
    }

    #[test]
    fn replay_cannot_prefetch_through_a_dependent_miss() {
        // Dependent chain: the second iteration's load address depends on the
        // first iteration's load value. The first off-chip load becomes a
        // prefetch with an INV result, so later iterations cannot compute
        // real addresses and must not issue further prefetches.
        let p = ArchReg::int(1);
        let chain = vec![StaticInst::load(p, p, 0)];
        let mut regs = vec![0u64; NUM_ARCH_REGS];
        regs[p.flat_index()] = 0x20_0000;
        let cfg = SimConfig::haswell_like();
        let mut mem = MemoryHierarchy::new(&cfg);
        let mut engine = ChainReplayEngine::new(chain, &regs, &[], 0);
        for cycle in 0..300 {
            engine.step(
                cycle,
                8,
                &mut mem,
                |_| 1,
                |a, _len| a.wrapping_mul(0x9E3779B97F4A7C15),
            );
        }
        assert_eq!(
            engine.prefetches_issued(),
            1,
            "only the first miss can prefetch"
        );
        assert!(engine.inv_loads() > 0, "later iterations propagate INV");
    }

    #[test]
    fn empty_chain_is_a_no_op() {
        let cfg = SimConfig::haswell_like();
        let mut mem = MemoryHierarchy::new(&cfg);
        let mut engine = ChainReplayEngine::new(Vec::new(), &vec![0; NUM_ARCH_REGS], &[], 0);
        engine.step(0, 4, &mut mem, |_| 1, |a, _len| a);
        assert_eq!(engine.uops_executed(), 0);
    }
}
