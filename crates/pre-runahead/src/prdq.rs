//! The Precise Register Deallocation Queue (PRDQ).
//!
//! Section 3.4 of the paper: in normal mode a physical register is freed when
//! the last consumer of the previous mapping commits; runahead instructions
//! never commit, so PRE needs another way to recycle the registers it
//! allocates. The PRDQ is a FIFO allocated in program order by runahead
//! renaming. Each entry records the *previous* physical register mapped to
//! the instruction's destination architectural register and an `executed`
//! bit. An entry is deallocated — and its old register freed — only when the
//! instruction has executed **and** the entry has reached the queue head;
//! in-order deallocation guarantees no in-flight runahead instruction can
//! still read the freed register.
//!
//! One refinement over the paper's two-page description: a physical register
//! is returned to the free list through the PRDQ only if it was itself
//! allocated during the current runahead interval (`reclaimable`). Registers
//! that belong to the pre-runahead architectural state or to instructions
//! still waiting in the ROB must survive runahead mode — they are restored by
//! the RAT checkpoint at exit — so the PRDQ marks them non-reclaimable and
//! skips the free. This keeps the mechanism precise (hence the name) while
//! preserving the normal-mode state that PRE explicitly does not discard.

use pre_model::reg::{PhysReg, RegClass};

/// One PRDQ entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrdqEntry {
    /// Identifier of the runahead instruction that allocated this entry.
    pub uop_id: u64,
    /// The physical register previously mapped to the instruction's
    /// destination architectural register (none for the first write in the
    /// interval to a register class that had no prior mapping — never happens
    /// in practice, but kept as an `Option` for robustness).
    pub old_reg: Option<(RegClass, PhysReg)>,
    /// Whether `old_reg` was allocated during the current runahead interval
    /// and can therefore be returned to the free list when this entry
    /// deallocates.
    pub reclaimable: bool,
    /// Set when the allocating instruction finishes execution.
    pub executed: bool,
    /// `true` for entries seeded by the eager drain: dead previous mappings
    /// of the stalled window (Section 3.4's normal-mode freeing condition —
    /// the last consumer has issued — detected at runahead entry or at a
    /// later issue boundary). Seeded entries enter at the head side, since
    /// the window predates every runahead micro-op in program order.
    pub eager: bool,
}

/// The PRDQ: a bounded FIFO of [`PrdqEntry`].
#[derive(Debug, Clone)]
pub struct PreciseRegisterDeallocationQueue {
    entries: Vec<PrdqEntry>,
    capacity: usize,
    allocations: u64,
    reclaims: u64,
    eager_seeds: u64,
    eager_reclaims: u64,
}

impl PreciseRegisterDeallocationQueue {
    /// Creates a PRDQ with `capacity` entries (192 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "PRDQ capacity must be non-zero");
        PreciseRegisterDeallocationQueue {
            entries: Vec::with_capacity(capacity),
            capacity,
            allocations: 0,
            reclaims: 0,
            eager_seeds: 0,
            eager_reclaims: 0,
        }
    }

    /// `true` when no further runahead instruction can allocate an entry.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total entries allocated across the run.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Total physical registers reclaimed through the queue.
    pub fn reclaims(&self) -> u64 {
        self.reclaims
    }

    /// Total dead window mappings seeded by the eager drain.
    pub fn eager_seeds(&self) -> u64 {
        self.eager_seeds
    }

    /// Registers reclaimed by draining eager-seeded entries (a subset of
    /// [`PreciseRegisterDeallocationQueue::reclaims`]).
    pub fn eager_reclaims(&self) -> u64 {
        self.eager_reclaims
    }

    /// Allocates an entry at the tail, in program order.
    ///
    /// Returns `false` (and allocates nothing) when the queue is full; the
    /// caller should stall runahead renaming for this cycle.
    pub fn allocate(
        &mut self,
        uop_id: u64,
        old_reg: Option<(RegClass, PhysReg)>,
        reclaimable: bool,
    ) -> bool {
        if self.is_full() {
            return false;
        }
        self.entries.push(PrdqEntry {
            uop_id,
            old_reg,
            reclaimable,
            executed: false,
            eager: false,
        });
        self.allocations += 1;
        true
    }

    /// Seeds an already-dead window mapping at the head side of the queue
    /// (the eager drain). The entry is marked executed — its producer is a
    /// normal-mode instruction whose last consumer has already issued — so
    /// it deallocates on the next [`PreciseRegisterDeallocationQueue::
    /// drain_completed`]. Entries seeded by one pass must be pushed in
    /// program order; relative to live runahead entries they are older, so
    /// they are inserted after any executed eager prefix but before the
    /// runahead-allocated tail.
    ///
    /// Returns `false` (and seeds nothing) when the queue is full.
    pub fn seed_executed(&mut self, uop_id: u64, old_reg: (RegClass, PhysReg)) -> bool {
        if self.is_full() {
            return false;
        }
        let insert_at = self.entries.iter().take_while(|e| e.eager).count();
        self.entries.insert(
            insert_at,
            PrdqEntry {
                uop_id,
                old_reg: Some(old_reg),
                reclaimable: true,
                executed: true,
                eager: true,
            },
        );
        self.eager_seeds += 1;
        true
    }

    /// Marks the entry allocated by `uop_id` as executed (instructions may
    /// execute out of order). Returns `true` if an entry was found.
    pub fn mark_executed(&mut self, uop_id: u64) -> bool {
        if let Some(e) = self.entries.iter_mut().find(|e| e.uop_id == uop_id) {
            e.executed = true;
            true
        } else {
            false
        }
    }

    /// Deallocates executed entries from the head, in order, and returns the
    /// physical registers to free. Stops at the first entry that has not yet
    /// executed.
    pub fn drain_completed(&mut self) -> Vec<(RegClass, PhysReg)> {
        let mut freed = Vec::new();
        while let Some(head) = self.entries.first() {
            if !head.executed {
                break;
            }
            let head = self.entries.remove(0);
            if head.reclaimable {
                if let Some(reg) = head.old_reg {
                    freed.push(reg);
                    self.reclaims += 1;
                    if head.eager {
                        self.eager_reclaims += 1;
                    }
                }
            }
        }
        freed
    }

    /// Discards every entry (runahead exit). The registers referenced by the
    /// remaining entries are *not* freed here: at exit the pipeline restores
    /// the checkpointed RAT and rebuilds its free lists, which subsumes any
    /// pending deallocation.
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Iterates over the live entries from head (oldest) to tail.
    pub fn iter(&self) -> impl Iterator<Item = &PrdqEntry> {
        self.entries.iter()
    }

    /// Storage cost in bytes: the paper provisions 192 entries at 4 bytes
    /// (instruction id + register tag + execute bit) for 768 bytes total.
    pub fn storage_bytes(&self) -> usize {
        self.capacity * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::rng::SmallRng;

    fn reg(i: u16) -> Option<(RegClass, PhysReg)> {
        Some((RegClass::Int, PhysReg(i)))
    }

    #[test]
    fn in_order_deallocation_waits_for_head() {
        let mut q = PreciseRegisterDeallocationQueue::new(4);
        assert!(q.allocate(1, reg(10), true));
        assert!(q.allocate(2, reg(11), true));
        assert!(q.allocate(3, reg(12), true));
        // Only uop 2 executed: nothing can drain because uop 1 is the head.
        q.mark_executed(2);
        assert!(q.drain_completed().is_empty());
        // Once the head executes, both 1 and 2 drain in order.
        q.mark_executed(1);
        let freed = q.drain_completed();
        assert_eq!(
            freed,
            vec![(RegClass::Int, PhysReg(10)), (RegClass::Int, PhysReg(11))]
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.reclaims(), 2);
    }

    #[test]
    fn non_reclaimable_registers_are_never_freed() {
        let mut q = PreciseRegisterDeallocationQueue::new(4);
        q.allocate(1, reg(5), false);
        q.mark_executed(1);
        assert!(q.drain_completed().is_empty());
        assert_eq!(q.reclaims(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn allocation_fails_when_full() {
        let mut q = PreciseRegisterDeallocationQueue::new(2);
        assert!(q.allocate(1, reg(1), true));
        assert!(q.allocate(2, reg(2), true));
        assert!(!q.allocate(3, reg(3), true));
        assert_eq!(q.allocations(), 2);
        assert!(q.is_full());
    }

    #[test]
    fn clear_discards_without_reclaiming() {
        let mut q = PreciseRegisterDeallocationQueue::new(4);
        q.allocate(1, reg(1), true);
        q.allocate(2, reg(2), true);
        q.mark_executed(1);
        assert_eq!(q.clear(), 2);
        assert!(q.is_empty());
        assert_eq!(q.reclaims(), 0);
    }

    #[test]
    fn mark_executed_unknown_uop_is_false() {
        let mut q = PreciseRegisterDeallocationQueue::new(2);
        assert!(!q.mark_executed(42));
    }

    #[test]
    fn eager_seeds_drain_immediately_and_in_order() {
        let mut q = PreciseRegisterDeallocationQueue::new(8);
        // A pending runahead allocation sits in the queue.
        assert!(q.allocate(100, reg(40), true));
        // Window mappings seeded in program order drain ahead of it.
        assert!(q.seed_executed(1, (RegClass::Int, PhysReg(10))));
        assert!(q.seed_executed(2, (RegClass::Int, PhysReg(11))));
        let freed = q.drain_completed();
        assert_eq!(
            freed,
            vec![(RegClass::Int, PhysReg(10)), (RegClass::Int, PhysReg(11))]
        );
        assert_eq!(q.len(), 1, "the pending runahead entry remains");
        assert_eq!(q.eager_seeds(), 2);
        assert_eq!(q.eager_reclaims(), 2);
        assert_eq!(q.reclaims(), 2);
        // The runahead entry still reclaims normally.
        q.mark_executed(100);
        assert_eq!(q.drain_completed(), vec![(RegClass::Int, PhysReg(40))]);
        assert_eq!(q.eager_reclaims(), 2, "runahead reclaims are not eager");
        assert_eq!(q.reclaims(), 3);
    }

    #[test]
    fn eager_seed_fails_when_full() {
        let mut q = PreciseRegisterDeallocationQueue::new(1);
        assert!(q.allocate(1, reg(1), true));
        assert!(!q.seed_executed(2, (RegClass::Int, PhysReg(2))));
        assert_eq!(q.eager_seeds(), 0);
    }

    #[test]
    fn storage_matches_paper() {
        let q = PreciseRegisterDeallocationQueue::new(192);
        assert_eq!(q.storage_bytes(), 768);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = PreciseRegisterDeallocationQueue::new(0);
    }

    /// Randomized: regardless of the execution order, (a) occupancy never
    /// exceeds capacity, (b) every reclaimable old register is freed exactly
    /// once, and (c) registers are freed in allocation order.
    #[test]
    fn prop_exactly_once_in_order() {
        let mut rng = SmallRng::seed_from_u64(0xD0_0001);
        for _case in 0..64 {
            let mut exec_order: Vec<u64> = (0..20).collect();
            rng.shuffle(&mut exec_order);
            let mut q = PreciseRegisterDeallocationQueue::new(32);
            for id in 0..20u64 {
                assert!(q.allocate(id, Some((RegClass::Int, PhysReg(id as u16))), true));
            }
            let mut freed = Vec::new();
            for id in exec_order {
                q.mark_executed(id);
                freed.extend(q.drain_completed());
                assert!(q.len() <= q.capacity());
            }
            freed.extend(q.drain_completed());
            assert_eq!(freed.len(), 20, "every register freed exactly once");
            for (i, (_, p)) in freed.iter().enumerate() {
                assert_eq!(p.0 as usize, i, "freed in allocation order");
            }
        }
    }
}
