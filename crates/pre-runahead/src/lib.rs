//! Precise Runahead Execution (PRE): the paper's contribution.
//!
//! This crate implements the hardware structures and policies proposed (or
//! compared against) in *"Precise Runahead Execution"* by Naithani, Feliu,
//! Adileh and Eeckhout:
//!
//! * [`sst::StallingSliceTable`] — the SST, a fully-associative PC cache that
//!   learns, iteratively through the renaming unit, every instruction that
//!   belongs to a *stalling slice* (the backward dependence chain of a
//!   long-latency load). In runahead mode only instructions that hit in the
//!   SST are executed (Section 3.2).
//! * [`prdq::PreciseRegisterDeallocationQueue`] — the PRDQ, the in-order
//!   queue that implements *runahead register reclamation*: physical
//!   registers allocated by runahead instructions are returned to the free
//!   list as soon as the allocating instruction has executed and reached the
//!   queue head, without waiting for a commit that will never happen
//!   (Section 3.4).
//! * [`emq::ExtendedMicroOpQueue`] — the EMQ, an optional buffer holding all
//!   micro-ops decoded in runahead mode so they can be dispatched after exit
//!   without re-fetching them (Section 3.3).
//! * [`runahead_buffer`] — the prior-work *runahead buffer* (Hashemi et al.,
//!   MICRO 2015): backward data-flow chain extraction from the ROB and the
//!   chain-replay engine that loops the extracted slice during runahead mode.
//! * [`policy`] — entry policies: the Mutlu-style short-interval / overlap
//!   avoidance used by traditional runahead and the runahead buffer, versus
//!   PRE's unconditional entry.
//! * [`technique::Technique`] — the five machine configurations evaluated in
//!   the paper (out-of-order baseline, RA, RA-buffer, PRE, PRE + EMQ).
//!
//! The cycle-level integration of these structures into the out-of-order
//! pipeline lives in the `pre-core` crate; everything here is independent of
//! the pipeline so it can be unit- and property-tested in isolation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod emq;
pub mod policy;
pub mod prdq;
pub mod runahead_buffer;
pub mod sst;
pub mod technique;

pub use emq::ExtendedMicroOpQueue;
pub use policy::{EntryDecision, EntryPolicy};
pub use prdq::{PrdqEntry, PreciseRegisterDeallocationQueue};
pub use runahead_buffer::{ChainReplayEngine, RunaheadBuffer, WindowUop};
pub use sst::StallingSliceTable;
pub use technique::Technique;
