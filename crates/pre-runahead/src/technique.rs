//! The machine configurations compared in the paper's evaluation.

use crate::policy::EntryPolicy;
use pre_model::config::RunaheadConfig;
use std::fmt;
use std::str::FromStr;

/// One of the five machine configurations evaluated in Section 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// The baseline out-of-order core (no runahead).
    OutOfOrder,
    /// Traditional runahead execution (Mutlu et al., HPCA 2003) with the
    /// efficiency optimizations of Mutlu et al., ISCA 2005.
    Runahead,
    /// Filtered runahead with a runahead buffer (Hashemi et al., MICRO 2015).
    RunaheadBuffer,
    /// Precise Runahead Execution (the paper's contribution).
    Pre,
    /// PRE augmented with the Extended Micro-op Queue.
    PreEmq,
}

impl Technique {
    /// Every technique, in the order used by the paper's figures.
    pub const ALL: [Technique; 5] = [
        Technique::OutOfOrder,
        Technique::Runahead,
        Technique::RunaheadBuffer,
        Technique::Pre,
        Technique::PreEmq,
    ];

    /// The runahead techniques (everything except the baseline).
    pub const RUNAHEAD: [Technique; 4] = [
        Technique::Runahead,
        Technique::RunaheadBuffer,
        Technique::Pre,
        Technique::PreEmq,
    ];

    /// Short label used in figures ("OoO", "RA", "RA-buffer", "PRE",
    /// "PRE+EMQ").
    pub fn label(&self) -> &'static str {
        match self {
            Technique::OutOfOrder => "OoO",
            Technique::Runahead => "RA",
            Technique::RunaheadBuffer => "RA-buffer",
            Technique::Pre => "PRE",
            Technique::PreEmq => "PRE+EMQ",
        }
    }

    /// `true` for configurations that perform any form of runahead execution.
    pub fn is_runahead(&self) -> bool {
        !matches!(self, Technique::OutOfOrder)
    }

    /// `true` for configurations that use the Stalling Slice Table.
    pub fn uses_sst(&self) -> bool {
        matches!(self, Technique::Pre | Technique::PreEmq)
    }

    /// `true` for the configuration that buffers runahead micro-ops in the
    /// EMQ.
    pub fn uses_emq(&self) -> bool {
        matches!(self, Technique::PreEmq)
    }

    /// `true` for configurations that use the runahead buffer's single-chain
    /// replay.
    pub fn uses_runahead_buffer(&self) -> bool {
        matches!(self, Technique::RunaheadBuffer)
    }

    /// `true` when the technique discards the ROB at runahead entry and
    /// flushes/refills the pipeline at exit (the overhead PRE eliminates).
    pub fn flushes_pipeline(&self) -> bool {
        matches!(self, Technique::Runahead | Technique::RunaheadBuffer)
    }

    /// `true` when the ROB contents are preserved across runahead mode.
    pub fn preserves_rob(&self) -> bool {
        matches!(self, Technique::Pre | Technique::PreEmq)
    }

    /// The runahead entry policy this technique uses.
    pub fn entry_policy(&self, cfg: &RunaheadConfig) -> EntryPolicy {
        if self.flushes_pipeline() {
            EntryPolicy::efficient(cfg.min_expected_runahead_cycles)
        } else {
            EntryPolicy::gated(cfg.min_free_int_regs, cfg.min_free_fp_regs)
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an unknown technique name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTechniqueError(String);

impl fmt::Display for ParseTechniqueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown technique `{}`, expected one of: ooo, ra, ra-buffer, pre, pre-emq",
            self.0
        )
    }
}

impl std::error::Error for ParseTechniqueError {}

impl FromStr for Technique {
    type Err = ParseTechniqueError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ooo" | "baseline" | "out-of-order" => Ok(Technique::OutOfOrder),
            "ra" | "runahead" => Ok(Technique::Runahead),
            "ra-buffer" | "runahead-buffer" | "rab" => Ok(Technique::RunaheadBuffer),
            "pre" => Ok(Technique::Pre),
            "pre-emq" | "pre+emq" | "preemq" => Ok(Technique::PreEmq),
            other => Err(ParseTechniqueError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figures() {
        assert_eq!(Technique::OutOfOrder.label(), "OoO");
        assert_eq!(Technique::Runahead.label(), "RA");
        assert_eq!(Technique::RunaheadBuffer.label(), "RA-buffer");
        assert_eq!(Technique::Pre.label(), "PRE");
        assert_eq!(Technique::PreEmq.label(), "PRE+EMQ");
    }

    #[test]
    fn structural_properties() {
        assert!(!Technique::OutOfOrder.is_runahead());
        assert!(Technique::Runahead.flushes_pipeline());
        assert!(Technique::RunaheadBuffer.flushes_pipeline());
        assert!(Technique::Pre.preserves_rob());
        assert!(Technique::PreEmq.uses_emq());
        assert!(Technique::Pre.uses_sst());
        assert!(!Technique::Runahead.uses_sst());
        assert!(Technique::RunaheadBuffer.uses_runahead_buffer());
    }

    #[test]
    fn entry_policies_differ() {
        let cfg = RunaheadConfig::default();
        let ra = Technique::Runahead.entry_policy(&cfg);
        assert_eq!(ra.min_expected_cycles, cfg.min_expected_runahead_cycles);
        assert!(ra.avoid_overlap);
        let pre = Technique::Pre.entry_policy(&cfg);
        assert_eq!(pre.min_expected_cycles, 0);
        assert!(!pre.avoid_overlap);
        assert_eq!(pre.min_free_int_regs, cfg.min_free_int_regs);
        assert_eq!(pre.min_free_fp_regs, cfg.min_free_fp_regs);
    }

    #[test]
    fn parsing_roundtrip() {
        for t in Technique::ALL {
            let parsed: Technique = t.label().parse().unwrap();
            assert_eq!(parsed, t);
        }
        assert!("nonsense".parse::<Technique>().is_err());
    }

    #[test]
    fn all_contains_five_unique_entries() {
        let mut labels: Vec<_> = Technique::ALL.iter().map(|t| t.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }
}
