//! The Extended Micro-op Queue (EMQ).
//!
//! Section 3.3 of the paper: without the EMQ, the work the front-end does in
//! runahead mode is thrown away — every micro-op fetched and decoded during
//! runahead must be fetched and decoded again after exit. The EMQ extends the
//! micro-op queue so that *all* decoded runahead micro-ops (SST hits and
//! misses alike) are buffered; when normal mode resumes they are dispatched
//! straight from the EMQ. The cost is that the runahead interval is bounded
//! by the EMQ capacity: once it fills, runahead execution stalls until the
//! stalling load returns. The paper evaluates a 768-entry EMQ (4 × ROB) and
//! reports PRE+EMQ at +28.6 % performance and −7.2 % energy versus the
//! out-of-order baseline.

use pre_frontend::uop_queue::UopQueue;

/// The EMQ: a bounded FIFO of decoded micro-ops captured in runahead mode.
///
/// The payload type is generic so the pipeline can store its own decoded
/// micro-op representation without this crate depending on the pipeline.
#[derive(Debug, Clone)]
pub struct ExtendedMicroOpQueue<T> {
    queue: UopQueue<T>,
    /// Number of micro-ops that could not be captured because the queue was
    /// full (runahead stalled from that point on).
    overflowed: u64,
}

impl<T> ExtendedMicroOpQueue<T> {
    /// Creates an EMQ with `capacity` entries (768 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        ExtendedMicroOpQueue {
            queue: UopQueue::new(capacity),
            overflowed: 0,
        }
    }

    /// Buffers a micro-op decoded in runahead mode. Returns the micro-op back
    /// when the queue is full — the caller must stall runahead execution.
    pub fn capture(&mut self, uop: T) -> Result<(), T> {
        match self.queue.push(uop) {
            Ok(()) => Ok(()),
            Err(uop) => {
                self.overflowed += 1;
                Err(uop)
            }
        }
    }

    /// Pops the oldest buffered micro-op for dispatch after runahead exit.
    pub fn dispatch_next(&mut self) -> Option<T> {
        self.queue.pop()
    }

    /// Peeks at the next micro-op to dispatch.
    pub fn peek(&self) -> Option<&T> {
        self.queue.front()
    }

    /// Number of buffered micro-ops.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// `true` when the EMQ can capture no more micro-ops (runahead must
    /// stall).
    pub fn is_full(&self) -> bool {
        self.queue.is_full()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Total micro-ops captured (EMQ writes, for the energy model).
    pub fn writes(&self) -> u64 {
        self.queue.pushes()
    }

    /// Total micro-ops dispatched from the EMQ (EMQ reads).
    pub fn reads(&self) -> u64 {
        self.queue.pops()
    }

    /// Number of capture attempts rejected because the queue was full.
    pub fn overflowed(&self) -> u64 {
        self.overflowed
    }

    /// Discards all buffered micro-ops (used when runahead is aborted, e.g.
    /// on a normal-mode branch misprediction).
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Storage cost in bytes, assuming 4 bytes per buffered micro-op as in
    /// Section 3.6 (768 entries ≈ 3 KB).
    pub fn storage_bytes(&self) -> usize {
        self.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_then_dispatch_in_order() {
        let mut emq = ExtendedMicroOpQueue::new(4);
        emq.capture("a").unwrap();
        emq.capture("b").unwrap();
        assert_eq!(emq.dispatch_next(), Some("a"));
        assert_eq!(emq.dispatch_next(), Some("b"));
        assert_eq!(emq.dispatch_next(), None);
    }

    #[test]
    fn full_queue_rejects_and_counts_overflow() {
        let mut emq = ExtendedMicroOpQueue::new(2);
        emq.capture(1).unwrap();
        emq.capture(2).unwrap();
        assert!(emq.is_full());
        assert_eq!(emq.capture(3), Err(3));
        assert_eq!(emq.overflowed(), 1);
    }

    #[test]
    fn read_write_counters() {
        let mut emq = ExtendedMicroOpQueue::new(8);
        for i in 0..5 {
            emq.capture(i).unwrap();
        }
        emq.dispatch_next();
        assert_eq!(emq.writes(), 5);
        assert_eq!(emq.reads(), 1);
        assert_eq!(emq.len(), 4);
    }

    #[test]
    fn clear_discards_contents() {
        let mut emq = ExtendedMicroOpQueue::new(4);
        emq.capture(1).unwrap();
        emq.clear();
        assert!(emq.is_empty());
        assert_eq!(emq.peek(), None);
    }

    #[test]
    fn storage_matches_paper() {
        let emq: ExtendedMicroOpQueue<u32> = ExtendedMicroOpQueue::new(768);
        assert_eq!(emq.storage_bytes(), 3072);
    }
}
