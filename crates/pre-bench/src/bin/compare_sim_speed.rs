//! Perf-smoke gate: compare a fresh `BENCH_sim_speed.json` against a
//! committed baseline and fail on aggregate regressions.
//!
//! Usage: `compare_sim_speed <baseline.json> <current.json>`
//!
//! Both files are the aggregate JSON written by the `sim_speed` bench with
//! `PRE_BENCH_JSON` set. Only cells present in **both** files (matched on
//! `workload` + `technique`) enter the comparison, so the gate tolerates
//! adding or dropping cells; the aggregate simulated-uops-per-second rate
//! over the common cells must not drop by more than the allowed fraction.
//!
//! Environment:
//!
//! * `PRE_PERF_MAX_REGRESSION` — allowed fractional aggregate slowdown
//!   before the gate fails (default `0.15`, i.e. 15%). CI runners vary in
//!   speed between runs of the *same* runner class, which this slack
//!   absorbs; cross-machine comparisons need a locally regenerated
//!   baseline (`PRE_BENCH_JSON=1 cargo bench -p pre-bench --bench
//!   sim_speed`).

use std::process::ExitCode;

/// One benchmark cell as read back from the aggregate JSON.
#[derive(Debug, Clone, PartialEq)]
struct Cell {
    workload: String,
    technique: String,
    uops: u64,
    median_ns: u128,
}

impl Cell {
    fn uops_per_sec(&self) -> f64 {
        self.uops as f64 / (self.median_ns as f64 / 1e9).max(1e-12)
    }
}

/// Extracts the string value of `"field": "..."` from one JSON object.
fn field_str(object: &str, field: &str) -> Option<String> {
    let key = format!("\"{field}\": \"");
    let start = object.find(&key)? + key.len();
    let end = object[start..].find('"')?;
    Some(object[start..start + end].to_string())
}

/// Extracts the integer value of `"field": N` from one JSON object.
fn field_u128(object: &str, field: &str) -> Option<u128> {
    let key = format!("\"{field}\": ");
    let start = object.find(&key)? + key.len();
    let digits: String = object[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Parses the cells of a `BENCH_sim_speed.json` aggregate report. The format
/// is the one `benches/sim_speed.rs` writes: a `"cells"` array of flat
/// objects whose only nested value is a numeric `samples_ns` array, so
/// objects can be split on brace pairs without tracking nesting.
fn parse_cells(text: &str) -> Result<Vec<Cell>, String> {
    let cells_at = text
        .find("\"cells\"")
        .ok_or_else(|| "no \"cells\" array found".to_string())?;
    let mut cells = Vec::new();
    let mut rest = &text[cells_at..];
    while let Some(open) = rest.find('{') {
        let close = rest[open..]
            .find('}')
            .ok_or_else(|| "unterminated cell object".to_string())?;
        let object = &rest[open..open + close + 1];
        let cell = Cell {
            workload: field_str(object, "workload")
                .ok_or_else(|| format!("cell without workload: {object}"))?,
            technique: field_str(object, "technique")
                .ok_or_else(|| format!("cell without technique: {object}"))?,
            uops: field_u128(object, "uops")
                .ok_or_else(|| format!("cell without uops: {object}"))? as u64,
            median_ns: field_u128(object, "median_ns")
                .ok_or_else(|| format!("cell without median_ns: {object}"))?,
        };
        cells.push(cell);
        rest = &rest[open + close + 1..];
    }
    if cells.is_empty() {
        return Err("no cells parsed".to_string());
    }
    Ok(cells)
}

/// Aggregate simulated-uops-per-second over a set of cells: total simulated
/// work divided by total median wall time (the same statistic the bench
/// prints as its `aggregate:` line, restricted to the matched cells).
fn aggregate_uops_per_sec(cells: &[&Cell]) -> f64 {
    let uops: u64 = cells.iter().map(|c| c.uops).sum();
    let secs: f64 = cells.iter().map(|c| c.median_ns as f64 / 1e9).sum();
    uops as f64 / secs.max(1e-12)
}

fn env_fraction(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|f: &f64| (0.0..1.0).contains(f))
        .unwrap_or(default)
}

fn load(path: &str) -> Result<Vec<Cell>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))?;
    parse_cells(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: compare_sim_speed <baseline.json> <current.json>");
        return ExitCode::from(2);
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {err}");
            }
            return ExitCode::from(2);
        }
    };

    let mut matched: Vec<(&Cell, &Cell)> = Vec::new();
    for b in &baseline {
        match current
            .iter()
            .find(|c| c.workload == b.workload && c.technique == b.technique)
        {
            Some(c) => matched.push((b, c)),
            None => println!(
                "note: baseline cell {}:{} missing from current run, skipping",
                b.workload, b.technique
            ),
        }
    }
    if matched.is_empty() {
        eprintln!("error: no cells in common between baseline and current run");
        return ExitCode::from(2);
    }

    println!(
        "{:<18} {:<10} {:>14} {:>14} {:>8}",
        "workload", "technique", "base uops/s", "now uops/s", "ratio"
    );
    for (b, c) in &matched {
        println!(
            "{:<18} {:<10} {:>14.0} {:>14.0} {:>8.3}",
            b.workload,
            b.technique,
            b.uops_per_sec(),
            c.uops_per_sec(),
            c.uops_per_sec() / b.uops_per_sec().max(1e-12),
        );
    }

    let base = aggregate_uops_per_sec(&matched.iter().map(|(b, _)| *b).collect::<Vec<_>>());
    let now = aggregate_uops_per_sec(&matched.iter().map(|(_, c)| *c).collect::<Vec<_>>());
    let ratio = now / base.max(1e-12);
    let max_regression = env_fraction("PRE_PERF_MAX_REGRESSION", 0.15);
    println!(
        "aggregate over {} common cells: baseline {base:.0} uops/s, current {now:.0} uops/s (ratio {ratio:.3}, floor {:.3})",
        matched.len(),
        1.0 - max_regression,
    );
    if ratio < 1.0 - max_regression {
        eprintln!(
            "PERF REGRESSION: aggregate sim_speed dropped {:.1}% (allowed {:.1}%)",
            (1.0 - ratio) * 100.0,
            max_regression * 100.0,
        );
        return ExitCode::FAILURE;
    }
    println!("perf smoke OK");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature report in exactly the format `benches/sim_speed.rs`
    /// writes.
    const SAMPLE: &str = concat!(
        "{\n  \"name\": \"sim_speed\",\n  \"budget_uops\": 20000,\n",
        "  \"scheduler\": \"event\",\n  \"cells\": [\n",
        "    {\"workload\": \"asm-chase-large\", \"technique\": \"OoO\", ",
        "\"uops\": 20001, \"cycles\": 1537994, \"median_ns\": 39123000, ",
        "\"uops_per_sec\": 511233.9, \"cycles_per_sec\": 39312028.0, ",
        "\"samples_ns\": [39123000, 39500000, 39000000]},\n",
        "    {\"workload\": \"lbm-like\", \"technique\": \"PRE\", ",
        "\"uops\": 20000, \"cycles\": 100000, \"median_ns\": 10000000, ",
        "\"uops_per_sec\": 2000000.0, \"cycles_per_sec\": 10000000.0, ",
        "\"samples_ns\": [10000000]}\n",
        "  ]\n}\n"
    );

    #[test]
    fn parses_the_writer_format() {
        let cells = parse_cells(SAMPLE).expect("parses");
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].workload, "asm-chase-large");
        assert_eq!(cells[0].technique, "OoO");
        assert_eq!(cells[0].uops, 20001);
        assert_eq!(cells[0].median_ns, 39123000);
        assert_eq!(cells[1].technique, "PRE");
    }

    #[test]
    fn aggregate_is_total_work_over_total_time() {
        let cells = parse_cells(SAMPLE).expect("parses");
        let refs: Vec<&Cell> = cells.iter().collect();
        let expected = (20001.0 + 20000.0) / ((39123000.0 + 10000000.0) / 1e9);
        assert!((aggregate_uops_per_sec(&refs) - expected).abs() < 1e-6);
    }

    #[test]
    fn rejects_reports_without_cells() {
        assert!(parse_cells("{\"name\": \"sim_speed\"}").is_err());
        assert!(parse_cells("{\"cells\": []}").is_err());
    }

    #[test]
    fn tolerates_a_sweep_section_before_the_cells() {
        // The writer places the sweep-mode metrics object *before* the
        // "cells" key and keeps the substring "cells" out of its keys, so
        // this brace-splitting parser must see exactly the same cells.
        let sweep_section = concat!(
            "  \"sweep\": {\n",
            "    \"fork_grid_points\": 20, \"fork_warmup_uops\": 40000, ",
            "\"fork_budget_uops\": 4000,\n",
            "    \"cold_points_per_sec\": 18.914, ",
            "\"forked_points_per_sec\": 199.945, \"forked_speedup\": 10.571,\n",
            "    \"memo_grid_points\": 100, \"memo_budget_uops\": 3000,\n",
            "    \"memo_cold_points_per_sec\": 271.030, ",
            "\"memo_hit_points_per_sec\": 39529.692,\n",
            "    \"memo_speedup\": 145.850, \"memo_hit_rate\": 1.0000\n",
            "  },\n"
        );
        let with_sweep = SAMPLE.replace(
            "  \"cells\": [\n",
            &format!("{sweep_section}  \"cells\": [\n"),
        );
        assert_ne!(with_sweep, SAMPLE, "sweep section was inserted");
        let plain = parse_cells(SAMPLE).expect("parses");
        let swept = parse_cells(&with_sweep).expect("parses with sweep section");
        assert_eq!(plain, swept);
    }

    #[test]
    fn tolerates_a_sampling_section_before_the_cells() {
        // Same contract as the sweep section: the sampled-simulation
        // metrics land before "cells" with no key containing the substring
        // "cells", so the regression gate sees the same cells either way.
        let sampling_section = concat!(
            "  \"sampling\": {\n",
            "    \"sampling_budget_uops\": 240000, ",
            "\"sample_spec\": \"n=6,interval=6000\",\n",
            "    \"runs\": [\n",
            "      {\"workload\": \"asm-chase-large\", \"technique\": \"PRE\", ",
            "\"full_ms\": 805.1, \"sampled_ms\": 141.0, \"speedup\": 5.71, ",
            "\"full_ipc\": 0.0130, \"sampled_ipc\": 0.0130, ",
            "\"ipc_error_pct\": 0.17, \"coverage_pct\": 5.0}\n",
            "    ]\n",
            "  },\n"
        );
        let with_sampling = SAMPLE.replace(
            "  \"cells\": [\n",
            &format!("{sampling_section}  \"cells\": [\n"),
        );
        assert_ne!(with_sampling, SAMPLE, "sampling section was inserted");
        let plain = parse_cells(SAMPLE).expect("parses");
        let sampled = parse_cells(&with_sampling).expect("parses with sampling section");
        assert_eq!(plain, sampled);
    }
}
