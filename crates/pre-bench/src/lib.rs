//! Shared helpers for the benchmarks that regenerate the paper's tables and
//! figures. The actual benchmarks live under `benches/`; they run on the
//! criterion-shaped std-only [`harness`] because the build environment has no
//! crates.io access.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod harness;
