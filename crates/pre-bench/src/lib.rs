//! Shared helpers for the Criterion benchmarks that regenerate the paper's
//! tables and figures. The actual benchmarks live under `benches/`.
