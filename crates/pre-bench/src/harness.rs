//! A minimal, criterion-shaped benchmark harness.
//!
//! The workspace builds without crates.io access, so the benches under
//! `benches/` run on this std-only harness instead of criterion. The API
//! mirrors the subset of criterion the benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`], [`Bencher::iter`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — so switching to the
//! real crate later is an import change, not a rewrite.
//!
//! Measurement is deliberately simple: each benchmark runs one untimed
//! warm-up iteration, then `sample_size` timed iterations, and reports the
//! minimum, median and mean wall-clock time (plus throughput when the group
//! declares one). Set `PRE_BENCH_SAMPLES` to override every group's sample
//! count, e.g. `PRE_BENCH_SAMPLES=3 cargo bench` for a quick smoke run.
//!
//! Set `PRE_BENCH_JSON` to additionally emit one machine-readable
//! `BENCH_<name>.json` per benchmark (raw samples, min, median, mean in
//! nanoseconds) next to the text output, so the perf trajectory can be
//! tracked across commits: `PRE_BENCH_JSON=1` writes into the current
//! directory, any other non-empty value is used as the target directory.

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== {name}");
        BenchmarkGroup {
            sample_size: env_sample_size().unwrap_or(DEFAULT_SAMPLE_SIZE),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let samples = run_samples(env_sample_size().unwrap_or(DEFAULT_SAMPLE_SIZE), f);
        report(name, &samples, None);
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 10;

fn env_sample_size() -> Option<usize> {
    std::env::var("PRE_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
}

/// What one iteration of a benchmark processes, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (here: committed micro-ops) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing sample-size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if env_sample_size().is_none() {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Declares per-iteration throughput so the report includes a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f`, handing it `input` (mirrors criterion's signature).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let samples = run_samples(self.sample_size, |b| f(b, input));
        report(&id.to_string(), &samples, self.throughput);
        self
    }

    /// Benchmarks `f` under `id` with no explicit input.
    pub fn bench_function(
        &mut self,
        id: BenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = run_samples(self.sample_size, &mut f);
        report(&id.to_string(), &samples, self.throughput);
        self
    }

    /// Ends the group (criterion writes reports here; we print as we go).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id that is only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.name.is_empty(), &self.parameter) {
            (false, Some(p)) => write!(f, "{}/{p}", self.name),
            (false, None) => write!(f, "{}", self.name),
            (true, Some(p)) => write!(f, "{p}"),
            (true, None) => write!(f, "?"),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` calls of `f` after one untimed warm-up call.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_samples(sample_size: usize, mut f: impl FnMut(&mut Bencher)) -> Vec<Duration> {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut bencher);
    bencher.samples
}

/// Directory for machine-readable reports, from `PRE_BENCH_JSON` (`1`/`true`
/// mean the current directory); `None` disables JSON output.
fn json_dir() -> Option<PathBuf> {
    let value = std::env::var("PRE_BENCH_JSON").ok()?;
    match value.trim() {
        "" | "0" | "false" => None,
        "1" | "true" => Some(PathBuf::from(".")),
        dir => Some(PathBuf::from(dir)),
    }
}

/// `BENCH_<name>.json` with path-hostile characters mapped to `_`.
fn json_file_name(name: &str) -> String {
    let sanitized: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("BENCH_{sanitized}.json")
}

/// Renders one benchmark's samples as a JSON object (times in nanoseconds).
fn json_report(
    name: &str,
    samples: &[Duration],
    min: Duration,
    median: Duration,
    mean: Duration,
) -> String {
    let samples_ns: Vec<String> = samples.iter().map(|d| d.as_nanos().to_string()).collect();
    format!(
        concat!(
            "{{\n",
            "  \"name\": \"{}\",\n",
            "  \"samples_ns\": [{}],\n",
            "  \"min_ns\": {},\n",
            "  \"median_ns\": {},\n",
            "  \"mean_ns\": {}\n",
            "}}\n"
        ),
        escape_json(name),
        samples_ns.join(", "),
        min.as_nanos(),
        median.as_nanos(),
        mean.as_nanos(),
    )
}

/// Escapes the characters JSON strings cannot contain raw (benchmark names
/// are ASCII identifiers, so quotes/backslashes/control chars suffice).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn write_json(
    dir: &Path,
    name: &str,
    samples: &[Duration],
    min: Duration,
    median: Duration,
    mean: Duration,
) {
    let path = dir.join(json_file_name(name));
    let body = json_report(name, samples, min, median, mean);
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("could not write {}: {e}", path.display());
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples — did the closure call iter()?)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    if let Some(dir) = json_dir() {
        write_json(&dir, name, samples, min, median, mean);
    }
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12}/s", human_rate(n, median)),
        Throughput::Bytes(n) => format!("  {:>10}B/s", human_rate(n, median)),
    });
    println!(
        "{name:<40} min {:>11}  med {:>11}  mean {:>11}{}",
        human_time(min),
        human_time(median),
        human_time(mean),
        rate.unwrap_or_default(),
    );
}

fn human_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn human_rate(elements: u64, per: Duration) -> String {
    let secs = per.as_secs_f64();
    if secs <= 0.0 {
        return "inf".into();
    }
    let rate = elements as f64 / secs;
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Mirrors `criterion::criterion_group!`: bundles benchmark functions into
/// one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: generates `main` running the groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let samples = run_samples(4, |b| b.iter(|| 1 + 1));
        assert_eq!(samples.len(), 4);
    }

    #[test]
    fn benchmark_id_renders_like_criterion() {
        assert_eq!(BenchmarkId::new("lbm", 42).to_string(), "lbm/42");
        assert_eq!(BenchmarkId::from_parameter("x/y").to_string(), "x/y");
    }

    #[test]
    fn json_report_is_valid_and_complete() {
        let samples = [
            Duration::from_nanos(100),
            Duration::from_nanos(300),
            Duration::from_nanos(200),
        ];
        let body = json_report(
            "fig2_performance/lbm-like/RA",
            &samples,
            Duration::from_nanos(100),
            Duration::from_nanos(200),
            Duration::from_nanos(200),
        );
        assert!(body.contains("\"samples_ns\": [100, 300, 200]"), "{body}");
        assert!(body.contains("\"min_ns\": 100"), "{body}");
        assert!(body.contains("\"median_ns\": 200"), "{body}");
        assert!(body.contains("\"mean_ns\": 200"), "{body}");
        assert!(body.contains("\"name\": \"fig2_performance/lbm-like/RA\""));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(body.matches('{').count(), body.matches('}').count());
        assert_eq!(body.matches('[').count(), body.matches(']').count());
    }

    #[test]
    fn json_file_names_are_path_safe() {
        assert_eq!(
            json_file_name("fig2_performance/lbm-like/RA buffer"),
            "BENCH_fig2_performance_lbm-like_RA_buffer.json"
        );
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn human_units_pick_sane_scales() {
        assert_eq!(human_time(Duration::from_nanos(12)), "12 ns");
        assert_eq!(human_time(Duration::from_micros(12)), "12.000 µs");
        assert_eq!(human_time(Duration::from_millis(12)), "12.000 ms");
        assert!(human_rate(8_000, Duration::from_millis(1)).starts_with("8.00 M"));
    }
}
