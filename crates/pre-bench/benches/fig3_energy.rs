//! Criterion bench regenerating Figure 3's data series (energy relative to
//! the baseline) on a representative workload with a reduced budget.

use pre_bench::harness::{BenchmarkId, Criterion};
use pre_bench::{criterion_group, criterion_main};
use pre_runahead::Technique;
use pre_sim::runner::{run_one, RunSpec};
use pre_workloads::Workload;
use std::hint::black_box;

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_energy");
    group.sample_size(10);
    for technique in [
        Technique::OutOfOrder,
        Technique::Runahead,
        Technique::Pre,
        Technique::PreEmq,
    ] {
        group.bench_with_input(
            BenchmarkId::new("milc-like", technique.label()),
            &technique,
            |b, &technique| {
                b.iter(|| {
                    let spec = RunSpec::new(Workload::MilcLike, technique).with_budget(5_000);
                    let result = run_one(&spec).expect("run");
                    black_box(result.energy_mj())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
