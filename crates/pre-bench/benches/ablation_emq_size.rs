//! Ablation bench (Section 3.3): PRE+EMQ performance as the EMQ capacity
//! varies around the paper's 768 entries (4 × ROB).

use pre_bench::harness::{BenchmarkId, Criterion};
use pre_bench::{criterion_group, criterion_main};
use pre_model::config::SimConfigBuilder;
use pre_runahead::Technique;
use pre_sim::runner::{run_one, RunSpec};
use pre_workloads::Workload;
use std::hint::black_box;

fn emq_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_emq_size");
    group.sample_size(10);
    for entries in [192usize, 768, 1536] {
        group.bench_with_input(
            BenchmarkId::from_parameter(entries),
            &entries,
            |b, &entries| {
                let config = SimConfigBuilder::haswell_like()
                    .emq_entries(entries)
                    .build()
                    .expect("valid configuration");
                b.iter(|| {
                    let spec = RunSpec::new(Workload::MilcLike, Technique::PreEmq)
                        .with_budget(5_000)
                        .with_config(config.clone());
                    let result = run_one(&spec).expect("run");
                    black_box((result.ipc(), result.stats.emq_full_stall_cycles))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, emq_ablation);
criterion_main!(benches);
