//! Simulator-throughput bench: how many micro-ops per second the
//! cycle-level model simulates for the baseline and for PRE (the most
//! stateful configuration). Useful for tracking performance regressions of
//! the simulator itself.

use pre_bench::harness::{BenchmarkId, Criterion, Throughput};
use pre_bench::{criterion_group, criterion_main};
use pre_runahead::Technique;
use pre_sim::runner::{run_one, RunSpec};
use pre_workloads::Workload;
use std::hint::black_box;

fn throughput(c: &mut Criterion) {
    let uops: u64 = 8_000;
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(uops));
    for (workload, technique) in [
        (Workload::ComputeBound, Technique::OutOfOrder),
        (Workload::LbmLike, Technique::OutOfOrder),
        (Workload::LbmLike, Technique::Pre),
        (Workload::McfLike, Technique::PreEmq),
    ] {
        let id = format!("{}/{}", workload.name(), technique.label());
        group.bench_with_input(BenchmarkId::from_parameter(id), &(), |b, ()| {
            b.iter(|| {
                let spec = RunSpec::new(workload, technique).with_budget(uops);
                let result = run_one(&spec).expect("run");
                black_box(result.stats.cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, throughput);
criterion_main!(benches);
