//! Criterion bench for Table 1: building and validating the paper's baseline
//! configuration and constructing a core from it. (Table 1 is a configuration
//! table, so the "benchmark" is the cost of instantiating that machine.)

use pre_bench::harness::Criterion;
use pre_bench::{criterion_group, criterion_main};
use pre_core::OooCore;
use pre_model::config::SimConfig;
use pre_runahead::Technique;
use pre_sim::experiments::table1;
use pre_workloads::{Workload, WorkloadParams};
use std::hint::black_box;

fn table1_bench(c: &mut Criterion) {
    c.bench_function("table1/validate_haswell_like", |b| {
        b.iter(|| {
            let cfg = SimConfig::haswell_like();
            cfg.validate().expect("valid");
            black_box(cfg.dram_closed_page_latency())
        })
    });
    c.bench_function("table1/render", |b| b.iter(|| black_box(table1().render())));
    let program = Workload::LibquantumLike.build(&WorkloadParams::default());
    c.bench_function("table1/build_core", |b| {
        b.iter(|| {
            let core = OooCore::new(&SimConfig::haswell_like(), &program, Technique::PreEmq)
                .expect("core builds");
            black_box(core.cycle())
        })
    });
}

criterion_group!(benches, table1_bench);
criterion_main!(benches);
