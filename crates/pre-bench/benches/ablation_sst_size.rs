//! Ablation bench (Stat F, Section 3.6): PRE performance as the SST capacity
//! shrinks from the paper's 256 entries.

use pre_bench::harness::{BenchmarkId, Criterion};
use pre_bench::{criterion_group, criterion_main};
use pre_model::config::SimConfigBuilder;
use pre_runahead::Technique;
use pre_sim::runner::{run_one, RunSpec};
use pre_workloads::Workload;
use std::hint::black_box;

fn sst_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sst_size");
    group.sample_size(10);
    for entries in [16usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::from_parameter(entries),
            &entries,
            |b, &entries| {
                let config = SimConfigBuilder::haswell_like()
                    .sst_entries(entries)
                    .build()
                    .expect("valid configuration");
                b.iter(|| {
                    let spec = RunSpec::new(Workload::LbmLike, Technique::Pre)
                        .with_budget(5_000)
                        .with_config(config.clone());
                    let result = run_one(&spec).expect("run");
                    black_box((result.ipc(), result.stats.sst_evictions))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, sst_ablation);
criterion_main!(benches);
