//! Criterion bench regenerating Figure 2's data series (performance of every
//! technique normalized to the out-of-order baseline) on a representative
//! multi-slice workload with a reduced budget, so `cargo bench` finishes in
//! minutes. The full-suite numbers come from the `fig2_performance` binary in
//! `pre-sim`.

use pre_bench::harness::{BenchmarkId, Criterion};
use pre_bench::{criterion_group, criterion_main};
use pre_runahead::Technique;
use pre_sim::runner::{run_one, RunSpec};
use pre_workloads::Workload;
use std::hint::black_box;

fn fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_performance");
    group.sample_size(10);
    for technique in Technique::ALL {
        group.bench_with_input(
            BenchmarkId::new("lbm-like", technique.label()),
            &technique,
            |b, &technique| {
                b.iter(|| {
                    let spec = RunSpec::new(Workload::LbmLike, technique).with_budget(5_000);
                    let result = run_one(&spec).expect("run");
                    black_box(result.ipc())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
