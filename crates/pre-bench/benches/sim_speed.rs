//! Simulator-throughput benchmark: simulated micro-ops per second and
//! cycles per second for every (workload, technique) cell of the mixed
//! suite. This is the perf trajectory every scheduler/pipeline change is
//! judged against (the README "Simulator performance" table comes from
//! here).
//!
//! Environment:
//!
//! * `PRE_SIM_SPEED_CELLS` — comma-separated `workload:technique` pairs
//!   (e.g. `asm-chase-large:ooo,lbm-like:pre`) restricting the matrix; the
//!   CI perf smoke uses this to keep the job fast.
//! * `PRE_SIM_SPEED_UOPS` — committed-micro-op budget per cell (default
//!   20 000).
//! * `PRE_SIM_SPEED_REFERENCE` — set non-empty to benchmark the reference
//!   (scan-based, no fast-forward) scheduler instead of the event-driven
//!   one, for before/after comparisons.
//! * `PRE_BENCH_SAMPLES` — timed repetitions per cell (default 3).
//! * `PRE_BENCH_JSON` — when set, additionally writes an aggregate
//!   `BENCH_sim_speed.json` (one record per cell with median time and
//!   derived rates) into the given directory (`1`/`true` = current
//!   directory), next to the per-bench JSON the other benches emit.

use pre_model::config::SimConfig;
use pre_runahead::Technique;
use pre_sim::experiments::Suite;
use pre_sim::runner::{run_one, RunResult, RunSpec};
use pre_workloads::Workload;
use std::time::{Duration, Instant};

struct CellReport {
    workload: &'static str,
    technique: &'static str,
    uops: u64,
    cycles: u64,
    median: Duration,
    samples_ns: Vec<u128>,
}

impl CellReport {
    fn uops_per_sec(&self) -> f64 {
        self.uops as f64 / self.median.as_secs_f64().max(1e-12)
    }

    fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.median.as_secs_f64().max(1e-12)
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Parses `PRE_SIM_SPEED_CELLS` into (workload, technique) pairs; `None`
/// means "the whole mixed matrix".
fn cell_filter() -> Option<Vec<(Workload, Technique)>> {
    let raw = std::env::var("PRE_SIM_SPEED_CELLS").ok()?;
    let mut cells = Vec::new();
    for item in raw.split(',').filter(|s| !s.trim().is_empty()) {
        let (workload_name, technique_name) = item.trim().split_once(':').unwrap_or_else(|| {
            panic!("PRE_SIM_SPEED_CELLS item `{item}` is not workload:technique")
        });
        let workload = Suite::Mixed
            .workloads()
            .into_iter()
            .find(|w| w.name() == workload_name.trim())
            .unwrap_or_else(|| panic!("unknown workload `{workload_name}`"));
        let technique: Technique = technique_name
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("{e}"));
        cells.push((workload, technique));
    }
    Some(cells)
}

fn bench_cell(spec: &RunSpec, samples: usize) -> (RunResult, Vec<Duration>) {
    // One untimed warm-up run also supplies the uop/cycle counts.
    let reference = run_one(spec).expect("cell runs");
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        let result = std::hint::black_box(run_one(spec).expect("cell runs"));
        times.push(start.elapsed());
        assert_eq!(
            result.stats.cycles, reference.stats.cycles,
            "simulation must be deterministic"
        );
    }
    (reference, times)
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(s
        .chars()
        .all(|c| c != '"' && c != '\\' && (c as u32) >= 0x20));
    s
}

fn write_aggregate_json(reports: &[CellReport], budget: u64, reference_scheduler: bool) {
    let dir = match std::env::var("PRE_BENCH_JSON")
        .ok()
        .as_deref()
        .map(str::trim)
    {
        None | Some("") | Some("0") | Some("false") => return,
        Some("1") | Some("true") => std::path::PathBuf::from("."),
        Some(dir) => std::path::PathBuf::from(dir),
    };
    let mut body = String::new();
    body.push_str("{\n  \"name\": \"sim_speed\",\n");
    body.push_str(&format!("  \"budget_uops\": {budget},\n"));
    body.push_str(&format!(
        "  \"scheduler\": \"{}\",\n  \"cells\": [\n",
        if reference_scheduler {
            "reference"
        } else {
            "event"
        }
    ));
    for (i, r) in reports.iter().enumerate() {
        let samples: Vec<String> = r.samples_ns.iter().map(u128::to_string).collect();
        body.push_str(&format!(
            concat!(
                "    {{\"workload\": \"{}\", \"technique\": \"{}\", ",
                "\"uops\": {}, \"cycles\": {}, \"median_ns\": {}, ",
                "\"uops_per_sec\": {:.1}, \"cycles_per_sec\": {:.1}, ",
                "\"samples_ns\": [{}]}}{}\n"
            ),
            json_escape_free(r.workload),
            json_escape_free(r.technique),
            r.uops,
            r.cycles,
            r.median.as_nanos(),
            r.uops_per_sec(),
            r.cycles_per_sec(),
            samples.join(", "),
            if i + 1 == reports.len() { "" } else { "," },
        ));
    }
    body.push_str("  ]\n}\n");
    let path = dir.join("BENCH_sim_speed.json");
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("could not write {}: {e}", path.display());
    }
}

fn human_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

fn main() {
    let budget = env_usize("PRE_SIM_SPEED_UOPS", 20_000) as u64;
    let samples = env_usize("PRE_BENCH_SAMPLES", 3);
    let reference_scheduler = std::env::var("PRE_SIM_SPEED_REFERENCE")
        .map(|v| !v.trim().is_empty() && v.trim() != "0")
        .unwrap_or(false);
    // Default cells come from the canonical matrix iterator shared with
    // `quick_check` and the stat binaries, so cell orderings agree.
    let cells = cell_filter().unwrap_or_else(|| Suite::Mixed.cells().collect());
    let mut config = SimConfig::haswell_like();
    config.core.reference_scheduler = reference_scheduler;

    println!(
        "== sim_speed ({} cells, {budget} uops per cell, {} scheduler)",
        cells.len(),
        if reference_scheduler {
            "reference"
        } else {
            "event"
        }
    );
    let mut reports = Vec::with_capacity(cells.len());
    for (workload, technique) in cells {
        let spec = RunSpec::new(workload, technique)
            .with_budget(budget)
            .with_config(config.clone());
        let (result, times) = bench_cell(&spec, samples);
        let mut sorted = times.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let report = CellReport {
            workload: workload.name(),
            technique: technique.label(),
            uops: result.stats.committed_uops,
            cycles: result.stats.cycles,
            median,
            samples_ns: times.iter().map(Duration::as_nanos).collect(),
        };
        println!(
            "{:<18} {:<10} {:>9} uops {:>11} cycles  med {:>9.3} ms  {:>10} uops/s  {:>10} cycles/s",
            report.workload,
            report.technique,
            report.uops,
            report.cycles,
            median.as_secs_f64() * 1e3,
            human_rate(report.uops_per_sec()),
            human_rate(report.cycles_per_sec()),
        );
        reports.push(report);
    }
    let total_uops: u64 = reports.iter().map(|r| r.uops * samples as u64).sum();
    let total_time: f64 = reports
        .iter()
        .flat_map(|r| r.samples_ns.iter())
        .map(|&ns| ns as f64 / 1e9)
        .sum();
    println!(
        "aggregate: {} timed uops in {total_time:.2} s -> {} uops/s",
        total_uops,
        human_rate(total_uops as f64 / total_time.max(1e-12)),
    );
    write_aggregate_json(&reports, budget, reference_scheduler);
}
