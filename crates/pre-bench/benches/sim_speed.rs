//! Simulator-throughput benchmark: simulated micro-ops per second and
//! cycles per second for every (workload, technique) cell of the mixed
//! suite. This is the perf trajectory every scheduler/pipeline change is
//! judged against (the README "Simulator performance" table comes from
//! here).
//!
//! Environment:
//!
//! * `PRE_SIM_SPEED_CELLS` — comma-separated `workload:technique` pairs
//!   (e.g. `asm-chase-large:ooo,lbm-like:pre`) restricting the matrix; the
//!   CI perf smoke uses this to keep the job fast.
//! * `PRE_SIM_SPEED_UOPS` — committed-micro-op budget per cell (default
//!   20 000).
//! * `PRE_SIM_SPEED_REFERENCE` — set non-empty to benchmark the reference
//!   (scan-based, no fast-forward) scheduler instead of the event-driven
//!   one, for before/after comparisons.
//! * `PRE_BENCH_SAMPLES` — timed repetitions per cell (default 3).
//! * `PRE_BENCH_JSON` — when set, additionally writes an aggregate
//!   `BENCH_sim_speed.json` (one record per cell with median time and
//!   derived rates) into the given directory (`1`/`true` = current
//!   directory), next to the per-bench JSON the other benches emit.
//! * `PRE_SIM_SPEED_SWEEP` — set to `0`/`false` to skip the sweep-mode
//!   section (cold vs warm-forked vs cache-hit points per second).
//! * `PRE_SIM_SPEED_SAMPLING` — set to `0`/`false` to skip the sampled-
//!   simulation section (full detailed run vs SimPoint-style estimate).
//! * `PRE_SIM_SPEED_SAMPLING_UOPS` — committed-micro-op budget of the
//!   sampling section's long-horizon cells (default 240 000).

use pre_model::config::SimConfig;
use pre_runahead::Technique;
use pre_sim::experiments::Suite;
use pre_sim::runner::{run_one, RunResult, RunSpec};
use pre_sim::sample::SampleSpec;
use pre_sim::stores::clear_stores;
use pre_sim::sweep::{cache_hit_rate, GridDim, Sweep};
use pre_workloads::Workload;
use std::time::{Duration, Instant};

struct CellReport {
    workload: &'static str,
    technique: &'static str,
    uops: u64,
    cycles: u64,
    median: Duration,
    samples_ns: Vec<u128>,
}

impl CellReport {
    fn uops_per_sec(&self) -> f64 {
        self.uops as f64 / self.median.as_secs_f64().max(1e-12)
    }

    fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.median.as_secs_f64().max(1e-12)
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Parses `PRE_SIM_SPEED_CELLS` into (workload, technique) pairs; `None`
/// means "the whole mixed matrix".
fn cell_filter() -> Option<Vec<(Workload, Technique)>> {
    let raw = std::env::var("PRE_SIM_SPEED_CELLS").ok()?;
    let mut cells = Vec::new();
    for item in raw.split(',').filter(|s| !s.trim().is_empty()) {
        let (workload_name, technique_name) = item.trim().split_once(':').unwrap_or_else(|| {
            panic!("PRE_SIM_SPEED_CELLS item `{item}` is not workload:technique")
        });
        let workload = Suite::Mixed
            .workloads()
            .into_iter()
            .find(|w| w.name() == workload_name.trim())
            .unwrap_or_else(|| panic!("unknown workload `{workload_name}`"));
        let technique: Technique = technique_name
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("{e}"));
        cells.push((workload, technique));
    }
    Some(cells)
}

fn bench_cell(spec: &RunSpec, samples: usize) -> (RunResult, Vec<Duration>) {
    // One untimed warm-up run also supplies the uop/cycle counts.
    let reference = run_one(spec).expect("cell runs");
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        let result = std::hint::black_box(run_one(spec).expect("cell runs"));
        times.push(start.elapsed());
        assert_eq!(
            result.stats.cycles, reference.stats.cycles,
            "simulation must be deterministic"
        );
    }
    (reference, times)
}

/// Sweep-mode throughput: the three ways a parameter sweep can answer one
/// point, each as points per second over a real grid.
struct SweepReport {
    /// Points in the snapshot-forking grid.
    fork_points: usize,
    fork_warmup_uops: u64,
    fork_budget_uops: u64,
    /// Per-point cold simulation (warm-up simulated in detail every point).
    cold_secs: f64,
    /// One shared functional warm-up snapshot, forked per point.
    forked_secs: f64,
    /// Points in the memoization grid.
    memo_points: usize,
    memo_budget_uops: u64,
    /// First (cache-populating) run of the memoization grid.
    memo_cold_secs: f64,
    /// Repeated run answered from the result cache.
    memo_hit_secs: f64,
    /// Cache hit rate of the repeated run (expected 1.0).
    memo_hit_rate: f64,
}

impl SweepReport {
    fn forked_speedup(&self) -> f64 {
        self.cold_secs / self.forked_secs.max(1e-12)
    }

    fn memo_speedup(&self) -> f64 {
        self.memo_cold_secs / self.memo_hit_secs.max(1e-12)
    }
}

/// Benchmarks the sweep engine: a 20-point grid run per-point-cold vs from
/// one shared warm-up snapshot, and a 100-point grid run cold vs answered
/// from the result cache.
fn bench_sweeps() -> SweepReport {
    let fork_warmup = 40_000;
    let fork_budget = 4_000;
    // 4 × 5 = 20 points; EMQ/ROB sizing shares one warmed state per
    // memory-hierarchy config, so the whole grid forks a single snapshot.
    let grid_emq: GridDim = "emq=192,384,768,1536".parse().expect("grid");
    let grid_rob: GridDim = "rob=128,160,192,224,256".parse().expect("grid");
    let mut fork_sweep = Sweep::new(Workload::LbmLike, Technique::PreEmq)
        .with_dim(grid_emq.clone())
        .with_dim(grid_rob.clone());

    // Per-point cold: no snapshot, every point simulates warm-up + budget in
    // the detailed model.
    fork_sweep.budget = fork_warmup + fork_budget;
    fork_sweep.warmup_uops = 0;
    clear_stores();
    let start = Instant::now();
    let cold_points = fork_sweep.run(|_| {}).expect("cold sweep runs");
    let cold_secs = start.elapsed().as_secs_f64();

    // Warm-forked: the warm-up runs once on the functional interpreter and
    // every point forks the snapshot, simulating only the budget in detail.
    fork_sweep.budget = fork_budget;
    fork_sweep.warmup_uops = fork_warmup;
    clear_stores();
    let start = Instant::now();
    let forked_points = fork_sweep.run(|_| {}).expect("forked sweep runs");
    let forked_secs = start.elapsed().as_secs_f64();
    assert!(
        cold_points
            .iter()
            .chain(&forked_points)
            .all(|p| !p.result.deadlocked),
        "sweep benchmark cells must not deadlock"
    );

    // Memoization: 4 × 5 × 5 = 100 points, run twice; the second run must
    // answer (almost) entirely from the in-memory result cache.
    let grid_sst: GridDim = "sst=4,8,16,64,256".parse().expect("grid");
    let mut memo_sweep = Sweep::new(Workload::LbmLike, Technique::PreEmq)
        .with_dim(grid_emq)
        .with_dim(grid_rob)
        .with_dim(grid_sst);
    memo_sweep.budget = 3_000;
    memo_sweep.use_result_cache = true;
    clear_stores();
    let start = Instant::now();
    memo_sweep.run(|_| {}).expect("memo sweep runs");
    let memo_cold_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let hits = memo_sweep.run(|_| {}).expect("memo sweep re-runs");
    let memo_hit_secs = start.elapsed().as_secs_f64();

    SweepReport {
        fork_points: cold_points.len(),
        fork_warmup_uops: fork_warmup,
        fork_budget_uops: fork_budget,
        cold_secs,
        forked_secs,
        memo_points: hits.len(),
        memo_budget_uops: memo_sweep.budget,
        memo_cold_secs,
        memo_hit_secs,
        memo_hit_rate: cache_hit_rate(&hits),
    }
}

/// One long-horizon cell of the sampled-simulation section: full detailed
/// run vs SimPoint-style sampled estimate, both timed cold (the sampled
/// time includes the profiling, clustering and snapshot-capture passes).
struct SamplingCellReport {
    workload: &'static str,
    technique: &'static str,
    full_secs: f64,
    sampled_secs: f64,
    full_ipc: f64,
    sampled_ipc: f64,
    coverage: f64,
}

impl SamplingCellReport {
    fn speedup(&self) -> f64 {
        self.full_secs / self.sampled_secs.max(1e-12)
    }

    fn ipc_error(&self) -> f64 {
        (self.sampled_ipc - self.full_ipc).abs() / self.full_ipc.max(1e-12)
    }
}

struct SamplingReport {
    budget_uops: u64,
    spec_label: String,
    runs: Vec<SamplingCellReport>,
}

/// Benchmarks sampled simulation on long-horizon cells: time-to-result and
/// IPC of the full detailed run vs the SimPoint-style estimate. The error
/// bound itself is enforced by the `sampling` integration test; this section
/// records the measured speedup/error pair the README table quotes.
fn bench_sampling(config: &SimConfig) -> SamplingReport {
    let budget = env_usize("PRE_SIM_SPEED_SAMPLING_UOPS", 240_000) as u64;
    let sample = SampleSpec {
        clusters: 6,
        interval_uops: 6_000,
    };
    let cells: [(Workload, Technique); 2] = [
        ("asm-chase-large".parse().expect("workload"), Technique::Pre),
        ("asm-box-blur".parse().expect("workload"), Technique::Pre),
    ];
    let mut runs = Vec::new();
    for (workload, technique) in cells {
        let full_spec = RunSpec::new(workload, technique)
            .with_budget(budget)
            .with_config(config.clone());
        clear_stores();
        let start = Instant::now();
        let full = run_one(&full_spec).expect("full run");
        let full_secs = start.elapsed().as_secs_f64();

        let mut sampled_spec = full_spec.clone();
        sampled_spec.sample = Some(sample);
        clear_stores();
        let start = Instant::now();
        let sampled = run_one(&sampled_spec).expect("sampled run");
        let sampled_secs = start.elapsed().as_secs_f64();
        let meta = sampled.sample.as_ref().expect("sampling metadata");
        runs.push(SamplingCellReport {
            workload: workload.name(),
            technique: technique.label(),
            full_secs,
            sampled_secs,
            full_ipc: full.ipc(),
            sampled_ipc: sampled.ipc(),
            coverage: meta.coverage(),
        });
    }
    SamplingReport {
        budget_uops: budget,
        spec_label: sample.label(),
        runs,
    }
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(s
        .chars()
        .all(|c| c != '"' && c != '\\' && (c as u32) >= 0x20));
    s
}

fn write_aggregate_json(
    reports: &[CellReport],
    budget: u64,
    reference_scheduler: bool,
    sweep: Option<&SweepReport>,
    sampling: Option<&SamplingReport>,
) {
    let dir = match std::env::var("PRE_BENCH_JSON")
        .ok()
        .as_deref()
        .map(str::trim)
    {
        None | Some("") | Some("0") | Some("false") => return,
        Some("1") | Some("true") => std::path::PathBuf::from("."),
        Some(dir) => std::path::PathBuf::from(dir),
    };
    let mut body = String::new();
    body.push_str("{\n  \"name\": \"sim_speed\",\n");
    body.push_str(&format!("  \"budget_uops\": {budget},\n"));
    body.push_str(&format!(
        "  \"scheduler\": \"{}\",\n",
        if reference_scheduler {
            "reference"
        } else {
            "event"
        }
    ));
    // The sweep section goes *before* the "cells" key: `compare_sim_speed`
    // brace-splits everything after the first "cells" occurrence, so earlier
    // keys (none of which contain the substring "cells") are invisible to it.
    if let Some(s) = sweep {
        body.push_str(&format!(
            concat!(
                "  \"sweep\": {{\n",
                "    \"fork_grid_points\": {}, \"fork_warmup_uops\": {}, \"fork_budget_uops\": {},\n",
                "    \"cold_points_per_sec\": {:.3}, \"forked_points_per_sec\": {:.3}, \"forked_speedup\": {:.3},\n",
                "    \"memo_grid_points\": {}, \"memo_budget_uops\": {},\n",
                "    \"memo_cold_points_per_sec\": {:.3}, \"memo_hit_points_per_sec\": {:.3},\n",
                "    \"memo_speedup\": {:.3}, \"memo_hit_rate\": {:.4}\n",
                "  }},\n"
            ),
            s.fork_points,
            s.fork_warmup_uops,
            s.fork_budget_uops,
            s.fork_points as f64 / s.cold_secs.max(1e-12),
            s.fork_points as f64 / s.forked_secs.max(1e-12),
            s.forked_speedup(),
            s.memo_points,
            s.memo_budget_uops,
            s.memo_points as f64 / s.memo_cold_secs.max(1e-12),
            s.memo_points as f64 / s.memo_hit_secs.max(1e-12),
            s.memo_speedup(),
            s.memo_hit_rate,
        ));
    }
    // Like the sweep section, the sampling section precedes the "cells" key
    // and keeps the substring "cells" out of its key names.
    if let Some(s) = sampling {
        body.push_str(&format!(
            concat!(
                "  \"sampling\": {{\n",
                "    \"sampling_budget_uops\": {}, \"sample_spec\": \"{}\",\n",
                "    \"runs\": [\n"
            ),
            s.budget_uops,
            json_escape_free(&s.spec_label),
        ));
        for (i, r) in s.runs.iter().enumerate() {
            body.push_str(&format!(
                concat!(
                    "      {{\"workload\": \"{}\", \"technique\": \"{}\", ",
                    "\"full_ms\": {:.1}, \"sampled_ms\": {:.1}, \"speedup\": {:.2}, ",
                    "\"full_ipc\": {:.4}, \"sampled_ipc\": {:.4}, ",
                    "\"ipc_error_pct\": {:.2}, \"coverage_pct\": {:.1}}}{}\n"
                ),
                json_escape_free(r.workload),
                json_escape_free(r.technique),
                r.full_secs * 1e3,
                r.sampled_secs * 1e3,
                r.speedup(),
                r.full_ipc,
                r.sampled_ipc,
                r.ipc_error() * 100.0,
                r.coverage * 100.0,
                if i + 1 == s.runs.len() { "" } else { "," },
            ));
        }
        body.push_str("    ]\n  },\n");
    }
    body.push_str("  \"cells\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let samples: Vec<String> = r.samples_ns.iter().map(u128::to_string).collect();
        body.push_str(&format!(
            concat!(
                "    {{\"workload\": \"{}\", \"technique\": \"{}\", ",
                "\"uops\": {}, \"cycles\": {}, \"median_ns\": {}, ",
                "\"uops_per_sec\": {:.1}, \"cycles_per_sec\": {:.1}, ",
                "\"samples_ns\": [{}]}}{}\n"
            ),
            json_escape_free(r.workload),
            json_escape_free(r.technique),
            r.uops,
            r.cycles,
            r.median.as_nanos(),
            r.uops_per_sec(),
            r.cycles_per_sec(),
            samples.join(", "),
            if i + 1 == reports.len() { "" } else { "," },
        ));
    }
    body.push_str("  ]\n}\n");
    let path = dir.join("BENCH_sim_speed.json");
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("could not write {}: {e}", path.display());
    }
}

fn human_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

fn main() {
    let budget = env_usize("PRE_SIM_SPEED_UOPS", 20_000) as u64;
    let samples = env_usize("PRE_BENCH_SAMPLES", 3);
    let reference_scheduler = std::env::var("PRE_SIM_SPEED_REFERENCE")
        .map(|v| !v.trim().is_empty() && v.trim() != "0")
        .unwrap_or(false);
    // Default cells come from the canonical matrix iterator shared with
    // `quick_check` and the stat binaries, so cell orderings agree.
    let cells = cell_filter().unwrap_or_else(|| Suite::Mixed.cells().collect());
    let mut config = SimConfig::haswell_like();
    config.core.reference_scheduler = reference_scheduler;

    println!(
        "== sim_speed ({} cells, {budget} uops per cell, {} scheduler)",
        cells.len(),
        if reference_scheduler {
            "reference"
        } else {
            "event"
        }
    );
    let mut reports = Vec::with_capacity(cells.len());
    for (workload, technique) in cells {
        let spec = RunSpec::new(workload, technique)
            .with_budget(budget)
            .with_config(config.clone());
        let (result, times) = bench_cell(&spec, samples);
        let mut sorted = times.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let report = CellReport {
            workload: workload.name(),
            technique: technique.label(),
            uops: result.stats.committed_uops,
            cycles: result.stats.cycles,
            median,
            samples_ns: times.iter().map(Duration::as_nanos).collect(),
        };
        println!(
            "{:<18} {:<10} {:>9} uops {:>11} cycles  med {:>9.3} ms  {:>10} uops/s  {:>10} cycles/s",
            report.workload,
            report.technique,
            report.uops,
            report.cycles,
            median.as_secs_f64() * 1e3,
            human_rate(report.uops_per_sec()),
            human_rate(report.cycles_per_sec()),
        );
        reports.push(report);
    }
    let total_uops: u64 = reports.iter().map(|r| r.uops * samples as u64).sum();
    let total_time: f64 = reports
        .iter()
        .flat_map(|r| r.samples_ns.iter())
        .map(|&ns| ns as f64 / 1e9)
        .sum();
    println!(
        "aggregate: {} timed uops in {total_time:.2} s -> {} uops/s",
        total_uops,
        human_rate(total_uops as f64 / total_time.max(1e-12)),
    );
    let run_sweeps = std::env::var("PRE_SIM_SPEED_SWEEP")
        .map(|v| !matches!(v.trim(), "0" | "false"))
        .unwrap_or(true);
    let sweep = if run_sweeps {
        let s = bench_sweeps();
        println!(
            "sweep (fork, {} points, warmup {} + budget {}): cold {:.1} points/s, \
             warm-forked {:.1} points/s ({:.2}x)",
            s.fork_points,
            s.fork_warmup_uops,
            s.fork_budget_uops,
            s.fork_points as f64 / s.cold_secs.max(1e-12),
            s.fork_points as f64 / s.forked_secs.max(1e-12),
            s.forked_speedup(),
        );
        println!(
            "sweep (memo, {} points, budget {}): cold {:.1} points/s, \
             cache-hit {:.1} points/s ({:.0}x, hit rate {:.1}%)",
            s.memo_points,
            s.memo_budget_uops,
            s.memo_points as f64 / s.memo_cold_secs.max(1e-12),
            s.memo_points as f64 / s.memo_hit_secs.max(1e-12),
            s.memo_speedup(),
            s.memo_hit_rate * 100.0,
        );
        Some(s)
    } else {
        None
    };
    let run_sampling = std::env::var("PRE_SIM_SPEED_SAMPLING")
        .map(|v| !matches!(v.trim(), "0" | "false"))
        .unwrap_or(true);
    let sampling = if run_sampling {
        let s = bench_sampling(&config);
        for r in &s.runs {
            println!(
                "sampling ({} uops, {}): {:<18} {:<4} full {:>8.1} ms  sampled {:>8.1} ms \
                 ({:.2}x)  ipc {:.4} vs ~{:.4} (error {:.2}%, coverage {:.1}%)",
                s.budget_uops,
                s.spec_label,
                r.workload,
                r.technique,
                r.full_secs * 1e3,
                r.sampled_secs * 1e3,
                r.speedup(),
                r.full_ipc,
                r.sampled_ipc,
                r.ipc_error() * 100.0,
                r.coverage * 100.0,
            );
        }
        Some(s)
    } else {
        None
    };
    write_aggregate_json(
        &reports,
        budget,
        reference_scheduler,
        sweep.as_ref(),
        sampling.as_ref(),
    );
}
