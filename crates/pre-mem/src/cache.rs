//! Set-associative write-back cache with LRU replacement.
//!
//! Lines carry a `ready_at` timestamp (the cycle the fill completes) so that
//! accesses arriving while a fill is in flight are treated as secondary
//! misses, and a `prefetched` bit used to attribute useful runahead
//! prefetches.

use crate::hierarchy::HitLevel;
use pre_model::config::CacheConfig;

/// One cache line's metadata.
#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Set when the line was installed by a (runahead) prefetch and has not
    /// yet been referenced by a demand access.
    prefetched: bool,
    /// Cycle at which the fill that installed this line completes.
    ready_at: u64,
    /// Level the data was sourced from when the line was installed.
    fill_level: HitLevel,
    /// LRU timestamp (higher = more recent).
    lru: u64,
}

impl Line {
    fn invalid() -> Self {
        Line {
            tag: 0,
            valid: false,
            dirty: false,
            prefetched: false,
            ready_at: 0,
            fill_level: HitLevel::L1,
            lru: 0,
        }
    }
}

/// Result of probing a cache for a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeResult {
    /// Cycle at which the line's data is available (fills in flight make this
    /// later than "now").
    pub ready_at: u64,
    /// Level the line was originally filled from.
    pub fill_level: HitLevel,
    /// The access consumed a not-yet-demand-referenced prefetched line.
    pub first_use_of_prefetch: bool,
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Byte address of the start of the evicted line.
    pub line_addr: u64,
    /// Whether the evicted line was dirty (requires a write-back).
    pub dirty: bool,
}

/// Per-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses (demand + prefetch + write).
    pub accesses: u64,
    /// Misses (line absent at access time).
    pub misses: u64,
    /// Fills installed.
    pub fills: u64,
    /// Dirty evictions (write-backs generated).
    pub writebacks: u64,
    /// Demand accesses that were the first use of a prefetched line.
    pub useful_prefetches: u64,
}

/// Set-associative write-back cache with true-LRU replacement.
///
/// Lines are stored in one flat slice (set-major, way-minor) so a probe
/// walks `assoc` contiguous entries instead of chasing a per-set `Vec`
/// pointer.
#[derive(Debug, Clone)]
pub struct Cache {
    name: &'static str,
    cfg: CacheConfig,
    /// All lines, flattened: set `s` occupies `lines[s * assoc .. (s + 1) * assoc]`.
    lines: Box<[Line]>,
    num_sets: usize,
    lru_clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CacheConfig::validate`]; validate
    /// configurations before constructing the hierarchy.
    pub fn new(name: &'static str, cfg: CacheConfig) -> Self {
        cfg.validate(name).expect("invalid cache configuration");
        let num_sets = cfg.num_sets();
        let lines = vec![Line::invalid(); num_sets * cfg.assoc].into_boxed_slice();
        Cache {
            name,
            cfg,
            lines,
            num_sets,
            lru_clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The flat slice holding the lines of set `set`.
    fn set(&self, set: usize) -> &[Line] {
        &self.lines[set * self.cfg.assoc..(set + 1) * self.cfg.assoc]
    }

    /// Mutable flat slice holding the lines of set `set`.
    fn set_mut(&mut self, set: usize) -> &mut [Line] {
        let assoc = self.cfg.assoc;
        &mut self.lines[set * assoc..(set + 1) * assoc]
    }

    /// The cache's configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// The cache's name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Hit latency in cycles.
    pub fn latency(&self) -> u64 {
        self.cfg.latency
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_bytes as u64) % self.num_sets as u64) as usize
    }

    fn tag(&self, addr: u64) -> u64 {
        addr / self.cfg.line_bytes as u64 / self.num_sets as u64
    }

    /// Looks up `addr`, updating LRU state and statistics.
    ///
    /// `is_demand` marks demand accesses (they clear the prefetched bit and
    /// may count a useful prefetch); `mark_dirty` is set for stores.
    /// Returns `None` on a miss.
    pub fn access(&mut self, addr: u64, is_demand: bool, mark_dirty: bool) -> Option<ProbeResult> {
        self.stats.accesses += 1;
        self.lru_clock += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let lru_clock = self.lru_clock;
        let assoc = self.cfg.assoc;
        let line = self.lines[set * assoc..(set + 1) * assoc]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag);
        match line {
            Some(line) => {
                line.lru = lru_clock;
                if mark_dirty {
                    line.dirty = true;
                }
                let first_use_of_prefetch = is_demand && line.prefetched;
                if first_use_of_prefetch {
                    line.prefetched = false;
                    self.stats.useful_prefetches += 1;
                }
                Some(ProbeResult {
                    ready_at: line.ready_at,
                    fill_level: line.fill_level,
                    first_use_of_prefetch,
                })
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Probes for `addr` without updating LRU or statistics.
    pub fn probe(&self, addr: u64) -> Option<ProbeResult> {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        self.set(set)
            .iter()
            .find(|l| l.valid && l.tag == tag)
            .map(|line| ProbeResult {
                ready_at: line.ready_at,
                fill_level: line.fill_level,
                first_use_of_prefetch: false,
            })
    }

    /// Installs the line containing `addr`, evicting the LRU victim if
    /// necessary. Returns the eviction, if a valid line was displaced.
    ///
    /// `ready_at` is the cycle the fill data arrives; `fill_level` records
    /// where the data came from; `prefetched` marks runahead-prefetch fills;
    /// `dirty` pre-dirties the line (stores that allocated on a write miss).
    pub fn fill(
        &mut self,
        addr: u64,
        ready_at: u64,
        fill_level: HitLevel,
        prefetched: bool,
        dirty: bool,
    ) -> Option<Eviction> {
        self.lru_clock += 1;
        self.stats.fills += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        // Refill of an already-present line just refreshes metadata.
        let lru_clock = self.lru_clock;
        if let Some(line) = self
            .set_mut(set)
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.ready_at = line.ready_at.min(ready_at);
            line.dirty |= dirty;
            line.lru = lru_clock;
            return None;
        }
        let victim_idx = self
            .set(set)
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("cache set has at least one way");
        let victim = self.set(set)[victim_idx];
        let eviction = if victim.valid {
            if victim.dirty {
                self.stats.writebacks += 1;
            }
            Some(Eviction {
                line_addr: victim.tag * self.num_sets as u64 * self.cfg.line_bytes as u64
                    + set as u64 * self.cfg.line_bytes as u64,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        self.set_mut(set)[victim_idx] = Line {
            tag,
            valid: true,
            dirty,
            prefetched,
            ready_at,
            fill_level,
            lru: lru_clock,
        };
        eviction
    }

    /// Warm-up lookup: refreshes LRU (and optionally dirtiness) of the line
    /// containing `addr` exactly like [`Cache::access`], but records **no
    /// statistics** — warmed-up state must change what the caches contain,
    /// never what a run reports having done. Returns whether the line was
    /// present.
    pub fn warm_touch(&mut self, addr: u64, mark_dirty: bool) -> bool {
        self.lru_clock += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let lru_clock = self.lru_clock;
        match self
            .set_mut(set)
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            Some(line) => {
                line.lru = lru_clock;
                if mark_dirty {
                    line.dirty = true;
                }
                true
            }
            None => false,
        }
    }

    /// Warm-up install: fills the line containing `addr` exactly like
    /// [`Cache::fill`] — same victim selection, same refill semantics — but
    /// records no statistics, and the line is immediately ready
    /// (`ready_at = 0`, no fill in flight). Returns the eviction, if a valid
    /// line was displaced, so the caller can propagate dirty victims down
    /// the hierarchy.
    pub fn warm_fill(&mut self, addr: u64, fill_level: HitLevel, dirty: bool) -> Option<Eviction> {
        self.lru_clock += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let lru_clock = self.lru_clock;
        if let Some(line) = self
            .set_mut(set)
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.ready_at = 0;
            line.dirty |= dirty;
            line.lru = lru_clock;
            return None;
        }
        let victim_idx = self
            .set(set)
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("cache set has at least one way");
        let victim = self.set(set)[victim_idx];
        let eviction = if victim.valid {
            Some(Eviction {
                line_addr: victim.tag * self.num_sets as u64 * self.cfg.line_bytes as u64
                    + set as u64 * self.cfg.line_bytes as u64,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        self.set_mut(set)[victim_idx] = Line {
            tag,
            valid: true,
            dirty,
            prefetched: false,
            ready_at: 0,
            fill_level,
            lru: lru_clock,
        };
        eviction
    }

    /// Invalidates the line containing `addr`, if present. Returns whether a
    /// line was invalidated.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        if let Some(line) = self
            .set_mut(set)
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.valid = false;
            true
        } else {
            false
        }
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// The start address of the cache line containing `addr`.
    pub fn align(&self, addr: u64) -> u64 {
        self.line_addr(addr)
    }

    /// Byte offset of `addr` within its cache line.
    pub fn line_offset(&self, addr: u64) -> u64 {
        addr & (self.cfg.line_bytes as u64 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::config::CacheConfig;

    fn small_cache() -> Cache {
        // 2 sets x 2 ways x 64 B lines = 256 B.
        Cache::new(
            "test",
            CacheConfig {
                size_bytes: 256,
                assoc: 2,
                line_bytes: 64,
                latency: 2,
                mshrs: 4,
            },
        )
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache();
        assert!(c.access(0x100, true, false).is_none());
        c.fill(0x100, 50, HitLevel::Memory, false, false);
        let hit = c.access(0x100, true, false).expect("line present");
        assert_eq!(hit.ready_at, 50);
        assert_eq!(hit.fill_level, HitLevel::Memory);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().accesses, 2);
    }

    #[test]
    fn same_line_different_words_hit() {
        let mut c = small_cache();
        c.fill(0x100, 0, HitLevel::L2, false, false);
        assert!(c.access(0x13F, true, false).is_some());
        assert!(c.access(0x140, true, false).is_none());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache();
        // Two lines mapping to the same set (stride = line * num_sets = 128).
        c.fill(0x000, 0, HitLevel::L2, false, false);
        c.fill(0x080, 0, HitLevel::L2, false, false);
        // Touch 0x000 so 0x080 becomes LRU.
        c.access(0x000, true, false);
        let ev = c
            .fill(0x100, 0, HitLevel::L2, false, false)
            .expect("eviction");
        assert_eq!(ev.line_addr, 0x080);
        assert!(c.probe(0x000).is_some());
        assert!(c.probe(0x080).is_none());
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small_cache();
        c.fill(0x000, 0, HitLevel::L2, false, false);
        c.access(0x000, true, true); // store marks dirty
        c.fill(0x080, 0, HitLevel::L2, false, false);
        let ev = c
            .fill(0x100, 0, HitLevel::L2, false, false)
            .expect("eviction");
        assert!(ev.dirty);
        assert_eq!(ev.line_addr, 0x000);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn prefetched_line_counts_useful_once() {
        let mut c = small_cache();
        c.fill(0x200, 10, HitLevel::Memory, true, false);
        let first = c.access(0x200, true, false).unwrap();
        assert!(first.first_use_of_prefetch);
        let second = c.access(0x200, true, false).unwrap();
        assert!(!second.first_use_of_prefetch);
        assert_eq!(c.stats().useful_prefetches, 1);
    }

    #[test]
    fn non_demand_access_does_not_consume_prefetch_bit() {
        let mut c = small_cache();
        c.fill(0x200, 10, HitLevel::Memory, true, false);
        let pf = c.access(0x200, false, false).unwrap();
        assert!(!pf.first_use_of_prefetch);
        let demand = c.access(0x200, true, false).unwrap();
        assert!(demand.first_use_of_prefetch);
    }

    #[test]
    fn refill_of_present_line_does_not_evict() {
        let mut c = small_cache();
        c.fill(0x000, 100, HitLevel::Memory, false, false);
        assert!(c.fill(0x000, 50, HitLevel::L2, false, false).is_none());
        // ready_at keeps the earlier completion.
        assert_eq!(c.probe(0x000).unwrap().ready_at, 50);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache();
        c.fill(0x000, 0, HitLevel::L2, false, false);
        assert!(c.invalidate(0x000));
        assert!(!c.invalidate(0x000));
        assert!(c.probe(0x000).is_none());
    }

    #[test]
    fn resident_lines_never_exceed_capacity() {
        let mut c = small_cache();
        for i in 0..100u64 {
            c.fill(i * 64, 0, HitLevel::L2, false, false);
        }
        assert!(c.resident_lines() <= 4);
    }

    #[test]
    fn align_masks_offset_bits() {
        let c = small_cache();
        assert_eq!(c.align(0x1234), 0x1200);
    }

    #[test]
    fn warm_fill_and_touch_record_no_stats() {
        let mut c = small_cache();
        assert!(!c.warm_touch(0x100, false));
        c.warm_fill(0x100, HitLevel::Memory, false);
        assert!(c.warm_touch(0x100, true));
        assert_eq!(c.stats(), CacheStats::default());
        // Line is resident, immediately ready and dirty.
        let probe = c.probe(0x100).expect("warmed line present");
        assert_eq!(probe.ready_at, 0);
        // A later detailed-mode store eviction writes the dirty line back.
        c.warm_fill(0x180, HitLevel::L2, false);
        let ev = c.warm_fill(0x200, HitLevel::L2, false).expect("eviction");
        assert_eq!(ev.line_addr, 0x100);
        assert!(ev.dirty);
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn warm_fill_matches_fill_replacement_behavior() {
        // Same fill/touch sequence through the warm and the detailed APIs
        // must leave the same lines resident.
        let mut warm = small_cache();
        let mut cold = small_cache();
        let seq: &[u64] = &[0x000, 0x080, 0x100, 0x000, 0x180, 0x080];
        for &addr in seq {
            if !warm.warm_touch(addr, false) {
                warm.warm_fill(addr, HitLevel::Memory, false);
            }
            if cold.access(addr, true, false).is_none() {
                cold.fill(addr, 0, HitLevel::Memory, false, false);
            }
        }
        for &addr in seq {
            assert_eq!(
                warm.probe(addr).is_some(),
                cold.probe(addr).is_some(),
                "residency diverged at {addr:#x}"
            );
        }
    }
}
