//! Miss-status holding registers (MSHRs).
//!
//! Each cache level owns an MSHR file that tracks outstanding fills.
//! Secondary misses to the same line merge with the primary miss and
//! complete at the same cycle; when the file is full, new misses are delayed
//! until the earliest outstanding fill completes. The MSHR capacity is what
//! bounds the memory-level parallelism a core (or runahead mode) can expose.

/// An MSHR file: a bounded set of outstanding line fills.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// `(line address, completion cycle)` for each outstanding fill.
    entries: Vec<(u64, u64)>,
    /// Peak simultaneous occupancy observed (for reporting).
    peak_occupancy: usize,
    /// Number of requests that found the file full and were delayed.
    full_delays: u64,
    /// Number of secondary misses merged into an existing entry.
    merges: u64,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
            peak_occupancy: 0,
            full_delays: 0,
            merges: 0,
        }
    }

    /// Removes entries whose fills completed at or before `now`.
    pub fn expire(&mut self, now: u64) {
        self.entries.retain(|&(_, done)| done > now);
    }

    /// Returns the completion cycle of an outstanding fill for `line_addr`,
    /// if one exists, and counts a merge.
    pub fn merge(&mut self, line_addr: u64, now: u64) -> Option<u64> {
        self.expire(now);
        let hit = self
            .entries
            .iter()
            .find(|&&(line, _)| line == line_addr)
            .map(|&(_, done)| done);
        if hit.is_some() {
            self.merges += 1;
        }
        hit
    }

    /// `true` if no free entry is available at `now`.
    pub fn is_full(&mut self, now: u64) -> bool {
        self.expire(now);
        self.entries.len() >= self.capacity
    }

    /// The earliest cycle at which an entry frees up (only meaningful when
    /// the file is full). Returns `now` when the file has free entries.
    pub fn next_free_cycle(&mut self, now: u64) -> u64 {
        self.expire(now);
        if self.entries.len() < self.capacity {
            now
        } else {
            self.full_delays += 1;
            self.entries
                .iter()
                .map(|&(_, done)| done)
                .min()
                .unwrap_or(now)
        }
    }

    /// Allocates an entry for `line_addr` completing at `completes`.
    ///
    /// Callers must ensure the file is not full at the allocation cycle
    /// (use [`MshrFile::next_free_cycle`] to push the request later).
    ///
    /// # Panics
    ///
    /// Panics if the file is full (internal-consistency bug in the caller).
    pub fn allocate(&mut self, line_addr: u64, now: u64, completes: u64) {
        self.expire(now);
        assert!(
            self.entries.len() < self.capacity,
            "MSHR allocate on a full file"
        );
        self.entries.push((line_addr, completes));
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
    }

    /// Current number of outstanding fills (after expiring completed ones).
    pub fn occupancy(&mut self, now: u64) -> usize {
        self.expire(now);
        self.entries.len()
    }

    /// Highest simultaneous occupancy seen so far.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Number of requests delayed because the file was full.
    pub fn full_delays(&self) -> u64 {
        self.full_delays
    }

    /// Number of secondary misses merged.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_returns_outstanding_completion() {
        let mut m = MshrFile::new(4);
        m.allocate(0x100, 0, 200);
        assert_eq!(m.merge(0x100, 10), Some(200));
        assert_eq!(m.merge(0x140, 10), None);
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn entries_expire_after_completion() {
        let mut m = MshrFile::new(2);
        m.allocate(0x100, 0, 50);
        assert_eq!(m.occupancy(10), 1);
        assert_eq!(m.occupancy(50), 0);
        assert_eq!(m.merge(0x100, 60), None);
    }

    #[test]
    fn full_file_reports_next_free_cycle() {
        let mut m = MshrFile::new(2);
        m.allocate(0x100, 0, 100);
        m.allocate(0x200, 0, 80);
        assert!(m.is_full(10));
        assert_eq!(m.next_free_cycle(10), 80);
        assert!(!m.is_full(90));
        assert_eq!(m.next_free_cycle(90), 90);
        assert_eq!(m.full_delays(), 1);
    }

    #[test]
    fn peak_occupancy_tracks_maximum() {
        let mut m = MshrFile::new(8);
        for i in 0..5u64 {
            m.allocate(i * 64, 0, 100 + i);
        }
        assert_eq!(m.peak_occupancy(), 5);
        assert_eq!(m.occupancy(200), 0);
        assert_eq!(m.peak_occupancy(), 5);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn allocate_on_full_file_panics() {
        let mut m = MshrFile::new(1);
        m.allocate(0x100, 0, 100);
        m.allocate(0x200, 0, 100);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
