//! Memory hierarchy for the PRE simulator.
//!
//! The hierarchy matches Table 1 of the paper: a 32 KB L1 instruction cache,
//! a 32 KB L1 data cache, a private 256 KB L2, a 1 MB last-level cache and
//! DDR3-1600 main memory with 4 ranks, 32 banks and 4 KB row buffers.
//!
//! The model is latency-based and execution-driven: every access resolves to
//! a *completion cycle* computed from the cache level that holds the line,
//! MSHR occupancy (secondary misses merge), DRAM bank/row-buffer state and
//! data-bus occupancy. Lines are installed with a `ready_at` timestamp so
//! that requests overlapping an in-flight fill observe the fill latency —
//! this is what creates memory-level parallelism for runahead prefetches to
//! exploit.
//!
//! # Example
//!
//! ```
//! use pre_model::config::SimConfig;
//! use pre_mem::{AccessKind, MemoryHierarchy};
//!
//! let cfg = SimConfig::haswell_like();
//! let mut mem = MemoryHierarchy::new(&cfg);
//! let miss = mem.load(0x4000, 100, AccessKind::Demand);
//! let hit = mem.load(0x4000, miss.completion_cycle, AccessKind::Demand);
//! assert!(hit.completion_cycle - miss.completion_cycle < miss.latency(100));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod mshr;

pub use cache::{Cache, CacheStats, Eviction};
pub use dram::{Dram, DramStats};
pub use hierarchy::{AccessKind, HitLevel, MemAccess, MemoryHierarchy};
pub use mshr::MshrFile;
