//! DDR3-like main-memory timing model.
//!
//! Matches the last row of Table 1: DDR3-1600 (800 MHz bus), 4 ranks,
//! 32 banks, 4 KB pages (row buffers), a 64-bit data bus and
//! tRP-tCL-tRCD = 11-11-11. The model tracks per-bank open rows and busy
//! windows plus data-bus occupancy, all converted into core cycles, so that
//! bursts of runahead prefetches experience realistic bank-level parallelism
//! and queueing rather than a fixed latency.

use pre_model::config::DramConfig;

/// DRAM activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read requests serviced.
    pub reads: u64,
    /// Write requests serviced.
    pub writes: u64,
    /// Accesses that hit an open row buffer.
    pub row_hits: u64,
    /// Accesses that required an activate (row was closed).
    pub row_misses: u64,
    /// Accesses that required precharge + activate (row conflict).
    pub row_conflicts: u64,
    /// Total queueing delay (cycles spent waiting for bank/bus) accumulated
    /// across requests.
    pub queue_cycles: u64,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// The DRAM device + channel model.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    core_ghz: f64,
    banks: Vec<Bank>,
    bus_busy_until: u64,
    stats: DramStats,
}

impl Dram {
    /// Creates the DRAM model for a core running at `core_ghz` GHz.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero banks.
    pub fn new(cfg: DramConfig, core_ghz: f64) -> Self {
        assert!(cfg.banks > 0, "DRAM must have at least one bank");
        Dram {
            banks: vec![
                Bank {
                    open_row: None,
                    busy_until: 0
                };
                cfg.banks
            ],
            cfg,
            core_ghz,
            bus_busy_until: 0,
            stats: DramStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    fn to_core(&self, bus_cycles: u64) -> u64 {
        self.cfg.bus_to_core_cycles(self.core_ghz, bus_cycles)
    }

    fn bank_and_row(&self, line_addr: u64) -> (usize, u64) {
        let row = line_addr / self.cfg.page_bytes as u64;
        // Permutation-based bank interleaving: fold higher row bits into the
        // bank index so that regular region strides (arrays allocated at
        // power-of-two offsets) do not all collapse onto one bank.
        let hashed = row ^ (row >> 5) ^ (row >> 11) ^ (row >> 17);
        let bank = (hashed % self.cfg.banks as u64) as usize;
        (bank, row)
    }

    /// Issues a request for the line at `line_addr` arriving at core cycle
    /// `now`. Returns the core cycle at which the data transfer completes.
    ///
    /// `is_write` distinguishes write-backs (they occupy the bank and bus but
    /// callers typically ignore the completion time).
    pub fn access(&mut self, line_addr: u64, now: u64, is_write: bool) -> u64 {
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let (bank_idx, row) = self.bank_and_row(line_addr);
        let bank = self.banks[bank_idx];

        // The command can start once the bank is free.
        let start = now.max(bank.busy_until);

        // Row-buffer state machine (open-page policy).
        let access_bus_cycles = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                self.cfg.t_cl
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cl
            }
            None => {
                self.stats.row_misses += 1;
                self.cfg.t_rcd + self.cfg.t_cl
            }
        };
        let access_done = start + self.to_core(access_bus_cycles);

        // Data burst on the shared channel: DDR transfers two beats per bus
        // cycle, so a burst of `burst_length` beats takes burst_length / 2
        // bus cycles.
        let burst_core = self.to_core(self.cfg.burst_length.div_ceil(2));
        let burst_start = access_done.max(self.bus_busy_until);
        // Controller overhead (queue arbitration, scheduling, I/O) delays the
        // data return but does not occupy the bank or the data bus.
        let done = burst_start + burst_core + self.to_core(self.cfg.t_controller);

        self.stats.queue_cycles += (start - now) + (burst_start - access_done);
        self.bus_busy_until = burst_start + burst_core;
        // The bank is free to accept the next column command once the access
        // completes; the data burst only occupies the shared bus.
        self.banks[bank_idx] = Bank {
            open_row: Some(row),
            busy_until: access_done,
        };
        done
    }

    /// Unloaded (isolated, row-closed) read latency in core cycles; useful
    /// for calibrating expectations in tests.
    pub fn unloaded_latency(&self) -> u64 {
        self.to_core(self.cfg.t_rcd + self.cfg.t_cl)
            + self.to_core(self.cfg.burst_length.div_ceil(2))
            + self.to_core(self.cfg.t_controller)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default(), 2.66)
    }

    #[test]
    fn unloaded_latency_in_expected_range() {
        let d = dram();
        let lat = d.unloaded_latency();
        // Array timing (~22 bus cycles) plus burst plus the controller
        // overhead: together with the L1/L2/L3 lookup latencies this puts an
        // isolated LLC miss at "a couple hundred cycles" as the paper states.
        assert!(lat > 150 && lat < 300, "unexpected unloaded latency {lat}");
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut d = dram();
        let first = d.access(0x10_000, 0, false);
        // Same row, issued long after the first completes: row hit.
        let second_start = first + 1000;
        let second = d.access(0x10_040, second_start, false) - second_start;
        assert!(
            second < first,
            "row hit {second} should beat cold access {first}"
        );
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn row_conflict_is_slowest() {
        let mut d = dram();
        let cfg = DramConfig::default();
        // Row 0 maps to bank 0; row 33 also maps to bank 0 under the
        // permutation-based interleaving (33 ^ (33 >> 5) = 32 ≡ 0 mod 32).
        let conflicting_row = 33 * cfg.page_bytes as u64;
        let t0 = d.access(0x0, 0, false);
        // Different row, same bank, long after: conflict (needs precharge).
        let start = t0 + 1000;
        let conflict = d.access(conflicting_row, start, false) - start;
        assert!(conflict > t0, "conflict {conflict} should exceed cold {t0}");
        assert_eq!(d.stats().row_conflicts, 1);
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = dram();
        let cfg = DramConfig::default();
        // Two requests to different banks issued at the same cycle should
        // overlap: the second finishes well before 2x the isolated latency.
        let a = d.access(0, 0, false);
        let b = d.access(cfg.page_bytes as u64, 0, false);
        assert!(b < a * 2, "bank parallelism missing: {a} then {b}");
    }

    #[test]
    fn same_bank_requests_serialize() {
        let mut d = dram();
        let a = d.access(0, 0, false);
        let b = d.access(64, 0, false);
        assert!(b > a, "same-bank back-to-back requests must serialize");
        assert!(d.stats().queue_cycles > 0);
    }

    #[test]
    fn writes_are_counted() {
        let mut d = dram();
        d.access(0, 0, true);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 0);
    }
}
