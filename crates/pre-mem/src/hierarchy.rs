//! The three-level cache hierarchy plus DRAM.
//!
//! [`MemoryHierarchy`] is the single entry point the core uses for
//! instruction fetches, demand loads, committed stores and runahead
//! prefetches. Every access returns a [`MemAccess`] carrying the completion
//! cycle and the level that supplied the data; loads supplied by DRAM are the
//! *long-latency loads* that trigger full-window stalls and runahead
//! execution.

use crate::cache::Cache;
use crate::dram::Dram;
use crate::mshr::MshrFile;
use pre_model::config::SimConfig;
use pre_model::stats::SimStats;

/// The level of the hierarchy that satisfied an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitLevel {
    /// L1 instruction or data cache.
    L1,
    /// Private L2.
    L2,
    /// Shared last-level cache.
    L3,
    /// Off-chip DRAM (an LLC miss — a long-latency access).
    Memory,
}

impl HitLevel {
    /// `true` when the access had to go off chip.
    pub fn is_long_latency(&self) -> bool {
        matches!(self, HitLevel::Memory)
    }
}

/// The intent of a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A demand access from normal-mode execution.
    Demand,
    /// A non-binding prefetch issued from runahead mode.
    Prefetch,
}

/// The outcome of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Core cycle at which the data is available to the requester.
    pub completion_cycle: u64,
    /// Hierarchy level that supplied (or is supplying) the data.
    pub level: HitLevel,
    /// The access was the first demand use of a line installed by a
    /// prefetch — used to attribute useful runahead prefetches.
    pub first_use_of_prefetch: bool,
    /// This access started a new DRAM fill (it was not satisfied by a cache
    /// or merged into an already in-flight fill). Runahead loads with this
    /// flag are the prefetches the paper counts.
    pub initiated_dram_fill: bool,
}

impl MemAccess {
    /// Latency observed by a request issued at `issued_at`.
    pub fn latency(&self, issued_at: u64) -> u64 {
        self.completion_cycle.saturating_sub(issued_at)
    }
}

/// Which L1 a request enters through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryPoint {
    Instruction,
    Data,
}

/// Combines the two halves of a line-crossing access: the requester waits
/// for the later half, the worse hit level is reported, and fill/prefetch
/// attribution is the union of both halves.
fn merge_split_access(a: MemAccess, b: MemAccess) -> MemAccess {
    MemAccess {
        completion_cycle: a.completion_cycle.max(b.completion_cycle),
        level: a.level.max(b.level),
        first_use_of_prefetch: a.first_use_of_prefetch || b.first_use_of_prefetch,
        initiated_dram_fill: a.initiated_dram_fill || b.initiated_dram_fill,
    }
}

/// The full memory hierarchy: L1I, L1D, L2, L3 and DRAM.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    l1i_mshr: MshrFile,
    l1d_mshr: MshrFile,
    l2_mshr: MshrFile,
    l3_mshr: MshrFile,
    dram: Dram,
    prefetch_fill_l1: bool,
    prefetches_issued: u64,
    demand_loads: u64,
    demand_stores: u64,
    ifetches: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if any cache geometry in `cfg` is invalid; call
    /// [`SimConfig::validate`] first.
    pub fn new(cfg: &SimConfig) -> Self {
        MemoryHierarchy {
            l1i: Cache::new("l1i", cfg.l1i),
            l1d: Cache::new("l1d", cfg.l1d),
            l2: Cache::new("l2", cfg.l2),
            l3: Cache::new("l3", cfg.l3),
            l1i_mshr: MshrFile::new(cfg.l1i.mshrs),
            l1d_mshr: MshrFile::new(cfg.l1d.mshrs),
            l2_mshr: MshrFile::new(cfg.l2.mshrs),
            l3_mshr: MshrFile::new(cfg.l3.mshrs),
            dram: Dram::new(cfg.dram, cfg.core.freq_ghz),
            prefetch_fill_l1: cfg.runahead.prefetch_fill_l1,
            prefetches_issued: 0,
            demand_loads: 0,
            demand_stores: 0,
            ifetches: 0,
        }
    }

    /// Issues a data-side load. `kind` distinguishes demand loads from
    /// runahead prefetches (prefetches optionally skip the L1 fill and set
    /// the prefetched bit on installed lines).
    pub fn load(&mut self, addr: u64, now: u64, kind: AccessKind) -> MemAccess {
        match kind {
            AccessKind::Demand => self.demand_loads += 1,
            AccessKind::Prefetch => self.prefetches_issued += 1,
        }
        self.walk(addr, now, EntryPoint::Data, kind, false)
    }

    /// Issues a committed store (write-allocate, write-back). The returned
    /// completion is when the line is owned; commit does not wait for it.
    pub fn store(&mut self, addr: u64, now: u64) -> MemAccess {
        self.demand_stores += 1;
        self.walk(addr, now, EntryPoint::Data, AccessKind::Demand, true)
    }

    /// `true` when the byte range `[addr, addr + len)` spans more than one
    /// L1D cache line (line offsets are byte-addressed; naturally aligned
    /// accesses of up to 8 bytes never span a 64-byte line).
    pub fn spans_data_lines(&self, addr: u64, len: u64) -> bool {
        len > 0 && self.l1d.line_offset(addr) + len > self.l1d.config().line_bytes as u64
    }

    /// Issues a data-side load for the byte range `[addr, addr + len)`.
    ///
    /// A range contained in one cache line (the only shape the pipeline
    /// produces, since effective addresses are naturally aligned) is a
    /// single [`MemoryHierarchy::load`]; a line-crossing range walks both
    /// lines and completes when the later half arrives.
    pub fn load_range(&mut self, addr: u64, len: u64, now: u64, kind: AccessKind) -> MemAccess {
        let first = self.load(addr, now, kind);
        if !self.spans_data_lines(addr, len) {
            return first;
        }
        let second_line = self.l1d.align(addr) + self.l1d.config().line_bytes as u64;
        let second = self.load(second_line, now, kind);
        merge_split_access(first, second)
    }

    /// Issues a committed store for the byte range `[addr, addr + len)`,
    /// touching both lines when the range crosses a line boundary.
    pub fn store_range(&mut self, addr: u64, len: u64, now: u64) -> MemAccess {
        let first = self.store(addr, now);
        if !self.spans_data_lines(addr, len) {
            return first;
        }
        let second_line = self.l1d.align(addr) + self.l1d.config().line_bytes as u64;
        let second = self.store(second_line, now);
        merge_split_access(first, second)
    }

    /// Issues an instruction fetch for the line containing `addr`.
    pub fn ifetch(&mut self, addr: u64, now: u64) -> MemAccess {
        self.ifetches += 1;
        self.walk(
            addr,
            now,
            EntryPoint::Instruction,
            AccessKind::Demand,
            false,
        )
    }

    /// Warm-up data access: walks the hierarchy with the same inclusion,
    /// replacement and dirty-victim propagation as a demand access, but
    /// records no statistics, allocates no MSHRs and leaves no fill in
    /// flight (all warmed lines are immediately ready). This is how a
    /// [`pre_model::snapshot::WarmTrace`] turns into warmed cache contents
    /// for an arbitrary hierarchy geometry.
    pub fn warm_data(&mut self, addr: u64, is_store: bool) {
        if self.l1d.warm_touch(addr, is_store) {
            return;
        }
        let level = if self.l2.warm_touch(addr, false) {
            HitLevel::L2
        } else {
            let level = if self.l3.warm_touch(addr, false) {
                HitLevel::L3
            } else {
                self.l3.warm_fill(addr, HitLevel::Memory, false);
                HitLevel::Memory
            };
            if let Some(ev) = self.l2.warm_fill(addr, level, false) {
                if ev.dirty {
                    self.l3.warm_fill(ev.line_addr, HitLevel::L2, true);
                }
            }
            level
        };
        if let Some(ev) = self.l1d.warm_fill(addr, level, is_store) {
            if ev.dirty {
                self.l2.warm_fill(ev.line_addr, HitLevel::L1, true);
            }
        }
    }

    /// Warm-up instruction fetch: like [`MemoryHierarchy::warm_data`] but
    /// entering through the L1 instruction cache (never dirty).
    pub fn warm_ifetch(&mut self, addr: u64) {
        if self.l1i.warm_touch(addr, false) {
            return;
        }
        let level = if self.l2.warm_touch(addr, false) {
            HitLevel::L2
        } else {
            let level = if self.l3.warm_touch(addr, false) {
                HitLevel::L3
            } else {
                self.l3.warm_fill(addr, HitLevel::Memory, false);
                HitLevel::Memory
            };
            if let Some(ev) = self.l2.warm_fill(addr, level, false) {
                if ev.dirty {
                    self.l3.warm_fill(ev.line_addr, HitLevel::L2, true);
                }
            }
            level
        };
        self.l1i.warm_fill(addr, level, false);
    }

    /// Replays a warm-up trace in program order, deriving this geometry's
    /// warmed cache contents. Statistics stay at zero; only tags, LRU order
    /// and dirty bits change.
    pub fn warm_replay(&mut self, trace: &pre_model::snapshot::WarmTrace) {
        for event in &trace.events {
            match *event {
                pre_model::snapshot::WarmEvent::Ifetch(addr) => self.warm_ifetch(addr),
                pre_model::snapshot::WarmEvent::Load(addr) => self.warm_data(addr, false),
                pre_model::snapshot::WarmEvent::Store(addr) => self.warm_data(addr, true),
            }
        }
    }

    fn walk(
        &mut self,
        addr: u64,
        now: u64,
        entry: EntryPoint,
        kind: AccessKind,
        is_store: bool,
    ) -> MemAccess {
        let demand = kind == AccessKind::Demand;
        let prefetched = kind == AccessKind::Prefetch;

        // ---- level 1 -------------------------------------------------------
        let (l1, l1_mshr) = match entry {
            EntryPoint::Instruction => (&mut self.l1i, &mut self.l1i_mshr),
            EntryPoint::Data => (&mut self.l1d, &mut self.l1d_mshr),
        };
        let l1_latency = l1.latency();
        let l1_line = l1.align(addr);
        let l1_done = now + l1_latency;
        if let Some(p) = l1.access(addr, demand, is_store) {
            let completion = l1_done.max(p.ready_at);
            let level = if p.ready_at > now {
                p.fill_level
            } else {
                HitLevel::L1
            };
            return MemAccess {
                completion_cycle: completion,
                level,
                first_use_of_prefetch: p.first_use_of_prefetch,
                initiated_dram_fill: false,
            };
        }
        // L1 miss: request proceeds to L2 once an L1 MSHR is available.
        let l2_start = l1_mshr.next_free_cycle(now).max(now) + l1_latency;

        // ---- level 2 -------------------------------------------------------
        let l2_latency = self.l2.latency();
        let l2_done = l2_start + l2_latency;
        let (completion, level, first_use, initiated) =
            if let Some(p) = self.l2.access(addr, demand, false) {
                let completion = l2_done.max(p.ready_at);
                let level = if p.ready_at > l2_start {
                    p.fill_level
                } else {
                    HitLevel::L2
                };
                (completion, level, p.first_use_of_prefetch, false)
            } else {
                let l3_start = self.l2_mshr.next_free_cycle(l2_start).max(l2_start) + l2_latency;

                // ---- level 3 ---------------------------------------------------
                let l3_latency = self.l3.latency();
                let l3_done = l3_start + l3_latency;
                let (completion, level, first_use, initiated) =
                    if let Some(p) = self.l3.access(addr, demand, false) {
                        let completion = l3_done.max(p.ready_at);
                        let level = if p.ready_at > l3_start {
                            p.fill_level
                        } else {
                            HitLevel::L3
                        };
                        (completion, level, p.first_use_of_prefetch, false)
                    } else {
                        // ---- DRAM --------------------------------------------------
                        let dram_start =
                            self.l3_mshr.next_free_cycle(l3_start).max(l3_start) + l3_latency;
                        let line = self.l3.align(addr);
                        let completion = self.dram.access(line, dram_start, false);
                        if !self.l3_mshr.is_full(l3_start) {
                            self.l3_mshr.allocate(line, l3_start, completion);
                        }
                        if let Some(ev) =
                            self.l3
                                .fill(addr, completion, HitLevel::Memory, prefetched, false)
                        {
                            if ev.dirty {
                                self.dram.access(ev.line_addr, completion, true);
                            }
                        }
                        (completion, HitLevel::Memory, false, true)
                    };

                // Fill L2 on the way back; dirty L2 victims are written back to L3.
                if !self.l2_mshr.is_full(l2_start) {
                    self.l2_mshr
                        .allocate(self.l2.align(addr), l2_start, completion);
                }
                if let Some(ev) = self.l2.fill(addr, completion, level, prefetched, false) {
                    if ev.dirty {
                        self.l3
                            .fill(ev.line_addr, completion, HitLevel::L2, false, true);
                    }
                }
                (completion, level, first_use, initiated)
            };

        // Fill L1 on the way back (prefetches may be configured not to).
        let fill_l1 = !prefetched || self.prefetch_fill_l1;
        if fill_l1 {
            let (l1, l1_mshr) = match entry {
                EntryPoint::Instruction => (&mut self.l1i, &mut self.l1i_mshr),
                EntryPoint::Data => (&mut self.l1d, &mut self.l1d_mshr),
            };
            if !l1_mshr.is_full(now) {
                l1_mshr.allocate(l1_line, now, completion);
            }
            if let Some(ev) = l1.fill(addr, completion, level, prefetched, is_store) {
                if ev.dirty {
                    self.l2
                        .fill(ev.line_addr, completion, HitLevel::L1, false, true);
                }
            }
        }

        MemAccess {
            completion_cycle: completion.max(l1_done),
            level,
            first_use_of_prefetch: first_use,
            initiated_dram_fill: initiated,
        }
    }

    /// `true` when the L1 data cache can currently track another outstanding
    /// miss. The issue stage uses this as back-pressure: a load whose line is
    /// not already resident in the L1 must wait for a free MSHR, which bounds
    /// the number of in-flight misses (demand or runahead prefetch) exactly
    /// like real hardware.
    pub fn data_mshr_available(&mut self, now: u64) -> bool {
        !self.l1d_mshr.is_full(now)
    }

    /// `true` when the line containing `addr` is resident in the L1 data
    /// cache (no MSHR needed to access it).
    pub fn in_l1d(&self, addr: u64) -> bool {
        self.l1d.probe(addr).is_some()
    }

    /// Probes whether the line containing `addr` is present in the data-side
    /// hierarchy (any level), without disturbing LRU state or statistics.
    pub fn probe_data(&self, addr: u64) -> Option<HitLevel> {
        if self.l1d.probe(addr).is_some() {
            Some(HitLevel::L1)
        } else if self.l2.probe(addr).is_some() {
            Some(HitLevel::L2)
        } else if self.l3.probe(addr).is_some() {
            Some(HitLevel::L3)
        } else {
            None
        }
    }

    /// Copies cache and DRAM counters into a [`SimStats`] block.
    pub fn export_stats(&self, stats: &mut SimStats) {
        let l1i = self.l1i.stats();
        let l1d = self.l1d.stats();
        let l2 = self.l2.stats();
        let l3 = self.l3.stats();
        let dram = self.dram.stats();
        stats.l1i_accesses = l1i.accesses;
        stats.l1i_misses = l1i.misses;
        stats.l1d_accesses = l1d.accesses;
        stats.l1d_misses = l1d.misses;
        stats.l2_accesses = l2.accesses;
        stats.l2_misses = l2.misses;
        stats.l3_accesses = l3.accesses;
        stats.l3_misses = l3.misses;
        stats.dram_reads = dram.reads;
        stats.dram_writes = dram.writes;
        stats.dram_row_hits = dram.row_hits;
        stats.dram_row_misses = dram.row_misses + dram.row_conflicts;
        stats.runahead_prefetches_useful =
            l1d.useful_prefetches + l2.useful_prefetches + l3.useful_prefetches;
    }

    /// Number of outstanding misses currently tracked by the L1D MSHR file.
    /// Takes `&mut self` only to expire already-completed fills, which every
    /// other MSHR accessor also does — observing the occupancy never changes
    /// simulation outcomes.
    pub fn l1d_mshr_occupancy(&mut self, now: u64) -> usize {
        self.l1d_mshr.occupancy(now)
    }

    /// Capacity of the L1D MSHR file.
    pub fn l1d_mshr_capacity(&self) -> usize {
        self.l1d_mshr.capacity()
    }

    /// Cumulative L2 miss count (for time-series sampling).
    pub fn l2_miss_count(&self) -> u64 {
        self.l2.stats().misses
    }

    /// Cumulative L3 miss count (for time-series sampling).
    pub fn l3_miss_count(&self) -> u64 {
        self.l3.stats().misses
    }

    /// Number of prefetch requests that reached the hierarchy.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    /// Demand load count.
    pub fn demand_loads(&self) -> u64 {
        self.demand_loads
    }

    /// Committed store count.
    pub fn demand_stores(&self) -> u64 {
        self.demand_stores
    }

    /// Instruction-fetch count.
    pub fn ifetches(&self) -> u64 {
        self.ifetches
    }

    /// The L1 data cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.l1d.config().line_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::config::SimConfig;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(&SimConfig::haswell_like())
    }

    #[test]
    fn cold_load_goes_to_memory() {
        let mut m = hierarchy();
        let acc = m.load(0x10_000, 0, AccessKind::Demand);
        assert_eq!(acc.level, HitLevel::Memory);
        assert!(acc.latency(0) > 100, "cold miss latency {}", acc.latency(0));
    }

    #[test]
    fn line_span_detection_is_byte_addressed() {
        let m = hierarchy();
        // 64-byte lines: a naturally aligned access of up to 8 bytes never
        // crosses a line.
        for len in [1u64, 2, 4, 8] {
            let addr = 0x1000 + (64 - len); // last slot of the line
            assert!(!m.spans_data_lines(addr, len), "aligned {len} @ {addr:#x}");
        }
        assert!(m.spans_data_lines(0x103E, 4)); // offset 62, 4 bytes
        assert!(m.spans_data_lines(0x103F, 2));
        assert!(!m.spans_data_lines(0x103F, 1));
    }

    #[test]
    fn range_within_one_line_is_one_access() {
        let mut a = hierarchy();
        let mut b = hierarchy();
        let single = a.load(0x2_0000, 0, AccessKind::Demand);
        let ranged = b.load_range(0x2_0000, 8, 0, AccessKind::Demand);
        assert_eq!(single, ranged);
        let (mut sa, mut sb) = (SimStats::new(), SimStats::new());
        a.export_stats(&mut sa);
        b.export_stats(&mut sb);
        assert_eq!(sa.l1d_accesses, sb.l1d_accesses);
    }

    #[test]
    fn line_crossing_range_touches_both_lines_and_waits_for_the_later() {
        let mut m = hierarchy();
        // Warm the first line only.
        let warm = m.load(0x3_0000, 0, AccessKind::Demand);
        let now = warm.completion_cycle + 1;
        // A (hypothetical, misaligned) 4-byte access at offset 62 touches
        // the warm line and the cold one: the cold half dominates.
        let acc = m.load_range(0x3_003E, 4, now, AccessKind::Demand);
        assert_eq!(acc.level, HitLevel::Memory);
        assert!(acc.latency(now) > 100);
        // Both lines are now resident: a repeat crossing access hits L1.
        let again = m.load_range(0x3_003E, 4, acc.completion_cycle + 1, AccessKind::Demand);
        assert_eq!(again.level, HitLevel::L1);
    }

    #[test]
    fn second_access_hits_l1() {
        let mut m = hierarchy();
        let miss = m.load(0x10_000, 0, AccessKind::Demand);
        let hit = m.load(0x10_000, miss.completion_cycle + 1, AccessKind::Demand);
        assert_eq!(hit.level, HitLevel::L1);
        assert_eq!(hit.latency(miss.completion_cycle + 1), 4);
    }

    #[test]
    fn access_during_inflight_fill_merges() {
        let mut m = hierarchy();
        let miss = m.load(0x10_000, 0, AccessKind::Demand);
        // Another word of the same line, 10 cycles later, while the fill is
        // still in flight: completes when the fill does, reported as Memory.
        let merged = m.load(0x10_020, 10, AccessKind::Demand);
        assert_eq!(merged.level, HitLevel::Memory);
        assert_eq!(merged.completion_cycle, miss.completion_cycle);
    }

    #[test]
    fn prefetch_then_demand_hit_is_useful() {
        let mut m = hierarchy();
        let pf = m.load(0x20_000, 0, AccessKind::Prefetch);
        assert_eq!(pf.level, HitLevel::Memory);
        let demand = m.load(0x20_000, pf.completion_cycle + 1, AccessKind::Demand);
        assert_eq!(demand.level, HitLevel::L1);
        assert!(demand.first_use_of_prefetch);
        let mut stats = SimStats::new();
        m.export_stats(&mut stats);
        assert!(stats.runahead_prefetches_useful >= 1);
    }

    #[test]
    fn prefetch_hides_latency_even_before_fill_completes() {
        let mut m = hierarchy();
        let pf = m.load(0x20_000, 0, AccessKind::Prefetch);
        // Demand arrives halfway through the fill: it should complete when
        // the prefetch fill completes, not a full memory latency later.
        let halfway = pf.completion_cycle / 2;
        let demand = m.load(0x20_000, halfway, AccessKind::Demand);
        assert_eq!(
            demand.completion_cycle,
            pf.completion_cycle.max(halfway + 4)
        );
    }

    #[test]
    fn l2_hit_after_l1_eviction_pressure() {
        let mut m = hierarchy();
        // Bring a line in, then thrash the L1 set with many conflicting lines.
        let target = 0x40_000u64;
        let t = m.load(target, 0, AccessKind::Demand).completion_cycle + 1;
        // L1D: 32KB/8-way/64B = 64 sets -> stride of 64*64 = 4096 bytes maps
        // to the same set. 16 distinct lines evict the 8-way set.
        let mut now = t;
        for i in 1..=16u64 {
            let acc = m.load(target + i * 4096, now, AccessKind::Demand);
            now = acc.completion_cycle + 1;
        }
        let again = m.load(target, now, AccessKind::Demand);
        assert!(matches!(again.level, HitLevel::L2 | HitLevel::L3));
    }

    #[test]
    fn ifetch_uses_instruction_cache() {
        let mut m = hierarchy();
        let first = m.ifetch(0x1000, 0);
        assert_eq!(first.level, HitLevel::Memory);
        let second = m.ifetch(0x1000, first.completion_cycle + 1);
        assert_eq!(second.level, HitLevel::L1);
        assert_eq!(m.ifetches(), 2);
    }

    #[test]
    fn stores_allocate_and_mark_dirty() {
        let mut m = hierarchy();
        let st = m.store(0x30_000, 0);
        assert_eq!(st.level, HitLevel::Memory);
        let ld = m.load(0x30_000, st.completion_cycle + 1, AccessKind::Demand);
        assert_eq!(ld.level, HitLevel::L1);
        assert_eq!(m.demand_stores(), 1);
    }

    #[test]
    fn parallel_misses_overlap() {
        let mut m = hierarchy();
        // Issue 8 independent misses back to back; total time must be far
        // below 8x the isolated latency (memory-level parallelism).
        let isolated = {
            let mut probe = hierarchy();
            probe.load(0x100_000, 0, AccessKind::Demand).latency(0)
        };
        let mut last = 0;
        for i in 0..8u64 {
            let acc = m.load(0x200_000 + i * 8192, i, AccessKind::Demand);
            last = last.max(acc.completion_cycle);
        }
        assert!(
            last < isolated * 4,
            "8 independent misses took {last} cycles vs isolated {isolated}"
        );
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut m = hierarchy();
        assert_eq!(m.probe_data(0x50_000), None);
        let acc = m.load(0x50_000, 0, AccessKind::Demand);
        assert_eq!(m.probe_data(0x50_000), Some(HitLevel::L1));
        let mut s1 = SimStats::new();
        m.export_stats(&mut s1);
        let before = s1.l1d_accesses;
        let _ = m.probe_data(0x50_000);
        let mut s2 = SimStats::new();
        m.export_stats(&mut s2);
        assert_eq!(s2.l1d_accesses, before);
        assert!(acc.completion_cycle > 0);
    }

    #[test]
    fn export_stats_counts_accesses_and_misses() {
        let mut m = hierarchy();
        m.load(0x1000, 0, AccessKind::Demand);
        m.load(0x1000, 500, AccessKind::Demand);
        let mut stats = SimStats::new();
        m.export_stats(&mut stats);
        assert_eq!(stats.l1d_accesses, 2);
        assert_eq!(stats.l1d_misses, 1);
        assert_eq!(stats.l3_misses, 1);
        assert_eq!(stats.dram_reads, 1);
    }

    #[test]
    fn warm_replay_installs_lines_without_stats() {
        use pre_model::snapshot::WarmTrace;
        let mut m = hierarchy();
        let mut trace = WarmTrace::new();
        trace.record_ifetch(0);
        trace.record_load(0x20_000);
        trace.record_store(0x30_000);
        m.warm_replay(&trace);
        // Everything is resident and immediately ready...
        assert_eq!(m.probe_data(0x20_000), Some(HitLevel::L1));
        assert_eq!(m.probe_data(0x30_000), Some(HitLevel::L1));
        // ...and nothing was counted.
        let mut stats = SimStats::new();
        m.export_stats(&mut stats);
        assert_eq!(stats, SimStats::new());
        // A subsequent demand load hits the warmed L1 with hit latency.
        let acc = m.load(0x20_000, 0, AccessKind::Demand);
        assert_eq!(acc.level, HitLevel::L1);
    }
}
