//! Randomized-property tests for the memory hierarchy: cache residency
//! bounds, MSHR bookkeeping, DRAM timing monotonicity and hierarchy-level
//! sanity for arbitrary access streams.
//!
//! Driven by the workspace's deterministic [`pre_model::rng::SmallRng`]
//! instead of proptest (no crates.io access); every case derives from a fixed
//! seed, so failures reproduce exactly.

use pre_mem::{AccessKind, Cache, Dram, HitLevel, MemoryHierarchy, MshrFile};
use pre_model::config::{CacheConfig, DramConfig, SimConfig};
use pre_model::rng::SmallRng;

/// A cache never holds more lines than its capacity, and any line it reports
/// as present was filled and not yet evicted.
#[test]
fn cache_capacity_and_membership() {
    let mut rng = SmallRng::seed_from_u64(0x3E3_0001);
    for _case in 0..64 {
        let len = rng.gen_range_usize(1..300);
        let addrs: Vec<u64> = (0..len).map(|_| rng.gen_range_u64(0..(1 << 16))).collect();
        let cfg = CacheConfig {
            size_bytes: 4096,
            assoc: 4,
            line_bytes: 64,
            latency: 2,
            mshrs: 4,
        };
        let mut cache = Cache::new("prop", cfg);
        let capacity_lines = cfg.size_bytes / cfg.line_bytes;
        let mut resident: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (i, &addr) in addrs.iter().enumerate() {
            let line = addr & !63;
            if let Some(ev) = cache.fill(addr, i as u64, HitLevel::Memory, false, false) {
                resident.remove(&ev.line_addr);
            }
            resident.insert(line);
            assert!(cache.resident_lines() <= capacity_lines);
            assert!(
                cache.probe(addr).is_some(),
                "a just-filled line must be present"
            );
        }
        // Everything the cache reports as resident is in our shadow set.
        for &line in &resident {
            if cache.probe(line).is_some() {
                assert!(resident.contains(&line));
            }
        }
    }
}

/// The MSHR file never exceeds its capacity and merges only lines that are
/// genuinely outstanding.
#[test]
fn mshr_occupancy_is_bounded() {
    let mut rng = SmallRng::seed_from_u64(0x3E3_0002);
    for _case in 0..64 {
        let len = rng.gen_range_usize(1..200);
        let mut mshr = MshrFile::new(8);
        let mut now = 0u64;
        for _ in 0..len {
            let line = rng.gen_range_u64(0..64);
            let latency = rng.gen_range_u64(1..50);
            now += 1;
            let line_addr = line * 64;
            if mshr.merge(line_addr, now).is_none() {
                if mshr.is_full(now) {
                    let free_at = mshr.next_free_cycle(now);
                    assert!(free_at >= now);
                    now = free_at;
                }
                mshr.allocate(line_addr, now, now + latency);
            }
            assert!(mshr.occupancy(now) <= mshr.capacity());
        }
    }
}

/// DRAM completion times never precede the request time, and a request
/// issued later to the same bank never completes earlier than one issued
/// before it (per-bank FIFO-ish service).
#[test]
fn dram_timing_is_monotone() {
    let mut rng = SmallRng::seed_from_u64(0x3E3_0003);
    for _case in 0..64 {
        let len = rng.gen_range_usize(1..100);
        let lines: Vec<u64> = (0..len).map(|_| rng.gen_range_u64(0..512)).collect();
        let mut dram = Dram::new(DramConfig::default(), 2.66);
        let mut last_done_per_bank: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        for (i, &line) in lines.iter().enumerate() {
            let now = (i as u64) * 3;
            let addr = line * 64;
            let done = dram.access(addr, now, false);
            assert!(done > now, "completion must be after the request");
            let bank_key = addr / DramConfig::default().page_bytes as u64;
            if let Some(&prev) = last_done_per_bank.get(&bank_key) {
                assert!(done >= prev, "same-row requests must not reorder");
            }
            last_done_per_bank.insert(bank_key, done);
        }
        let stats = dram.stats();
        assert_eq!(stats.reads as usize, lines.len());
        assert_eq!(
            stats.row_hits + stats.row_misses + stats.row_conflicts,
            stats.reads
        );
    }
}

/// For an arbitrary mix of loads, stores and prefetches, the hierarchy
/// (a) never reports a completion before the request, (b) reports L1 hits
/// for immediately repeated accesses, and (c) counts at least as many
/// accesses as misses at every level.
#[test]
fn hierarchy_is_sane_for_arbitrary_streams() {
    let mut rng = SmallRng::seed_from_u64(0x3E3_0004);
    for _case in 0..48 {
        let len = rng.gen_range_usize(1..150);
        let cfg = SimConfig::small_for_tests();
        let mut mem = MemoryHierarchy::new(&cfg);
        let mut now = 0u64;
        for _ in 0..len {
            let addr = rng.gen_range_u64(0..(1 << 20));
            let kind = rng.gen_below(3) as u8;
            now += 7;
            let access = match kind {
                0 => mem.load(addr, now, AccessKind::Demand),
                1 => mem.load(addr, now, AccessKind::Prefetch),
                _ => mem.store(addr, now),
            };
            assert!(access.completion_cycle >= now);
            // An immediate re-load of the same address is an L1 hit (the line
            // was just installed, even if its fill is still in flight).
            let again = mem.load(addr, now, AccessKind::Demand);
            assert!(again.completion_cycle >= now);
            assert!(mem.probe_data(addr).is_some());
        }
        let mut stats = pre_model::stats::SimStats::new();
        mem.export_stats(&mut stats);
        assert!(stats.l1d_accesses >= stats.l1d_misses);
        assert!(stats.l2_accesses >= stats.l2_misses);
        assert!(stats.l3_accesses >= stats.l3_misses);
        assert!(stats.dram_reads <= stats.l3_misses + stats.dram_writes + stats.l3_accesses);
    }
}
