//! Property-based tests for the memory hierarchy: cache residency bounds,
//! MSHR bookkeeping, DRAM timing monotonicity and hierarchy-level sanity for
//! arbitrary access streams.

use pre_mem::{AccessKind, Cache, Dram, HitLevel, MemoryHierarchy, MshrFile};
use pre_model::config::{CacheConfig, DramConfig, SimConfig};
use proptest::prelude::*;

proptest! {
    /// A cache never holds more lines than its capacity, and any line it
    /// reports as present was filled and not yet evicted.
    #[test]
    fn cache_capacity_and_membership(addrs in proptest::collection::vec(0u64..(1 << 16), 1..300)) {
        let cfg = CacheConfig { size_bytes: 4096, assoc: 4, line_bytes: 64, latency: 2, mshrs: 4 };
        let mut cache = Cache::new("prop", cfg);
        let capacity_lines = cfg.size_bytes / cfg.line_bytes;
        let mut resident: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (i, &addr) in addrs.iter().enumerate() {
            let line = addr & !63;
            if let Some(ev) = cache.fill(addr, i as u64, HitLevel::Memory, false, false) {
                resident.remove(&ev.line_addr);
            }
            resident.insert(line);
            prop_assert!(cache.resident_lines() <= capacity_lines);
            prop_assert!(cache.probe(addr).is_some(), "a just-filled line must be present");
        }
        // Everything the cache reports as resident is in our shadow set.
        for &line in &resident {
            if cache.probe(line).is_some() {
                prop_assert!(resident.contains(&line));
            }
        }
    }

    /// The MSHR file never exceeds its capacity and merges only lines that
    /// are genuinely outstanding.
    #[test]
    fn mshr_occupancy_is_bounded(events in proptest::collection::vec((0u64..64, 1u64..50), 1..200)) {
        let mut mshr = MshrFile::new(8);
        let mut now = 0u64;
        for (line, latency) in events {
            now += 1;
            let line_addr = line * 64;
            if mshr.merge(line_addr, now).is_none() {
                if mshr.is_full(now) {
                    let free_at = mshr.next_free_cycle(now);
                    prop_assert!(free_at >= now);
                    now = free_at;
                }
                mshr.allocate(line_addr, now, now + latency);
            }
            prop_assert!(mshr.occupancy(now) <= mshr.capacity());
        }
    }

    /// DRAM completion times never precede the request time, and a request
    /// issued later to the same bank never completes earlier than one issued
    /// before it (per-bank FIFO-ish service).
    #[test]
    fn dram_timing_is_monotone(lines in proptest::collection::vec(0u64..512, 1..100)) {
        let mut dram = Dram::new(DramConfig::default(), 2.66);
        let mut last_done_per_bank: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (i, &line) in lines.iter().enumerate() {
            let now = (i as u64) * 3;
            let addr = line * 64;
            let done = dram.access(addr, now, false);
            prop_assert!(done > now, "completion must be after the request");
            let bank_key = addr / DramConfig::default().page_bytes as u64;
            if let Some(&prev) = last_done_per_bank.get(&bank_key) {
                prop_assert!(done >= prev, "same-row requests must not reorder");
            }
            last_done_per_bank.insert(bank_key, done);
        }
        let stats = dram.stats();
        prop_assert_eq!(stats.reads as usize, lines.len());
        prop_assert_eq!(stats.row_hits + stats.row_misses + stats.row_conflicts, stats.reads);
    }

    /// For an arbitrary mix of loads, stores and prefetches, the hierarchy
    /// (a) never reports a completion before the request, (b) reports L1 hits
    /// for immediately repeated accesses, and (c) counts at least as many
    /// accesses as misses at every level.
    #[test]
    fn hierarchy_is_sane_for_arbitrary_streams(
        ops in proptest::collection::vec((0u64..(1 << 20), 0u8..3), 1..150)
    ) {
        let cfg = SimConfig::small_for_tests();
        let mut mem = MemoryHierarchy::new(&cfg);
        let mut now = 0u64;
        for (addr, kind) in ops {
            now += 7;
            let access = match kind {
                0 => mem.load(addr, now, AccessKind::Demand),
                1 => mem.load(addr, now, AccessKind::Prefetch),
                _ => mem.store(addr, now),
            };
            prop_assert!(access.completion_cycle >= now);
            // An immediate re-load of the same address is an L1 hit (the line
            // was just installed, even if its fill is still in flight).
            let again = mem.load(addr, now, AccessKind::Demand);
            prop_assert!(again.completion_cycle >= now);
            prop_assert!(mem.probe_data(addr).is_some());
        }
        let mut stats = pre_model::stats::SimStats::new();
        mem.export_stats(&mut stats);
        prop_assert!(stats.l1d_accesses >= stats.l1d_misses);
        prop_assert!(stats.l2_accesses >= stats.l2_misses);
        prop_assert!(stats.l3_accesses >= stats.l3_misses);
        prop_assert!(stats.dram_reads <= stats.l3_misses + stats.dram_writes + stats.l3_accesses);
    }
}
