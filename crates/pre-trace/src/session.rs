//! [`TraceSession`]: every enabled stream of one simulated cell behind a
//! single [`Tracer`].

use crate::chrome::{ArgValue, ChromeTrace};
use crate::collect::IntervalLog;
use crate::commitlog::CommitLogWriter;
use crate::pipeview::PipeviewTrace;
use crate::spec::{TimeSeriesFormat, TraceSpec};
use crate::timeseries::TimeSeries;
use crate::{CommittedUop, FfMode, MemEvent, Sample, Tracer};
use pre_model::isa::StaticInst;
use pre_model::stats::RunaheadEvent;
use std::any::Any;
use std::io;
use std::path::PathBuf;

/// A file-writing tracer recording every stream selected by a
/// [`TraceSpec`], plus an always-on in-memory runahead interval log.
///
/// Output files are buffered in memory and written by
/// [`Tracer::finish`]; call [`TraceSession::io_error`] afterwards to check
/// that the writes succeeded.
#[derive(Debug)]
pub struct TraceSession {
    cell: String,
    pipeview: Option<(PipeviewTrace, PathBuf)>,
    chrome: Option<(ChromeTrace, PathBuf)>,
    timeseries: Option<(TimeSeries, PathBuf)>,
    commit: Option<(CommitLogWriter, PathBuf)>,
    paths: Vec<PathBuf>,
    intervals: IntervalLog,
    io_error: Option<io::Error>,
}

impl TraceSession {
    /// Creates the output directory and a session writing
    /// `<dir>/<cell>.<ext>` for each enabled stream.
    ///
    /// # Errors
    ///
    /// Returns the error from creating the output directory.
    pub fn create(spec: &TraceSpec, cell: &str) -> io::Result<Self> {
        std::fs::create_dir_all(&spec.dir)?;
        let path = |ext: &str| spec.dir.join(format!("{cell}.{ext}"));
        let session = TraceSession {
            cell: cell.to_string(),
            pipeview: spec
                .pipeview
                .then(|| (PipeviewTrace::new(spec.ring), path("pipeview"))),
            chrome: spec
                .chrome
                .then(|| (ChromeTrace::new(), path("trace.json"))),
            timeseries: spec.timeseries.map(|format| {
                let ext = match format {
                    TimeSeriesFormat::Csv => "timeseries.csv",
                    TimeSeriesFormat::Json => "timeseries.json",
                };
                (TimeSeries::new(spec.window, format), path(ext))
            }),
            commit: spec
                .commit
                .then(|| (CommitLogWriter::new(), path("commit.bin"))),
            paths: Vec::new(),
            intervals: IntervalLog::new(),
            io_error: None,
        };
        Ok(TraceSession {
            paths: [
                session.pipeview.as_ref().map(|(_, p)| p.clone()),
                session.chrome.as_ref().map(|(_, p)| p.clone()),
                session.timeseries.as_ref().map(|(_, p)| p.clone()),
                session.commit.as_ref().map(|(_, p)| p.clone()),
            ]
            .into_iter()
            .flatten()
            .collect(),
            ..session
        })
    }

    /// The cell name the session was created for.
    pub fn cell(&self) -> &str {
        &self.cell
    }

    /// Paths of every enabled output file (valid before and after
    /// [`Tracer::finish`]).
    pub fn files(&self) -> &[PathBuf] {
        &self.paths
    }

    /// The first error encountered while writing output files (check after
    /// [`Tracer::finish`]).
    pub fn io_error(&self) -> Option<&io::Error> {
        self.io_error.as_ref()
    }

    /// The runahead interval entry/exit events observed during the run.
    pub fn interval_log(&self) -> &IntervalLog {
        &self.intervals
    }

    fn write(&mut self, path: PathBuf, bytes: &[u8]) {
        if self.io_error.is_some() {
            return;
        }
        if let Err(e) = std::fs::write(&path, bytes) {
            self.io_error = Some(io::Error::new(
                e.kind(),
                format!("writing trace file {}: {e}", path.display()),
            ));
        }
    }
}

impl Tracer for TraceSession {
    fn uop_fetched(&mut self, pc: u32, inst: &StaticInst, cycle: u64) {
        if let Some((pipeview, _)) = &mut self.pipeview {
            pipeview.on_fetch(pc, inst.to_string(), cycle);
        }
    }

    fn uop_decoded(&mut self, cycle: u64) {
        if let Some((pipeview, _)) = &mut self.pipeview {
            pipeview.on_decode(cycle);
        }
    }

    fn uop_filtered(&mut self, cycle: u64, captured: bool, _executed: bool) {
        if let Some((pipeview, _)) = &mut self.pipeview {
            pipeview.on_filtered(cycle, captured);
        }
    }

    fn uop_dispatched(&mut self, id: u64, pc: u32, cycle: u64, from_emq: bool) {
        if let Some((pipeview, _)) = &mut self.pipeview {
            pipeview.on_dispatch(id, pc, cycle, from_emq);
        }
    }

    fn uop_issued(&mut self, id: u64, cycle: u64) {
        if let Some((pipeview, _)) = &mut self.pipeview {
            pipeview.on_issue(id, cycle);
        }
    }

    fn uop_completed(&mut self, id: u64, cycle: u64) {
        if let Some((pipeview, _)) = &mut self.pipeview {
            pipeview.on_complete(id, cycle);
        }
    }

    fn uop_committed(&mut self, uop: &CommittedUop, cycle: u64) {
        if let Some((pipeview, _)) = &mut self.pipeview {
            pipeview.on_commit(uop.id, cycle);
        }
        if let Some((commit, _)) = &mut self.commit {
            commit.push(&uop.into());
        }
    }

    fn uop_squashed(&mut self, id: u64, cycle: u64) {
        if let Some((pipeview, _)) = &mut self.pipeview {
            pipeview.on_squash(id, cycle);
        }
    }

    fn frontend_flushed(&mut self, cycle: u64) {
        if let Some((pipeview, _)) = &mut self.pipeview {
            pipeview.on_frontend_flush(cycle);
        }
    }

    fn runahead_entry(&mut self, ev: &RunaheadEvent, stalling_pc: u32) {
        self.intervals.record(*ev);
        if let Some((chrome, _)) = &mut self.chrome {
            chrome.interval_begin(ev.cycle, stalling_pc);
        }
    }

    fn runahead_exit(&mut self, ev: &RunaheadEvent, entered_at: u64, stalling_pc: u32) {
        self.intervals.record(*ev);
        if let Some((chrome, _)) = &mut self.chrome {
            chrome.interval_end(
                "interval",
                entered_at,
                ev.cycle,
                vec![
                    (
                        "stalling_pc".into(),
                        ArgValue::Str(format!("{:#x}", u64::from(stalling_pc) * 4)),
                    ),
                    ("int_free".into(), ArgValue::Int(ev.int_free as i64)),
                    ("fp_free".into(), ArgValue::Int(ev.fp_free as i64)),
                    (
                        "prdq_allocated".into(),
                        ArgValue::Int(ev.prdq_allocated as i64),
                    ),
                ],
            );
        }
    }

    fn fast_forward(&mut self, from: u64, to: u64, mode: FfMode) {
        if let Some((chrome, _)) = &mut self.chrome {
            chrome.fast_forward(mode.label(), from, to);
        }
    }

    fn emq_full_cycles(&mut self, cycle: u64, count: u64) {
        if let Some((chrome, _)) = &mut self.chrome {
            chrome.emq_full(cycle, count);
        }
    }

    fn window_stall_cycles(&mut self, cycle: u64, count: u64) {
        if let Some((chrome, _)) = &mut self.chrome {
            chrome.window_stall(cycle, count);
        }
    }

    fn mem_event(&mut self, ev: &MemEvent) {
        if let Some((chrome, _)) = &mut self.chrome {
            chrome.mem_event(ev);
        }
    }

    fn sample_due(&mut self, cycle: u64) -> bool {
        self.timeseries
            .as_ref()
            .is_some_and(|(ts, _)| ts.due(cycle))
    }

    fn sample(&mut self, s: &Sample) {
        if let Some((ts, _)) = &mut self.timeseries {
            ts.record(s);
        }
    }

    fn finish(&mut self, cycle: u64) {
        if let Some((mut pipeview, path)) = self.pipeview.take() {
            let text = pipeview.finish();
            self.write(path, text.as_bytes());
        }
        if let Some((mut chrome, path)) = self.chrome.take() {
            let json = chrome.finish(cycle);
            self.write(path, json.as_bytes());
        }
        if let Some((ts, path)) = self.timeseries.take() {
            let text = ts.render();
            self.write(path, text.as_bytes());
        }
        if let Some((commit, path)) = self.commit.take() {
            let bytes = commit.into_bytes();
            self.write(path, &bytes);
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}
