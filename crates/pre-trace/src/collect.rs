//! In-memory collectors: the capped runahead entry/exit event log.
//!
//! Until PR 7, `SimStats` itself carried a capped `Vec<RunaheadEvent>`;
//! that log now lives here, routed through the tracer hooks, so the
//! statistics stay pure aggregates (and `SimStats: PartialEq` compares no
//! event payloads).

use crate::Tracer;
use pre_model::stats::{RunaheadEvent, MAX_RUNAHEAD_EVENTS};
use std::any::Any;

/// A capped in-memory log of runahead interval entry/exit events.
///
/// Intentionally bounded: a pathological run can enter runahead millions of
/// times, so overflow is counted instead of stored.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntervalLog {
    events: Vec<RunaheadEvent>,
    dropped: u64,
}

impl IntervalLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        IntervalLog::default()
    }

    /// Records one event, up to [`MAX_RUNAHEAD_EVENTS`].
    pub fn record(&mut self, event: RunaheadEvent) {
        if self.events.len() < MAX_RUNAHEAD_EVENTS {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[RunaheadEvent] {
        &self.events
    }

    /// Events discarded after the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A tracer that only keeps the runahead interval event log. Cheap enough
/// for `debug_stats` to attach unconditionally.
#[derive(Debug, Clone, Default)]
pub struct IntervalCollector {
    /// The collected log.
    pub log: IntervalLog,
}

impl IntervalCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        IntervalCollector::default()
    }
}

impl Tracer for IntervalCollector {
    fn runahead_entry(&mut self, ev: &RunaheadEvent, _stalling_pc: u32) {
        self.log.record(*ev);
    }

    fn runahead_exit(&mut self, ev: &RunaheadEvent, _entered_at: u64, _stalling_pc: u32) {
        self.log.record(*ev);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::stats::RunaheadEventKind;

    #[test]
    fn log_caps_and_counts_overflow() {
        let mut log = IntervalLog::new();
        let ev = RunaheadEvent {
            cycle: 1,
            kind: RunaheadEventKind::Entry,
            int_free: 2,
            fp_free: 3,
            int_eager_freed: 0,
            fp_eager_freed: 0,
            prdq_allocated: 0,
        };
        for _ in 0..MAX_RUNAHEAD_EVENTS + 3 {
            log.record(ev);
        }
        assert_eq!(log.events().len(), MAX_RUNAHEAD_EVENTS);
        assert_eq!(log.dropped(), 3);
    }
}
