//! The `--trace <spec>` flag: which streams to record and where.

use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;

/// Output format of the time-series stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeSeriesFormat {
    /// One CSV row per window (default).
    #[default]
    Csv,
    /// One JSON object per window, in a top-level array.
    Json,
}

/// Parsed form of a `--trace` specification.
///
/// The spec is a comma-separated list of keys:
///
/// | key | meaning |
/// |---|---|
/// | `dir=PATH` | output directory (default `traces`) |
/// | `pipeview` | per-uop O3PipeView/Konata text |
/// | `chrome` | Chrome `chrome://tracing` JSON spans/events |
/// | `timeseries[=csv\|json]` | windowed samples |
/// | `commit` | committed-stream binary log |
/// | `all` | every stream (the default when none is named) |
/// | `window=K` | time-series window in cycles (default 10000) |
/// | `ring=N` | pipeview ring-buffer mode: keep only the last N uops |
///
/// Example: `--trace dir=traces,pipeview,chrome,window=5000`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpec {
    /// Output directory; files are named `<cell>.<ext>` inside it.
    pub dir: PathBuf,
    /// Emit the O3PipeView per-uop stream.
    pub pipeview: bool,
    /// Emit the Chrome tracing JSON stream.
    pub chrome: bool,
    /// Emit the windowed time-series stream.
    pub timeseries: Option<TimeSeriesFormat>,
    /// Emit the committed-stream binary log.
    pub commit: bool,
    /// Time-series window in cycles.
    pub window: u64,
    /// Pipeview ring-buffer depth (`None` = unbounded streaming).
    pub ring: Option<usize>,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            dir: PathBuf::from("traces"),
            pipeview: true,
            chrome: true,
            timeseries: Some(TimeSeriesFormat::Csv),
            commit: true,
            window: 10_000,
            ring: None,
        }
    }
}

/// Error parsing a `--trace` specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpecError(String);

impl fmt::Display for TraceSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid --trace spec: {}", self.0)
    }
}

impl std::error::Error for TraceSpecError {}

impl FromStr for TraceSpec {
    type Err = TraceSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut spec = TraceSpec {
            pipeview: false,
            chrome: false,
            timeseries: None,
            commit: false,
            ..TraceSpec::default()
        };
        let mut any_stream = false;
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = match part.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (part, None),
            };
            match (key, value) {
                ("dir", Some(v)) if !v.is_empty() => spec.dir = PathBuf::from(v),
                ("pipeview", None) => {
                    spec.pipeview = true;
                    any_stream = true;
                }
                ("chrome", None) => {
                    spec.chrome = true;
                    any_stream = true;
                }
                ("timeseries", fmt) => {
                    spec.timeseries = Some(match fmt {
                        None | Some("csv") => TimeSeriesFormat::Csv,
                        Some("json") => TimeSeriesFormat::Json,
                        Some(other) => {
                            return Err(TraceSpecError(format!(
                                "unknown timeseries format `{other}` (expected csv or json)"
                            )))
                        }
                    });
                    any_stream = true;
                }
                ("commit", None) => {
                    spec.commit = true;
                    any_stream = true;
                }
                ("all", None) => {
                    spec.pipeview = true;
                    spec.chrome = true;
                    spec.timeseries.get_or_insert(TimeSeriesFormat::Csv);
                    spec.commit = true;
                    any_stream = true;
                }
                ("window", Some(v)) => {
                    spec.window = v
                        .parse::<u64>()
                        .ok()
                        .filter(|&w| w > 0)
                        .ok_or_else(|| TraceSpecError(format!("bad window `{v}`")))?;
                }
                ("ring", Some(v)) => {
                    let n = v
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| TraceSpecError(format!("bad ring size `{v}`")))?;
                    spec.ring = Some(n);
                }
                _ => return Err(TraceSpecError(format!("unknown key `{part}`"))),
            }
        }
        if !any_stream {
            // A spec that only sets dir/window/ring records everything.
            spec.pipeview = true;
            spec.chrome = true;
            spec.timeseries.get_or_insert(TimeSeriesFormat::Csv);
            spec.commit = true;
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_dir_spec_records_everything() {
        let spec: TraceSpec = "dir=/tmp/t".parse().unwrap();
        assert_eq!(spec.dir, PathBuf::from("/tmp/t"));
        assert!(spec.pipeview && spec.chrome && spec.commit);
        assert_eq!(spec.timeseries, Some(TimeSeriesFormat::Csv));
        assert_eq!(spec.window, 10_000);
        assert_eq!(spec.ring, None);
    }

    #[test]
    fn explicit_streams_disable_the_rest() {
        let spec: TraceSpec = "pipeview,ring=64".parse().unwrap();
        assert!(spec.pipeview && !spec.chrome && !spec.commit);
        assert_eq!(spec.timeseries, None);
        assert_eq!(spec.ring, Some(64));
    }

    #[test]
    fn timeseries_format_and_window_parse() {
        let spec: TraceSpec = "timeseries=json,window=500".parse().unwrap();
        assert_eq!(spec.timeseries, Some(TimeSeriesFormat::Json));
        assert_eq!(spec.window, 500);
    }

    #[test]
    fn bad_keys_are_rejected() {
        assert!("bogus".parse::<TraceSpec>().is_err());
        assert!("window=0".parse::<TraceSpec>().is_err());
        assert!("timeseries=xml".parse::<TraceSpec>().is_err());
    }
}
