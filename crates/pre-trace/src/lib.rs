//! Tracing and metrics for the PRE reproduction.
//!
//! The simulator core drives a [`Tracer`] through narrow hooks placed on the
//! pipeline's already-existing decision points. Every hook has a no-op
//! default and the core guards each call site with a single
//! `Option::is_some` branch, so a run without a tracer attached pays one
//! untaken branch per hook and nothing else — the `compare_sim_speed` gate in
//! CI holds the disabled path to the committed throughput baseline.
//!
//! Four observation streams are implemented on top of the trait:
//!
//! * [`pipeview`] — per-micro-op lifecycle stamps (fetch → retire/squash) in
//!   gem5 `O3PipeView` text, loadable in Konata;
//! * [`chrome`] — runahead intervals, fast-forward jumps, stall spans and
//!   off-chip miss events as `chrome://tracing` JSON on the simulated clock;
//! * [`timeseries`] — windowed IPC / occupancy / free-register / MLP samples
//!   as CSV or JSON;
//! * [`commitlog`] — the committed (PC, op class, effective address, width)
//!   stream as a compact binary log with a reader API.
//!
//! [`TraceSession`] bundles any subset of the four behind one [`Tracer`]
//! (selected by a [`TraceSpec`], the value of the `--trace` CLI flag);
//! [`IntervalCollector`] is a cheap in-memory tracer that only keeps the
//! runahead entry/exit event log (used by `debug_stats`).
//!
//! Tracers observe and never steer: a hook must not mutate simulator state,
//! and the `trace_golden` suite asserts `SimStats` are bit-identical with
//! tracing on and off.

pub mod chrome;
pub mod collect;
pub mod commitlog;
pub mod pipeview;
pub mod ring;
pub mod spec;
pub mod timeseries;

mod session;

pub use collect::IntervalCollector;
pub use ring::CommitRing;
pub use session::TraceSession;
pub use spec::{TimeSeriesFormat, TraceSpec};

use pre_model::isa::{OpClass, StaticInst};
use pre_model::stats::RunaheadEvent;
use std::any::Any;
use std::fmt;

/// Which fast-forward path skipped the cycles of a [`Tracer::fast_forward`]
/// jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FfMode {
    /// Normal-mode quiescence (full-window stall on an off-chip load).
    Normal,
    /// Runahead-mode quiescence (flush-style or precise runahead).
    Runahead,
}

impl FfMode {
    /// Short label used in trace output.
    pub fn label(self) -> &'static str {
        match self {
            FfMode::Normal => "ff-normal",
            FfMode::Runahead => "ff-runahead",
        }
    }
}

/// Which level serviced an off-chip data access reported through
/// [`Tracer::mem_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissLevel {
    /// Missed L2, serviced by the LLC.
    L2Miss,
    /// Missed the LLC, serviced by DRAM.
    LlcMiss,
}

impl MissLevel {
    /// Short label used in trace output.
    pub fn label(self) -> &'static str {
        match self {
            MissLevel::L2Miss => "l2-miss",
            MissLevel::LlcMiss => "llc-miss",
        }
    }
}

/// An off-chip data-cache miss observed at issue time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEvent {
    /// Issue cycle of the load.
    pub cycle: u64,
    /// PC of the load.
    pub pc: u32,
    /// Effective byte address.
    pub addr: u64,
    /// Deepest level the access had to reach.
    pub level: MissLevel,
    /// `true` for runahead prefetches, `false` for demand loads.
    pub prefetch: bool,
    /// Cycle the fill completes.
    pub completes: u64,
    /// L1D MSHR occupancy right after the access (outstanding misses — the
    /// instantaneous memory-level parallelism).
    pub mshr_occupancy: usize,
}

/// One architecturally retired micro-op, as seen by the commit stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommittedUop {
    /// Dispatch-order micro-op id.
    pub id: u64,
    /// Program counter (instruction index).
    pub pc: u32,
    /// Functional-unit class.
    pub class: OpClass,
    /// Effective byte address for loads and stores.
    pub addr: Option<u64>,
    /// Access width in bytes for loads and stores, 0 otherwise.
    pub width: u8,
}

/// One time-series sample of pipeline state, taken by the run loop at
/// window boundaries. Occupancies are instantaneous; counters are cumulative
/// (the sampler differences them per window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Cycle the sample was taken at.
    pub cycle: u64,
    /// Cumulative committed micro-ops.
    pub committed_uops: u64,
    /// Reorder-buffer occupancy / capacity.
    pub rob: usize,
    /// ROB capacity.
    pub rob_cap: usize,
    /// Issue-queue occupancy.
    pub iq: usize,
    /// Issue-queue capacity.
    pub iq_cap: usize,
    /// Load-queue occupancy.
    pub lq: usize,
    /// Store-queue occupancy.
    pub sq: usize,
    /// Extended micro-op queue occupancy.
    pub emq: usize,
    /// EMQ capacity.
    pub emq_cap: usize,
    /// Fraction of the integer physical register file that is free.
    pub free_int_frac: f64,
    /// Fraction of the floating-point physical register file that is free.
    pub free_fp_frac: f64,
    /// Outstanding L1D misses (MSHR occupancy — instantaneous MLP).
    pub mshr_occupancy: usize,
    /// Cumulative L2 data misses.
    pub l2_misses: u64,
    /// Cumulative LLC data misses.
    pub l3_misses: u64,
    /// `true` while the core is in (any flavour of) runahead mode.
    pub in_runahead: bool,
}

/// Observation hooks driven by the simulator core.
///
/// Every method has a no-op default, so an implementation only overrides the
/// streams it cares about. Implementations must treat the simulator as
/// read-only: the golden tracing-on/off test asserts that attaching any
/// tracer leaves `SimStats` bit-identical.
///
/// `Send` is a supertrait so a core with a tracer attached can still run on
/// the parallel evaluation matrix; `Debug` keeps the core's own derive
/// working.
pub trait Tracer: fmt::Debug + Send {
    // ---- per-micro-op lifecycle ----------------------------------------

    /// A micro-op entered the frontend delay pipe.
    fn uop_fetched(&mut self, _pc: u32, _inst: &StaticInst, _cycle: u64) {}

    /// The oldest fetched micro-op left the delay pipe for the micro-op
    /// queue.
    fn uop_decoded(&mut self, _cycle: u64) {}

    /// The PRE decode filter consumed the oldest decoded micro-op.
    /// `captured` is set when it was buffered in the EMQ (it will dispatch
    /// later), `executed` when it hit in the SST and was injected as a
    /// runahead micro-op.
    fn uop_filtered(&mut self, _cycle: u64, _captured: bool, _executed: bool) {}

    /// The oldest decoded (or EMQ-buffered, when `from_emq`) micro-op was
    /// renamed and dispatched as micro-op `id`.
    fn uop_dispatched(&mut self, _id: u64, _pc: u32, _cycle: u64, _from_emq: bool) {}

    /// Micro-op `id` issued to a functional unit.
    fn uop_issued(&mut self, _id: u64, _cycle: u64) {}

    /// Micro-op `id`'s writeback completed.
    fn uop_completed(&mut self, _id: u64, _cycle: u64) {}

    /// Micro-op `id` retired architecturally.
    fn uop_committed(&mut self, _uop: &CommittedUop, _cycle: u64) {}

    /// Micro-op `id` was squashed after dispatch (branch recovery, a
    /// flush-style runahead entry/exit, or pseudo-retirement of a discarded
    /// runahead window).
    fn uop_squashed(&mut self, _id: u64, _cycle: u64) {}

    /// Every pre-dispatch micro-op (delay pipe, micro-op queue and EMQ) was
    /// discarded.
    fn frontend_flushed(&mut self, _cycle: u64) {}

    // ---- spans and events ----------------------------------------------

    /// A runahead interval began. `ev.kind` is `Entry`.
    fn runahead_entry(&mut self, _ev: &RunaheadEvent, _stalling_pc: u32) {}

    /// The active runahead interval ended. `ev.kind` is `Exit`; the interval
    /// spanned `entered_at..ev.cycle`.
    fn runahead_exit(&mut self, _ev: &RunaheadEvent, _entered_at: u64, _stalling_pc: u32) {}

    /// The event scheduler fast-forwarded the clock from `from` to `to`
    /// (exclusive of the tick that runs at `to + 1`).
    fn fast_forward(&mut self, _from: u64, _to: u64, _mode: FfMode) {}

    /// One cycle (or `count` bulk-accumulated cycles) during which fetch
    /// stalled on a full EMQ.
    fn emq_full_cycles(&mut self, _cycle: u64, _count: u64) {}

    /// One cycle (or `count` bulk-accumulated cycles) of full-window stall.
    fn window_stall_cycles(&mut self, _cycle: u64, _count: u64) {}

    /// A data access missed L2 or the LLC.
    fn mem_event(&mut self, _ev: &MemEvent) {}

    // ---- windowed time-series ------------------------------------------

    /// `true` when the tracer wants a [`Sample`] at `cycle`. The core builds
    /// the (comparatively expensive) snapshot only when this returns `true`.
    fn sample_due(&mut self, _cycle: u64) -> bool {
        false
    }

    /// Deliver the sample requested by [`Tracer::sample_due`].
    fn sample(&mut self, _s: &Sample) {}

    // ---- teardown ------------------------------------------------------

    /// The run ended (halted, budget-bounded or deadlocked) at `cycle`:
    /// flush buffers and write output files.
    fn finish(&mut self, _cycle: u64) {}

    /// Recover the concrete tracer after the core hands it back as a trait
    /// object.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// A tracer that ignores every event. Useful as an explicit "tracing
/// compiled in but disabled" attachment in overhead measurements.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}
