//! Span/event tracing as Chrome `chrome://tracing` JSON (also loadable in
//! Perfetto). Timestamps are simulated cycles (the viewer displays them as
//! microseconds).
//!
//! Tracks (thread ids): 0 = runahead intervals, 1 = fast-forward jumps,
//! 2 = stall spans (full-window and EMQ-full), 3 = off-chip misses and the
//! MSHR-occupancy counter.
//!
//! The writer is hand-rolled (the workspace is std-only) and paired with a
//! minimal parser so the round-trip test can assert encode → decode → equal.

use std::fmt::Write as _;

/// Thread id of the runahead-interval track.
pub const TID_INTERVALS: u64 = 0;
/// Thread id of the fast-forward track.
pub const TID_FF: u64 = 1;
/// Thread id of the stall-span track.
pub const TID_STALLS: u64 = 2;
/// Thread id of the memory-event track.
pub const TID_MEM: u64 = 3;

/// An argument value of a trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// Integer argument.
    Int(i64),
    /// String argument.
    Str(String),
}

/// One Chrome trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Event name (shown on the slice).
    pub name: String,
    /// Category.
    pub cat: String,
    /// Phase: `X` complete, `i` instant, `C` counter, `M` metadata.
    pub ph: char,
    /// Start timestamp (simulated cycles).
    pub ts: u64,
    /// Duration for `X` events.
    pub dur: Option<u64>,
    /// Process id (always 0 here).
    pub pid: u64,
    /// Thread id (track).
    pub tid: u64,
    /// Event arguments.
    pub args: Vec<(String, ArgValue)>,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl ChromeEvent {
    fn render(&self, out: &mut String) {
        out.push_str("{\"name\":\"");
        escape_into(out, &self.name);
        out.push_str("\",\"cat\":\"");
        escape_into(out, &self.cat);
        let _ = write!(out, "\",\"ph\":\"{}\",\"ts\":{}", self.ph, self.ts);
        if let Some(dur) = self.dur {
            let _ = write!(out, ",\"dur\":{dur}");
        }
        let _ = write!(out, ",\"pid\":{},\"tid\":{}", self.pid, self.tid);
        if self.ph == 'i' {
            // Instant events need a scope; "t" = thread.
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{");
        for (i, (key, value)) in self.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(out, key);
            out.push_str("\":");
            match value {
                ArgValue::Int(v) => {
                    let _ = write!(out, "{v}");
                }
                ArgValue::Str(s) => {
                    out.push('"');
                    escape_into(out, s);
                    out.push('"');
                }
            }
        }
        out.push_str("}}");
    }
}

/// Chrome-trace stream builder driven by the tracer hooks. Interval and
/// stall spans are coalesced from per-cycle (or bulk fast-forwarded)
/// reports and closed at [`ChromeTrace::finish`].
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<ChromeEvent>,
    pending_interval: Option<(u64, u32)>,
    emq_run: Option<(u64, u64)>,
    stall_run: Option<(u64, u64)>,
}

impl ChromeTrace {
    /// Creates an empty trace with named tracks.
    pub fn new() -> Self {
        let mut trace = ChromeTrace::default();
        for (tid, name) in [
            (TID_INTERVALS, "runahead intervals"),
            (TID_FF, "fast-forward"),
            (TID_STALLS, "stalls"),
            (TID_MEM, "memory"),
        ] {
            trace.events.push(ChromeEvent {
                name: "thread_name".into(),
                cat: "__metadata".into(),
                ph: 'M',
                ts: 0,
                dur: None,
                pid: 0,
                tid,
                args: vec![("name".into(), ArgValue::Str(name.into()))],
            });
        }
        trace
    }

    /// Appends a fully formed event.
    pub fn push(&mut self, event: ChromeEvent) {
        self.events.push(event);
    }

    /// Opens a runahead-interval span.
    pub fn interval_begin(&mut self, cycle: u64, stalling_pc: u32) {
        self.pending_interval = Some((cycle, stalling_pc));
    }

    /// Closes the open runahead-interval span (begin may predate this
    /// builder's attachment, so `entered_at` is passed explicitly).
    pub fn interval_end(
        &mut self,
        technique: &str,
        entered_at: u64,
        cycle: u64,
        args: Vec<(String, ArgValue)>,
    ) {
        self.pending_interval = None;
        self.events.push(ChromeEvent {
            name: format!("runahead ({technique})"),
            cat: "interval".into(),
            ph: 'X',
            ts: entered_at,
            dur: Some(cycle.saturating_sub(entered_at).max(1)),
            pid: 0,
            tid: TID_INTERVALS,
            args,
        });
    }

    /// Records a fast-forward jump over `from..=to`.
    pub fn fast_forward(&mut self, name: &str, from: u64, to: u64) {
        self.events.push(ChromeEvent {
            name: name.into(),
            cat: "ff".into(),
            ph: 'X',
            ts: from,
            dur: Some(to - from),
            pid: 0,
            tid: TID_FF,
            args: Vec::new(),
        });
    }

    fn extend_run(
        run: &mut Option<(u64, u64)>,
        first: u64,
        count: u64,
        closed: &mut Option<(u64, u64)>,
    ) {
        let last = first + count - 1;
        match run {
            Some((_, end)) if first <= *end + 1 => *end = (*end).max(last),
            Some(span) => {
                *closed = Some(*span);
                *run = Some((first, last));
            }
            None => *run = Some((first, last)),
        }
    }

    fn emit_span(&mut self, name: &str, (start, end): (u64, u64)) {
        self.events.push(ChromeEvent {
            name: name.into(),
            cat: "stall".into(),
            ph: 'X',
            ts: start,
            dur: Some(end - start + 1),
            pid: 0,
            tid: TID_STALLS,
            args: Vec::new(),
        });
    }

    /// Reports `count` EMQ-full fetch-stall cycles starting at `first`.
    pub fn emq_full(&mut self, first: u64, count: u64) {
        let mut closed = None;
        Self::extend_run(&mut self.emq_run, first, count, &mut closed);
        if let Some(span) = closed {
            self.emit_span("emq-full", span);
        }
    }

    /// Reports `count` full-window-stall cycles starting at `first`.
    pub fn window_stall(&mut self, first: u64, count: u64) {
        let mut closed = None;
        Self::extend_run(&mut self.stall_run, first, count, &mut closed);
        if let Some(span) = closed {
            self.emit_span("full-window-stall", span);
        }
    }

    /// Records an off-chip miss instant event plus an MSHR-occupancy counter
    /// sample.
    pub fn mem_event(&mut self, ev: &crate::MemEvent) {
        self.events.push(ChromeEvent {
            name: ev.level.label().into(),
            cat: "mem".into(),
            ph: 'i',
            ts: ev.cycle,
            dur: None,
            pid: 0,
            tid: TID_MEM,
            args: vec![
                (
                    "pc".into(),
                    ArgValue::Str(format!("{:#x}", u64::from(ev.pc) * 4)),
                ),
                ("addr".into(), ArgValue::Str(format!("{:#x}", ev.addr))),
                ("prefetch".into(), ArgValue::Int(i64::from(ev.prefetch))),
                ("completes".into(), ArgValue::Int(ev.completes as i64)),
            ],
        });
        self.events.push(ChromeEvent {
            name: "mshr".into(),
            cat: "mem".into(),
            ph: 'C',
            ts: ev.cycle,
            dur: None,
            pid: 0,
            tid: TID_MEM,
            args: vec![(
                "outstanding".into(),
                ArgValue::Int(ev.mshr_occupancy as i64),
            )],
        });
    }

    /// Closes open spans (run ended mid-interval or mid-stall) and renders
    /// the `{"traceEvents": [...]}` document.
    pub fn finish(&mut self, cycle: u64) -> String {
        if let Some((entered_at, pc)) = self.pending_interval.take() {
            self.interval_end(
                "unfinished",
                entered_at,
                cycle,
                vec![(
                    "stalling_pc".into(),
                    ArgValue::Str(format!("{:#x}", u64::from(pc) * 4)),
                )],
            );
        }
        if let Some(span) = self.emq_run.take() {
            self.emit_span("emq-full", span);
        }
        if let Some(span) = self.stall_run.take() {
            self.emit_span("full-window-stall", span);
        }
        to_json(&self.events)
    }
}

/// Renders events as a `{"traceEvents": [...]}` document.
pub fn to_json(events: &[ChromeEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        event.render(&mut out);
    }
    out.push_str("\n]}\n");
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough to round-trip what the writer emits.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char).unwrap_or('∅')
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad \\u escape {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let start = self.pos - 1;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >> 5 == 0b110 => 2,
                        _ if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    self.pos = start + len;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| "truncated UTF-8 sequence".to_string())?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'{') => {
                self.expect(b'{')?;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'[') => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                if c == b'-' {
                    self.pos += 1;
                }
                while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                text.parse::<i64>()
                    .map(Json::Num)
                    .map_err(|_| format!("bad number `{text}`"))
            }
            other => Err(format!(
                "unexpected `{}` at byte {}",
                other.map(|b| b as char).unwrap_or('∅'),
                self.pos
            )),
        }
    }
}

fn field<'j>(obj: &'j [(String, Json)], key: &str) -> Option<&'j Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Parses a document produced by [`to_json`] back into events.
///
/// # Errors
///
/// Returns a description of the first structural problem.
pub fn parse(text: &str) -> Result<Vec<ChromeEvent>, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let doc = parser.parse_value()?;
    let Json::Obj(doc) = doc else {
        return Err("top level is not an object".into());
    };
    let Some(Json::Arr(raw_events)) = field(&doc, "traceEvents") else {
        return Err("missing traceEvents array".into());
    };
    let mut events = Vec::with_capacity(raw_events.len());
    for raw in raw_events {
        let Json::Obj(obj) = raw else {
            return Err("event is not an object".into());
        };
        let get_str = |key: &str| -> Result<String, String> {
            match field(obj, key) {
                Some(Json::Str(s)) => Ok(s.clone()),
                _ => Err(format!("event missing string field `{key}`")),
            }
        };
        let get_num = |key: &str| -> Result<i64, String> {
            match field(obj, key) {
                Some(Json::Num(n)) => Ok(*n),
                _ => Err(format!("event missing numeric field `{key}`")),
            }
        };
        let ph = get_str("ph")?;
        let mut args = Vec::new();
        if let Some(Json::Obj(raw_args)) = field(obj, "args") {
            for (key, value) in raw_args {
                args.push((
                    key.clone(),
                    match value {
                        Json::Num(n) => ArgValue::Int(*n),
                        Json::Str(s) => ArgValue::Str(s.clone()),
                        _ => return Err(format!("arg `{key}` is not a scalar")),
                    },
                ));
            }
        }
        events.push(ChromeEvent {
            name: get_str("name")?,
            cat: get_str("cat")?,
            ph: ph.chars().next().ok_or("empty ph")?,
            ts: get_num("ts")? as u64,
            dur: match field(obj, "dur") {
                Some(Json::Num(n)) => Some(*n as u64),
                None => None,
                _ => return Err("dur is not a number".into()),
            },
            pid: get_num("pid")? as u64,
            tid: get_num("tid")? as u64,
            args,
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_coalesce_and_close() {
        let mut trace = ChromeTrace::new();
        trace.window_stall(10, 1);
        trace.window_stall(11, 5); // contiguous: extends
        trace.window_stall(40, 2); // gap: closes the first span
        let json = trace.finish(100);
        let events = parse(&json).unwrap();
        let stalls: Vec<_> = events.iter().filter(|e| e.cat == "stall").collect();
        assert_eq!(stalls.len(), 2);
        assert_eq!((stalls[0].ts, stalls[0].dur), (10, Some(6)));
        assert_eq!((stalls[1].ts, stalls[1].dur), (40, Some(2)));
    }

    #[test]
    fn escapes_round_trip() {
        let events = vec![ChromeEvent {
            name: "weird \"name\"\n\\t".into(),
            cat: "x".into(),
            ph: 'i',
            ts: 5,
            dur: None,
            pid: 0,
            tid: 3,
            args: vec![("k".into(), ArgValue::Str("v\t∅".into()))],
        }];
        assert_eq!(parse(&to_json(&events)).unwrap(), events);
    }
}
