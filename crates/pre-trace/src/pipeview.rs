//! Per-micro-op lifecycle tracing in gem5 `O3PipeView` text.
//!
//! The output loads directly in [Konata](https://github.com/shioyadan/Konata)
//! and in gem5's `util/o3-pipeview.py`. One record per micro-op:
//!
//! ```text
//! O3PipeView:fetch:<tick>:0x<byte-pc>:0:<seq>:<disasm>
//! O3PipeView:decode:<tick>
//! O3PipeView:rename:<tick>
//! O3PipeView:dispatch:<tick>
//! O3PipeView:issue:<tick>
//! O3PipeView:complete:<tick>
//! O3PipeView:retire:<tick>:store:0
//! ```
//!
//! Ticks are simulated cycles; a stage tick of `0` means the micro-op was
//! squashed before reaching that stage (gem5's convention — Konata draws
//! such records as flushed).
//!
//! The simulator assigns micro-op ids at dispatch, but pipeview needs fetch
//! and decode stamps too, so [`PipeviewTrace`] mirrors the frontend queues:
//! fetch pushes a record into a fetch FIFO, decode moves the oldest into a
//! decode FIFO, the PRE filter moves the oldest into an EMQ FIFO (or retires
//! it as runahead-consumed), and dispatch pops the appropriate FIFO and keys
//! the record by the newly assigned id. The mirrors stay in lockstep because
//! every queue involved is itself a FIFO.

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;

/// Lifecycle stamps of one micro-op. A stage stamp of 0 means "never
/// reached"; a retire stamp of 0 means squashed.
#[derive(Debug, Clone, Default)]
struct PipeRecord {
    sn: u64,
    pc: u32,
    disasm: String,
    fetch: u64,
    decode: u64,
    rename: u64,
    dispatch: u64,
    issue: u64,
    complete: u64,
    retire: u64,
}

impl PipeRecord {
    fn render(&self, out: &mut String) {
        let _ = writeln!(
            out,
            "O3PipeView:fetch:{}:0x{:08x}:0:{}:{}",
            self.fetch,
            u64::from(self.pc) * 4,
            self.sn,
            self.disasm
        );
        let _ = writeln!(out, "O3PipeView:decode:{}", self.decode);
        let _ = writeln!(out, "O3PipeView:rename:{}", self.rename);
        let _ = writeln!(out, "O3PipeView:dispatch:{}", self.dispatch);
        let _ = writeln!(out, "O3PipeView:issue:{}", self.issue);
        let _ = writeln!(out, "O3PipeView:complete:{}", self.complete);
        let _ = writeln!(out, "O3PipeView:retire:{}:store:0", self.retire);
    }
}

/// Where finished records go: streamed in retirement order, or kept in a
/// bounded ring ("the last N micro-ops before the watchdog fired").
#[derive(Debug)]
enum Output {
    Stream(String),
    Ring {
        buf: VecDeque<PipeRecord>,
        cap: usize,
    },
}

/// The pipeview stream builder driven by the tracer hooks.
#[derive(Debug)]
pub struct PipeviewTrace {
    next_sn: u64,
    fetch_q: VecDeque<PipeRecord>,
    decode_q: VecDeque<PipeRecord>,
    emq_q: VecDeque<PipeRecord>,
    in_flight: HashMap<u64, PipeRecord>,
    out: Output,
}

impl PipeviewTrace {
    /// Creates a streaming trace, or a ring-buffered one keeping only the
    /// last `ring` retired/squashed micro-ops.
    pub fn new(ring: Option<usize>) -> Self {
        PipeviewTrace {
            next_sn: 1,
            fetch_q: VecDeque::new(),
            decode_q: VecDeque::new(),
            emq_q: VecDeque::new(),
            in_flight: HashMap::new(),
            out: match ring {
                Some(cap) => Output::Ring {
                    buf: VecDeque::with_capacity(cap),
                    cap,
                },
                None => Output::Stream(String::new()),
            },
        }
    }

    fn emit(&mut self, record: PipeRecord) {
        match &mut self.out {
            Output::Stream(s) => record.render(s),
            Output::Ring { buf, cap } => {
                if buf.len() == *cap {
                    buf.pop_front();
                }
                buf.push_back(record);
            }
        }
    }

    /// Fetch hook: a new record enters the fetch FIFO.
    pub fn on_fetch(&mut self, pc: u32, disasm: String, cycle: u64) {
        let record = PipeRecord {
            sn: self.next_sn,
            pc,
            disasm,
            fetch: cycle,
            ..PipeRecord::default()
        };
        self.next_sn += 1;
        self.fetch_q.push_back(record);
    }

    /// Decode hook: the oldest fetched micro-op moves to the decode FIFO.
    pub fn on_decode(&mut self, cycle: u64) {
        if let Some(mut record) = self.fetch_q.pop_front() {
            record.decode = cycle;
            self.decode_q.push_back(record);
        }
    }

    /// PRE-filter hook: the oldest decoded micro-op was consumed — buffered
    /// in the EMQ when `captured`, otherwise retired as runahead-consumed
    /// (drawn as squashed).
    pub fn on_filtered(&mut self, cycle: u64, captured: bool) {
        let Some(mut record) = self.decode_q.pop_front() else {
            return;
        };
        if captured {
            self.emq_q.push_back(record);
        } else {
            record.rename = cycle;
            self.emit(record);
        }
    }

    /// Dispatch hook: pop the EMQ mirror (PRE+EMQ replay after an interval)
    /// or the decode mirror and key the record by its assigned id.
    pub fn on_dispatch(&mut self, id: u64, pc: u32, cycle: u64, from_emq: bool) {
        let source = if from_emq {
            &mut self.emq_q
        } else {
            &mut self.decode_q
        };
        let Some(mut record) = source.pop_front() else {
            return;
        };
        debug_assert_eq!(record.pc, pc, "pipeview mirror out of sync at dispatch");
        record.rename = cycle;
        record.dispatch = cycle;
        self.in_flight.insert(id, record);
    }

    /// Issue hook (ignored for ids not in the mirror, e.g. injected runahead
    /// micro-ops).
    pub fn on_issue(&mut self, id: u64, cycle: u64) {
        if let Some(record) = self.in_flight.get_mut(&id) {
            record.issue = cycle;
        }
    }

    /// Writeback-complete hook.
    pub fn on_complete(&mut self, id: u64, cycle: u64) {
        if let Some(record) = self.in_flight.get_mut(&id) {
            record.complete = cycle;
        }
    }

    /// Commit hook: the record is finished and emitted.
    pub fn on_commit(&mut self, id: u64, cycle: u64) {
        if let Some(mut record) = self.in_flight.remove(&id) {
            record.retire = cycle;
            self.emit(record);
        }
    }

    /// Post-dispatch squash hook: the record is finished with retire tick 0.
    pub fn on_squash(&mut self, id: u64, _cycle: u64) {
        if let Some(record) = self.in_flight.remove(&id) {
            self.emit(record);
        }
    }

    /// Frontend flush hook: every mirrored pre-dispatch micro-op is squashed.
    pub fn on_frontend_flush(&mut self, _cycle: u64) {
        let drained: Vec<PipeRecord> = self
            .fetch_q
            .drain(..)
            .chain(self.decode_q.drain(..))
            .chain(self.emq_q.drain(..))
            .collect();
        for record in drained {
            self.emit(record);
        }
    }

    /// Finishes the stream: micro-ops still in flight (the run ended with a
    /// non-empty pipeline) are emitted with the stamps they reached, in
    /// program order, and the full text is returned.
    pub fn finish(&mut self) -> String {
        let mut leftovers: Vec<PipeRecord> = self
            .in_flight
            .drain()
            .map(|(_, r)| r)
            .chain(self.fetch_q.drain(..))
            .chain(self.decode_q.drain(..))
            .chain(self.emq_q.drain(..))
            .collect();
        leftovers.sort_by_key(|r| r.sn);
        for record in leftovers {
            self.emit(record);
        }
        match &mut self.out {
            Output::Stream(s) => std::mem::take(s),
            Output::Ring { buf, .. } => {
                let mut s = String::new();
                for record in buf.drain(..) {
                    record.render(&mut s);
                }
                s
            }
        }
    }
}

/// Validates O3PipeView text: every record is 7 lines in stage order with
/// parseable ticks, non-zero fetch stamps and non-decreasing stamps within
/// the stages a micro-op reached. Returns `(records, retired)` — the total
/// number of records and how many retired (non-zero retire tick).
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate(text: &str) -> Result<(usize, usize), String> {
    const STAGES: [&str; 7] = [
        "fetch", "decode", "rename", "dispatch", "issue", "complete", "retire",
    ];
    let mut records = 0usize;
    let mut retired = 0usize;
    let mut lines = text.lines().enumerate().peekable();
    while lines.peek().is_some() {
        let mut stamps = [0u64; 7];
        for (stage_idx, stage) in STAGES.iter().enumerate() {
            let (lineno, line) = lines
                .next()
                .ok_or_else(|| format!("truncated record: missing {stage} line"))?;
            let rest = line
                .strip_prefix("O3PipeView:")
                .and_then(|r| r.strip_prefix(stage))
                .and_then(|r| r.strip_prefix(':'))
                .ok_or_else(|| {
                    format!("line {}: expected {stage} line, got `{line}`", lineno + 1)
                })?;
            // The disasm text (last fetch field) may itself contain colons.
            let expected_fields = match *stage {
                "fetch" => 5,
                "retire" => 3,
                _ => 1,
            };
            let fields: Vec<&str> = rest.splitn(expected_fields, ':').collect();
            if fields.len() != expected_fields {
                return Err(format!(
                    "line {}: {stage} line has {} fields, expected {expected_fields}",
                    lineno + 1,
                    fields.len()
                ));
            }
            stamps[stage_idx] = fields[0]
                .parse::<u64>()
                .map_err(|_| format!("line {}: bad {stage} tick `{}`", lineno + 1, fields[0]))?;
        }
        if stamps[0] == 0 {
            return Err(format!("record {}: zero fetch tick", records + 1));
        }
        let mut last = 0u64;
        for (stage, &tick) in STAGES.iter().zip(&stamps) {
            if tick == 0 {
                continue;
            }
            if tick < last {
                return Err(format!(
                    "record {}: {stage} tick {tick} precedes a previous stage",
                    records + 1
                ));
            }
            last = tick;
        }
        records += 1;
        if stamps[6] != 0 {
            retired += 1;
        }
    }
    Ok((records, retired))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streamed_records_validate() {
        let mut t = PipeviewTrace::new(None);
        t.on_fetch(0, "add x1, x2, x3".into(), 1);
        t.on_fetch(1, "ld x4, 0(x1)".into(), 1);
        t.on_decode(4);
        t.on_decode(4);
        t.on_dispatch(10, 0, 5, false);
        t.on_dispatch(11, 1, 5, false);
        t.on_issue(10, 6);
        t.on_complete(10, 7);
        t.on_commit(10, 8);
        t.on_squash(11, 8);
        let text = t.finish();
        let (records, retired) = validate(&text).unwrap();
        assert_eq!(records, 2);
        assert_eq!(retired, 1);
    }

    #[test]
    fn ring_mode_keeps_only_the_tail() {
        let mut t = PipeviewTrace::new(Some(2));
        for i in 0..5u64 {
            t.on_fetch(i as u32, format!("nop{i}"), i + 1);
            t.on_decode(i + 2);
            t.on_dispatch(100 + i, i as u32, i + 3, false);
            t.on_commit(100 + i, i + 4);
        }
        let text = t.finish();
        let (records, retired) = validate(&text).unwrap();
        assert_eq!((records, retired), (2, 2));
        assert!(text.contains("nop3") && text.contains("nop4"));
        assert!(!text.contains("nop2"));
    }

    #[test]
    fn frontend_flush_squashes_mirrored_uops() {
        let mut t = PipeviewTrace::new(None);
        t.on_fetch(7, "beq x1, x2".into(), 3);
        t.on_frontend_flush(4);
        let text = t.finish();
        let (records, retired) = validate(&text).unwrap();
        assert_eq!((records, retired), (1, 0));
    }
}
