//! Windowed time-series sampling: IPC, structure occupancies, free physical
//! registers and memory-level parallelism per configurable k-cycle window.
//!
//! The run loop asks [`TimeSeries::due`] once per tick (one compare) and
//! builds a [`Sample`](crate::Sample) only when a window boundary has been
//! crossed. Fast-forward jumps can cross several boundaries at once; each
//! crossed window gets its own row with the pipeline state observed at the
//! jump target (the pipeline is quiescent across the jump, so the held
//! values are exact) and rate columns averaged over the actual elapsed span.

use crate::spec::TimeSeriesFormat;
use crate::Sample;
use std::fmt::Write as _;

/// CSV header of the time-series stream (one `Row` per line, same order).
pub const CSV_HEADER: &str = "cycle,ipc,committed_uops,rob,iq,lq,sq,emq,\
free_int_pct,free_fp_pct,mshr_outstanding,l2_miss_delta,l3_miss_delta,runahead";

/// One emitted window row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Window-end cycle.
    pub cycle: u64,
    /// Committed micro-ops per cycle over the window.
    pub ipc: f64,
    /// Cumulative committed micro-ops at the window end.
    pub committed_uops: u64,
    /// ROB occupancy at the window end.
    pub rob: usize,
    /// Issue-queue occupancy.
    pub iq: usize,
    /// Load-queue occupancy.
    pub lq: usize,
    /// Store-queue occupancy.
    pub sq: usize,
    /// EMQ occupancy.
    pub emq: usize,
    /// Free integer physical registers, percent.
    pub free_int_pct: f64,
    /// Free floating-point physical registers, percent.
    pub free_fp_pct: f64,
    /// Outstanding L1D misses (MSHR occupancy).
    pub mshr_outstanding: usize,
    /// L2 data misses in this window.
    pub l2_miss_delta: u64,
    /// LLC data misses in this window.
    pub l3_miss_delta: u64,
    /// 1 when the core was in runahead mode at the window end.
    pub runahead: bool,
}

/// The time-series sampler.
#[derive(Debug)]
pub struct TimeSeries {
    window: u64,
    format: TimeSeriesFormat,
    next_boundary: u64,
    last_cycle: u64,
    last_committed: u64,
    last_l2: u64,
    last_l3: u64,
    rows: Vec<Row>,
}

impl TimeSeries {
    /// Creates a sampler with the given window (cycles) and output format.
    pub fn new(window: u64, format: TimeSeriesFormat) -> Self {
        TimeSeries {
            window: window.max(1),
            format,
            next_boundary: window.max(1),
            last_cycle: 0,
            last_committed: 0,
            last_l2: 0,
            last_l3: 0,
            rows: Vec::new(),
        }
    }

    /// `true` when `cycle` has crossed the next window boundary.
    pub fn due(&self, cycle: u64) -> bool {
        cycle >= self.next_boundary
    }

    /// Consumes a sample, emitting one row per crossed window. A sample that
    /// has not crossed a boundary (the run loop only sends one when the run
    /// ends mid-window) emits a single partial-window row at the sample
    /// cycle, so even runs shorter than one window produce a data point.
    pub fn record(&mut self, s: &Sample) {
        if !self.due(s.cycle) {
            if s.cycle <= self.last_cycle && !self.rows.is_empty() {
                return;
            }
            let elapsed = s.cycle.saturating_sub(self.last_cycle).max(1);
            self.rows.push(Row {
                cycle: s.cycle,
                ipc: (s.committed_uops - self.last_committed) as f64 / elapsed as f64,
                committed_uops: s.committed_uops,
                rob: s.rob,
                iq: s.iq,
                lq: s.lq,
                sq: s.sq,
                emq: s.emq,
                free_int_pct: s.free_int_frac * 100.0,
                free_fp_pct: s.free_fp_frac * 100.0,
                mshr_outstanding: s.mshr_occupancy,
                l2_miss_delta: s.l2_misses - self.last_l2,
                l3_miss_delta: s.l3_misses - self.last_l3,
                runahead: s.in_runahead,
            });
            self.last_cycle = s.cycle;
            self.last_committed = s.committed_uops;
            self.last_l2 = s.l2_misses;
            self.last_l3 = s.l3_misses;
            return;
        }
        // Rates are averaged over the span since the previous sample, then
        // attributed to each crossed window.
        let elapsed = s.cycle.saturating_sub(self.last_cycle).max(1);
        let ipc = (s.committed_uops - self.last_committed) as f64 / elapsed as f64;
        let span_windows = (s.cycle - self.next_boundary) / self.window + 1;
        let l2_delta = s.l2_misses - self.last_l2;
        let l3_delta = s.l3_misses - self.last_l3;
        for i in 0..span_windows {
            let boundary = self.next_boundary + i * self.window;
            self.rows.push(Row {
                cycle: boundary,
                ipc,
                committed_uops: s.committed_uops,
                rob: s.rob,
                iq: s.iq,
                lq: s.lq,
                sq: s.sq,
                emq: s.emq,
                free_int_pct: s.free_int_frac * 100.0,
                free_fp_pct: s.free_fp_frac * 100.0,
                mshr_outstanding: s.mshr_occupancy,
                l2_miss_delta: if i == 0 { l2_delta } else { 0 },
                l3_miss_delta: if i == 0 { l3_delta } else { 0 },
                runahead: s.in_runahead,
            });
        }
        self.next_boundary += span_windows * self.window;
        self.last_cycle = s.cycle;
        self.last_committed = s.committed_uops;
        self.last_l2 = s.l2_misses;
        self.last_l3 = s.l3_misses;
    }

    /// The rows emitted so far.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Renders the configured output format.
    pub fn render(&self) -> String {
        match self.format {
            TimeSeriesFormat::Csv => self.render_csv(),
            TimeSeriesFormat::Json => self.render_json(),
        }
    }

    fn render_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{},{:.4},{},{},{},{},{},{},{:.1},{:.1},{},{},{},{}",
                r.cycle,
                r.ipc,
                r.committed_uops,
                r.rob,
                r.iq,
                r.lq,
                r.sq,
                r.emq,
                r.free_int_pct,
                r.free_fp_pct,
                r.mshr_outstanding,
                r.l2_miss_delta,
                r.l3_miss_delta,
                u8::from(r.runahead),
            );
        }
        out
    }

    fn render_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "{{\"cycle\":{},\"ipc\":{:.4},\"committed_uops\":{},\"rob\":{},\"iq\":{},\
                 \"lq\":{},\"sq\":{},\"emq\":{},\"free_int_pct\":{:.1},\"free_fp_pct\":{:.1},\
                 \"mshr_outstanding\":{},\"l2_miss_delta\":{},\"l3_miss_delta\":{},\"runahead\":{}}}",
                r.cycle,
                r.ipc,
                r.committed_uops,
                r.rob,
                r.iq,
                r.lq,
                r.sq,
                r.emq,
                r.free_int_pct,
                r.free_fp_pct,
                r.mshr_outstanding,
                r.l2_miss_delta,
                r.l3_miss_delta,
                u8::from(r.runahead),
            );
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycle: u64, committed: u64) -> Sample {
        Sample {
            cycle,
            committed_uops: committed,
            rob: 10,
            rob_cap: 192,
            iq: 5,
            iq_cap: 60,
            lq: 2,
            sq: 1,
            emq: 0,
            emq_cap: 128,
            free_int_frac: 0.5,
            free_fp_frac: 1.0,
            mshr_occupancy: 3,
            l2_misses: cycle / 10,
            l3_misses: cycle / 100,
            in_runahead: false,
        }
    }

    #[test]
    fn one_row_per_crossed_window() {
        let mut ts = TimeSeries::new(100, TimeSeriesFormat::Csv);
        assert!(!ts.due(99));
        assert!(ts.due(100));
        ts.record(&sample(105, 200));
        assert_eq!(ts.rows().len(), 1);
        assert!(!ts.due(199));
        // A fast-forward jump across three boundaries emits three rows.
        ts.record(&sample(405, 300));
        assert_eq!(ts.rows().len(), 4);
        assert_eq!(ts.rows()[1].cycle, 200);
        assert_eq!(ts.rows()[3].cycle, 400);
        let ipc = (300.0 - 200.0) / 300.0;
        assert!((ts.rows()[1].ipc - ipc).abs() < 1e-9);
    }

    #[test]
    fn csv_has_matching_column_count() {
        let mut ts = TimeSeries::new(10, TimeSeriesFormat::Csv);
        ts.record(&sample(10, 5));
        let csv = ts.render();
        let mut lines = csv.lines();
        let header_cols = lines.next().unwrap().split(',').count();
        assert_eq!(lines.next().unwrap().split(',').count(), header_cols);
    }
}
