//! Committed-stream capture: the (PC, op class, effective address, width)
//! stream of architecturally retired micro-ops, in a compact binary log.
//!
//! This is the replay substrate for trace-driven look-ahead work (continuous
//! runahead / decoupled look-ahead consume committed streams): 14 bytes per
//! record after an 8-byte header.
//!
//! Layout (little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic "PRECMT01"
//! then per record:
//! 0       4     pc        (instruction index)
//! 4       1     op class  (OpClass discriminant)
//! 5       1     width     (bytes; 0 for non-memory ops)
//! 6       8     address   (effective byte address; 0 for non-memory ops)
//! ```

use crate::CommittedUop;
use pre_model::isa::OpClass;
use std::fmt;

/// File magic: "PRECMT" + format version 01.
pub const MAGIC: [u8; 8] = *b"PRECMT01";

/// Size of one encoded record.
pub const RECORD_BYTES: usize = 14;

/// One decoded committed-stream record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitRecord {
    /// Program counter (instruction index).
    pub pc: u32,
    /// Functional-unit class.
    pub class: OpClass,
    /// Access width in bytes (0 for non-memory ops).
    pub width: u8,
    /// Effective byte address (0 for non-memory ops).
    pub addr: u64,
}

impl From<&CommittedUop> for CommitRecord {
    fn from(u: &CommittedUop) -> Self {
        CommitRecord {
            pc: u.pc,
            class: u.class,
            width: u.width,
            addr: u.addr.unwrap_or(0),
        }
    }
}

/// Streaming encoder.
#[derive(Debug)]
pub struct CommitLogWriter {
    buf: Vec<u8>,
}

impl Default for CommitLogWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl CommitLogWriter {
    /// Creates a writer with the header already encoded.
    pub fn new() -> Self {
        CommitLogWriter {
            buf: MAGIC.to_vec(),
        }
    }

    /// Appends one record.
    pub fn push(&mut self, r: &CommitRecord) {
        self.buf.extend_from_slice(&r.pc.to_le_bytes());
        self.buf.push(r.class.index() as u8);
        self.buf.push(r.width);
        self.buf.extend_from_slice(&r.addr.to_le_bytes());
    }

    /// Number of records encoded so far.
    pub fn len(&self) -> usize {
        (self.buf.len() - MAGIC.len()) / RECORD_BYTES
    }

    /// `true` when no records have been encoded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The encoded bytes (header + records).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Error decoding a committed-stream log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitLogError {
    /// The header magic did not match.
    BadMagic,
    /// The payload length is not a multiple of the record size.
    Truncated,
    /// A record carried an out-of-range op-class discriminant.
    BadOpClass(u8),
}

impl fmt::Display for CommitLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitLogError::BadMagic => write!(f, "not a committed-stream log (bad magic)"),
            CommitLogError::Truncated => write!(f, "truncated committed-stream log"),
            CommitLogError::BadOpClass(c) => write!(f, "bad op-class discriminant {c}"),
        }
    }
}

impl std::error::Error for CommitLogError {}

/// Reader over an encoded committed-stream log.
#[derive(Debug, Clone)]
pub struct CommitLogReader<'a> {
    payload: &'a [u8],
}

impl<'a> CommitLogReader<'a> {
    /// Validates the header and record framing.
    ///
    /// # Errors
    ///
    /// Returns [`CommitLogError`] on a bad magic or a truncated payload.
    pub fn new(bytes: &'a [u8]) -> Result<Self, CommitLogError> {
        let payload = bytes
            .strip_prefix(&MAGIC[..])
            .ok_or(CommitLogError::BadMagic)?;
        if payload.len() % RECORD_BYTES != 0 {
            return Err(CommitLogError::Truncated);
        }
        Ok(CommitLogReader { payload })
    }

    /// Number of records in the log.
    pub fn len(&self) -> usize {
        self.payload.len() / RECORD_BYTES
    }

    /// `true` when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Iterates the records in commit order.
    pub fn records(&self) -> impl Iterator<Item = Result<CommitRecord, CommitLogError>> + 'a {
        self.payload.chunks_exact(RECORD_BYTES).map(|chunk| {
            let class_idx = chunk[4];
            let class = *OpClass::ALL
                .get(class_idx as usize)
                .ok_or(CommitLogError::BadOpClass(class_idx))?;
            Ok(CommitRecord {
                pc: u32::from_le_bytes(chunk[0..4].try_into().unwrap()),
                class,
                width: chunk[5],
                addr: u64::from_le_bytes(chunk[6..14].try_into().unwrap()),
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let records = [
            CommitRecord {
                pc: 7,
                class: OpClass::Load,
                width: 4,
                addr: 0xdead_beef_0120,
            },
            CommitRecord {
                pc: 8,
                class: OpClass::IntAlu,
                width: 0,
                addr: 0,
            },
        ];
        let mut w = CommitLogWriter::new();
        for r in &records {
            w.push(r);
        }
        assert_eq!(w.len(), 2);
        let bytes = w.into_bytes();
        let reader = CommitLogReader::new(&bytes).unwrap();
        let decoded: Vec<CommitRecord> = reader.records().map(|r| r.unwrap()).collect();
        assert_eq!(decoded, records);
    }

    #[test]
    fn framing_errors_are_detected() {
        assert_eq!(
            CommitLogReader::new(b"NOTMAGIC").unwrap_err(),
            CommitLogError::BadMagic
        );
        let mut bytes = CommitLogWriter::new().into_bytes();
        bytes.push(0);
        assert_eq!(
            CommitLogReader::new(&bytes).unwrap_err(),
            CommitLogError::Truncated
        );
    }
}
