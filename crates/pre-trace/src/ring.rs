//! A tiny fixed-capacity ring of recent commits.
//!
//! The pipeline keeps one of these always on (independent of any attached
//! [`Tracer`](crate::Tracer)) so that a watchdog abort can report *where* the
//! machine last made progress — the final few committed `(cycle, pc)` pairs —
//! without the run having been started under tracing. Pushing is two stores
//! and a wrapping increment, cheap enough to sit on the commit path
//! unconditionally.

/// Fixed-capacity ring buffer of the most recent committed `(cycle, pc)`
/// pairs, oldest entry evicted first.
#[derive(Debug, Clone)]
pub struct CommitRing {
    slots: Vec<(u64, u32)>,
    /// Next slot to overwrite.
    head: usize,
    /// Total pushes ever (only the low bits matter for wrap detection).
    pushed: u64,
}

impl CommitRing {
    /// Creates a ring keeping the last `capacity` commits (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        CommitRing {
            slots: Vec::with_capacity(capacity),
            head: 0,
            pushed: 0,
        }
    }

    /// Records one committed uop.
    #[inline]
    pub fn push(&mut self, cycle: u64, pc: u32) {
        if self.slots.len() < self.slots.capacity() {
            self.slots.push((cycle, pc));
        } else {
            self.slots[self.head] = (cycle, pc);
        }
        self.head = (self.head + 1) % self.slots.capacity();
        self.pushed += 1;
    }

    /// Number of entries currently held (min of pushes and capacity).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total commits ever pushed (including those already evicted).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// The retained commits as `(cycle, pc)` pairs, oldest first.
    pub fn entries(&self) -> Vec<(u64, u32)> {
        if self.slots.len() < self.slots.capacity() {
            self.slots.clone()
        } else {
            let mut out = Vec::with_capacity(self.slots.len());
            out.extend_from_slice(&self.slots[self.head..]);
            out.extend_from_slice(&self.slots[..self.head]);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_below_capacity() {
        let mut ring = CommitRing::new(4);
        assert!(ring.is_empty());
        ring.push(10, 0x40);
        ring.push(11, 0x44);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.entries(), vec![(10, 0x40), (11, 0x44)]);
    }

    #[test]
    fn evicts_oldest_first_after_wrap() {
        let mut ring = CommitRing::new(3);
        for i in 0..7u64 {
            ring.push(100 + i, 0x40 + 4 * i as u32);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_pushed(), 7);
        assert_eq!(
            ring.entries(),
            vec![(104, 0x50), (105, 0x54), (106, 0x58)],
            "oldest-first order across the wrap point"
        );
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = CommitRing::new(0);
        ring.push(1, 0x0);
        ring.push(2, 0x4);
        assert_eq!(ring.entries(), vec![(2, 0x4)]);
    }
}
