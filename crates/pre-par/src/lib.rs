//! Minimal std-only data parallelism for the PRE experiment engine.
//!
//! Simulations in the evaluation matrix are independent per
//! (workload, technique) cell, so the runner only needs an ordered parallel
//! map. The container this workspace builds in has no crates.io access, so
//! instead of depending on rayon this crate implements the one primitive the
//! workspace needs on top of [`std::thread::scope`]: [`par_map`], an
//! order-preserving parallel map over a slice. The API is shaped so that a
//! future swap to `rayon::par_iter` is a one-line change at each call site.
//!
//! Work is distributed dynamically: an atomic cursor hands out the next item
//! to whichever worker is free, so heterogeneous cell runtimes (a pointer
//! chase under PRE takes far longer than a compute-bound baseline) do not
//! leave threads idle the way static chunking would.
//!
//! # Example
//!
//! ```
//! let squares = pre_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Environment variable overriding the worker count (`0` or unset = one
/// worker per available core).
pub const THREADS_ENV: &str = "PRE_THREADS";

/// Number of worker threads [`par_map`] will use for a workload of `len`
/// items: `min(len, PRE_THREADS or available cores)`, and at least 1.
pub fn num_threads(len: usize) -> usize {
    let configured = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
    configured.min(len).max(1)
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Equivalent to `items.iter().map(f).collect()` — same outputs, same order —
/// but distributed over [`num_threads`] scoped worker threads. `f` runs at
/// most once per item. Panics in `f` propagate to the caller once all workers
/// have stopped.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = num_threads(items.len());
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(idx) else { break };
                let result = f(item);
                *slots[idx].lock().expect("result slot poisoned") = Some(result);
            }));
        }
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker pool completed without filling every slot")
        })
        .collect()
}

/// A captured panic from one work item of a [`try_par_map`] call.
///
/// The pool converts the opaque panic payload into a string eagerly (panic
/// payloads are `Box<dyn Any>` and rarely more structured than a `&str` or
/// `String`), so the error is `Send + Sync` and can cross further channel /
/// store boundaries without dragging `dyn Any` along.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Index of the input item whose closure panicked.
    pub index: usize,
    /// Stringified panic payload (`&str` / `String` payloads verbatim,
    /// anything else a placeholder).
    pub payload: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "work item {} panicked: {}", self.index, self.payload)
    }
}

impl std::error::Error for JobError {}

/// Best-effort conversion of a panic payload into a human-readable string.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Supervised sibling of [`par_map`]: maps `f` over `items` in parallel,
/// capturing a panic in any single item as a [`JobError`] instead of tearing
/// down the pool.
///
/// Results come back in input order, one `Result` per item. A worker whose
/// current item panics catches the unwind, records `Err(JobError)` for that
/// slot, and moves on to the next item — so one poisoned cell cannot take the
/// rest of the grid down with it, and every non-panicking item still produces
/// its `Ok` value.
///
/// `f` is wrapped in [`AssertUnwindSafe`]: if it panics halfway through
/// mutating shared state it is the caller's responsibility that survivors can
/// still make sense of that state (the simulation stores recover poisoned
/// mutexes for exactly this reason).
pub fn try_par_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, JobError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let run_one = |idx: usize, item: &T| -> Result<R, JobError> {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| JobError {
            index: idx,
            payload: panic_message(payload.as_ref()),
        })
    };

    let workers = num_threads(items.len());
    if workers <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(idx, item)| run_one(idx, item))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, JobError>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(idx) else { break };
                let result = run_one(idx, item);
                // A panic inside `f` was already caught above; the slot lock
                // is only ever held for this assignment, so recover rather
                // than cascade a poisoned-mutex panic through the pool.
                *slots[idx].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            }));
        }
        for handle in handles {
            if let Err(panic) = handle.join() {
                // Workers only unwind on bugs outside `f` (e.g. allocation
                // failure); that is not an isolatable per-item fault.
                std::panic::resume_unwind(panic);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("worker pool completed without filling every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        let parallel = par_map(&items, |&x| x * 3 + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[41u64], |&x| x + 1), vec![42]);
    }

    #[test]
    fn runs_each_item_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        par_map(&(0..64usize).collect::<Vec<_>>(), |&i| {
            counters[i].fetch_add(1, Ordering::Relaxed)
        });
        for c in &counters {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn num_threads_is_clamped_by_len() {
        assert_eq!(num_threads(0), 1);
        assert_eq!(num_threads(1), 1);
        assert!(num_threads(1024) >= 1);
    }

    /// Runs `f` with the default panic hook silenced, so tests that
    /// deliberately panic inside workers do not spam the test log. Serialized
    /// because the hook is process-global.
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        static HOOK_LOCK: Mutex<()> = Mutex::new(());
        let _guard = HOOK_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = f();
        std::panic::set_hook(prev);
        result
    }

    #[test]
    fn try_par_map_matches_par_map_when_nothing_panics() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 7 + 3).collect();
        let supervised = try_par_map(&items, |&x| x * 7 + 3);
        assert_eq!(supervised.len(), serial.len());
        for (got, want) in supervised.into_iter().zip(serial) {
            assert_eq!(got.unwrap(), want);
        }
    }

    #[test]
    fn try_par_map_isolates_a_single_panic() {
        with_quiet_panics(|| {
            let items: Vec<u64> = (0..64).collect();
            let results = try_par_map(&items, |&x| {
                if x == 13 {
                    panic!("injected fault in item {x}");
                }
                x * 2
            });
            for (i, result) in results.iter().enumerate() {
                if i == 13 {
                    let err = result.as_ref().unwrap_err();
                    assert_eq!(err.index, 13);
                    assert!(err.payload.contains("injected fault"), "{}", err.payload);
                } else {
                    assert_eq!(*result.as_ref().unwrap(), i as u64 * 2);
                }
            }
        });
    }

    #[test]
    fn try_par_map_survives_many_panics_and_keeps_indices_straight() {
        with_quiet_panics(|| {
            let items: Vec<u64> = (0..97).collect();
            let results = try_par_map(&items, |&x| {
                if x % 3 == 0 {
                    panic!("boom {x}");
                }
                x
            });
            for (i, result) in results.iter().enumerate() {
                if i % 3 == 0 {
                    let err = result.as_ref().unwrap_err();
                    assert_eq!(err.index, i);
                    assert_eq!(err.payload, format!("boom {i}"));
                } else {
                    assert_eq!(*result.as_ref().unwrap(), i as u64);
                }
            }
        });
    }

    #[test]
    fn try_par_map_stringifies_non_string_payloads() {
        with_quiet_panics(|| {
            let results = try_par_map(&[0u64], |_| -> u64 {
                std::panic::panic_any(1234u32);
            });
            let err = results[0].as_ref().unwrap_err();
            assert_eq!(err.payload, "<non-string panic payload>");
        });
    }

    #[test]
    fn par_map_still_propagates_panics() {
        with_quiet_panics(|| {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                par_map(&[1u64, 2, 3], |&x| {
                    if x == 2 {
                        panic!("unsupervised");
                    }
                    x
                })
            }));
            assert!(outcome.is_err());
        });
    }
}
