//! Minimal std-only data parallelism for the PRE experiment engine.
//!
//! Simulations in the evaluation matrix are independent per
//! (workload, technique) cell, so the runner only needs an ordered parallel
//! map. The container this workspace builds in has no crates.io access, so
//! instead of depending on rayon this crate implements the one primitive the
//! workspace needs on top of [`std::thread::scope`]: [`par_map`], an
//! order-preserving parallel map over a slice. The API is shaped so that a
//! future swap to `rayon::par_iter` is a one-line change at each call site.
//!
//! Work is distributed dynamically: an atomic cursor hands out the next item
//! to whichever worker is free, so heterogeneous cell runtimes (a pointer
//! chase under PRE takes far longer than a compute-bound baseline) do not
//! leave threads idle the way static chunking would.
//!
//! # Example
//!
//! ```
//! let squares = pre_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count (`0` or unset = one
/// worker per available core).
pub const THREADS_ENV: &str = "PRE_THREADS";

/// Number of worker threads [`par_map`] will use for a workload of `len`
/// items: `min(len, PRE_THREADS or available cores)`, and at least 1.
pub fn num_threads(len: usize) -> usize {
    let configured = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
    configured.min(len).max(1)
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Equivalent to `items.iter().map(f).collect()` — same outputs, same order —
/// but distributed over [`num_threads`] scoped worker threads. `f` runs at
/// most once per item. Panics in `f` propagate to the caller once all workers
/// have stopped.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = num_threads(items.len());
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(idx) else { break };
                let result = f(item);
                *slots[idx].lock().expect("result slot poisoned") = Some(result);
            }));
        }
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker pool completed without filling every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        let parallel = par_map(&items, |&x| x * 3 + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[41u64], |&x| x + 1), vec![42]);
    }

    #[test]
    fn runs_each_item_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        par_map(&(0..64usize).collect::<Vec<_>>(), |&i| {
            counters[i].fetch_add(1, Ordering::Relaxed)
        });
        for c in &counters {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn num_threads_is_clamped_by_len() {
        assert_eq!(num_threads(0), 1);
        assert_eq!(num_threads(1), 1);
        assert!(num_threads(1024) >= 1);
    }
}
