//! Fixed-latency delay line modelling the front-end pipeline depth.
//!
//! The paper's baseline front-end is 8 stages deep (Table 1). A micro-op
//! fetched at cycle *c* therefore reaches the rename stage at *c + 8*; after
//! a pipeline flush the first useful micro-op arrives 8 cycles after
//! redirection — the "refilling the front-end" component of the ~56-cycle
//! runahead-exit penalty quantified in Section 2.4.

use std::collections::VecDeque;

/// A bounded delay line: items pushed at cycle `c` become poppable at
/// `c + depth`.
#[derive(Debug, Clone)]
pub struct DelayPipe<T> {
    depth: u64,
    capacity: usize,
    entries: VecDeque<(u64, T)>,
}

impl<T> DelayPipe<T> {
    /// Creates a delay pipe with latency `depth` cycles and a buffer of
    /// `capacity` in-flight items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(depth: u64, capacity: usize) -> Self {
        assert!(capacity > 0, "delay pipe capacity must be non-zero");
        DelayPipe {
            depth,
            capacity,
            entries: VecDeque::with_capacity(capacity),
        }
    }

    /// The configured latency in cycles.
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Attempts to push an item at cycle `now`; fails when the pipe is full.
    pub fn push(&mut self, item: T, now: u64) -> Result<(), T> {
        if self.entries.len() >= self.capacity {
            return Err(item);
        }
        self.entries.push_back((now + self.depth, item));
        Ok(())
    }

    /// Pops the oldest item if it has traversed the pipe by cycle `now`.
    pub fn pop_ready(&mut self, now: u64) -> Option<T> {
        match self.entries.front() {
            Some(&(ready, _)) if ready <= now => self.entries.pop_front().map(|(_, item)| item),
            _ => None,
        }
    }

    /// Peeks at the oldest item if it is ready at cycle `now`.
    pub fn front_ready(&self, now: u64) -> Option<&T> {
        match self.entries.front() {
            Some(&(ready, ref item)) if ready <= now => Some(item),
            _ => None,
        }
    }

    /// The cycle at which the oldest in-flight item becomes poppable, if
    /// anything is in flight (used by the quiescent-cycle fast-forward to
    /// bound how far the clock may jump).
    pub fn next_ready_at(&self) -> Option<u64> {
        self.entries.front().map(|&(ready, _)| ready)
    }

    /// Number of in-flight items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when no more items can enter the pipe.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Discards everything in flight (pipeline flush).
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_emerge_after_depth_cycles() {
        let mut pipe = DelayPipe::new(8, 32);
        pipe.push("a", 100).unwrap();
        assert!(pipe.pop_ready(107).is_none());
        assert_eq!(pipe.pop_ready(108), Some("a"));
    }

    #[test]
    fn order_is_preserved() {
        let mut pipe = DelayPipe::new(2, 8);
        pipe.push(1, 0).unwrap();
        pipe.push(2, 0).unwrap();
        pipe.push(3, 1).unwrap();
        assert_eq!(pipe.pop_ready(2), Some(1));
        assert_eq!(pipe.pop_ready(2), Some(2));
        assert_eq!(pipe.pop_ready(2), None);
        assert_eq!(pipe.pop_ready(3), Some(3));
    }

    #[test]
    fn full_pipe_rejects_pushes() {
        let mut pipe = DelayPipe::new(1, 2);
        pipe.push(1, 0).unwrap();
        pipe.push(2, 0).unwrap();
        assert!(pipe.is_full());
        assert_eq!(pipe.push(3, 0), Err(3));
    }

    #[test]
    fn flush_discards_in_flight_items() {
        let mut pipe = DelayPipe::new(4, 8);
        pipe.push(1, 0).unwrap();
        pipe.push(2, 0).unwrap();
        pipe.flush();
        assert!(pipe.is_empty());
        assert_eq!(pipe.pop_ready(100), None);
    }

    #[test]
    fn zero_depth_is_immediately_ready() {
        let mut pipe = DelayPipe::new(0, 4);
        pipe.push(7, 5).unwrap();
        assert_eq!(pipe.front_ready(5), Some(&7));
        assert_eq!(pipe.pop_ready(5), Some(7));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _: DelayPipe<u8> = DelayPipe::new(1, 0);
    }
}
