//! Front-end components for the PRE simulator.
//!
//! The out-of-order pipeline in `pre-core` drives these components:
//!
//! * [`predictor::BranchPredictorUnit`] — gshare direction predictor, branch
//!   target buffer and return address stack. Runahead execution checkpoints
//!   the global history at entry and restores it at exit (Section 2.2 of the
//!   paper).
//! * [`uop_queue::UopQueue`] — the bounded micro-op queue between decode and
//!   rename. The PRE + EMQ optimization extends this queue (Section 3.3) so
//!   micro-ops decoded in runahead mode can be dispatched after exit without
//!   re-fetching them.
//! * [`delay_pipe::DelayPipe`] — a fixed-latency delay line used to model the
//!   8-stage front-end depth: a micro-op fetched at cycle *c* reaches rename
//!   at *c + depth*.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod delay_pipe;
pub mod predictor;
pub mod uop_queue;

pub use delay_pipe::DelayPipe;
pub use predictor::{BranchPredictorUnit, Prediction};
pub use uop_queue::UopQueue;
