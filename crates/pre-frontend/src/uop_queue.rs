//! Bounded micro-op queues.
//!
//! [`UopQueue`] is a simple bounded FIFO used in two places:
//!
//! * the regular micro-op queue between decode and rename, and
//! * the Extended Micro-op Queue (EMQ) of the PRE + EMQ optimization
//!   (Section 3.3): micro-ops decoded during runahead mode are buffered here
//!   and dispatched after runahead exit instead of being re-fetched and
//!   re-decoded. When the EMQ fills up, runahead execution stalls until the
//!   stalling load returns.

use std::collections::VecDeque;

/// A bounded FIFO queue of micro-ops (or any payload).
#[derive(Debug, Clone)]
pub struct UopQueue<T> {
    entries: VecDeque<T>,
    capacity: usize,
    /// Total number of accepted pushes (for energy accounting).
    pushes: u64,
    /// Total number of pops.
    pops: u64,
    /// Number of rejected pushes because the queue was full.
    rejected: u64,
}

impl<T> UopQueue<T> {
    /// Creates a queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        UopQueue {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            pushes: 0,
            pops: 0,
            rejected: 0,
        }
    }

    /// Attempts to enqueue an item; returns it back when the queue is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.entries.len() >= self.capacity {
            self.rejected += 1;
            return Err(item);
        }
        self.entries.push_back(item);
        self.pushes += 1;
        Ok(())
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.entries.pop_front();
        if item.is_some() {
            self.pops += 1;
        }
        item
    }

    /// Peeks at the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.entries.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when no more items can be enqueued.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Remaining free slots.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Discards all queued items (used on pipeline flushes).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of accepted pushes so far.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Number of pops so far.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Number of pushes rejected because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Iterates over queued items from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = UopQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        q.push(4).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_fails_when_full_and_returns_item() {
        let mut q = UopQueue::new(2);
        q.push("a").unwrap();
        q.push("b").unwrap();
        assert!(q.is_full());
        assert_eq!(q.push("c"), Err("c"));
        assert_eq!(q.rejected(), 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn free_slots_and_capacity() {
        let mut q = UopQueue::new(3);
        assert_eq!(q.free_slots(), 3);
        q.push(1).unwrap();
        assert_eq!(q.free_slots(), 2);
        assert_eq!(q.capacity(), 3);
    }

    #[test]
    fn clear_empties_the_queue() {
        let mut q = UopQueue::new(3);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        // Statistics survive the clear.
        assert_eq!(q.pushes(), 2);
    }

    #[test]
    fn counters_track_activity() {
        let mut q = UopQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        q.pop();
        q.pop();
        assert_eq!(q.pushes(), 5);
        assert_eq!(q.pops(), 2);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn front_peeks_without_removing() {
        let mut q = UopQueue::new(2);
        q.push(9).unwrap();
        assert_eq!(q.front(), Some(&9));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn iter_is_oldest_to_newest() {
        let mut q = UopQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        let v: Vec<_> = q.iter().copied().collect();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _: UopQueue<u32> = UopQueue::new(0);
    }
}
