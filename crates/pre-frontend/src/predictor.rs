//! Branch prediction: gshare + BTB + return address stack.
//!
//! Conditional branches are predicted by a gshare predictor (global history
//! XOR PC indexing a table of 2-bit saturating counters); targets come from a
//! direct-mapped branch target buffer. The return address stack is provided
//! for completeness (the synthetic ISA has no call/return micro-ops, but the
//! paper lists the RAS among the state checkpointed at runahead entry).

use pre_model::config::FrontendConfig;

/// A branch prediction: direction and, when the BTB knows it, a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (always `true` for unconditional jumps that hit
    /// in the BTB).
    pub taken: bool,
    /// Predicted target PC, if the BTB holds one for this branch.
    pub target: Option<u32>,
}

/// 2-bit saturating counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Counter(u8);

impl Counter {
    fn predict(&self) -> bool {
        self.0 >= 2
    }
    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// gshare direction predictor + direct-mapped BTB + return address stack.
#[derive(Debug, Clone)]
pub struct BranchPredictorUnit {
    counters: Vec<Counter>,
    history: u64,
    history_mask: u64,
    btb: Vec<Option<(u64, u32)>>,
    ras: Vec<u32>,
    ras_capacity: usize,
    lookups: u64,
    mispredicts: u64,
}

impl BranchPredictorUnit {
    /// Creates a predictor from the front-end configuration.
    ///
    /// # Panics
    ///
    /// Panics if `gshare_bits` is zero or larger than 24, or if the BTB has
    /// zero entries.
    pub fn new(cfg: &FrontendConfig) -> Self {
        assert!(
            cfg.gshare_bits > 0 && cfg.gshare_bits <= 24,
            "gshare_bits must be in 1..=24"
        );
        assert!(cfg.btb_entries > 0, "BTB must have at least one entry");
        BranchPredictorUnit {
            counters: vec![Counter(2); 1 << cfg.gshare_bits],
            history: 0,
            history_mask: (1u64 << cfg.gshare_bits) - 1,
            btb: vec![None; cfg.btb_entries],
            ras: Vec::new(),
            ras_capacity: cfg.ras_entries.max(1),
            lookups: 0,
            mispredicts: 0,
        }
    }

    fn index(&self, pc: u32) -> usize {
        ((pc as u64 ^ self.history) & self.history_mask) as usize
    }

    fn btb_index(&self, pc: u32) -> usize {
        pc as usize % self.btb.len()
    }

    /// Predicts a conditional branch at `pc`. The caller decides the target
    /// (from the BTB entry or, once decoded, the static instruction).
    pub fn predict(&mut self, pc: u32) -> Prediction {
        self.lookups += 1;
        let taken = self.counters[self.index(pc)].predict();
        let target = self.btb_lookup(pc);
        Prediction { taken, target }
    }

    /// Looks up the BTB only (used for unconditional jumps).
    pub fn btb_lookup(&self, pc: u32) -> Option<u32> {
        match self.btb[self.btb_index(pc)] {
            Some((tag, target)) if tag == pc as u64 => Some(target),
            _ => None,
        }
    }

    /// Updates predictor state when a branch resolves.
    ///
    /// `mispredicted` is accounted for statistics; the direction counters and
    /// global history are updated with the actual outcome, and the BTB learns
    /// the target of taken branches.
    pub fn update(&mut self, pc: u32, taken: bool, target: u32, mispredicted: bool) {
        if mispredicted {
            self.mispredicts += 1;
        }
        let idx = self.index(pc);
        self.counters[idx].update(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
        if taken {
            let bidx = self.btb_index(pc);
            self.btb[bidx] = Some((pc as u64, target));
        }
    }

    /// Speculatively shifts the predicted direction into the history (done at
    /// prediction time by aggressive front ends). The simulator uses
    /// resolve-time updates only, but this is exposed for experimentation.
    pub fn speculate_history(&mut self, taken: bool) {
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
    }

    /// Current global-history register (checkpointed at runahead entry).
    pub fn history(&self) -> u64 {
        self.history
    }

    /// Restores a previously checkpointed global history.
    pub fn restore_history(&mut self, history: u64) {
        self.history = history & self.history_mask;
    }

    /// Pushes a return address (RAS checkpoint/restore is by value cloning).
    pub fn ras_push(&mut self, addr: u32) {
        if self.ras.len() == self.ras_capacity {
            self.ras.remove(0);
        }
        self.ras.push(addr);
    }

    /// Pops a return address.
    pub fn ras_pop(&mut self) -> Option<u32> {
        self.ras.pop()
    }

    /// Snapshot of the return address stack (checkpointed at runahead entry).
    pub fn ras_snapshot(&self) -> Vec<u32> {
        self.ras.clone()
    }

    /// Restores a return-address-stack snapshot.
    pub fn ras_restore(&mut self, snapshot: Vec<u32>) {
        self.ras = snapshot;
    }

    /// Number of direction predictions made.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Number of resolved branches reported as mispredicted.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> BranchPredictorUnit {
        BranchPredictorUnit::new(&FrontendConfig::default())
    }

    #[test]
    fn learns_always_taken_branch() {
        let mut p = unit();
        let pc = 42;
        for _ in 0..8 {
            let pred = p.predict(pc);
            p.update(pc, true, 7, !pred.taken);
        }
        assert!(p.predict(pc).taken);
        assert_eq!(p.btb_lookup(pc), Some(7));
    }

    #[test]
    fn learns_never_taken_branch() {
        let mut p = unit();
        let pc = 10;
        for _ in 0..8 {
            let pred = p.predict(pc);
            p.update(pc, false, 0, pred.taken);
        }
        assert!(!p.predict(pc).taken);
    }

    #[test]
    fn loop_branch_reaches_high_accuracy() {
        // Taken 15 times, then not taken once, repeatedly (a 16-iteration loop).
        let mut p = unit();
        let pc = 100;
        let mut correct = 0;
        let mut total = 0;
        for _trip in 0..200 {
            for i in 0..16 {
                let taken = i != 15;
                let pred = p.predict(pc);
                if pred.taken == taken {
                    correct += 1;
                }
                total += 1;
                p.update(pc, taken, 100, pred.taken != taken);
            }
        }
        let accuracy = correct as f64 / total as f64;
        assert!(accuracy > 0.85, "loop-branch accuracy too low: {accuracy}");
    }

    #[test]
    fn history_checkpoint_roundtrip() {
        let mut p = unit();
        for i in 0..10 {
            p.update(i, i % 2 == 0, i, false);
        }
        let h = p.history();
        p.update(99, true, 0, false);
        assert_ne!(p.history(), h);
        p.restore_history(h);
        assert_eq!(p.history(), h);
    }

    #[test]
    fn ras_push_pop_and_snapshot() {
        let mut p = unit();
        p.ras_push(1);
        p.ras_push(2);
        let snap = p.ras_snapshot();
        assert_eq!(p.ras_pop(), Some(2));
        p.ras_restore(snap);
        assert_eq!(p.ras_pop(), Some(2));
        assert_eq!(p.ras_pop(), Some(1));
        assert_eq!(p.ras_pop(), None);
    }

    #[test]
    fn ras_bounded_by_capacity() {
        let cfg = FrontendConfig {
            ras_entries: 2,
            ..FrontendConfig::default()
        };
        let mut p = BranchPredictorUnit::new(&cfg);
        p.ras_push(1);
        p.ras_push(2);
        p.ras_push(3);
        assert_eq!(p.ras_snapshot().len(), 2);
        assert_eq!(p.ras_pop(), Some(3));
    }

    #[test]
    fn mispredict_counter_tracks_reports() {
        let mut p = unit();
        p.update(5, true, 1, true);
        p.update(5, true, 1, false);
        assert_eq!(p.mispredicts(), 1);
        assert_eq!(p.lookups(), 0);
        p.predict(5);
        assert_eq!(p.lookups(), 1);
    }

    #[test]
    #[should_panic(expected = "gshare_bits")]
    fn zero_gshare_bits_rejected() {
        let cfg = FrontendConfig {
            gshare_bits: 0,
            ..FrontendConfig::default()
        };
        let _ = BranchPredictorUnit::new(&cfg);
    }
}
