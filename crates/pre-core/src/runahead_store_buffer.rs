//! Line-granular runahead store buffer.
//!
//! Runahead stores never reach memory: their bytes are captured here and
//! forwarded to younger runahead loads, then discarded wholesale at runahead
//! exit. The buffer is keyed by 64-byte line address; each line carries a
//! byte array plus a validity bitmask, so a load's forwarding check costs one
//! hash probe per touched line (naturally aligned accesses touch exactly
//! one) instead of one per byte as the former `HashMap<u64, u8>` did.
//!
//! Lines are pooled across [`RunaheadStoreBuffer::clear`] calls: clearing
//! moves the lines to a free pool and re-use re-initialises only the valid
//! mask, so the per-interval cost is proportional to the number of distinct
//! lines touched, not to the bytes stored.

use std::collections::HashMap;

/// Line size in bytes. Matches the cache-line granularity of `pre-mem`.
const LINE_BYTES: u64 = 64;

/// One buffered line: 64 data bytes plus a per-byte validity mask.
#[derive(Debug, Clone)]
struct Line {
    /// Bit `i` set ⇔ byte `i` of the line holds a runahead-stored value.
    valid: u64,
    bytes: [u8; LINE_BYTES as usize],
}

impl Line {
    fn empty() -> Self {
        Line {
            valid: 0,
            bytes: [0; LINE_BYTES as usize],
        }
    }
}

/// The result of probing the buffer for a load's byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferedRead {
    /// The buffered bytes, little-endian, with unbuffered positions zero.
    pub value: u64,
    /// Bit `i` set ⇔ byte `addr + i` was found in the buffer.
    pub valid_mask: u8,
}

impl BufferedRead {
    /// `true` when every byte of a `len`-byte read was buffered.
    pub fn is_complete(&self, len: u64) -> bool {
        let want = if len >= 8 { !0u8 } else { (1u8 << len) - 1 };
        self.valid_mask == want
    }

    /// `true` when no byte was buffered.
    pub fn is_empty(&self) -> bool {
        self.valid_mask == 0
    }

    /// Overlays the buffered bytes onto `underlying` (unbuffered positions
    /// keep the underlying byte).
    pub fn overlay(&self, underlying: u64) -> u64 {
        let mut spread = 0u64;
        for i in 0..8 {
            if self.valid_mask & (1 << i) != 0 {
                spread |= 0xFFu64 << (8 * i);
            }
        }
        (underlying & !spread) | (self.value & spread)
    }
}

/// A paged, line-granular byte buffer for runahead stores.
#[derive(Debug, Default)]
pub struct RunaheadStoreBuffer {
    lines: HashMap<u64, Line>,
    /// Cleared lines waiting for re-use (avoids re-zeroing 64-byte arrays).
    pool: Vec<Line>,
}

impl RunaheadStoreBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        RunaheadStoreBuffer::default()
    }

    /// Buffers `len` bytes of `value` (little-endian) at `addr`.
    pub fn store(&mut self, addr: u64, len: u64, value: u64) {
        debug_assert!((1..=8).contains(&len));
        let mut i = 0;
        while i < len {
            let byte_addr = addr + i;
            let line_addr = byte_addr & !(LINE_BYTES - 1);
            // Bytes remaining in this line (splits only on unaligned,
            // line-crossing stores, which natural alignment rules out).
            let in_line = (line_addr + LINE_BYTES - byte_addr).min(len - i);
            let pool = &mut self.pool;
            let line = self
                .lines
                .entry(line_addr)
                .or_insert_with(|| pool.pop().unwrap_or_else(Line::empty));
            let offset = (byte_addr - line_addr) as usize;
            for j in 0..in_line as usize {
                line.bytes[offset + j] = (value >> (8 * (i as usize + j))) as u8;
                line.valid |= 1 << (offset + j);
            }
            i += in_line;
        }
    }

    /// Probes the buffer for a `len`-byte read at `addr`.
    pub fn read(&self, addr: u64, len: u64) -> BufferedRead {
        debug_assert!((1..=8).contains(&len));
        let mut value = 0u64;
        let mut valid_mask = 0u8;
        let mut i = 0;
        while i < len {
            let byte_addr = addr + i;
            let line_addr = byte_addr & !(LINE_BYTES - 1);
            let in_line = (line_addr + LINE_BYTES - byte_addr).min(len - i);
            if let Some(line) = self.lines.get(&line_addr) {
                let offset = (byte_addr - line_addr) as usize;
                for j in 0..in_line as usize {
                    if line.valid & (1 << (offset + j)) != 0 {
                        value |= u64::from(line.bytes[offset + j]) << (8 * (i as usize + j));
                        valid_mask |= 1 << (i as usize + j);
                    }
                }
            }
            i += in_line;
        }
        BufferedRead { value, valid_mask }
    }

    /// Discards every buffered byte (runahead exit). Lines are recycled into
    /// the free pool.
    pub fn clear(&mut self) {
        for (_, mut line) in self.lines.drain() {
            line.valid = 0;
            self.pool.push(line);
        }
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Number of distinct lines currently holding buffered bytes.
    pub fn lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_then_read_round_trips() {
        let mut b = RunaheadStoreBuffer::new();
        b.store(0x1000, 8, 0x1122_3344_5566_7788);
        let r = b.read(0x1000, 8);
        assert!(r.is_complete(8));
        assert_eq!(r.value, 0x1122_3344_5566_7788);
    }

    #[test]
    fn partial_reads_report_valid_mask() {
        let mut b = RunaheadStoreBuffer::new();
        b.store(0x1002, 2, 0xBBAA);
        let r = b.read(0x1000, 8);
        assert!(!r.is_complete(8));
        assert!(!r.is_empty());
        assert_eq!(r.valid_mask, 0b0000_1100);
        assert_eq!(r.value, 0x0000_0000_BBAA_0000);
        // Overlay keeps underlying bytes where the buffer has none.
        assert_eq!(
            r.overlay(0x8877_6655_4433_2211),
            0x8877_6655_BBAA_2211,
            "buffered bytes win, the rest comes from underlying"
        );
    }

    #[test]
    fn unbuffered_read_is_empty() {
        let b = RunaheadStoreBuffer::new();
        let r = b.read(0x4000, 4);
        assert!(r.is_empty());
        assert!(!r.is_complete(4));
        assert_eq!(r.overlay(0xDEAD_BEEF), 0xDEAD_BEEF);
    }

    #[test]
    fn later_stores_overwrite_earlier_bytes() {
        let mut b = RunaheadStoreBuffer::new();
        b.store(0x2000, 8, u64::MAX);
        b.store(0x2000, 1, 0x42);
        let r = b.read(0x2000, 8);
        assert_eq!(r.value, 0xFFFF_FFFF_FFFF_FF42);
    }

    #[test]
    fn line_crossing_access_touches_both_lines() {
        let mut b = RunaheadStoreBuffer::new();
        // 4 bytes starting 2 bytes before a line boundary.
        b.store(0x103E, 4, 0xDDCC_BBAA);
        assert_eq!(b.lines(), 2);
        let r = b.read(0x103E, 4);
        assert!(r.is_complete(4));
        assert_eq!(r.value, 0xDDCC_BBAA);
        // Read each half from its own line.
        assert_eq!(b.read(0x103E, 2).value, 0xBBAA);
        assert_eq!(b.read(0x1040, 2).value, 0xDDCC);
    }

    #[test]
    fn clear_discards_and_recycles() {
        let mut b = RunaheadStoreBuffer::new();
        b.store(0x3000, 8, 123);
        b.clear();
        assert!(b.is_empty());
        assert!(b.read(0x3000, 8).is_empty());
        // Recycled line starts with an empty valid mask.
        b.store(0x5000, 1, 7);
        let r = b.read(0x5000, 8);
        assert_eq!(r.valid_mask, 0b1);
        assert_eq!(r.value, 7);
    }

    #[test]
    fn is_complete_for_all_widths() {
        let mut b = RunaheadStoreBuffer::new();
        for len in [1u64, 2, 4, 8] {
            b.store(0x6000, len, u64::MAX);
            assert!(b.read(0x6000, len).is_complete(len));
            b.clear();
        }
    }
}
