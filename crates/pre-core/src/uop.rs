//! Dynamic micro-ops: a static instruction plus the front-end's speculation
//! state for one dynamic instance.

use pre_model::isa::StaticInst;

/// A decoded dynamic micro-op travelling down the front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynUop {
    /// Program counter of the instruction.
    pub pc: u32,
    /// The static instruction.
    pub inst: StaticInst,
    /// Predicted direction for conditional branches (`true` for taken).
    pub predicted_taken: bool,
    /// The PC the front-end followed after this micro-op.
    pub predicted_next_pc: u32,
    /// Cycle at which the micro-op was fetched.
    pub fetched_at: u64,
}

impl DynUop {
    /// Creates a non-control micro-op whose predicted successor is `pc + 1`.
    pub fn sequential(pc: u32, inst: StaticInst, fetched_at: u64) -> Self {
        DynUop {
            pc,
            inst,
            predicted_taken: false,
            predicted_next_pc: pc + 1,
            fetched_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::isa::StaticInst;

    #[test]
    fn sequential_uop_predicts_fallthrough() {
        let uop = DynUop::sequential(7, StaticInst::nop(), 3);
        assert_eq!(uop.predicted_next_pc, 8);
        assert!(!uop.predicted_taken);
        assert_eq!(uop.fetched_at, 3);
    }
}
