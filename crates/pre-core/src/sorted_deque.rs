//! Binary search over a `VecDeque` whose elements are sorted by a `u64` key.
//!
//! The ROB, load queue and store queue all hold entries keyed by the
//! monotonically increasing micro-op id: entries are pushed in dispatch
//! order and only ever *removed* (from either end or the middle), so the
//! deque stays sorted by id at all times and an id lookup never needs a
//! linear scan. The search runs over the deque's two internal slices
//! without forcing it contiguous.

use std::collections::VecDeque;

/// Index of the element whose key equals `id`, if present.
///
/// Precondition: `deque` is sorted ascending by `key` (see the module
/// documentation for why the backing structures uphold this).
pub(crate) fn index_by_key<T>(
    deque: &VecDeque<T>,
    id: u64,
    key: impl Fn(&T) -> u64,
) -> Option<usize> {
    let (front, back) = deque.as_slices();
    match front.binary_search_by_key(&id, &key) {
        Ok(i) => Some(i),
        Err(_) => back
            .binary_search_by_key(&id, &key)
            .ok()
            .map(|i| front.len() + i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_elements_across_both_internal_slices() {
        let mut deque: VecDeque<u64> = VecDeque::with_capacity(4);
        // Force a wrap-around so as_slices returns two non-empty halves.
        deque.push_back(1);
        deque.push_back(2);
        deque.pop_front();
        deque.push_back(3);
        deque.push_back(4);
        deque.push_back(5);
        for (idx, &v) in deque.iter().enumerate() {
            assert_eq!(index_by_key(&deque, v, |&x| x), Some(idx));
        }
        assert_eq!(index_by_key(&deque, 1, |&x| x), None);
        assert_eq!(index_by_key(&deque, 99, |&x| x), None);
    }
}
