//! The Register Alias Table (RAT).
//!
//! Maps each of the 64 architectural registers (32 integer + 32 floating
//! point) to a physical register of the corresponding class. For PRE, every
//! entry is extended with the PC of the instruction that last produced the
//! register (Section 3.2): when an instruction hits in the SST, the PCs of
//! its producers are read from here and inserted into the SST, which is how
//! stalling slices are discovered iteratively.
//!
//! The RAT is checkpointed on runahead entry and restored at exit, and is
//! rolled back incrementally (youngest-first) on branch mispredictions.

use pre_model::reg::{ArchReg, PhysReg, NUM_ARCH_REGS, NUM_FP_ARCH_REGS, NUM_INT_ARCH_REGS};

/// A full copy of the RAT used for runahead checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatCheckpoint {
    map: [PhysReg; NUM_ARCH_REGS],
    producer_pc: [Option<u32>; NUM_ARCH_REGS],
}

/// The register alias table with PRE's producer-PC extension.
#[derive(Debug, Clone)]
pub struct RegisterAliasTable {
    map: [PhysReg; NUM_ARCH_REGS],
    producer_pc: [Option<u32>; NUM_ARCH_REGS],
    reads: u64,
    writes: u64,
}

impl RegisterAliasTable {
    /// Creates the initial RAT: integer register `i` maps to integer physical
    /// register `i`, floating-point register `i` maps to floating-point
    /// physical register `i`.
    pub fn new() -> Self {
        let mut map = [PhysReg(0); NUM_ARCH_REGS];
        for (flat, entry) in map.iter_mut().enumerate() {
            *entry = Self::identity_mapping(flat);
        }
        RegisterAliasTable {
            map,
            producer_pc: [None; NUM_ARCH_REGS],
            reads: 0,
            writes: 0,
        }
    }

    /// The identity mapping used at reset: each architectural register maps
    /// to the same-numbered physical register of its class.
    pub fn identity_mapping(flat: usize) -> PhysReg {
        if flat < NUM_INT_ARCH_REGS {
            PhysReg(flat as u16)
        } else {
            PhysReg((flat - NUM_INT_ARCH_REGS) as u16)
        }
    }

    /// Looks up the current mapping of `reg` (counts a RAT read).
    pub fn lookup(&mut self, reg: ArchReg) -> PhysReg {
        self.reads += 1;
        self.map[reg.flat_index()]
    }

    /// Looks up the current mapping without counting a port access.
    pub fn peek(&self, reg: ArchReg) -> PhysReg {
        self.map[reg.flat_index()]
    }

    /// The PC of the instruction that last renamed `reg`, if any.
    pub fn producer_pc(&self, reg: ArchReg) -> Option<u32> {
        self.producer_pc[reg.flat_index()]
    }

    /// Renames `reg` to `new`, produced by the instruction at `pc`.
    /// Returns the previous mapping and the previous producer PC.
    pub fn rename(&mut self, reg: ArchReg, new: PhysReg, pc: u32) -> (PhysReg, Option<u32>) {
        self.writes += 1;
        let flat = reg.flat_index();
        let old = self.map[flat];
        let old_pc = self.producer_pc[flat];
        self.map[flat] = new;
        self.producer_pc[flat] = Some(pc);
        (old, old_pc)
    }

    /// Restores a single mapping (used when rolling back a mispredicted
    /// branch by walking squashed instructions youngest-first).
    pub fn rollback(&mut self, reg: ArchReg, old: PhysReg, old_pc: Option<u32>) {
        let flat = reg.flat_index();
        self.map[flat] = old;
        self.producer_pc[flat] = old_pc;
    }

    /// Captures a checkpoint of the whole table (runahead entry).
    pub fn checkpoint(&self) -> RatCheckpoint {
        RatCheckpoint {
            map: self.map,
            producer_pc: self.producer_pc,
        }
    }

    /// Restores a previously captured checkpoint (runahead exit).
    pub fn restore(&mut self, checkpoint: &RatCheckpoint) {
        self.map = checkpoint.map;
        self.producer_pc = checkpoint.producer_pc;
    }

    /// Resets the table to the identity mapping and clears all producer PCs
    /// (used when rebuilding rename state from an architectural checkpoint
    /// after a flush-style runahead exit).
    pub fn reset_identity(&mut self) {
        for flat in 0..NUM_ARCH_REGS {
            self.map[flat] = Self::identity_mapping(flat);
            self.producer_pc[flat] = None;
        }
    }

    /// Iterates over `(architectural register, physical register)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ArchReg, PhysReg)> + '_ {
        self.map
            .iter()
            .enumerate()
            .map(|(flat, &p)| (ArchReg::from_flat_index(flat), p))
    }

    /// Number of RAT read-port accesses.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of RAT write-port accesses.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Storage of the producer-PC extension in bytes (4 bytes per entry,
    /// 256 bytes total — Section 3.6).
    pub fn extension_storage_bytes(&self) -> usize {
        NUM_ARCH_REGS * 4
    }
}

impl Default for RegisterAliasTable {
    fn default() -> Self {
        RegisterAliasTable::new()
    }
}

/// Number of floating-point architectural registers, re-exported for
/// convenience when sizing per-class structures from RAT indices.
pub const FP_ARCH_REGS: usize = NUM_FP_ARCH_REGS;

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::reg::RegClass;

    #[test]
    fn initial_mapping_is_identity_per_class() {
        let rat = RegisterAliasTable::new();
        assert_eq!(rat.peek(ArchReg::int(5)), PhysReg(5));
        assert_eq!(rat.peek(ArchReg::fp(5)), PhysReg(5));
        assert_eq!(ArchReg::int(5).class(), RegClass::Int);
    }

    #[test]
    fn rename_returns_old_mapping_and_records_producer() {
        let mut rat = RegisterAliasTable::new();
        let (old, old_pc) = rat.rename(ArchReg::int(3), PhysReg(40), 77);
        assert_eq!(old, PhysReg(3));
        assert_eq!(old_pc, None);
        assert_eq!(rat.peek(ArchReg::int(3)), PhysReg(40));
        assert_eq!(rat.producer_pc(ArchReg::int(3)), Some(77));
        let (old2, old_pc2) = rat.rename(ArchReg::int(3), PhysReg(41), 99);
        assert_eq!(old2, PhysReg(40));
        assert_eq!(old_pc2, Some(77));
    }

    #[test]
    fn rollback_restores_previous_state() {
        let mut rat = RegisterAliasTable::new();
        let (old, old_pc) = rat.rename(ArchReg::fp(2), PhysReg(50), 10);
        rat.rollback(ArchReg::fp(2), old, old_pc);
        assert_eq!(rat.peek(ArchReg::fp(2)), PhysReg(2));
        assert_eq!(rat.producer_pc(ArchReg::fp(2)), None);
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let mut rat = RegisterAliasTable::new();
        rat.rename(ArchReg::int(1), PhysReg(60), 5);
        let cp = rat.checkpoint();
        rat.rename(ArchReg::int(1), PhysReg(61), 6);
        rat.rename(ArchReg::int(2), PhysReg(62), 7);
        rat.restore(&cp);
        assert_eq!(rat.peek(ArchReg::int(1)), PhysReg(60));
        assert_eq!(rat.peek(ArchReg::int(2)), PhysReg(2));
        assert_eq!(rat.producer_pc(ArchReg::int(1)), Some(5));
    }

    #[test]
    fn reset_identity_clears_everything() {
        let mut rat = RegisterAliasTable::new();
        rat.rename(ArchReg::int(1), PhysReg(60), 5);
        rat.reset_identity();
        assert_eq!(rat.peek(ArchReg::int(1)), PhysReg(1));
        assert_eq!(rat.producer_pc(ArchReg::int(1)), None);
    }

    #[test]
    fn port_counters() {
        let mut rat = RegisterAliasTable::new();
        rat.lookup(ArchReg::int(0));
        rat.rename(ArchReg::int(0), PhysReg(33), 1);
        assert_eq!(rat.reads(), 1);
        assert_eq!(rat.writes(), 1);
    }

    #[test]
    fn extension_storage_matches_paper() {
        let rat = RegisterAliasTable::new();
        assert_eq!(rat.extension_storage_bytes(), 256);
    }

    #[test]
    fn iter_covers_all_arch_regs() {
        let rat = RegisterAliasTable::new();
        assert_eq!(rat.iter().count(), NUM_ARCH_REGS);
    }
}
