//! The unified issue queue.

use pre_model::isa::{OpClass, StaticInst};
use pre_model::reg::{PhysReg, RegClass};

/// One issue-queue entry: a micro-op waiting for its source operands.
#[derive(Debug, Clone)]
pub struct IqEntry {
    /// Micro-op identifier (shared with the ROB for normal micro-ops).
    pub id: u64,
    /// Program counter (needed for SST learning of runahead micro-ops).
    pub pc: u32,
    /// The static instruction.
    pub inst: StaticInst,
    /// Physical source registers, in operand order.
    pub srcs: Vec<(RegClass, PhysReg)>,
    /// Physical destination register, if any.
    pub dest: Option<(RegClass, PhysReg)>,
    /// Functional-unit class.
    pub class: OpClass,
    /// `true` for micro-ops injected by runahead execution (they have no ROB
    /// entry and are discarded at runahead exit).
    pub is_runahead: bool,
    /// Cycle at which the micro-op entered the queue.
    pub dispatched_at: u64,
    /// For stores: the address has been computed eagerly (address generation
    /// does not wait for the store data).
    pub store_addr_ready: bool,
}

/// The unified issue queue: a bounded, age-ordered collection of waiting
/// micro-ops.
#[derive(Debug, Clone)]
pub struct IssueQueue {
    entries: Vec<IqEntry>,
    capacity: usize,
    writes: u64,
    peak_occupancy: usize,
}

impl IssueQueue {
    /// Creates an issue queue with `capacity` entries (92 in Table 1).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "issue queue capacity must be non-zero");
        IssueQueue {
            entries: Vec::with_capacity(capacity),
            capacity,
            writes: 0,
            peak_occupancy: 0,
        }
    }

    /// `true` when no further micro-op can be dispatched.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the queue holds no micro-ops.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Free entries.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Fraction of entries currently free (sampled by Stat C at runahead
    /// entry).
    pub fn free_fraction(&self) -> f64 {
        self.free_slots() as f64 / self.capacity as f64
    }

    /// Inserts a micro-op.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full; dispatch must check
    /// [`IssueQueue::is_full`] first.
    pub fn insert(&mut self, entry: IqEntry) {
        assert!(!self.is_full(), "dispatch into a full issue queue");
        self.writes += 1;
        self.entries.push(entry);
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
    }

    /// Iterates over waiting micro-ops in age order (oldest first — entries
    /// are inserted in dispatch order and removal preserves order).
    pub fn iter(&self) -> impl Iterator<Item = &IqEntry> {
        self.entries.iter()
    }

    /// Mutable iteration in age order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut IqEntry> {
        self.entries.iter_mut()
    }

    /// Removes the entry for micro-op `id` (it issued or was squashed).
    /// Returns the removed entry.
    pub fn remove(&mut self, id: u64) -> Option<IqEntry> {
        let idx = self.entries.iter().position(|e| e.id == id)?;
        Some(self.entries.remove(idx))
    }

    /// Removes every entry matching the predicate and returns how many were
    /// removed (used for squashes and runahead exit).
    pub fn remove_where(&mut self, mut pred: impl FnMut(&IqEntry) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !pred(e));
        before - self.entries.len()
    }

    /// Discards all entries and returns how many there were.
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Number of insertions (issue-queue write-port accesses).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::isa::StaticInst;

    fn entry(id: u64, runahead: bool) -> IqEntry {
        IqEntry {
            id,
            pc: id as u32,
            inst: StaticInst::nop(),
            srcs: Vec::new(),
            dest: None,
            class: OpClass::Nop,
            is_runahead: runahead,
            dispatched_at: 0,
            store_addr_ready: false,
        }
    }

    #[test]
    fn insert_and_remove_by_id() {
        let mut iq = IssueQueue::new(4);
        iq.insert(entry(1, false));
        iq.insert(entry(2, false));
        assert_eq!(iq.len(), 2);
        assert!(iq.remove(1).is_some());
        assert!(iq.remove(1).is_none());
        assert_eq!(iq.len(), 1);
    }

    #[test]
    fn age_order_is_preserved_across_removals() {
        let mut iq = IssueQueue::new(8);
        for id in 1..=5 {
            iq.insert(entry(id, false));
        }
        iq.remove(3);
        let ids: Vec<_> = iq.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1, 2, 4, 5]);
    }

    #[test]
    fn remove_where_filters_runahead_entries() {
        let mut iq = IssueQueue::new(8);
        iq.insert(entry(1, false));
        iq.insert(entry(2, true));
        iq.insert(entry(3, true));
        let removed = iq.remove_where(|e| e.is_runahead);
        assert_eq!(removed, 2);
        assert_eq!(iq.len(), 1);
        assert_eq!(iq.iter().next().unwrap().id, 1);
    }

    #[test]
    fn occupancy_accounting() {
        let mut iq = IssueQueue::new(4);
        assert_eq!(iq.free_slots(), 4);
        iq.insert(entry(1, false));
        iq.insert(entry(2, false));
        assert_eq!(iq.free_slots(), 2);
        assert!((iq.free_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(iq.peak_occupancy(), 2);
        iq.clear();
        assert!(iq.is_empty());
        assert_eq!(iq.peak_occupancy(), 2);
    }

    #[test]
    #[should_panic(expected = "full issue queue")]
    fn insert_into_full_queue_panics() {
        let mut iq = IssueQueue::new(1);
        iq.insert(entry(1, false));
        iq.insert(entry(2, false));
    }
}
