//! The unified issue queue: a slab-backed store with an event-driven
//! wakeup/select scheduler.
//!
//! Entries live in fixed slots (stable indices, O(1) insert/remove); age
//! order is recovered from the monotonically increasing micro-op id. Instead
//! of rescanning the whole queue every cycle, the queue keeps:
//!
//! * a **producer-indexed wakeup table** (`PhysReg` → waiting consumer
//!   slots), mirroring a hardware scheduler's CAM/dependency lists: when a
//!   completion sets a register's ready bit, only that register's waiters
//!   are touched, each decrementing an unready-source counter;
//! * per-[`OpClass`], age-ordered **ready queues** fed by those counter
//!   decrements, from which select pops up to `issue_width` candidates in
//!   global age order against a fixed per-class port array; and
//! * a **store address-generation queue**: stores enqueue exactly when
//!   their base operand becomes ready, replacing the per-cycle full-queue
//!   scan.
//!
//! Slots carry a generation counter so wakeup tokens and ready-queue keys
//! that outlive their entry (squash, runahead exit) are dropped lazily
//! without walking any list eagerly.
//!
//! The queue also supports a *reference mode* (the `--reference-scheduler`
//! escape hatch) in which none of the event structures are maintained and
//! the pipeline falls back to scan-based select; both paths produce
//! bit-identical statistics, which `pre-sim`'s `scheduler_equivalence` test
//! asserts cell-by-cell.

use pre_model::isa::{OpClass, StaticInst};
use pre_model::reg::{PhysReg, RegClass};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A fixed-capacity inline list of physical source operands (at most two:
/// `src1`, `src2`). Keeps [`IqEntry`] `Copy` and dispatch allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrcList {
    regs: [(RegClass, PhysReg); 2],
    len: u8,
}

impl Default for SrcList {
    fn default() -> Self {
        SrcList {
            regs: [(RegClass::Int, PhysReg(0)); 2],
            len: 0,
        }
    }
}

impl SrcList {
    /// An empty source list.
    pub fn new() -> Self {
        SrcList::default()
    }

    /// Builds a list from up to two operands.
    ///
    /// # Panics
    ///
    /// Panics if `srcs` has more than two elements.
    pub fn from_slice(srcs: &[(RegClass, PhysReg)]) -> Self {
        let mut list = SrcList::new();
        for &(class, reg) in srcs {
            list.push(class, reg);
        }
        list
    }

    /// Appends an operand.
    ///
    /// # Panics
    ///
    /// Panics when both operand slots are already used.
    pub fn push(&mut self, class: RegClass, reg: PhysReg) {
        assert!(
            (self.len as usize) < self.regs.len(),
            "micro-ops have at most two sources"
        );
        self.regs[self.len as usize] = (class, reg);
        self.len += 1;
    }

    /// The operands as a slice, in operand order.
    pub fn as_slice(&self) -> &[(RegClass, PhysReg)] {
        &self.regs[..self.len as usize]
    }

    /// Iterates over the operands in operand order.
    pub fn iter(&self) -> impl Iterator<Item = &(RegClass, PhysReg)> {
        self.as_slice().iter()
    }

    /// The first operand (the base address for memory operations), if any.
    pub fn first(&self) -> Option<(RegClass, PhysReg)> {
        self.as_slice().first().copied()
    }

    /// The operand at `idx`, if present.
    pub fn get(&self, idx: usize) -> Option<(RegClass, PhysReg)> {
        self.as_slice().get(idx).copied()
    }

    /// Number of operands.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when the list holds no operands.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One issue-queue entry: a micro-op waiting for its source operands.
#[derive(Debug, Clone, Copy)]
pub struct IqEntry {
    /// Micro-op identifier (shared with the ROB for normal micro-ops).
    /// Monotonically increasing, so it doubles as the age for select.
    pub id: u64,
    /// ROB slot handle for normal micro-ops ([`crate::rob::INVALID_SLOT`]
    /// for runahead micro-ops, which have no ROB entry); lets writeback
    /// address the ROB without a search, validated against `id`.
    pub rob_slot: u32,
    /// Program counter (needed for SST learning of runahead micro-ops).
    pub pc: u32,
    /// The static instruction.
    pub inst: StaticInst,
    /// Physical source registers, in operand order.
    pub srcs: SrcList,
    /// Physical destination register, if any.
    pub dest: Option<(RegClass, PhysReg)>,
    /// Functional-unit class.
    pub class: OpClass,
    /// `true` for micro-ops injected by runahead execution (they have no ROB
    /// entry and are discarded at runahead exit).
    pub is_runahead: bool,
    /// Cycle at which the micro-op entered the queue.
    pub dispatched_at: u64,
    /// For stores: the address has been computed eagerly (address generation
    /// does not wait for the store data).
    pub store_addr_ready: bool,
}

/// A validated handle to a ready entry popped from the select queues; pass
/// it back to [`IssueQueue::requeue_ready`] when the entry could not issue
/// this cycle (memory-ordering or MSHR stall).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReadyKey {
    id: u64,
    slot: u32,
    gen: u32,
}

impl ReadyKey {
    /// The slot the ready entry occupies.
    pub fn slot(&self) -> u32 {
        self.slot
    }
}

/// One wakeup-table token: consumer slot, slot generation and which operand
/// of the consumer the watched register feeds (operand 0 is the store base,
/// which additionally triggers address generation). `counts` tokens
/// decrement the consumer's unready counter when they fire; non-counting
/// tokens only re-arm store address generation.
#[derive(Debug, Clone, Copy)]
struct WaitToken {
    slot: u32,
    gen: u32,
    src_idx: u8,
    counts: bool,
}

/// One slab slot.
#[derive(Debug, Clone, Default)]
struct Slot {
    /// Bumped every time the slot is freed; stale tokens/keys carry an older
    /// generation and are dropped on sight.
    gen: u32,
    /// Unready source-operand occurrences remaining (event mode only).
    unready: u8,
    /// A live [`ReadyKey`] for this slot sits in a ready queue. Freeing the
    /// slot while set leaves a stale key behind (see `stale_ready_keys`).
    ready_queued: bool,
    entry: Option<IqEntry>,
}

fn class_idx(class: RegClass) -> usize {
    match class {
        RegClass::Int => 0,
        RegClass::Fp => 1,
    }
}

/// The unified issue queue (see the module documentation).
#[derive(Debug, Clone)]
pub struct IssueQueue {
    slots: Vec<Slot>,
    /// Free slot indices (stack).
    free: Vec<u32>,
    len: usize,
    capacity: usize,
    writes: u64,
    peak_occupancy: usize,
    /// When set, the event structures below are not maintained and the
    /// pipeline uses the scan-based reference select.
    reference: bool,
    /// Producer-indexed wakeup lists: `wakeup[class][phys reg] -> tokens`.
    /// Grown on demand to the physical register file size.
    wakeup: [Vec<Vec<WaitToken>>; 2],
    /// Per-class ready queues, age-ordered (min-heap on the micro-op id).
    ready: [BinaryHeap<Reverse<ReadyKey>>; OpClass::COUNT],
    /// Stores whose base operand became ready and whose address generation
    /// has not run yet.
    agen: VecDeque<(u32, u32)>,
    /// Number of stale keys left in the ready queues by squashed entries.
    /// While zero — the common case — select can trust every queue head
    /// without validating it against its slot, which removes a random
    /// memory access per class from the per-issue-slot select loop.
    stale_ready_keys: usize,
    /// Bit `c` set ⇔ `ready[c]` is non-empty. Select iterates set bits
    /// instead of probing all `OpClass::COUNT` queues per issue slot.
    ready_mask: u16,
}

impl IssueQueue {
    /// Creates an issue queue with `capacity` entries (92 in Table 1).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "issue queue capacity must be non-zero");
        IssueQueue {
            slots: vec![Slot::default(); capacity],
            free: (0..capacity as u32).rev().collect(),
            len: 0,
            capacity,
            writes: 0,
            peak_occupancy: 0,
            reference: false,
            wakeup: [Vec::new(), Vec::new()],
            ready: std::array::from_fn(|_| BinaryHeap::new()),
            agen: VecDeque::new(),
            stale_ready_keys: 0,
            ready_mask: 0,
        }
    }

    /// Switches the queue into reference mode (scan-based select, no event
    /// structures). Must be called while the queue is empty.
    pub fn set_reference_mode(&mut self, reference: bool) {
        assert!(
            self.is_empty(),
            "scheduler mode is fixed after dispatch begins"
        );
        self.reference = reference;
    }

    /// `true` when the queue runs in reference (scan-based) mode.
    pub fn is_reference_mode(&self) -> bool {
        self.reference
    }

    /// `true` when no further micro-op can be dispatched.
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the queue holds no micro-ops.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Free entries.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.len
    }

    /// Fraction of entries currently free (sampled by Stat C at runahead
    /// entry).
    pub fn free_fraction(&self) -> f64 {
        self.free_slots() as f64 / self.capacity as f64
    }

    /// Inserts a micro-op. `ready` reports whether a physical register's
    /// value is available (the PRF ready bit); unready operands register
    /// wakeup tokens, fully ready entries go straight to the ready queues,
    /// and stores with a ready base operand enqueue for address generation.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full; dispatch must check
    /// [`IssueQueue::is_full`] first.
    pub fn insert(&mut self, entry: IqEntry, ready: impl Fn(RegClass, PhysReg) -> bool) {
        assert!(!self.is_full(), "dispatch into a full issue queue");
        self.writes += 1;
        let slot_idx = self.free.pop().expect("fullness checked above") as usize;
        let gen = self.slots[slot_idx].gen;
        let mut unready = 0u8;
        if !self.reference {
            for (i, &(class, reg)) in entry.srcs.as_slice().iter().enumerate() {
                if !ready(class, reg) {
                    unready += 1;
                    self.register_token(class, reg, slot_idx as u32, gen, i as u8, true);
                }
            }
            if entry.class == OpClass::Store && !entry.store_addr_ready {
                if let Some((class, reg)) = entry.srcs.first() {
                    if ready(class, reg) {
                        self.agen.push_back((slot_idx as u32, gen));
                    }
                }
            }
            if unready == 0 {
                self.ready_mask |= 1 << entry.class.index();
                self.ready[entry.class.index()].push(Reverse(ReadyKey {
                    id: entry.id,
                    slot: slot_idx as u32,
                    gen,
                }));
            }
        }
        let slot = &mut self.slots[slot_idx];
        slot.unready = unready;
        slot.ready_queued = !self.reference && unready == 0;
        slot.entry = Some(entry);
        self.len += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.len);
    }

    fn register_token(
        &mut self,
        class: RegClass,
        reg: PhysReg,
        slot: u32,
        gen: u32,
        src_idx: u8,
        counts: bool,
    ) {
        let table = &mut self.wakeup[class_idx(class)];
        if reg.index() >= table.len() {
            table.resize_with(reg.index() + 1, Vec::new);
        }
        table[reg.index()].push(WaitToken {
            slot,
            gen,
            src_idx,
            counts,
        });
    }

    /// Wakes the consumers of `reg`: called exactly when the register's
    /// ready bit transitions to set. Each waiting occurrence decrements its
    /// entry's unready counter; entries reaching zero enter the ready
    /// queues, and stores whose base operand woke enqueue for address
    /// generation.
    pub fn wake(&mut self, class: RegClass, reg: PhysReg) {
        if self.reference {
            return;
        }
        let ci = class_idx(class);
        if reg.index() >= self.wakeup[ci].len() {
            return;
        }
        // Take the token list out so its iteration does not alias the slot
        // and queue mutations below; nothing in the loop registers new
        // tokens, and the list (with its capacity) is handed back cleared.
        let mut tokens = std::mem::take(&mut self.wakeup[ci][reg.index()]);
        for &tok in &tokens {
            let slot = &mut self.slots[tok.slot as usize];
            if slot.gen != tok.gen {
                continue;
            }
            let Some(entry) = slot.entry.as_ref() else {
                continue;
            };
            if tok.counts {
                debug_assert!(slot.unready > 0, "woke an entry with no unready sources");
                slot.unready -= 1;
            }
            if entry.class == OpClass::Store && tok.src_idx == 0 && !entry.store_addr_ready {
                self.agen.push_back((tok.slot, tok.gen));
            }
            if tok.counts && slot.unready == 0 {
                let class = entry.class;
                let id = entry.id;
                slot.ready_queued = true;
                self.ready_mask |= 1 << class.index();
                self.ready[class.index()].push(Reverse(ReadyKey {
                    id,
                    slot: tok.slot,
                    gen: tok.gen,
                }));
            }
        }
        tokens.clear();
        self.wakeup[ci][reg.index()] = tokens;
    }

    /// Re-registers a popped-but-no-longer-ready entry. This covers a rare
    /// PRE-mode hazard: a source register can be reclaimed through the PRDQ
    /// and re-allocated to a younger runahead micro-op *after* this entry
    /// consumed its wakeup, clearing the ready bit again. The reference
    /// scheduler re-observes the cleared bit on its next scan; the event
    /// scheduler re-plants wakeup tokens here so the entry waits for the new
    /// producer — keeping both schedulers in lockstep.
    pub fn reregister(&mut self, key: ReadyKey, ready: impl Fn(RegClass, PhysReg) -> bool) {
        let slot_idx = key.slot as usize;
        debug_assert_eq!(
            self.slots[slot_idx].gen, key.gen,
            "reregister of a stale key"
        );
        let entry = self.slots[slot_idx]
            .entry
            .expect("reregister of a freed slot");
        let mut unready = 0u8;
        for (i, &(class, reg)) in entry.srcs.as_slice().iter().enumerate() {
            if !ready(class, reg) {
                unready += 1;
                self.register_token(class, reg, key.slot, key.gen, i as u8, true);
            }
        }
        debug_assert!(unready > 0, "reregister of a genuinely ready entry");
        self.slots[slot_idx].unready = unready;
    }

    /// Re-arms store address generation for the store in `slot` (its base
    /// register was reclaimed and re-allocated before the agen pass ran):
    /// the next wake of the base enqueues it again without touching the
    /// unready counter.
    pub fn watch_store_base(&mut self, slot: u32) {
        let gen = self.slots[slot as usize].gen;
        let Some(entry) = self.slots[slot as usize].entry else {
            return;
        };
        let Some((class, reg)) = entry.srcs.first() else {
            return;
        };
        self.register_token(class, reg, slot, gen, 0, false);
    }

    /// Pops the oldest ready entry whose class still has an issue port
    /// (`ports[class.index()] > 0`), returning its key and a copy of the
    /// entry. Stale keys (the entry issued or was squashed since it became
    /// ready) are discarded on the way.
    pub fn pop_ready(&mut self, ports: &[usize; OpClass::COUNT]) -> Option<(ReadyKey, IqEntry)> {
        let mut best: Option<(u64, usize)> = None;
        let mut mask = self.ready_mask;
        if self.stale_ready_keys == 0 {
            // Every queued key is live: compare queue heads by id alone,
            // without validating each against its slot.
            while mask != 0 {
                let ci = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if ports[ci] == 0 {
                    continue;
                }
                let Some(&Reverse(key)) = self.ready[ci].peek() else {
                    unreachable!("ready_mask bit set for an empty queue")
                };
                if best.map_or(true, |(best_id, _)| key.id < best_id) {
                    best = Some((key.id, ci));
                }
            }
        } else {
            while mask != 0 {
                let ci = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if ports[ci] == 0 {
                    continue;
                }
                let heap = &mut self.ready[ci];
                while let Some(&Reverse(key)) = heap.peek() {
                    let slot = &self.slots[key.slot as usize];
                    if slot.gen == key.gen && slot.entry.is_some() {
                        let older = match best {
                            None => true,
                            Some((best_id, _)) => key.id < best_id,
                        };
                        if older {
                            best = Some((key.id, ci));
                        }
                        break;
                    }
                    heap.pop();
                    self.stale_ready_keys -= 1;
                }
                if heap.is_empty() {
                    self.ready_mask &= !(1 << ci);
                }
            }
        }
        let (_, ci) = best?;
        let Reverse(key) = self.ready[ci].pop().expect("validated head");
        if self.ready[ci].is_empty() {
            self.ready_mask &= !(1 << ci);
        }
        let slot = &mut self.slots[key.slot as usize];
        debug_assert_eq!(slot.gen, key.gen, "popped a stale ready key");
        slot.ready_queued = false;
        let entry = slot.entry.expect("validated head");
        debug_assert_eq!(slot.unready, 0);
        Some((key, entry))
    }

    /// Puts a key popped by [`IssueQueue::pop_ready`] back (the entry stays
    /// ready but could not issue this cycle).
    pub fn requeue_ready(&mut self, key: ReadyKey) {
        let slot = &mut self.slots[key.slot as usize];
        debug_assert_eq!(slot.gen, key.gen, "requeue of a stale ready key");
        let class = slot.entry.as_ref().expect("requeue of a freed slot").class;
        slot.ready_queued = true;
        self.ready_mask |= 1 << class.index();
        self.ready[class.index()].push(Reverse(key));
    }

    /// Pops the next store awaiting address generation, returning its slot
    /// and a copy of the entry. Stale events are discarded.
    pub fn pop_agen(&mut self) -> Option<(u32, IqEntry)> {
        while let Some((slot_idx, gen)) = self.agen.pop_front() {
            let slot = &self.slots[slot_idx as usize];
            if slot.gen != gen {
                continue;
            }
            let Some(entry) = slot.entry else { continue };
            if entry.store_addr_ready {
                continue;
            }
            return Some((slot_idx, entry));
        }
        None
    }

    /// Marks the store in `slot` as having generated its address.
    pub fn mark_store_addr_ready(&mut self, slot: u32) {
        if let Some(entry) = self.slots[slot as usize].entry.as_mut() {
            entry.store_addr_ready = true;
        }
    }

    /// Purges stale heads from the select structures and reports whether
    /// the next issue stage has anything at all to do. Used by the
    /// quiescent-cycle fast-forward.
    pub fn select_idle(&mut self) -> bool {
        while let Some(&(slot_idx, gen)) = self.agen.front() {
            let slot = &self.slots[slot_idx as usize];
            if slot.gen == gen && slot.entry.is_some_and(|e| !e.store_addr_ready) {
                return false;
            }
            self.agen.pop_front();
        }
        let mut mask = self.ready_mask;
        while mask != 0 {
            let ci = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let heap = &mut self.ready[ci];
            while let Some(&Reverse(key)) = heap.peek() {
                let slot = &self.slots[key.slot as usize];
                if slot.gen == key.gen && slot.entry.is_some() {
                    return false;
                }
                heap.pop();
                self.stale_ready_keys -= 1;
            }
            // Only stale keys were queued; the class is empty after all.
            self.ready_mask &= !(1 << ci);
        }
        true
    }

    /// Iterates over waiting micro-ops in **slot order** (arbitrary with
    /// respect to age). Use the micro-op id to recover age where it
    /// matters.
    pub fn iter(&self) -> impl Iterator<Item = &IqEntry> {
        self.slots.iter().filter_map(|s| s.entry.as_ref())
    }

    /// Mutable iteration in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut IqEntry> {
        self.slots.iter_mut().filter_map(|s| s.entry.as_mut())
    }

    /// Frees one slot (the entry issued or was squashed).
    fn free_slot(&mut self, slot_idx: usize) -> IqEntry {
        let slot = &mut self.slots[slot_idx];
        let entry = slot.entry.take().expect("freeing an empty slot");
        slot.gen = slot.gen.wrapping_add(1);
        slot.unready = 0;
        if slot.ready_queued {
            // Its key stays behind in a ready queue; select must validate
            // heads until the stragglers are popped and discarded.
            slot.ready_queued = false;
            self.stale_ready_keys += 1;
        }
        self.free.push(slot_idx as u32);
        self.len -= 1;
        entry
    }

    /// Removes the entry in `slot` (it issued). Outstanding wakeup tokens
    /// and ready keys die against the bumped generation.
    pub fn remove_slot(&mut self, slot: u32) -> IqEntry {
        self.free_slot(slot as usize)
    }

    /// Removes the entry for micro-op `id` (it issued or was squashed).
    /// Returns the removed entry.
    pub fn remove(&mut self, id: u64) -> Option<IqEntry> {
        let idx = self
            .slots
            .iter()
            .position(|s| s.entry.as_ref().is_some_and(|e| e.id == id))?;
        Some(self.free_slot(idx))
    }

    /// Removes every entry matching the predicate and returns how many were
    /// removed (used for squashes and runahead exit).
    pub fn remove_where(&mut self, mut pred: impl FnMut(&IqEntry) -> bool) -> usize {
        let mut removed = 0;
        for idx in 0..self.slots.len() {
            if self.slots[idx].entry.as_ref().is_some_and(&mut pred) {
                self.free_slot(idx);
                removed += 1;
            }
        }
        removed
    }

    /// Discards all entries and event state, and returns how many entries
    /// there were.
    pub fn clear(&mut self) -> usize {
        let n = self.len;
        for idx in 0..self.slots.len() {
            if self.slots[idx].entry.is_some() {
                self.free_slot(idx);
            }
        }
        for table in &mut self.wakeup {
            for list in table.iter_mut() {
                list.clear();
            }
        }
        for heap in &mut self.ready {
            heap.clear();
        }
        self.agen.clear();
        self.stale_ready_keys = 0;
        self.ready_mask = 0;
        n
    }

    /// Number of insertions (issue-queue write-port accesses).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::isa::StaticInst;

    fn entry(id: u64, runahead: bool) -> IqEntry {
        IqEntry {
            id,
            rob_slot: crate::rob::INVALID_SLOT,
            pc: id as u32,
            inst: StaticInst::nop(),
            srcs: SrcList::new(),
            dest: None,
            class: OpClass::Nop,
            is_runahead: runahead,
            dispatched_at: 0,
            store_addr_ready: false,
        }
    }

    fn all_ready(_: RegClass, _: PhysReg) -> bool {
        true
    }

    const NOP_PORTS: [usize; OpClass::COUNT] = [4; OpClass::COUNT];

    #[test]
    fn insert_and_remove_by_id() {
        let mut iq = IssueQueue::new(4);
        iq.insert(entry(1, false), all_ready);
        iq.insert(entry(2, false), all_ready);
        assert_eq!(iq.len(), 2);
        assert!(iq.remove(1).is_some());
        assert!(iq.remove(1).is_none());
        assert_eq!(iq.len(), 1);
    }

    #[test]
    fn slot_reuse_preserves_membership() {
        let mut iq = IssueQueue::new(8);
        for id in 1..=5 {
            iq.insert(entry(id, false), all_ready);
        }
        iq.remove(3);
        let mut ids: Vec<_> = iq.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 4, 5]);
    }

    #[test]
    fn remove_where_filters_runahead_entries() {
        let mut iq = IssueQueue::new(8);
        iq.insert(entry(1, false), all_ready);
        iq.insert(entry(2, true), all_ready);
        iq.insert(entry(3, true), all_ready);
        let removed = iq.remove_where(|e| e.is_runahead);
        assert_eq!(removed, 2);
        assert_eq!(iq.len(), 1);
        assert_eq!(iq.iter().next().unwrap().id, 1);
    }

    #[test]
    fn occupancy_accounting() {
        let mut iq = IssueQueue::new(4);
        assert_eq!(iq.free_slots(), 4);
        iq.insert(entry(1, false), all_ready);
        iq.insert(entry(2, false), all_ready);
        assert_eq!(iq.free_slots(), 2);
        assert!((iq.free_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(iq.peak_occupancy(), 2);
        iq.clear();
        assert!(iq.is_empty());
        assert_eq!(iq.peak_occupancy(), 2);
    }

    #[test]
    #[should_panic(expected = "full issue queue")]
    fn insert_into_full_queue_panics() {
        let mut iq = IssueQueue::new(1);
        iq.insert(entry(1, false), all_ready);
        iq.insert(entry(2, false), all_ready);
    }

    #[test]
    fn ready_at_insert_pops_in_age_order() {
        let mut iq = IssueQueue::new(8);
        for id in [5, 2, 9, 1] {
            iq.insert(entry(id, false), all_ready);
        }
        let mut popped = Vec::new();
        while let Some((key, e)) = iq.pop_ready(&NOP_PORTS) {
            popped.push(e.id);
            iq.remove_slot(key.slot());
        }
        assert_eq!(popped, vec![1, 2, 5, 9]);
        assert!(iq.select_idle());
    }

    #[test]
    fn wakeup_counts_source_occurrences() {
        let mut iq = IssueQueue::new(8);
        let r1 = (RegClass::Int, PhysReg(7));
        let r2 = (RegClass::Int, PhysReg(9));
        let mut e = entry(1, false);
        e.class = OpClass::IntAlu;
        e.srcs = SrcList::from_slice(&[r1, r2]);
        iq.insert(e, |_, _| false);
        assert!(iq.pop_ready(&NOP_PORTS).is_none());
        iq.wake(RegClass::Int, PhysReg(7));
        assert!(iq.pop_ready(&NOP_PORTS).is_none());
        iq.wake(RegClass::Int, PhysReg(9));
        let (key, woken) = iq.pop_ready(&NOP_PORTS).expect("both sources woke");
        assert_eq!(woken.id, 1);
        iq.remove_slot(key.slot());
    }

    #[test]
    fn duplicate_source_needs_one_wake() {
        let mut iq = IssueQueue::new(8);
        let r = (RegClass::Int, PhysReg(3));
        let mut e = entry(4, false);
        e.class = OpClass::IntAlu;
        e.srcs = SrcList::from_slice(&[r, r]);
        iq.insert(e, |_, _| false);
        iq.wake(RegClass::Int, PhysReg(3));
        assert!(iq.pop_ready(&NOP_PORTS).is_some());
    }

    #[test]
    fn port_exhaustion_skips_class_but_not_others() {
        let mut iq = IssueQueue::new(8);
        let mut load = entry(1, false);
        load.class = OpClass::Load;
        let mut alu = entry(2, false);
        alu.class = OpClass::IntAlu;
        iq.insert(load, all_ready);
        iq.insert(alu, all_ready);
        let mut ports = [4usize; OpClass::COUNT];
        ports[OpClass::Load.index()] = 0;
        let (key, e) = iq.pop_ready(&ports).expect("ALU port available");
        assert_eq!(e.id, 2);
        // The load stays queued for a later cycle.
        iq.remove_slot(key.slot());
        ports[OpClass::Load.index()] = 1;
        let (_, e) = iq.pop_ready(&ports).expect("load pops once ported");
        assert_eq!(e.id, 1);
    }

    #[test]
    fn requeue_keeps_entry_ready_and_aged() {
        let mut iq = IssueQueue::new(8);
        iq.insert(entry(3, false), all_ready);
        iq.insert(entry(8, false), all_ready);
        let (key, e) = iq.pop_ready(&NOP_PORTS).unwrap();
        assert_eq!(e.id, 3);
        iq.requeue_ready(key);
        let (_, e) = iq.pop_ready(&NOP_PORTS).unwrap();
        assert_eq!(e.id, 3, "requeued entry keeps its age priority");
    }

    #[test]
    fn squashed_entries_leave_stale_keys_that_are_skipped() {
        let mut iq = IssueQueue::new(8);
        iq.insert(entry(1, false), all_ready);
        iq.insert(entry(2, false), all_ready);
        iq.remove(1);
        // Slot of id 1 is reused by id 5; the stale ready key for id 1 must
        // not resurface as id 5's.
        iq.insert(entry(5, false), all_ready);
        let mut popped = Vec::new();
        while let Some((key, e)) = iq.pop_ready(&NOP_PORTS) {
            popped.push(e.id);
            iq.remove_slot(key.slot());
        }
        assert_eq!(popped, vec![2, 5]);
    }

    #[test]
    fn store_base_wake_triggers_address_generation() {
        let mut iq = IssueQueue::new(8);
        let base = (RegClass::Int, PhysReg(11));
        let data = (RegClass::Int, PhysReg(12));
        let mut st = entry(6, false);
        st.class = OpClass::Store;
        st.srcs = SrcList::from_slice(&[base, data]);
        iq.insert(st, |_, _| false);
        assert!(iq.pop_agen().is_none(), "base not ready yet");
        iq.wake(RegClass::Int, PhysReg(12));
        assert!(iq.pop_agen().is_none(), "data wake must not trigger agen");
        iq.wake(RegClass::Int, PhysReg(11));
        let (slot, e) = iq.pop_agen().expect("base woke");
        assert_eq!(e.id, 6);
        iq.mark_store_addr_ready(slot);
        assert!(iq.pop_agen().is_none(), "agen runs once per store");
    }

    #[test]
    fn store_with_ready_base_enqueues_agen_at_insert() {
        let mut iq = IssueQueue::new(8);
        let base = (RegClass::Int, PhysReg(1));
        let data = (RegClass::Int, PhysReg(2));
        let mut st = entry(7, false);
        st.class = OpClass::Store;
        st.srcs = SrcList::from_slice(&[base, data]);
        iq.insert(st, |_, reg| reg == PhysReg(1));
        let (slot, e) = iq.pop_agen().expect("ready base enqueues at insert");
        assert_eq!(e.id, 7);
        iq.mark_store_addr_ready(slot);
        assert!(!iq.select_idle() || iq.pop_ready(&NOP_PORTS).is_none());
    }

    #[test]
    fn reference_mode_maintains_no_event_state() {
        let mut iq = IssueQueue::new(8);
        iq.set_reference_mode(true);
        iq.insert(entry(1, false), all_ready);
        assert!(iq.pop_ready(&NOP_PORTS).is_none());
        assert!(iq.pop_agen().is_none());
        assert!(iq.select_idle());
        assert_eq!(iq.len(), 1);
    }
}
