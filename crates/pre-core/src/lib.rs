//! Execution-driven out-of-order core simulator with integrated runahead
//! execution.
//!
//! The pipeline models the paper's Table 1 baseline: an 8-stage front-end
//! feeding a 4-wide rename/dispatch/issue/commit back-end with a 192-entry
//! ROB, a 92-entry unified issue queue, 64-entry load and store queues and
//! 168 + 168 physical registers, connected to the `pre-mem` cache hierarchy.
//! Register values are real (execution-driven simulation), so runahead
//! execution computes real prefetch addresses.
//!
//! The same pipeline implements all five configurations of the paper's
//! evaluation, selected by [`pre_runahead::Technique`]:
//!
//! * the out-of-order baseline (no runahead),
//! * traditional runahead (flush-style, with the Mutlu et al. entry
//!   optimizations),
//! * the runahead buffer (single-chain replay, front end gated),
//! * PRE (SST-filtered runahead using free back-end resources, no flush), and
//! * PRE + EMQ (additionally buffering runahead micro-ops for re-dispatch).
//!
//! # Example
//!
//! ```
//! use pre_core::OooCore;
//! use pre_model::config::SimConfig;
//! use pre_model::isa::{AluOp, StaticInst};
//! use pre_model::program::Program;
//! use pre_model::reg::ArchReg;
//! use pre_runahead::Technique;
//!
//! // A tiny program: r1 = 1 + 2.
//! let mut program = Program::new("tiny");
//! program.insts = vec![
//!     StaticInst::load_imm(ArchReg::int(1), 1),
//!     StaticInst::int_alu_imm(AluOp::Add, ArchReg::int(1), ArchReg::int(1), 2),
//! ];
//! let mut core = OooCore::new(&SimConfig::haswell_like(), &program, Technique::OutOfOrder)?;
//! core.run(1_000, 10_000);
//! assert_eq!(core.arch_reg(ArchReg::int(1)), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod freelist;
pub mod iq;
pub mod lsq;
pub mod pipeline;
pub mod rat;
pub mod regfile;
pub mod rename;
pub mod rob;
pub mod runahead_store_buffer;
mod sorted_deque;
pub mod uop;
pub mod warm;

pub use pipeline::OooCore;
pub use rename::{DestRename, RenameCheckpoint, RenameSubsystem};
pub use uop::DynUop;
pub use warm::WarmedState;
