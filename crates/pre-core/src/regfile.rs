//! The physical register file, with values, ready bits and the INV bits used
//! by runahead execution.

use pre_model::reg::PhysReg;

/// A physical register file for one register class.
///
/// Because the simulator is execution-driven, each register holds a real
/// 64-bit value. The `ready` bit implements wakeup (a consumer may issue once
/// all its sources are ready); the `inv` bit implements runahead's INV
/// propagation — results that transitively depend on the stalling load's
/// missing data are invalid and must not be used to generate prefetches.
#[derive(Debug, Clone)]
pub struct PhysRegFile {
    values: Vec<u64>,
    ready: Vec<bool>,
    inv: Vec<bool>,
    reads: u64,
    writes: u64,
}

impl PhysRegFile {
    /// Creates a register file of `capacity` registers. The first `reserved`
    /// registers (the initial architectural mappings) start ready with value
    /// zero; the rest start not-ready.
    pub fn new(capacity: usize, reserved: usize) -> Self {
        let mut ready = vec![false; capacity];
        for r in ready.iter_mut().take(reserved) {
            *r = true;
        }
        PhysRegFile {
            values: vec![0; capacity],
            ready,
            inv: vec![false; capacity],
            reads: 0,
            writes: 0,
        }
    }

    /// Number of physical registers.
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    /// Reads a register's value (counts a PRF read port access).
    pub fn read(&mut self, reg: PhysReg) -> u64 {
        self.reads += 1;
        self.values[reg.index()]
    }

    /// Reads a register's value without counting an access (used for
    /// snapshots and debugging).
    pub fn peek(&self, reg: PhysReg) -> u64 {
        self.values[reg.index()]
    }

    /// Writes a register's value (counts a PRF write port access). The ready
    /// bit is *not* set — completion does that at writeback time.
    pub fn write(&mut self, reg: PhysReg, value: u64) {
        self.writes += 1;
        self.values[reg.index()] = value;
    }

    /// `true` once the producer of `reg` has completed.
    pub fn is_ready(&self, reg: PhysReg) -> bool {
        self.ready[reg.index()]
    }

    /// Marks `reg` ready (producer completed).
    pub fn set_ready(&mut self, reg: PhysReg, ready: bool) {
        self.ready[reg.index()] = ready;
    }

    /// `true` when the value in `reg` is invalid (runahead INV propagation).
    pub fn is_inv(&self, reg: PhysReg) -> bool {
        self.inv[reg.index()]
    }

    /// Marks `reg` invalid or valid.
    pub fn set_inv(&mut self, reg: PhysReg, inv: bool) {
        self.inv[reg.index()] = inv;
    }

    /// Resets the INV bit of every register (runahead exit).
    pub fn clear_all_inv(&mut self) {
        for b in &mut self.inv {
            *b = false;
        }
    }

    /// Prepares a newly allocated destination register: not ready, not
    /// invalid.
    pub fn reset_for_allocation(&mut self, reg: PhysReg) {
        self.ready[reg.index()] = false;
        self.inv[reg.index()] = false;
    }

    /// Directly initializes a register as holding an architectural value:
    /// value set, ready, not invalid. Used when (re)building the rename state
    /// from an architectural checkpoint.
    pub fn init_arch_value(&mut self, reg: PhysReg, value: u64) {
        self.values[reg.index()] = value;
        self.ready[reg.index()] = true;
        self.inv[reg.index()] = false;
    }

    /// Number of read-port accesses.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write-port accesses.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_registers_start_ready() {
        let rf = PhysRegFile::new(8, 4);
        assert!(rf.is_ready(PhysReg(0)));
        assert!(rf.is_ready(PhysReg(3)));
        assert!(!rf.is_ready(PhysReg(4)));
    }

    #[test]
    fn write_then_ready_then_read() {
        let mut rf = PhysRegFile::new(8, 0);
        rf.write(PhysReg(5), 99);
        assert!(!rf.is_ready(PhysReg(5)));
        rf.set_ready(PhysReg(5), true);
        assert_eq!(rf.read(PhysReg(5)), 99);
        assert_eq!(rf.reads(), 1);
        assert_eq!(rf.writes(), 1);
    }

    #[test]
    fn inv_bits_set_and_cleared() {
        let mut rf = PhysRegFile::new(4, 0);
        rf.set_inv(PhysReg(1), true);
        assert!(rf.is_inv(PhysReg(1)));
        rf.clear_all_inv();
        assert!(!rf.is_inv(PhysReg(1)));
    }

    #[test]
    fn allocation_reset_clears_state() {
        let mut rf = PhysRegFile::new(4, 4);
        rf.set_inv(PhysReg(2), true);
        rf.reset_for_allocation(PhysReg(2));
        assert!(!rf.is_ready(PhysReg(2)));
        assert!(!rf.is_inv(PhysReg(2)));
    }

    #[test]
    fn init_arch_value_makes_register_architectural() {
        let mut rf = PhysRegFile::new(4, 0);
        rf.init_arch_value(PhysReg(1), 42);
        assert!(rf.is_ready(PhysReg(1)));
        assert_eq!(rf.peek(PhysReg(1)), 42);
    }

    #[test]
    fn peek_does_not_count_reads() {
        let mut rf = PhysRegFile::new(4, 4);
        rf.write(PhysReg(0), 5);
        let before = rf.reads();
        assert_eq!(rf.peek(PhysReg(0)), 5);
        assert_eq!(rf.reads(), before);
    }
}
