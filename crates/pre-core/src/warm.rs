//! Configuration-dependent warmed micro-architectural state.
//!
//! A [`pre_model::snapshot::SimSnapshot`] is configuration-independent: it
//! carries the functional state after warm-up plus the [`WarmTrace`] of
//! cache-relevant events. [`WarmedState`] is the configuration-*dependent*
//! half — the cache hierarchy and branch predictor a particular geometry
//! derives from that trace. Sweep drivers build one `WarmedState` per
//! distinct memory-hierarchy configuration and clone it into every core
//! forked from the snapshot ([`crate::OooCore::from_snapshot`]), so a
//! 20-point ROB/EMQ/SST sweep replays the trace once, not 20 times.
//!
//! Warming never touches statistics: the warm replay APIs in `pre-mem`
//! change only tags, LRU order and dirty bits, and the predictor is trained
//! through its non-misprediction update path. A warmed run therefore reports
//! exactly the work it did after the snapshot point.

use pre_frontend::BranchPredictorUnit;
use pre_mem::MemoryHierarchy;
use pre_model::config::SimConfig;
use pre_model::snapshot::WarmTrace;

/// Warmed caches and branch predictor for one memory-hierarchy + frontend
/// configuration, derived from a snapshot's [`WarmTrace`].
#[derive(Debug, Clone)]
pub struct WarmedState {
    /// The warmed cache hierarchy (statistics untouched, no fills in
    /// flight).
    pub mem_hier: MemoryHierarchy,
    /// The warmed branch predictor (direction counters, BTB and history
    /// trained on the warm-up branch stream).
    pub predictor: BranchPredictorUnit,
}

impl WarmedState {
    /// Replays `trace` against the geometry described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if any cache geometry in `cfg` is invalid; validate the
    /// configuration first (core construction does).
    pub fn build(cfg: &SimConfig, trace: &WarmTrace) -> Self {
        let mut mem_hier = MemoryHierarchy::new(cfg);
        mem_hier.warm_replay(trace);
        let mut predictor = BranchPredictorUnit::new(&cfg.frontend);
        for b in &trace.branches {
            predictor.update(b.pc, b.taken, b.target, false);
        }
        WarmedState {
            mem_hier,
            predictor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::stats::SimStats;

    #[test]
    fn build_warms_caches_and_predictor_without_stats() {
        let cfg = SimConfig::haswell_like();
        let mut trace = WarmTrace::new();
        trace.record_ifetch(0);
        trace.record_load(0x40_000);
        for _ in 0..32 {
            trace.record_branch(7, true, 3);
        }
        let mut warmed = WarmedState::build(&cfg, &trace);
        assert_eq!(
            warmed.mem_hier.probe_data(0x40_000),
            Some(pre_mem::HitLevel::L1)
        );
        let mut stats = SimStats::new();
        warmed.mem_hier.export_stats(&mut stats);
        assert_eq!(stats, SimStats::new());
        assert_eq!(warmed.predictor.lookups(), 0);
        assert_eq!(warmed.predictor.mispredicts(), 0);
        // The trained predictor now predicts the warm-up branch taken.
        let pred = warmed.predictor.predict(7);
        assert!(pred.taken);
    }
}
