//! The rename subsystem: one owner for every rename-adjacent structure.
//!
//! Register allocation, mapping, value storage and — crucially — *every*
//! path that returns a physical register to a free list used to be smeared
//! across the pipeline stages. [`RenameSubsystem`] centralizes that state
//! (RAT, per-class free lists, per-class physical register files and the
//! PRDQ) behind a single reclamation interface with four entry points:
//!
//! * [`RenameSubsystem::free_committed`] — normal commit frees the previous
//!   mapping of the retiring instruction's destination.
//! * [`RenameSubsystem::rollback_squashed`] — branch recovery restores the
//!   previous mapping and frees the squashed instruction's own destination.
//! * [`RenameSubsystem::drain_prdq`] — precise runahead's in-order
//!   reclamation of registers allocated by runahead micro-ops (Section 3.4
//!   of the paper).
//! * [`RenameSubsystem::seed_eager`] — the eager drain: previous mappings
//!   of the *stalled window* whose producer has completed and whose last
//!   consumer has issued are dead, so they are seeded into the PRDQ and
//!   freed immediately instead of waiting for a commit that cannot happen
//!   while the window is stalled. This is what gives PRE free destination
//!   registers on integer-only kernels that exhaust the integer PRF at the
//!   full-window stall (the `asm-box-blur` reproduction finding).
//!
//! Checkpoint/restore ([`RenameSubsystem::begin_runahead_interval`] /
//! [`RenameSubsystem::end_runahead_interval`]) snapshots the RAT and the
//! free lists together, so a restored interval also un-frees every register
//! the eager drain released — the eager path needs no undo log.
//!
//! # Safety argument for the eager drain
//!
//! A previous mapping `p` recorded in ROB entry `E.old_dest` may be freed
//! during a precise-runahead interval when all of the following hold:
//!
//! 1. `E` cannot be squashed: no conditional branch older than `E` is still
//!    unissued (branches resolve at issue in this pipeline, and recovery
//!    runs in the same cycle). Squashing `E` would roll the RAT back to `p`,
//!    so `p`'s value would have to survive.
//! 2. `p`'s producer has completed (`ready` bit set): an in-flight producer
//!    would later write `p` and set its ready bit, corrupting a runahead
//!    micro-op that re-allocated `p`.
//! 3. No waiting micro-op in the issue queue reads `p`: operands are read at
//!    issue, so issued consumers are done with it.
//! 4. `p` is not a live RAT mapping (holds by construction — `old_dest`
//!    registers were mapped out by the renaming instruction — and checked
//!    defensively anyway).
//!
//! Commit itself never observes an eager free: commits do not happen in
//! runahead mode, and the free-list snapshot is restored before normal mode
//! resumes, so the same register is freed exactly once on each path.

use crate::freelist::FreeList;
use crate::iq::{IssueQueue, SrcList};
use crate::rat::{RatCheckpoint, RegisterAliasTable};
use crate::regfile::PhysRegFile;
use crate::rob::ReorderBuffer;
use pre_model::isa::StaticInst;
use pre_model::reg::{ArchReg, PhysReg, RegClass, NUM_ARCH_REGS};
use pre_runahead::PreciseRegisterDeallocationQueue;

/// Per-class membership flags over physical-register indices.
///
/// The eager drain runs on every stalled normal-mode cycle (the entry gate)
/// and on every precise-runahead rescan cycle, so its membership sets sit on
/// the simulator's hottest path; SipHash-backed `HashSet`s here dominated
/// whole-run profiles. Physical registers are densely numbered below the
/// per-class file capacity, so a flat flag vector makes membership a single
/// indexed load and `clear` a pair of short memsets.
#[derive(Debug)]
struct PhysFlagSet {
    int: Vec<bool>,
    fp: Vec<bool>,
}

impl PhysFlagSet {
    fn new(int_capacity: usize, fp_capacity: usize) -> Self {
        PhysFlagSet {
            int: vec![false; int_capacity],
            fp: vec![false; fp_capacity],
        }
    }

    #[inline]
    fn flags_mut(&mut self, class: RegClass) -> &mut [bool] {
        match class {
            RegClass::Int => &mut self.int,
            RegClass::Fp => &mut self.fp,
        }
    }

    #[inline]
    fn contains(&self, class: RegClass, reg: PhysReg) -> bool {
        match class {
            RegClass::Int => self.int[reg.index()],
            RegClass::Fp => self.fp[reg.index()],
        }
    }

    #[inline]
    fn insert(&mut self, class: RegClass, reg: PhysReg) {
        self.flags_mut(class)[reg.index()] = true;
    }

    #[inline]
    fn remove(&mut self, class: RegClass, reg: PhysReg) {
        self.flags_mut(class)[reg.index()] = false;
    }

    fn clear(&mut self) {
        self.int.fill(false);
        self.fp.fill(false);
    }
}

/// A joint snapshot of the RAT and both free lists, captured at runahead
/// entry and restored at exit. Restoring the free lists subsumes undoing
/// both runahead allocations and eager frees.
#[derive(Debug, Clone)]
pub struct RenameCheckpoint {
    rat: RatCheckpoint,
    int_free: Vec<PhysReg>,
    fp_free: Vec<PhysReg>,
}

/// The outcome of renaming a destination register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DestRename {
    /// The freshly allocated physical register.
    pub new: PhysReg,
    /// The previous mapping (freed when the instruction commits).
    pub old: PhysReg,
    /// The producer PC previously recorded for the architectural register.
    pub old_pc: Option<u32>,
}

/// The rename subsystem: RAT, free lists, physical register files and the
/// PRDQ behind one allocation/reclamation interface.
#[derive(Debug)]
pub struct RenameSubsystem {
    rat: RegisterAliasTable,
    int_free: FreeList,
    fp_free: FreeList,
    int_prf: PhysRegFile,
    fp_prf: PhysRegFile,
    prdq: PreciseRegisterDeallocationQueue,
    /// Registers allocated by runahead renaming in the current interval;
    /// only these may be reclaimed through regular PRDQ deallocation.
    runahead_allocated: PhysFlagSet,
    /// ROB entry ids whose previous mapping the eager drain already seeded
    /// in the current interval. Kept sorted for binary search; bounded by
    /// the ROB capacity because the window is frozen during an interval.
    eager_seeded: Vec<u64>,
    int_capacity: usize,
    fp_capacity: usize,
    /// Reusable scratch for [`RenameSubsystem::collect_eager_candidates`]:
    /// registers pinned by a waiting consumer or a live RAT mapping. Reused
    /// across calls so the per-runahead-cycle rescan allocates nothing in
    /// steady state.
    scratch_pinned: PhysFlagSet,
    scratch_candidates: Vec<(u64, RegClass, PhysReg)>,
}

impl RenameSubsystem {
    /// Builds the subsystem for register files of `int_phys` / `fp_phys`
    /// registers, a PRDQ of `prdq_entries`, and the initial architectural
    /// values in `arch_values` (flat index order).
    pub fn new(
        int_phys: usize,
        fp_phys: usize,
        prdq_entries: usize,
        arch_values: &[u64; NUM_ARCH_REGS],
    ) -> Self {
        let mut subsystem = RenameSubsystem {
            rat: RegisterAliasTable::new(),
            int_free: FreeList::new(int_phys, pre_model::reg::NUM_INT_ARCH_REGS),
            fp_free: FreeList::new(fp_phys, pre_model::reg::NUM_FP_ARCH_REGS),
            int_prf: PhysRegFile::new(int_phys, pre_model::reg::NUM_INT_ARCH_REGS),
            fp_prf: PhysRegFile::new(fp_phys, pre_model::reg::NUM_FP_ARCH_REGS),
            prdq: PreciseRegisterDeallocationQueue::new(prdq_entries),
            runahead_allocated: PhysFlagSet::new(int_phys, fp_phys),
            eager_seeded: Vec::new(),
            int_capacity: int_phys,
            fp_capacity: fp_phys,
            scratch_pinned: PhysFlagSet::new(int_phys, fp_phys),
            scratch_candidates: Vec::new(),
        };
        subsystem.seed_arch_values(arch_values);
        subsystem
    }

    fn seed_arch_values(&mut self, arch_values: &[u64; NUM_ARCH_REGS]) {
        for (flat, &value) in arch_values.iter().enumerate() {
            let arch = ArchReg::from_flat_index(flat);
            let phys = RegisterAliasTable::identity_mapping(flat);
            self.prf_mut(arch.class()).init_arch_value(phys, value);
        }
    }

    // -----------------------------------------------------------------
    // Structure access.
    // -----------------------------------------------------------------

    /// Read-only view of the RAT (producer-PC lookups, peeks).
    pub fn rat(&self) -> &RegisterAliasTable {
        &self.rat
    }

    /// The physical register file of `class`.
    pub fn prf(&self, class: RegClass) -> &PhysRegFile {
        match class {
            RegClass::Int => &self.int_prf,
            RegClass::Fp => &self.fp_prf,
        }
    }

    /// Mutable physical register file of `class` (value writes, ready/INV
    /// bits are driven by the execution stages).
    pub fn prf_mut(&mut self, class: RegClass) -> &mut PhysRegFile {
        match class {
            RegClass::Int => &mut self.int_prf,
            RegClass::Fp => &mut self.fp_prf,
        }
    }

    /// The free list of `class` (read-only; all frees go through the
    /// reclamation interface).
    pub fn free_list(&self, class: RegClass) -> &FreeList {
        match class {
            RegClass::Int => &self.int_free,
            RegClass::Fp => &self.fp_free,
        }
    }

    fn free_list_mut(&mut self, class: RegClass) -> &mut FreeList {
        match class {
            RegClass::Int => &mut self.int_free,
            RegClass::Fp => &mut self.fp_free,
        }
    }

    /// The PRDQ (statistics and occupancy checks).
    pub fn prdq(&self) -> &PreciseRegisterDeallocationQueue {
        &self.prdq
    }

    /// Free registers in `class`.
    pub fn num_free(&self, class: RegClass) -> usize {
        self.free_list(class).num_free()
    }

    /// Fraction of `class`'s register file currently free.
    pub fn free_fraction(&self, class: RegClass) -> f64 {
        self.free_list(class).free_fraction()
    }

    // -----------------------------------------------------------------
    // Allocation (normal and runahead renaming).
    // -----------------------------------------------------------------

    /// Looks up the physical sources of `inst` through the RAT, in operand
    /// order (counts RAT read ports). Returns an inline list — renaming
    /// allocates nothing on the heap.
    pub fn lookup_sources(&mut self, inst: &StaticInst) -> SrcList {
        let mut srcs = SrcList::new();
        for src in inst.sources() {
            let phys = self.rat.lookup(src);
            srcs.push(src.class(), phys);
        }
        srcs
    }

    /// Renames destination `d` for the instruction at `pc`: allocates a
    /// fresh register, updates the RAT and prepares the register for a new
    /// value. Returns `None` when `d`'s class has no free register (the
    /// dispatch stage checks beforehand, so this is exceptional).
    pub fn rename_dest(&mut self, d: ArchReg, pc: u32) -> Option<DestRename> {
        let class = d.class();
        let new = self.free_list_mut(class).allocate()?;
        let (old, old_pc) = self.rat.rename(d, new, pc);
        self.prf_mut(class).reset_for_allocation(new);
        Some(DestRename { new, old, old_pc })
    }

    /// Renames one runahead micro-op (identified by `uop_id`): sources
    /// through the RAT, destination on a free register, and a PRDQ entry
    /// recording the previous mapping. The previous mapping is reclaimable
    /// through the PRDQ only if it was itself allocated during this
    /// runahead interval; pre-runahead state is restored by the checkpoint
    /// instead.
    ///
    /// The caller must have checked that a destination register and a PRDQ
    /// entry are available.
    pub fn runahead_rename(
        &mut self,
        inst: &StaticInst,
        pc: u32,
        uop_id: u64,
    ) -> (SrcList, Option<(RegClass, PhysReg)>) {
        let srcs = self.lookup_sources(inst);
        let mut dest = None;
        if let Some(d) = inst.dest {
            let class = d.class();
            let rename = self
                .rename_dest(d, pc)
                .expect("caller checked for a free register");
            let reclaimable = self.runahead_allocated.contains(class, rename.old);
            self.prdq
                .allocate(uop_id, Some((class, rename.old)), reclaimable);
            self.runahead_allocated.insert(class, rename.new);
            dest = Some((class, rename.new));
        } else {
            self.prdq.allocate(uop_id, None, false);
        }
        (srcs, dest)
    }

    // -----------------------------------------------------------------
    // The reclamation interface.
    // -----------------------------------------------------------------

    /// Normal commit: the retiring instruction's previous destination
    /// mapping is dead once the instruction is architectural.
    pub fn free_committed(&mut self, class: RegClass, old: PhysReg) {
        self.free_list_mut(class).free(old);
    }

    /// Branch recovery for one squashed instruction (walked youngest-first):
    /// restores the previous RAT mapping and frees the squashed
    /// instruction's own destination register.
    pub fn rollback_squashed(
        &mut self,
        old_dest: Option<(ArchReg, PhysReg, Option<u32>)>,
        dest: Option<(RegClass, PhysReg)>,
    ) {
        if let Some((arch, old, old_pc)) = old_dest {
            self.rat.rollback(arch, old, old_pc);
        }
        if let Some((class, reg)) = dest {
            self.free_list_mut(class).free(reg);
        }
    }

    /// Marks the PRDQ entry of a completed runahead micro-op as executed.
    pub fn mark_runahead_executed(&mut self, uop_id: u64) {
        self.prdq.mark_executed(uop_id);
    }

    /// Drains executed PRDQ entries in order and returns their registers to
    /// the free lists. Returns `(int, fp)` counts of registers freed.
    pub fn drain_prdq(&mut self) -> (usize, usize) {
        let freed = self.prdq.drain_completed();
        let mut counts = (0usize, 0usize);
        for (class, reg) in freed {
            self.free_list_mut(class).free(reg);
            self.runahead_allocated.remove(class, reg);
            match class {
                RegClass::Int => counts.0 += 1,
                RegClass::Fp => counts.1 += 1,
            }
        }
        counts
    }

    /// The eager drain: seeds the PRDQ with dead previous mappings of the
    /// stalled window (see the module documentation for the safety
    /// argument) and returns how many entries were seeded. Call
    /// [`RenameSubsystem::drain_prdq`] afterwards to realize the frees.
    ///
    /// Invoked at precise-runahead entry and once per runahead cycle, so
    /// mappings whose last consumer issues *during* the interval are freed
    /// at that issue boundary.
    pub fn seed_eager(&mut self, rob: &ReorderBuffer, iq: &IssueQueue) -> usize {
        self.collect_eager_candidates(rob, iq);
        let mut candidates = std::mem::take(&mut self.scratch_candidates);
        let mut seeded = 0;
        for &(id, class, old) in &candidates {
            if !self.prdq.seed_executed(id, (class, old)) {
                break;
            }
            if let Err(pos) = self.eager_seeded.binary_search(&id) {
                self.eager_seeded.insert(pos, id);
            }
            seeded += 1;
        }
        candidates.clear();
        self.scratch_candidates = candidates;
        seeded
    }

    /// Counts the registers per class that [`RenameSubsystem::seed_eager`]
    /// could release right now, without mutating anything. Used by the
    /// free-register entry gate to decide whether entering runahead mode
    /// can inject micro-ops.
    pub fn count_eager_reclaimable(
        &mut self,
        rob: &ReorderBuffer,
        iq: &IssueQueue,
    ) -> (usize, usize) {
        self.collect_eager_candidates(rob, iq);
        let mut counts = (0usize, 0usize);
        for (_, class, _) in &self.scratch_candidates {
            match class {
                RegClass::Int => counts.0 += 1,
                RegClass::Fp => counts.1 += 1,
            }
        }
        counts
    }

    /// Collects `(rob_id, class, old_reg)` for every previous mapping in the
    /// window that is provably dead, oldest first, into
    /// `self.scratch_candidates` (reused across calls; no steady-state
    /// allocation).
    fn collect_eager_candidates(&mut self, rob: &ReorderBuffer, iq: &IssueQueue) {
        // A register is pinned if a waiting (un-issued) micro-op still reads
        // it, or if it is a live RAT mapping (defensive: `old_dest` registers
        // are mapped out by construction). Both conditions feed the same
        // `!pinned` check, so one flag set covers them.
        self.scratch_pinned.clear();
        for entry in iq.iter() {
            for &(class, reg) in entry.srcs.iter() {
                self.scratch_pinned.insert(class, reg);
            }
        }
        for (arch, phys) in self.rat.iter() {
            self.scratch_pinned.insert(arch.class(), phys);
        }
        self.scratch_candidates.clear();
        for entry in rob.iter() {
            if let Some((arch, old, _)) = entry.old_dest {
                let class = arch.class();
                let dead = self.eager_seeded.binary_search(&entry.id).is_err()
                    && self.prf(class).is_ready(old)
                    && !self.scratch_pinned.contains(class, old)
                    && !self.free_list(class).is_free(old);
                if dead {
                    self.scratch_candidates.push((entry.id, class, old));
                }
            }
            // Entries younger than an unresolved conditional branch may be
            // squashed, which would roll the RAT back to their previous
            // mappings — stop here. (Branches resolve at issue.)
            if entry.is_cond_branch && !entry.issued {
                break;
            }
        }
    }

    // -----------------------------------------------------------------
    // Checkpoint / restore and bulk resets.
    // -----------------------------------------------------------------

    /// Captures a checkpoint of the RAT and both free lists.
    pub fn checkpoint(&self) -> RenameCheckpoint {
        RenameCheckpoint {
            rat: self.rat.checkpoint(),
            int_free: self.int_free.snapshot(),
            fp_free: self.fp_free.snapshot(),
        }
    }

    /// Starts a precise-runahead interval: clears the per-interval eager
    /// bookkeeping and returns the checkpoint to restore at exit.
    pub fn begin_runahead_interval(&mut self) -> RenameCheckpoint {
        self.eager_seeded.clear();
        self.checkpoint()
    }

    /// Ends a precise-runahead interval: discards the PRDQ and the
    /// per-interval allocation sets, restores the checkpoint (which undoes
    /// runahead allocations *and* eager frees) and clears all INV bits.
    /// Consumes the checkpoint so the free-list snapshots move instead of
    /// being cloned on every exit.
    pub fn end_runahead_interval(&mut self, checkpoint: RenameCheckpoint) {
        self.prdq.clear();
        self.runahead_allocated.clear();
        self.eager_seeded.clear();
        self.rat.restore(&checkpoint.rat);
        self.int_free.restore(checkpoint.int_free);
        self.fp_free.restore(checkpoint.fp_free);
        self.int_prf.clear_all_inv();
        self.fp_prf.clear_all_inv();
    }

    /// Restores a previously captured checkpoint.
    pub fn restore(&mut self, checkpoint: &RenameCheckpoint) {
        self.rat.restore(&checkpoint.rat);
        self.int_free.restore(checkpoint.int_free.clone());
        self.fp_free.restore(checkpoint.fp_free.clone());
    }

    /// Rebuilds the whole rename state from an architectural checkpoint
    /// (flush-style runahead exit): identity RAT, full free lists, register
    /// files seeded with the architectural values, modelled as free in time
    /// as the paper assumes.
    pub fn reset_from_arch(&mut self, arch_values: &[u64; NUM_ARCH_REGS]) {
        self.rat.reset_identity();
        self.int_free = FreeList::new(self.int_capacity, pre_model::reg::NUM_INT_ARCH_REGS);
        self.fp_free = FreeList::new(self.fp_capacity, pre_model::reg::NUM_FP_ARCH_REGS);
        self.seed_arch_values(arch_values);
        self.int_prf.clear_all_inv();
        self.fp_prf.clear_all_inv();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rob::RobEntry;
    use crate::uop::DynUop;
    use pre_model::isa::{AluOp, BranchCond, StaticInst};

    fn subsystem() -> RenameSubsystem {
        RenameSubsystem::new(40, 36, 16, &[0u64; NUM_ARCH_REGS])
    }

    fn rob_entry_with_rename(
        id: u64,
        subsystem: &mut RenameSubsystem,
        arch: ArchReg,
        executed: bool,
    ) -> RobEntry {
        let inst = StaticInst::int_alu_imm(AluOp::Add, arch, arch, 1);
        let rename = subsystem.rename_dest(arch, id as u32).expect("free reg");
        let mut entry = RobEntry::new(id, DynUop::sequential(id as u32, inst, 0));
        entry.dest = Some((arch.class(), rename.new));
        entry.old_dest = Some((arch, rename.old, rename.old_pc));
        entry.issued = true;
        entry.executed = executed;
        if executed {
            subsystem.prf_mut(arch.class()).set_ready(rename.new, true);
        }
        entry
    }

    #[test]
    fn rename_dest_allocates_and_tracks_old_mapping() {
        let mut r = subsystem();
        let a = ArchReg::int(3);
        let first = r.rename_dest(a, 10).unwrap();
        assert_eq!(first.old, PhysReg(3), "initial mapping is identity");
        let second = r.rename_dest(a, 11).unwrap();
        assert_eq!(second.old, first.new);
        assert_eq!(second.old_pc, Some(10));
        // Commit of the second instruction frees the first allocation.
        let free_before = r.num_free(RegClass::Int);
        r.free_committed(RegClass::Int, second.old);
        assert_eq!(r.num_free(RegClass::Int), free_before + 1);
    }

    #[test]
    fn runahead_rename_feeds_the_prdq_and_reclaims_only_runahead_regs() {
        let mut r = subsystem();
        let a = ArchReg::int(4);
        let cp = r.begin_runahead_interval();
        let (_, dest1) = r.runahead_rename(&StaticInst::load_imm(a, 1), 100, 1);
        let first = dest1.unwrap().1;
        // The pre-runahead mapping is non-reclaimable: draining after
        // execution frees nothing.
        r.mark_runahead_executed(1);
        assert_eq!(r.drain_prdq(), (0, 0));
        // A second runahead write to the same register reclaims the first
        // runahead allocation.
        let (_, _dest2) = r.runahead_rename(&StaticInst::load_imm(a, 2), 101, 2);
        r.mark_runahead_executed(2);
        let free_before = r.num_free(RegClass::Int);
        assert_eq!(r.drain_prdq(), (1, 0));
        assert_eq!(r.num_free(RegClass::Int), free_before + 1);
        assert!(r.free_list(RegClass::Int).is_free(first));
        r.end_runahead_interval(cp);
        assert_eq!(r.rat().peek(a), PhysReg(4), "checkpoint restored");
    }

    #[test]
    fn eager_drain_frees_dead_window_mappings_through_the_prdq() {
        let mut r = subsystem();
        let mut rob = ReorderBuffer::new(8);
        let iq = IssueQueue::new(8);
        let a = ArchReg::int(5);
        // Two back-to-back redefinitions: the first allocation's previous
        // mapping (identity reg 5) is dead once both have executed and no
        // consumer waits.
        rob.push(rob_entry_with_rename(1, &mut r, a, true));
        rob.push(rob_entry_with_rename(2, &mut r, a, true));
        let cp = r.begin_runahead_interval();
        let (int_reclaimable, fp_reclaimable) = r.count_eager_reclaimable(&rob, &iq);
        assert_eq!(int_reclaimable, 2);
        assert_eq!(fp_reclaimable, 0);
        let free_before = r.num_free(RegClass::Int);
        assert_eq!(r.seed_eager(&rob, &iq), 2);
        assert_eq!(r.drain_prdq(), (2, 0));
        assert_eq!(r.num_free(RegClass::Int), free_before + 2);
        assert_eq!(r.prdq().eager_seeds(), 2);
        // Seeding is idempotent per entry.
        assert_eq!(r.seed_eager(&rob, &iq), 0);
        // Exit restores the free lists exactly.
        r.end_runahead_interval(cp);
        assert_eq!(r.num_free(RegClass::Int), free_before);
    }

    #[test]
    fn eager_drain_respects_unresolved_branches_and_waiting_consumers() {
        let mut r = subsystem();
        let mut rob = ReorderBuffer::new(8);
        let mut iq = IssueQueue::new(8);
        let a = ArchReg::int(6);
        let first = rob_entry_with_rename(1, &mut r, a, true);
        let first_new = first.dest.unwrap().1;
        rob.push(first);
        // An unissued conditional branch shadows everything younger.
        let branch = StaticInst::branch(BranchCond::Lt, a, a, 0);
        let mut branch_entry = RobEntry::new(2, DynUop::sequential(2, branch, 0));
        branch_entry.issued = false;
        rob.push(branch_entry);
        rob.push(rob_entry_with_rename(3, &mut r, a, true));
        // A waiting consumer still reads the first allocation.
        iq.insert(
            crate::iq::IqEntry {
                id: 4,
                rob_slot: crate::rob::INVALID_SLOT,
                pc: 4,
                inst: StaticInst::int_alu_imm(AluOp::Add, a, a, 1),
                srcs: SrcList::from_slice(&[(RegClass::Int, first_new)]),
                dest: None,
                class: pre_model::isa::OpClass::IntAlu,
                is_runahead: false,
                dispatched_at: 0,
                store_addr_ready: false,
            },
            |_, _| true,
        );
        r.begin_runahead_interval();
        // Entry 1's old mapping (identity reg 6) is free-able; entry 3 is in
        // the branch shadow; entry 1's own destination is consumer-live.
        let candidates = r.count_eager_reclaimable(&rob, &iq);
        assert_eq!(candidates, (1, 0));
        assert_eq!(r.seed_eager(&rob, &iq), 1);
        let (int_freed, _) = r.drain_prdq();
        assert_eq!(int_freed, 1);
        assert!(r.free_list(RegClass::Int).is_free(PhysReg(6)));
        assert!(!r.free_list(RegClass::Int).is_free(first_new));
    }

    #[test]
    fn reset_from_arch_rebuilds_identity_state() {
        let mut r = subsystem();
        let a = ArchReg::int(1);
        r.rename_dest(a, 1).unwrap();
        r.rename_dest(ArchReg::fp(2), 2).unwrap();
        let mut arch_values = [0u64; NUM_ARCH_REGS];
        arch_values[a.flat_index()] = 99;
        r.reset_from_arch(&arch_values);
        assert_eq!(r.rat().peek(a), PhysReg(1));
        assert_eq!(r.prf(RegClass::Int).peek(PhysReg(1)), 99);
        assert_eq!(
            r.num_free(RegClass::Int),
            40 - pre_model::reg::NUM_INT_ARCH_REGS
        );
        assert_eq!(
            r.num_free(RegClass::Fp),
            36 - pre_model::reg::NUM_FP_ARCH_REGS
        );
    }

    #[test]
    fn rollback_squashed_restores_mapping_and_frees_destination() {
        let mut r = subsystem();
        let a = ArchReg::int(9);
        let rename = r.rename_dest(a, 5).unwrap();
        let free_before = r.num_free(RegClass::Int);
        r.rollback_squashed(
            Some((a, rename.old, rename.old_pc)),
            Some((RegClass::Int, rename.new)),
        );
        assert_eq!(r.rat().peek(a), rename.old);
        assert_eq!(r.num_free(RegClass::Int), free_before + 1);
    }
}
