//! Load and store queues with byte-range store-to-load forwarding.
//!
//! The model is conservative and never violates memory ordering: a load may
//! access memory only when every older store has a known address and no older
//! store overlapping its byte range is still waiting for its data. Store
//! addresses are generated eagerly (as soon as the base register is ready),
//! so streaming loops with a store per iteration do not artificially
//! serialize.
//!
//! Entries carry `(addr, len)` byte ranges, so mixed-width accesses follow
//! real forwarding hardware rules:
//!
//! * a load whose range is **contained** in an older store's range forwards
//!   the overlapping bytes (shifted and truncated out of the store data);
//! * a load that only **partially** overlaps an older store cannot be
//!   satisfied from the store queue — it stalls until the store commits and
//!   writes memory, counted in
//!   [`LoadStoreQueue::forward_blocked_partial`].

use pre_model::isa::{extract_forwarded_bytes, range_contains, ranges_overlap};
use std::collections::VecDeque;

/// One store-queue entry.
#[derive(Debug, Clone, Copy)]
pub struct SqEntry {
    /// Micro-op identifier (program order).
    pub id: u64,
    /// Effective address, once address generation has run.
    pub addr: Option<u64>,
    /// Access length in bytes (1–8).
    pub len: u8,
    /// Store data value (already truncated to `len` bytes), once the data
    /// operand is ready.
    pub value: Option<u64>,
}

/// The outcome of checking a load against older stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadCheck {
    /// No conflict: the load may access the memory hierarchy.
    Proceed,
    /// An older store contains the load's bytes and can supply them. The
    /// value is the raw overlapping bytes, zero-extended (the consumer
    /// applies its own sign/zero extension).
    Forward(u64),
    /// An older store has an unknown address, un-ready data, or a partial
    /// overlap with the load's range; the load must wait.
    Stall,
}

/// Combined load queue / store queue.
#[derive(Debug, Clone)]
pub struct LoadStoreQueue {
    loads: VecDeque<u64>,
    stores: VecDeque<SqEntry>,
    lq_capacity: usize,
    sq_capacity: usize,
    searches: u64,
    forwards: u64,
    forward_blocked_partial: u64,
}

impl LoadStoreQueue {
    /// Creates load/store queues with the given capacities (64/64 in Table 1).
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(lq_capacity: usize, sq_capacity: usize) -> Self {
        assert!(
            lq_capacity > 0 && sq_capacity > 0,
            "LSQ capacities must be non-zero"
        );
        LoadStoreQueue {
            loads: VecDeque::with_capacity(lq_capacity),
            stores: VecDeque::with_capacity(sq_capacity),
            lq_capacity,
            sq_capacity,
            searches: 0,
            forwards: 0,
            forward_blocked_partial: 0,
        }
    }

    /// `true` when no load entry is available.
    pub fn lq_full(&self) -> bool {
        self.loads.len() >= self.lq_capacity
    }

    /// `true` when no store entry is available.
    pub fn sq_full(&self) -> bool {
        self.stores.len() >= self.sq_capacity
    }

    /// Current load-queue occupancy.
    pub fn lq_len(&self) -> usize {
        self.loads.len()
    }

    /// Current store-queue occupancy.
    pub fn sq_len(&self) -> usize {
        self.stores.len()
    }

    /// Allocates a load-queue entry at dispatch.
    ///
    /// # Panics
    ///
    /// Panics if the load queue is full.
    pub fn allocate_load(&mut self, id: u64) {
        assert!(!self.lq_full(), "dispatch into a full load queue");
        self.loads.push_back(id);
    }

    /// Allocates a store-queue entry at dispatch, recording the access
    /// length (known statically from the opcode).
    ///
    /// # Panics
    ///
    /// Panics if the store queue is full.
    pub fn allocate_store(&mut self, id: u64, len: u8) {
        assert!(!self.sq_full(), "dispatch into a full store queue");
        debug_assert!((1..=8).contains(&len), "store length {len} out of range");
        self.stores.push_back(SqEntry {
            id,
            addr: None,
            len,
            value: None,
        });
    }

    /// Index of store `id`. Stores are allocated in dispatch order and
    /// removed from anywhere, so the deque stays sorted by id and a binary
    /// search suffices.
    fn store_index(&self, id: u64) -> Option<usize> {
        crate::sorted_deque::index_by_key(&self.stores, id, |e| e.id)
    }

    /// Records the eagerly generated address of store `id`.
    pub fn set_store_addr(&mut self, id: u64, addr: u64) {
        if let Some(idx) = self.store_index(id) {
            self.stores[idx].addr = Some(addr);
        }
    }

    /// Records the data value of store `id` (the caller truncates it to the
    /// store's width).
    pub fn set_store_value(&mut self, id: u64, value: u64) {
        if let Some(idx) = self.store_index(id) {
            self.stores[idx].value = Some(value);
        }
    }

    /// Checks whether the load `load_id` for the byte range
    /// `[addr, addr + len)` may proceed, must stall, or can forward from an
    /// older store. The youngest overlapping older store governs; forwarded
    /// bytes are extracted from its (little-endian) data.
    pub fn check_load(&mut self, load_id: u64, addr: u64, len: u8) -> LoadCheck {
        let (decision, blocked_partial) = self.scan_older_stores(load_id, addr, len);
        if blocked_partial {
            self.forward_blocked_partial += 1;
        }
        decision
    }

    /// [`LoadStoreQueue::check_load`] for a **non-binding** (runahead) load:
    /// a `Stall` verdict is advisory — the speculative load proceeds to
    /// functional memory anyway — so partial-overlap blocks are *not*
    /// counted in [`LoadStoreQueue::forward_blocked_partial`].
    pub fn check_load_speculative(&mut self, load_id: u64, addr: u64, len: u8) -> LoadCheck {
        self.scan_older_stores(load_id, addr, len).0
    }

    /// The associative search shared by both check flavours: returns the
    /// verdict and whether the governing (youngest overlapping) store was a
    /// partial overlap.
    fn scan_older_stores(&mut self, load_id: u64, addr: u64, len: u8) -> (LoadCheck, bool) {
        debug_assert!((1..=8).contains(&len), "load length {len} out of range");
        self.searches += 1;
        let len = u64::from(len);
        let mut decision = LoadCheck::Proceed;
        let mut blocked_partial = false;
        for store in self.stores.iter() {
            if store.id >= load_id {
                break;
            }
            let store_addr = match store.addr {
                // Unknown older store address: conservative stall, no
                // forwarding verdict possible yet.
                None => return (LoadCheck::Stall, false),
                Some(a) => a,
            };
            let store_len = u64::from(store.len);
            if !ranges_overlap(store_addr, store_len, addr, len) {
                continue;
            }
            if range_contains(store_addr, store_len, addr, len) {
                // Contained: this (younger) store supplies the bytes.
                blocked_partial = false;
                decision = match store.value {
                    Some(v) => {
                        LoadCheck::Forward(extract_forwarded_bytes(store_addr, v, addr, len))
                    }
                    None => LoadCheck::Stall,
                };
            } else {
                // Partial overlap: no store-queue entry can supply all the
                // bytes; wait for the store to commit to memory.
                blocked_partial = true;
                decision = LoadCheck::Stall;
            }
        }
        if let LoadCheck::Forward(_) = decision {
            self.forwards += 1;
        }
        (decision, blocked_partial)
    }

    /// Releases the load-queue entry of `id` (commit or squash).
    pub fn release_load(&mut self, id: u64) {
        if let Some(pos) = crate::sorted_deque::index_by_key(&self.loads, id, |&l| l) {
            self.loads.remove(pos);
        }
    }

    /// Releases the store-queue entry of `id` (commit or squash).
    pub fn release_store(&mut self, id: u64) {
        if let Some(pos) = self.store_index(id) {
            self.stores.remove(pos);
        }
    }

    /// Removes every entry with an id strictly greater than `id` (branch
    /// squash).
    pub fn squash_younger_than(&mut self, id: u64) {
        self.loads.retain(|&l| l <= id);
        self.stores.retain(|e| e.id <= id);
    }

    /// Discards all entries (pipeline flush).
    pub fn clear(&mut self) {
        self.loads.clear();
        self.stores.clear();
    }

    /// Number of associative LSQ searches performed (energy accounting).
    pub fn searches(&self) -> u64 {
        self.searches
    }

    /// Number of loads satisfied by store-to-load forwarding.
    pub fn forwards(&self) -> u64 {
        self.forwards
    }

    /// Number of load checks blocked by a partial-overlap older store
    /// (counted once per blocked check, like `searches`).
    pub fn forward_blocked_partial(&self) -> u64 {
        self.forward_blocked_partial
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_with_no_older_stores_proceeds() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.allocate_load(10);
        assert_eq!(lsq.check_load(10, 0x100, 8), LoadCheck::Proceed);
    }

    #[test]
    fn load_stalls_on_unknown_older_store_address() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.allocate_store(5, 8);
        lsq.allocate_load(10);
        assert_eq!(lsq.check_load(10, 0x100, 8), LoadCheck::Stall);
        lsq.set_store_addr(5, 0x200);
        assert_eq!(lsq.check_load(10, 0x100, 8), LoadCheck::Proceed);
    }

    #[test]
    fn load_forwards_from_exactly_matching_older_store() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.allocate_store(5, 8);
        lsq.set_store_addr(5, 0x100);
        lsq.allocate_load(10);
        // Same range, data not yet ready: stall.
        assert_eq!(lsq.check_load(10, 0x100, 8), LoadCheck::Stall);
        lsq.set_store_value(5, 77);
        assert_eq!(lsq.check_load(10, 0x100, 8), LoadCheck::Forward(77));
        assert_eq!(lsq.forwards(), 1);
        assert_eq!(lsq.forward_blocked_partial(), 0);
    }

    #[test]
    fn narrow_load_contained_in_wide_store_extracts_bytes() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.allocate_store(5, 8);
        lsq.set_store_addr(5, 0x100);
        lsq.set_store_value(5, 0x1122_3344_5566_7788);
        lsq.allocate_load(10);
        // Byte 3 of the store data (little-endian).
        assert_eq!(lsq.check_load(10, 0x103, 1), LoadCheck::Forward(0x55));
        // Halfword at offset 2.
        assert_eq!(lsq.check_load(10, 0x102, 2), LoadCheck::Forward(0x5566));
        // Word at offset 4.
        assert_eq!(
            lsq.check_load(10, 0x104, 4),
            LoadCheck::Forward(0x1122_3344)
        );
        assert_eq!(lsq.forwards(), 3);
    }

    #[test]
    fn partial_overlap_stalls_and_is_counted() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        // Narrow store, wide load: bytes outside the store are not in the
        // queue, so the load cannot forward even though the data is ready.
        lsq.allocate_store(5, 1);
        lsq.set_store_addr(5, 0x103);
        lsq.set_store_value(5, 0xAB);
        lsq.allocate_load(10);
        assert_eq!(lsq.check_load(10, 0x100, 8), LoadCheck::Stall);
        assert_eq!(lsq.forward_blocked_partial(), 1);
        assert_eq!(lsq.forwards(), 0);
        // Once the store drains (commit), the load proceeds to memory.
        lsq.release_store(5);
        assert_eq!(lsq.check_load(10, 0x100, 8), LoadCheck::Proceed);
        assert_eq!(lsq.forward_blocked_partial(), 1);
    }

    #[test]
    fn misaligned_width_crossing_ranges_partially_overlap() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        // An 8-byte store at 0x100 and a (word-boundary-crossing) 4-byte
        // load at 0x106: two bytes come from the store, two from beyond it.
        lsq.allocate_store(5, 8);
        lsq.set_store_addr(5, 0x100);
        lsq.set_store_value(5, 0xFFFF_FFFF_FFFF_FFFF);
        lsq.allocate_load(10);
        assert_eq!(lsq.check_load(10, 0x106, 4), LoadCheck::Stall);
        assert_eq!(lsq.forward_blocked_partial(), 1);
        // The mirror case: narrow store astride the load's start.
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.allocate_store(6, 2);
        lsq.set_store_addr(6, 0x0FF);
        lsq.set_store_value(6, 0xBEEF);
        lsq.allocate_load(11);
        assert_eq!(lsq.check_load(11, 0x100, 4), LoadCheck::Stall);
        assert_eq!(lsq.forward_blocked_partial(), 1);
    }

    #[test]
    fn speculative_checks_do_not_count_partial_blocks() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.allocate_store(5, 1);
        lsq.set_store_addr(5, 0x103);
        lsq.set_store_value(5, 0xAB);
        lsq.allocate_load(10);
        // A non-binding (runahead) check sees the same verdict but the load
        // proceeds to memory anyway, so the block is not counted.
        assert_eq!(lsq.check_load_speculative(10, 0x100, 8), LoadCheck::Stall);
        assert_eq!(lsq.forward_blocked_partial(), 0);
        assert_eq!(lsq.searches(), 1);
        // Contained forwarding still counts as a forward on either flavour.
        assert_eq!(
            lsq.check_load_speculative(10, 0x103, 1),
            LoadCheck::Forward(0xAB)
        );
        assert_eq!(lsq.forwards(), 1);
        // The binding check does count the block.
        assert_eq!(lsq.check_load(10, 0x100, 8), LoadCheck::Stall);
        assert_eq!(lsq.forward_blocked_partial(), 1);
    }

    #[test]
    fn disjoint_sub_word_accesses_to_one_word_do_not_interact() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        // Store byte 0, load byte 1 of the same former 8-byte word: under
        // byte granularity these are independent.
        lsq.allocate_store(5, 1);
        lsq.set_store_addr(5, 0x100);
        lsq.allocate_load(10);
        assert_eq!(lsq.check_load(10, 0x101, 1), LoadCheck::Proceed);
        assert_eq!(lsq.forward_blocked_partial(), 0);
    }

    #[test]
    fn younger_stores_do_not_affect_older_loads() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.allocate_load(10);
        lsq.allocate_store(20, 8);
        assert_eq!(lsq.check_load(10, 0x100, 8), LoadCheck::Proceed);
    }

    #[test]
    fn youngest_matching_store_wins() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.allocate_store(5, 8);
        lsq.set_store_addr(5, 0x100);
        lsq.set_store_value(5, 1);
        lsq.allocate_store(6, 8);
        lsq.set_store_addr(6, 0x100);
        lsq.set_store_value(6, 2);
        lsq.allocate_load(10);
        assert_eq!(lsq.check_load(10, 0x100, 8), LoadCheck::Forward(2));
    }

    #[test]
    fn younger_containing_store_overrides_older_partial_overlap() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        // Older store partially overlaps, but a younger store contains the
        // load: the youngest overlapping store governs, so the load forwards
        // and no partial block is counted.
        lsq.allocate_store(5, 2);
        lsq.set_store_addr(5, 0x0FF);
        lsq.set_store_value(5, 0xAAAA);
        lsq.allocate_store(6, 8);
        lsq.set_store_addr(6, 0x100);
        lsq.set_store_value(6, 0x1122_3344_5566_7788);
        lsq.allocate_load(10);
        assert_eq!(
            lsq.check_load(10, 0x100, 4),
            LoadCheck::Forward(0x5566_7788)
        );
        assert_eq!(lsq.forward_blocked_partial(), 0);
    }

    #[test]
    fn capacity_accounting_and_release() {
        let mut lsq = LoadStoreQueue::new(2, 2);
        lsq.allocate_load(1);
        lsq.allocate_load(2);
        assert!(lsq.lq_full());
        lsq.release_load(1);
        assert!(!lsq.lq_full());
        lsq.allocate_store(3, 8);
        lsq.allocate_store(4, 4);
        assert!(lsq.sq_full());
        lsq.release_store(3);
        assert_eq!(lsq.sq_len(), 1);
    }

    #[test]
    fn squash_removes_younger_entries_only() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.allocate_load(1);
        lsq.allocate_load(5);
        lsq.allocate_store(3, 8);
        lsq.allocate_store(7, 1);
        lsq.squash_younger_than(4);
        assert_eq!(lsq.lq_len(), 1);
        assert_eq!(lsq.sq_len(), 1);
    }

    #[test]
    fn clear_empties_both_queues() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.allocate_load(1);
        lsq.allocate_store(2, 8);
        lsq.clear();
        assert_eq!(lsq.lq_len(), 0);
        assert_eq!(lsq.sq_len(), 0);
    }
}
