//! Load and store queues with store-to-load forwarding.
//!
//! The model is conservative and never violates memory ordering: a load may
//! access memory only when every older store has a known address and no older
//! store to the same word is still waiting for its data. Store addresses are
//! generated eagerly (as soon as the base register is ready), so streaming
//! loops with a store per iteration do not artificially serialize.

use std::collections::VecDeque;

/// One store-queue entry.
#[derive(Debug, Clone, Copy)]
pub struct SqEntry {
    /// Micro-op identifier (program order).
    pub id: u64,
    /// Effective address, once address generation has run.
    pub addr: Option<u64>,
    /// Store data value, once the data operand is ready.
    pub value: Option<u64>,
}

/// The outcome of checking a load against older stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadCheck {
    /// No conflict: the load may access the memory hierarchy.
    Proceed,
    /// An older store to the same word can supply the data.
    Forward(u64),
    /// An older store has an unknown address or un-ready data; the load must
    /// wait.
    Stall,
}

/// Combined load queue / store queue.
#[derive(Debug, Clone)]
pub struct LoadStoreQueue {
    loads: VecDeque<u64>,
    stores: VecDeque<SqEntry>,
    lq_capacity: usize,
    sq_capacity: usize,
    searches: u64,
    forwards: u64,
}

impl LoadStoreQueue {
    /// Creates load/store queues with the given capacities (64/64 in Table 1).
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(lq_capacity: usize, sq_capacity: usize) -> Self {
        assert!(
            lq_capacity > 0 && sq_capacity > 0,
            "LSQ capacities must be non-zero"
        );
        LoadStoreQueue {
            loads: VecDeque::with_capacity(lq_capacity),
            stores: VecDeque::with_capacity(sq_capacity),
            lq_capacity,
            sq_capacity,
            searches: 0,
            forwards: 0,
        }
    }

    /// `true` when no load entry is available.
    pub fn lq_full(&self) -> bool {
        self.loads.len() >= self.lq_capacity
    }

    /// `true` when no store entry is available.
    pub fn sq_full(&self) -> bool {
        self.stores.len() >= self.sq_capacity
    }

    /// Current load-queue occupancy.
    pub fn lq_len(&self) -> usize {
        self.loads.len()
    }

    /// Current store-queue occupancy.
    pub fn sq_len(&self) -> usize {
        self.stores.len()
    }

    /// Allocates a load-queue entry at dispatch.
    ///
    /// # Panics
    ///
    /// Panics if the load queue is full.
    pub fn allocate_load(&mut self, id: u64) {
        assert!(!self.lq_full(), "dispatch into a full load queue");
        self.loads.push_back(id);
    }

    /// Allocates a store-queue entry at dispatch.
    ///
    /// # Panics
    ///
    /// Panics if the store queue is full.
    pub fn allocate_store(&mut self, id: u64) {
        assert!(!self.sq_full(), "dispatch into a full store queue");
        self.stores.push_back(SqEntry {
            id,
            addr: None,
            value: None,
        });
    }

    /// Index of store `id`. Stores are allocated in dispatch order and
    /// removed from anywhere, so the deque stays sorted by id and a binary
    /// search suffices.
    fn store_index(&self, id: u64) -> Option<usize> {
        crate::sorted_deque::index_by_key(&self.stores, id, |e| e.id)
    }

    /// Records the eagerly generated address of store `id`.
    pub fn set_store_addr(&mut self, id: u64, addr: u64) {
        if let Some(idx) = self.store_index(id) {
            self.stores[idx].addr = Some(addr);
        }
    }

    /// Records the data value of store `id`.
    pub fn set_store_value(&mut self, id: u64, value: u64) {
        if let Some(idx) = self.store_index(id) {
            self.stores[idx].value = Some(value);
        }
    }

    /// Checks whether the load `load_id` at word address `addr` may proceed,
    /// must stall, or can forward from an older store.
    pub fn check_load(&mut self, load_id: u64, addr: u64) -> LoadCheck {
        self.searches += 1;
        let word = addr & !7;
        let mut decision = LoadCheck::Proceed;
        for store in self.stores.iter() {
            if store.id >= load_id {
                break;
            }
            match store.addr {
                None => return LoadCheck::Stall,
                Some(a) if a & !7 == word => {
                    decision = match store.value {
                        Some(v) => LoadCheck::Forward(v),
                        None => LoadCheck::Stall,
                    };
                }
                Some(_) => {}
            }
        }
        if let LoadCheck::Forward(_) = decision {
            self.forwards += 1;
        }
        decision
    }

    /// Releases the load-queue entry of `id` (commit or squash).
    pub fn release_load(&mut self, id: u64) {
        if let Some(pos) = crate::sorted_deque::index_by_key(&self.loads, id, |&l| l) {
            self.loads.remove(pos);
        }
    }

    /// Releases the store-queue entry of `id` (commit or squash).
    pub fn release_store(&mut self, id: u64) {
        if let Some(pos) = self.store_index(id) {
            self.stores.remove(pos);
        }
    }

    /// Removes every entry with an id strictly greater than `id` (branch
    /// squash).
    pub fn squash_younger_than(&mut self, id: u64) {
        self.loads.retain(|&l| l <= id);
        self.stores.retain(|e| e.id <= id);
    }

    /// Discards all entries (pipeline flush).
    pub fn clear(&mut self) {
        self.loads.clear();
        self.stores.clear();
    }

    /// Number of associative LSQ searches performed (energy accounting).
    pub fn searches(&self) -> u64 {
        self.searches
    }

    /// Number of loads satisfied by store-to-load forwarding.
    pub fn forwards(&self) -> u64 {
        self.forwards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_with_no_older_stores_proceeds() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.allocate_load(10);
        assert_eq!(lsq.check_load(10, 0x100), LoadCheck::Proceed);
    }

    #[test]
    fn load_stalls_on_unknown_older_store_address() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.allocate_store(5);
        lsq.allocate_load(10);
        assert_eq!(lsq.check_load(10, 0x100), LoadCheck::Stall);
        lsq.set_store_addr(5, 0x200);
        assert_eq!(lsq.check_load(10, 0x100), LoadCheck::Proceed);
    }

    #[test]
    fn load_forwards_from_matching_older_store() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.allocate_store(5);
        lsq.set_store_addr(5, 0x104);
        lsq.allocate_load(10);
        // Same 8-byte word, data not yet ready: stall.
        assert_eq!(lsq.check_load(10, 0x100), LoadCheck::Stall);
        lsq.set_store_value(5, 77);
        assert_eq!(lsq.check_load(10, 0x100), LoadCheck::Forward(77));
        assert_eq!(lsq.forwards(), 1);
    }

    #[test]
    fn younger_stores_do_not_affect_older_loads() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.allocate_load(10);
        lsq.allocate_store(20);
        assert_eq!(lsq.check_load(10, 0x100), LoadCheck::Proceed);
    }

    #[test]
    fn youngest_matching_store_wins() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.allocate_store(5);
        lsq.set_store_addr(5, 0x100);
        lsq.set_store_value(5, 1);
        lsq.allocate_store(6);
        lsq.set_store_addr(6, 0x100);
        lsq.set_store_value(6, 2);
        lsq.allocate_load(10);
        assert_eq!(lsq.check_load(10, 0x100), LoadCheck::Forward(2));
    }

    #[test]
    fn capacity_accounting_and_release() {
        let mut lsq = LoadStoreQueue::new(2, 2);
        lsq.allocate_load(1);
        lsq.allocate_load(2);
        assert!(lsq.lq_full());
        lsq.release_load(1);
        assert!(!lsq.lq_full());
        lsq.allocate_store(3);
        lsq.allocate_store(4);
        assert!(lsq.sq_full());
        lsq.release_store(3);
        assert_eq!(lsq.sq_len(), 1);
    }

    #[test]
    fn squash_removes_younger_entries_only() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.allocate_load(1);
        lsq.allocate_load(5);
        lsq.allocate_store(3);
        lsq.allocate_store(7);
        lsq.squash_younger_than(4);
        assert_eq!(lsq.lq_len(), 1);
        assert_eq!(lsq.sq_len(), 1);
    }

    #[test]
    fn clear_empties_both_queues() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.allocate_load(1);
        lsq.allocate_store(2);
        lsq.clear();
        assert_eq!(lsq.lq_len(), 0);
        assert_eq!(lsq.sq_len(), 0);
    }
}
