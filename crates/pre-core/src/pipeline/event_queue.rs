//! A calendar queue for scheduled completion events.
//!
//! Every issued micro-op schedules exactly one completion event, so the
//! completion queue sits on the per-cycle hot path of every busy pipeline
//! (runahead intervals saturate it: one event per executed micro-op). A
//! binary heap pays `O(log n)` pointer-chasing comparisons per push and pop;
//! almost all completions land within a few hundred cycles of `now`
//! (functional-unit latencies and the memory hierarchy's round trip), so a
//! ring of per-cycle buckets makes push O(1) and pop amortized O(1), with a
//! heap kept only for the rare event beyond the ring horizon.
//!
//! Pop order is **exactly** the binary heap's `(completion, id)` ascending
//! order — asserted by a randomized model test below — so swapping the
//! structure in cannot perturb wakeup order, and therefore cannot perturb
//! any statistic.

use super::InFlight;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ring horizon in cycles. Covers every functional-unit and memory latency
/// in the model with slack; only pathological completions (queueing far
/// beyond a DRAM round trip) overflow into the heap.
const HORIZON: u64 = 512;

/// Calendar queue of [`InFlight`] completion events (see the module
/// documentation).
#[derive(Debug)]
pub(crate) struct EventQueue {
    /// `HORIZON` per-cycle buckets; the bucket for absolute cycle `c` is
    /// `ring[c % HORIZON]`. Every ring event has `cursor <= completion <
    /// cursor + HORIZON`.
    ring: Vec<Vec<InFlight>>,
    /// Occupancy bitmap over the ring: bit `b` of `occ[b / 64]` is set iff
    /// `ring[b]` is non-empty. Lets the queue jump straight to the next
    /// occupied bucket instead of probing up to `HORIZON` empty ones (sparse
    /// in-flight sets — an OoO core waiting on a few DRAM loads — would
    /// otherwise pay a long empty walk per drained completion).
    occ: [u64; (HORIZON as usize) / 64],
    /// Events scheduled at or beyond `cursor + HORIZON` when pushed; they
    /// migrate into the ring as the cursor approaches them.
    far: BinaryHeap<Reverse<InFlight>>,
    /// Next undrained cycle: every queued event completes at or after this.
    cursor: u64,
    /// Cycle whose bucket is currently sorted (descending id, drained from
    /// the back); `u64::MAX` when no bucket is prepared.
    prepared_at: u64,
    /// Cached earliest completion, invalidated (set to `None`) by pops.
    cached_min: Option<u64>,
    len: usize,
    /// Debug-only shadow oracle: the plain binary heap this structure
    /// replaced, kept in lockstep to assert behavioral equivalence in vivo.
    #[cfg(debug_assertions)]
    shadow: BinaryHeap<Reverse<InFlight>>,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue {
            ring: (0..HORIZON).map(|_| Vec::new()).collect(),
            occ: [0; (HORIZON as usize) / 64],
            far: BinaryHeap::new(),
            cursor: 0,
            prepared_at: u64::MAX,
            cached_min: None,
            len: 0,
            #[cfg(debug_assertions)]
            shadow: BinaryHeap::new(),
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Schedules `event`. Its completion must not lie in the already-drained
    /// past (issue always schedules strictly into the future).
    pub(crate) fn push(&mut self, event: InFlight) {
        debug_assert!(
            event.completion >= self.cursor,
            "completion event scheduled into the drained past"
        );
        if event.completion < self.cursor + HORIZON {
            debug_assert_ne!(
                self.prepared_at, event.completion,
                "push into the bucket currently being drained"
            );
            let idx = (event.completion % HORIZON) as usize;
            self.ring[idx].push(event);
            self.occ[idx / 64] |= 1 << (idx % 64);
        } else {
            self.far.push(Reverse(event));
        }
        // `None` means *invalidated by a pop*, not empty: other events may
        // still be queued below this one, so only an empty queue lets a push
        // seed the cache.
        self.cached_min = match self.cached_min {
            Some(m) => Some(m.min(event.completion)),
            None if self.len == 0 => Some(event.completion),
            None => None,
        };
        self.len += 1;
        #[cfg(debug_assertions)]
        self.shadow.push(Reverse(event));
    }

    /// The earliest queued completion cycle, if any. Amortized O(1): the
    /// bounded ring scan runs only after a pop invalidated the cache.
    pub(crate) fn next_completion(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        if let Some(m) = self.cached_min {
            #[cfg(debug_assertions)]
            debug_assert_eq!(
                Some(m),
                self.shadow.peek().map(|&Reverse(e)| e.completion),
                "cached next_completion diverged from the shadow heap"
            );
            return Some(m);
        }
        let far_min = self.far.peek().map(|&Reverse(e)| e.completion);
        let ring_min = self.next_occupied_ring();
        let m = match (ring_min, far_min) {
            (Some(r), Some(f)) => r.min(f),
            (r, f) => r.or(f).expect("len > 0 but no event found"),
        };
        self.cached_min = Some(m);
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            Some(m),
            self.shadow.peek().map(|&Reverse(e)| e.completion),
            "next_completion diverged from the shadow heap"
        );
        Some(m)
    }

    /// Pops the next event with `completion <= now`, in `(completion, id)`
    /// ascending order, or `None` when nothing is due.
    pub(crate) fn pop_due(&mut self, now: u64) -> Option<InFlight> {
        while self.len > 0 && self.cursor <= now {
            self.migrate_far();
            let idx = (self.cursor % HORIZON) as usize;
            if self.ring[idx].is_empty() {
                // Jump the cursor straight to the next queued completion
                // (ring bitmap or far heap) instead of probing every empty
                // cycle in between — but never past `now + 1`, so events
                // pushed after this drain still land ahead of the cursor.
                let ring_next = self.next_occupied_ring();
                let far_next = self.far.peek().map(|&Reverse(e)| e.completion);
                let target = match (ring_next, far_next) {
                    (Some(r), Some(f)) => r.min(f),
                    (r, f) => r.or(f).expect("len > 0 but no event found"),
                };
                self.cursor = target.min(now.saturating_add(1));
                if target > now {
                    break;
                }
                continue;
            }
            if self.prepared_at != self.cursor {
                // Drain from the back in ascending-id order.
                self.ring[idx].sort_unstable_by_key(|e| Reverse(e.id));
                self.prepared_at = self.cursor;
            }
            let event = self.ring[idx].pop().expect("bucket checked non-empty");
            if self.ring[idx].is_empty() {
                self.occ[idx / 64] &= !(1 << (idx % 64));
            }
            self.len -= 1;
            self.cached_min = None;
            #[cfg(debug_assertions)]
            {
                let expect = self.shadow.pop().map(|Reverse(e)| e);
                debug_assert_eq!(
                    Some((event.completion, event.id)),
                    expect.map(|e| (e.completion, e.id)),
                    "pop_due diverged from the shadow heap"
                );
            }
            return Some(event);
        }
        #[cfg(debug_assertions)]
        if let Some(&Reverse(e)) = self.shadow.peek() {
            debug_assert!(
                e.completion > now,
                "pop_due returned None but the shadow heap has a due event at {} (now {now})",
                e.completion
            );
        }
        None
    }

    /// Moves far-heap events whose completion now falls inside the ring
    /// window into their buckets.
    fn migrate_far(&mut self) {
        while let Some(&Reverse(event)) = self.far.peek() {
            if event.completion >= self.cursor + HORIZON {
                break;
            }
            self.far.pop();
            let idx = (event.completion % HORIZON) as usize;
            self.ring[idx].push(event);
            self.occ[idx / 64] |= 1 << (idx % 64);
        }
    }

    /// Earliest cycle in the live window `[cursor, cursor + HORIZON)` whose
    /// ring bucket is occupied, via the bitmap: at most `HORIZON / 64 + 1`
    /// word scans instead of up to `HORIZON` bucket probes.
    fn next_occupied_ring(&self) -> Option<u64> {
        let start = (self.cursor % HORIZON) as usize;
        let (sw, sb) = (start / 64, start % 64);
        let words = self.occ.len();
        let cycle_of = |w: usize, masked: u64| -> Option<u64> {
            if masked == 0 {
                return None;
            }
            let bit = (w * 64 + masked.trailing_zeros() as usize) as u64;
            Some(self.cursor + (bit + HORIZON - start as u64) % HORIZON)
        };
        // The start word's high bits, the following words in wrap order,
        // then the start word's low bits (cycles just below cursor map to
        // the far end of the window).
        if let Some(c) = cycle_of(sw, self.occ[sw] & (!0u64 << sb)) {
            return Some(c);
        }
        for i in 1..words {
            let w = (sw + i) % words;
            if let Some(c) = cycle_of(w, self.occ[w]) {
                return Some(c);
            }
        }
        let low_mask = if sb == 0 { 0 } else { !(!0u64 << sb) };
        cycle_of(sw, self.occ[sw] & low_mask)
    }

    /// Discards every queued event (flush-style runahead entry).
    pub(crate) fn clear(&mut self) {
        if self.len > 0 {
            for bucket in &mut self.ring {
                bucket.clear();
            }
            self.far.clear();
        }
        self.occ = [0; (HORIZON as usize) / 64];
        self.prepared_at = u64::MAX;
        self.cached_min = None;
        self.len = 0;
        #[cfg(debug_assertions)]
        self.shadow.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::rng::SmallRng;

    fn event(completion: u64, id: u64) -> InFlight {
        InFlight {
            completion,
            id,
            rob_slot: crate::rob::INVALID_SLOT,
            is_runahead: false,
            interval_seq: 0,
            dest: None,
        }
    }

    #[test]
    fn pops_in_completion_then_id_order() {
        let mut q = EventQueue::new();
        q.push(event(5, 3));
        q.push(event(2, 9));
        q.push(event(5, 1));
        q.push(event(2, 4));
        assert_eq!(q.next_completion(), Some(2));
        let order: Vec<_> = std::iter::from_fn(|| q.pop_due(10))
            .map(|e| (e.completion, e.id))
            .collect();
        assert_eq!(order, vec![(2, 4), (2, 9), (5, 1), (5, 3)]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(event(3, 1));
        q.push(event(7, 2));
        assert!(q.pop_due(2).is_none());
        assert_eq!(q.pop_due(3).map(|e| e.id), Some(1));
        assert!(q.pop_due(6).is_none());
        assert_eq!(q.next_completion(), Some(7));
    }

    #[test]
    fn far_events_migrate_into_the_ring() {
        let mut q = EventQueue::new();
        q.push(event(HORIZON * 3 + 17, 1));
        q.push(event(4, 2));
        assert_eq!(q.next_completion(), Some(4));
        assert_eq!(q.pop_due(4).map(|e| e.id), Some(2));
        assert_eq!(q.next_completion(), Some(HORIZON * 3 + 17));
        assert_eq!(q.pop_due(HORIZON * 4).map(|e| e.id), Some(1));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn clear_discards_everything() {
        let mut q = EventQueue::new();
        q.push(event(1, 1));
        q.push(event(HORIZON + 5, 2));
        q.clear();
        assert_eq!(q.len(), 0);
        assert!(q.next_completion().is_none());
        assert!(q.pop_due(u64::MAX).is_none());
    }

    /// Randomized model check: against a `BinaryHeap<Reverse<InFlight>>`
    /// oracle, interleaved pushes and cycle-by-cycle drains pop the exact
    /// same event sequence (the bit-identical-stats requirement).
    #[test]
    fn prop_matches_binary_heap_order() {
        let mut rng = SmallRng::seed_from_u64(0xca1e_0001);
        for _case in 0..32 {
            let mut q = EventQueue::new();
            let mut oracle: BinaryHeap<Reverse<InFlight>> = BinaryHeap::new();
            let mut now = 0u64;
            let mut next_id = 0u64;
            for _ in 0..400 {
                // Advance time, then drain, then push — the pipeline's tick
                // order (completions first, issue later the same cycle).
                now += rng.gen_range_u64(1..40);
                loop {
                    let expect = match oracle.peek() {
                        Some(&Reverse(e)) if e.completion <= now => {
                            oracle.pop();
                            Some((e.completion, e.id))
                        }
                        _ => None,
                    };
                    let got = q.pop_due(now).map(|e| (e.completion, e.id));
                    assert_eq!(got, expect, "drain diverged at cycle {now}");
                    if got.is_none() {
                        break;
                    }
                }
                // Query only sometimes: a pop-invalidated cache followed by
                // a push *without* an intervening query is the regression
                // this test once missed.
                if rng.gen_bool(0.5) {
                    assert_eq!(
                        q.next_completion(),
                        oracle.peek().map(|&Reverse(e)| e.completion)
                    );
                }
                for _ in 0..rng.gen_range_usize(0..6) {
                    // A mix of near, mid and far-horizon completions; ids
                    // deliberately issue out of order relative to age.
                    let lat = match rng.gen_below(10) {
                        0 => rng.gen_range_u64(HORIZON..3 * HORIZON),
                        1..=3 => rng.gen_range_u64(100..400),
                        _ => rng.gen_range_u64(1..6),
                    };
                    let id = next_id ^ rng.gen_below(4);
                    next_id += 4;
                    let e = event(now + lat, id);
                    q.push(e);
                    oracle.push(Reverse(e));
                }
                if rng.gen_bool(0.5) {
                    assert_eq!(
                        q.next_completion(),
                        oracle.peek().map(|&Reverse(e)| e.completion)
                    );
                }
            }
        }
    }
}
