//! Front-end and back-end pipeline stages: fetch, decode, dispatch, issue and
//! branch-misprediction recovery.

use super::{FlushKind, InFlight, Mode, OooCore};
use crate::iq::IqEntry;
use crate::rob::RobEntry;
use crate::uop::DynUop;
use pre_mem::{AccessKind, HitLevel};
use pre_model::isa::OpClass;
use pre_trace::{MemEvent, MissLevel};

/// Outcome of attempting to execute one issue-queue entry.
enum IssueOutcome {
    /// The micro-op issued; remove it from the issue queue.
    Issued,
    /// The micro-op could not issue this cycle (memory-ordering stall).
    NotIssued,
}

impl OooCore {
    // ---------------------------------------------------------------------
    // Fetch.
    // ---------------------------------------------------------------------

    pub(crate) fn fetch_stage(&mut self, now: u64) {
        if self.fetch_done {
            return;
        }
        // The runahead buffer power-gates the front end during runahead mode.
        if self.mode == Mode::RunaheadFlush(FlushKind::Buffer) {
            return;
        }
        // PRE+EMQ: once the EMQ fills, runahead execution stalls until the
        // stalling load returns (Section 3.3).
        if self.mode == Mode::RunaheadPre && self.use_emq && self.emq.is_full() {
            self.stats.emq_full_stall_cycles += 1;
            if let Some(t) = self.tracer.as_deref_mut() {
                t.emq_full_cycles(now, 1);
            }
            return;
        }
        if now < self.fetch_stall_until {
            self.stats.frontend_stall_cycles += 1;
            return;
        }
        for _ in 0..self.cfg.core.fetch_width {
            if self.delay_pipe.is_full() {
                break;
            }
            let inst = match self.program.inst_at(self.fetch_pc) {
                Some(i) => *i,
                None => {
                    self.fetch_done = true;
                    break;
                }
            };
            // One instruction-cache access per new line.
            let iaddr = self.fetch_pc as u64 * 4;
            let line = iaddr & !63;
            if self.last_fetch_line != Some(line) {
                let access = self.mem_hier.ifetch(iaddr, now);
                self.last_fetch_line = Some(line);
                if access.level != HitLevel::L1 {
                    self.fetch_stall_until = access.completion_cycle;
                    break;
                }
            }
            let (predicted_taken, next_pc) = if inst.opcode.is_cond_branch() {
                let prediction = self.predictor.predict(self.fetch_pc);
                let next = if prediction.taken {
                    inst.target
                } else {
                    self.fetch_pc + 1
                };
                (prediction.taken, next)
            } else if inst.opcode.is_control() {
                (true, inst.target)
            } else {
                (false, self.fetch_pc + 1)
            };
            let uop = DynUop {
                pc: self.fetch_pc,
                inst,
                predicted_taken,
                predicted_next_pc: next_pc,
                fetched_at: now,
            };
            if self.delay_pipe.push(uop, now).is_err() {
                break;
            }
            self.stats.fetched_uops += 1;
            if let Some(t) = self.tracer.as_deref_mut() {
                t.uop_fetched(uop.pc, &uop.inst, now);
            }
            self.fetch_pc = next_pc;
            if inst.opcode.is_control() && predicted_taken {
                // Taken control flow ends the fetch group.
                break;
            }
        }
    }

    // ---------------------------------------------------------------------
    // Decode.
    // ---------------------------------------------------------------------

    pub(crate) fn decode_stage(&mut self, now: u64) {
        if self.mode == Mode::RunaheadFlush(FlushKind::Buffer) {
            return;
        }
        for _ in 0..self.cfg.core.fetch_width {
            if self.uop_queue.is_full() {
                break;
            }
            let uop = match self.delay_pipe.pop_ready(now) {
                Some(u) => u,
                None => break,
            };
            self.stats.decoded_uops += 1;
            if let Some(t) = self.tracer.as_deref_mut() {
                t.uop_decoded(now);
            }
            self.uop_queue
                .push(uop)
                .expect("uop queue fullness checked above");
        }
    }

    // ---------------------------------------------------------------------
    // Dispatch (rename + allocate ROB/IQ/LSQ).
    // ---------------------------------------------------------------------

    pub(crate) fn dispatch_stage(&mut self, now: u64) {
        self.dispatch_blocked = false;
        match self.mode {
            Mode::RunaheadFlush(FlushKind::Buffer) => return,
            Mode::RunaheadPre => {
                self.pre_filter_stage(now);
                return;
            }
            Mode::Normal | Mode::RunaheadFlush(FlushKind::Traditional) => {}
        }
        for _ in 0..self.cfg.core.dispatch_width {
            // After a PRE+EMQ exit, buffered runahead micro-ops dispatch from
            // the EMQ before the live front-end stream continues.
            let from_emq = self.mode == Mode::Normal && !self.emq.is_empty();
            let peeked = if from_emq {
                self.emq.peek().copied()
            } else {
                self.uop_queue.front().copied()
            };
            let uop = match peeked {
                Some(u) => u,
                None => break,
            };
            if !self.dispatch_resources_available(&uop) {
                self.dispatch_blocked = true;
                break;
            }
            if from_emq {
                self.emq.dispatch_next();
            } else {
                self.uop_queue.pop();
            }
            let id = self.rename_and_dispatch(uop, now);
            if let Some(t) = self.tracer.as_deref_mut() {
                t.uop_dispatched(id, uop.pc, now, from_emq);
            }
        }
    }

    pub(crate) fn dispatch_resources_available(&self, uop: &DynUop) -> bool {
        if self.rob.is_full() || self.iq.is_full() {
            return false;
        }
        let opcode = uop.inst.opcode;
        if opcode.is_load() && self.lsq.lq_full() {
            return false;
        }
        if opcode.is_store() && self.lsq.sq_full() {
            return false;
        }
        if let Some(class) = opcode.dest_class() {
            if self.rename.num_free(class) == 0 {
                return false;
            }
        }
        true
    }

    pub(crate) fn rename_and_dispatch(&mut self, uop: DynUop, now: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let inst = uop.inst;

        // The SST sits after the decode stage and is looked up for every
        // micro-op (Section 3.2). In normal mode a hit drives the iterative
        // slice learning: the producers of the hitting instruction's source
        // registers — read from the RAT extension — join the slice.
        if self.technique.uses_sst() && self.sst.lookup(uop.pc) {
            for src in inst.sources() {
                if let Some(pc) = self.rename.rat().producer_pc(src) {
                    self.sst.insert(pc);
                }
            }
        }

        let srcs = self.rename.lookup_sources(&inst);
        let mut dest = None;
        let mut old_dest = None;
        if let Some(d) = inst.dest {
            let rename = self
                .rename
                .rename_dest(d, uop.pc)
                .expect("dispatch checked for a free register");
            dest = Some((d.class(), rename.new));
            old_dest = Some((d, rename.old, rename.old_pc));
        }

        let mut rob_entry = RobEntry::new(id, uop);
        rob_entry.dest = dest;
        rob_entry.old_dest = old_dest;
        let rob_slot = self.rob.push(rob_entry);

        let rename = &self.rename;
        self.iq.insert(
            IqEntry {
                id,
                rob_slot,
                pc: uop.pc,
                inst,
                srcs,
                dest,
                class: inst.opcode.class(),
                is_runahead: false,
                dispatched_at: now,
                store_addr_ready: false,
            },
            |class, reg| rename.prf(class).is_ready(reg),
        );
        if inst.opcode.is_load() {
            self.lsq.allocate_load(id);
        }
        if let Some(width) = inst.opcode.store_width() {
            self.lsq.allocate_store(id, width.bytes() as u8);
        }
        self.stats.renamed_uops += 1;
        self.stats.dispatched_uops += 1;
        self.next_dispatch_pc = uop.predicted_next_pc;
        id
    }

    // ---------------------------------------------------------------------
    // Issue + execute.
    // ---------------------------------------------------------------------

    /// Issue + execute: wakeup-driven select. Store address generation runs
    /// first (exactly the stores whose base operand became ready), then
    /// select pops ready entries in global age order against the per-class
    /// port array until `issue_width` is exhausted. Readiness is based on
    /// the ready bits set by previous completions, so issuing one candidate
    /// cannot make another ready within the same cycle.
    pub(crate) fn issue_stage(&mut self, now: u64) {
        if self.cfg.core.reference_scheduler {
            self.issue_stage_reference(now);
            return;
        }
        self.process_store_agen();

        let mut remaining = self.cfg.core.issue_width;
        let mut ports: [usize; OpClass::COUNT] =
            std::array::from_fn(|i| self.cfg.core.fu.ports_for(OpClass::ALL[i]));
        let mut retry = std::mem::take(&mut self.issue_retry);
        debug_assert!(retry.is_empty());

        while remaining > 0 {
            let Some((key, entry)) = self.iq.pop_ready(&ports) else {
                break;
            };
            if !self.sources_ready(&entry) {
                // A source register was reclaimed (PRDQ) and re-allocated
                // after this entry's wakeup: wait for the new producer, as
                // the reference scan would.
                let rename = &self.rename;
                self.iq
                    .reregister(key, |class, reg| rename.prf(class).is_ready(reg));
                continue;
            }
            match self.try_execute(&entry, now) {
                IssueOutcome::Issued => {
                    ports[entry.class.index()] -= 1;
                    remaining -= 1;
                    self.iq.remove_slot(key.slot());
                    self.stats.issued_uops += 1;
                    if self.mode == Mode::RunaheadPre && !entry.is_runahead {
                        // A waiting consumer left the issue queue: its
                        // sources may now be eager-drain candidates.
                        self.pre_eager_rescan = true;
                    }
                    self.count_issue_class(entry.class);
                    if self.pending_recovery.is_some() {
                        // A mispredicted branch resolved: younger micro-ops
                        // must not issue this cycle.
                        break;
                    }
                }
                // Memory-ordering or MSHR stall: the entry stays ready and
                // retries next cycle.
                IssueOutcome::NotIssued => retry.push(key),
            }
        }
        for key in retry.drain(..) {
            self.iq.requeue_ready(key);
        }
        self.issue_retry = retry;
    }

    /// Reference select (the `--reference-scheduler` escape hatch): rescans
    /// the whole queue for ready candidates every cycle, exactly like the
    /// pre-event-scheduler pipeline. Must stay bit-identical to
    /// [`OooCore::issue_stage`]; the `scheduler_equivalence` suite asserts
    /// it.
    fn issue_stage_reference(&mut self, now: u64) {
        self.generate_store_addresses_scan();

        let mut candidates = std::mem::take(&mut self.ref_candidates);
        candidates.clear();
        candidates.extend(self.iq.iter().filter(|e| self.sources_ready(e)).copied());
        // Slot order is arbitrary; select works in age (= id) order.
        candidates.sort_unstable_by_key(|e| e.id);

        let mut remaining = self.cfg.core.issue_width;
        let mut ports: [usize; OpClass::COUNT] =
            std::array::from_fn(|i| self.cfg.core.fu.ports_for(OpClass::ALL[i]));
        let mut issued = std::mem::take(&mut self.ref_issued);
        debug_assert!(issued.is_empty());

        for entry in &candidates {
            if remaining == 0 {
                break;
            }
            let port = &mut ports[entry.class.index()];
            if *port == 0 {
                continue;
            }
            match self.try_execute(entry, now) {
                IssueOutcome::Issued => {
                    *port -= 1;
                    remaining -= 1;
                    issued.push(entry.id);
                    self.stats.issued_uops += 1;
                    if self.mode == Mode::RunaheadPre && !entry.is_runahead {
                        self.pre_eager_rescan = true;
                    }
                    self.count_issue_class(entry.class);
                    if self.pending_recovery.is_some() {
                        break;
                    }
                }
                IssueOutcome::NotIssued => {}
            }
        }
        for id in issued.drain(..) {
            self.iq.remove(id);
        }
        self.ref_candidates = candidates;
        self.ref_issued = issued;
    }

    fn count_issue_class(&mut self, class: OpClass) {
        match class {
            OpClass::IntAlu | OpClass::Nop => self.stats.int_alu_ops += 1,
            OpClass::IntMul => self.stats.int_mul_ops += 1,
            OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => self.stats.fp_ops += 1,
            OpClass::Branch => self.stats.branch_ops += 1,
            OpClass::Load | OpClass::Store => {}
        }
    }

    /// Wakeup-driven store address generation: drains the stores whose base
    /// operand became ready (at dispatch or through a completion wakeup)
    /// and publishes their addresses — and data values when already
    /// available — to the store queue, so that younger loads are not
    /// serialized behind stores that are only waiting for data.
    fn process_store_agen(&mut self) {
        while let Some((slot, e)) = self.iq.pop_agen() {
            let Some((base_class, base_reg)) = e.srcs.first() else {
                continue;
            };
            if !self.prf(base_class).is_ready(base_reg) {
                // The base was reclaimed (PRDQ) and re-allocated between
                // the wake and this pass: re-arm on the new producer.
                self.iq.watch_store_base(slot);
                continue;
            }
            let addr = e
                .inst
                .effective_address(self.prf(base_class).peek(base_reg));
            self.lsq.set_store_addr(e.id, addr);
            self.iq.mark_store_addr_ready(slot);
            if let Some((data_class, data_reg)) = e.srcs.get(1) {
                if self.prf(data_class).is_ready(data_reg) {
                    let mask = e.inst.opcode.store_width().expect("agen on a store").mask();
                    let value = self.prf(data_class).peek(data_reg) & mask;
                    self.lsq.set_store_value(e.id, value);
                }
            }
        }
    }

    /// Scan-based store address generation for the reference scheduler:
    /// sweeps the whole queue every cycle, as the pre-event pipeline did.
    fn generate_store_addresses_scan(&mut self) {
        let mut updates = std::mem::take(&mut self.ref_agen_updates);
        updates.clear();
        for e in self.iq.iter() {
            if e.class != OpClass::Store || e.store_addr_ready {
                continue;
            }
            let base = e.srcs.first();
            let data = e.srcs.get(1);
            let addr = match base {
                Some((class, reg)) if self.prf(class).is_ready(reg) => {
                    Some(e.inst.effective_address(self.prf(class).peek(reg)))
                }
                _ => None,
            };
            if addr.is_none() {
                continue;
            }
            let value = match data {
                Some((class, reg)) if self.prf(class).is_ready(reg) => {
                    let mask = e.inst.opcode.store_width().expect("agen on a store").mask();
                    Some(self.prf(class).peek(reg) & mask)
                }
                _ => None,
            };
            updates.push((e.id, addr, value));
        }
        for (id, addr, value) in updates.drain(..) {
            if let Some(a) = addr {
                self.lsq.set_store_addr(id, a);
                if let Some(e) = self.iq.iter_mut().find(|e| e.id == id) {
                    e.store_addr_ready = true;
                }
            }
            if let Some(v) = value {
                self.lsq.set_store_value(id, v);
            }
        }
        self.ref_agen_updates = updates;
    }

    fn sources_ready(&self, entry: &IqEntry) -> bool {
        entry
            .srcs
            .iter()
            .all(|&(class, reg)| self.prf(class).is_ready(reg))
    }

    fn read_operands(&mut self, entry: &IqEntry) -> (u64, u64, bool) {
        let inst = entry.inst;
        let mut iter = entry.srcs.iter();
        let mut inv = false;
        let mut read = |slot: &mut OooCore, present: bool| -> u64 {
            if !present {
                return 0;
            }
            match iter.next() {
                Some(&(class, reg)) => {
                    inv |= slot.prf(class).is_inv(reg);
                    slot.prf_mut(class).read(reg)
                }
                None => 0,
            }
        };
        let src1 = read(self, inst.src1.is_some());
        let src2 = read(self, inst.src2.is_some());
        (src1, src2, inv)
    }

    fn try_execute(&mut self, entry: &IqEntry, now: u64) -> IssueOutcome {
        let inst = entry.inst;
        let latency = self.cfg.core.latencies.for_class(entry.class);
        let in_flush_runahead = matches!(self.mode, Mode::RunaheadFlush(_));
        let runahead_exec = entry.is_runahead || in_flush_runahead;
        let (src1, src2, src_inv) = self.read_operands(entry);

        let mut result: Option<u64> = None;
        let mut completion = now + latency;
        let mut dest_inv = src_inv;
        let mut mem_addr = None;
        let mut mem_level = None;
        let mut store_value = None;
        let mut actual_next_pc = None;
        let mut mispredicted = false;

        if let Some(load_access) = inst.opcode.load_access() {
            let len = load_access.width.bytes();
            let addr = inst.effective_address(src1);
            mem_addr = Some(addr);
            // Back-pressure: a load that needs to bring its line in can only
            // issue when an L1D miss-status register is available. This
            // bounds outstanding misses (demand and runahead prefetches
            // alike) to the MSHR count, as in real hardware.
            if (!src_inv || !runahead_exec)
                && !self.mem_hier.in_l1d(addr)
                && !self.mem_hier.data_mshr_available(now)
            {
                return IssueOutcome::NotIssued;
            }
            if runahead_exec {
                self.stats.runahead_loads_executed += 1;
                if src_inv {
                    // The address depends on the stalling load's missing
                    // data: cannot prefetch (INV propagation).
                    self.stats.runahead_inv_loads += 1;
                    result = Some(0);
                    completion = now + 1;
                    dest_inv = true;
                } else {
                    let value = self.runahead_load_value(entry.id, addr, load_access);
                    let access = self
                        .mem_hier
                        .load_range(addr, len, now, AccessKind::Prefetch);
                    if self.trace_prefetches {
                        eprintln!(
                            "PF cycle={now} pc={} addr={addr:#x} level={:?} new_fill={}",
                            entry.pc, access.level, access.initiated_dram_fill
                        );
                    }
                    mem_level = Some(access.level);
                    self.trace_mem_event(entry.pc, addr, &access, true, now);
                    if access.initiated_dram_fill {
                        self.stats.runahead_prefetches_issued += 1;
                    }
                    result = Some(value);
                    let remaining = access.completion_cycle.saturating_sub(now);
                    if remaining > self.cfg.l3.latency {
                        // The data will not arrive for a long time (an
                        // off-chip access): the load has served its purpose
                        // as a prefetch. Mark the result invalid and complete
                        // quickly so dependants do not hold resources
                        // (Mutlu et al.'s INV semantics).
                        completion = now + self.cfg.l1d.latency;
                        dest_inv = true;
                    } else {
                        completion = access.completion_cycle;
                    }
                }
            } else {
                match self.lsq.check_load(entry.id, addr, len as u8) {
                    crate::lsq::LoadCheck::Stall => return IssueOutcome::NotIssued,
                    crate::lsq::LoadCheck::Forward(raw) => {
                        result = Some(load_access.extend(raw));
                        completion = now + self.cfg.l1d.latency;
                        mem_level = Some(HitLevel::L1);
                    }
                    crate::lsq::LoadCheck::Proceed => {
                        let raw = self.func_mem.load_bytes(addr, len);
                        let access = self.mem_hier.load_range(addr, len, now, AccessKind::Demand);
                        if self.trace_prefetches && access.level == HitLevel::Memory {
                            eprintln!("DM cycle={now} pc={} addr={addr:#x}", entry.pc);
                        }
                        self.trace_mem_event(entry.pc, addr, &access, false, now);
                        result = Some(load_access.extend(raw));
                        completion = access.completion_cycle;
                        mem_level = Some(access.level);
                    }
                }
            }
        } else if let Some(width) = inst.opcode.store_width() {
            let addr = inst.effective_address(src1);
            let value = src2 & width.mask();
            mem_addr = Some(addr);
            store_value = Some(value);
            if !entry.is_runahead {
                self.lsq.set_store_addr(entry.id, addr);
                self.lsq.set_store_value(entry.id, value);
            }
            if runahead_exec && !src_inv {
                self.runahead_store_buffer.store(addr, width.bytes(), value);
            }
        } else if inst.opcode.is_control() {
            let outcome = inst.execute(entry.pc, src1, src2, None);
            actual_next_pc = Some(outcome.next_pc);
            if !entry.is_runahead && !src_inv {
                if inst.opcode.is_cond_branch() {
                    let predicted_next = self
                        .rob
                        .predicted_next_pc(entry.rob_slot, entry.id)
                        .unwrap_or(outcome.next_pc);
                    mispredicted = outcome.next_pc != predicted_next;
                    self.predictor.update(
                        entry.pc,
                        outcome.taken.unwrap_or(false),
                        inst.target,
                        mispredicted,
                    );
                }
                if mispredicted {
                    self.pending_recovery = Some((entry.id, outcome.next_pc));
                }
            }
        } else {
            let outcome = inst.execute(entry.pc, src1, src2, None);
            result = outcome.result;
        }

        // Write the destination value; the ready bit is set at completion.
        if let Some((class, reg)) = entry.dest {
            self.prf_mut(class).write(reg, result.unwrap_or(0));
            self.prf_mut(class).set_inv(reg, dest_inv);
        }

        self.in_flight.push(InFlight {
            completion,
            id: entry.id,
            rob_slot: entry.rob_slot,
            is_runahead: entry.is_runahead,
            interval_seq: self.interval_seq,
            dest: entry.dest,
        });

        if let Some(t) = self.tracer.as_deref_mut() {
            t.uop_issued(entry.id, now);
        }

        if entry.is_runahead {
            self.stats.runahead_uops_executed += 1;
        } else {
            self.rob.writeback(
                entry.rob_slot,
                entry.id,
                crate::rob::Writeback {
                    completion_cycle: completion,
                    result,
                    mem_addr,
                    mem_level,
                    store_value,
                    mispredicted,
                    actual_next_pc,
                },
            );
        }
        IssueOutcome::Issued
    }

    /// Reports a data access that left the core (missed L2 or the LLC) to
    /// the tracer, tagging it with the instantaneous MSHR occupancy.
    fn trace_mem_event(
        &mut self,
        pc: u32,
        addr: u64,
        access: &pre_mem::MemAccess,
        prefetch: bool,
        now: u64,
    ) {
        if self.tracer.is_none() {
            return;
        }
        let level = match access.level {
            HitLevel::L3 => MissLevel::L2Miss,
            HitLevel::Memory => MissLevel::LlcMiss,
            _ => return,
        };
        let ev = MemEvent {
            cycle: now,
            pc,
            addr,
            level,
            prefetch,
            completes: access.completion_cycle,
            mshr_occupancy: self.mem_hier.l1d_mshr_occupancy(now),
        };
        if let Some(t) = self.tracer.as_deref_mut() {
            t.mem_event(&ev);
        }
    }

    /// The value a runahead load observes, byte-wise in priority order:
    /// runahead store-buffer bytes, then uncommitted architectural stores
    /// (store-queue forwarding), then committed memory. Returns the value
    /// extended per the load's access shape.
    fn runahead_load_value(
        &mut self,
        load_id: u64,
        addr: u64,
        access: pre_model::isa::MemAccess,
    ) -> u64 {
        let len = access.width.bytes();
        let buffered = self.runahead_store_buffer.read(addr, len);
        let raw = if buffered.is_complete(len) {
            // Fully buffered: no LSQ search needed.
            buffered.value
        } else {
            let underlying = if let crate::lsq::LoadCheck::Forward(v) =
                self.lsq.check_load_speculative(load_id, addr, len as u8)
            {
                v
            } else {
                self.func_mem.load_bytes(addr, len)
            };
            // Partially buffered (only reachable with sub-word runahead
            // stores): overlay the buffered bytes on the underlying
            // LSQ-or-memory value.
            buffered.overlay(underlying)
        };
        access.extend(raw)
    }

    // ---------------------------------------------------------------------
    // Branch-misprediction recovery.
    // ---------------------------------------------------------------------

    pub(crate) fn recover_from_branch(&mut self, branch_id: u64, target: u32, now: u64) {
        // PRE runahead cannot survive a normal-mode misprediction: the
        // runahead state is discarded first, then ordinary recovery runs.
        if self.mode == Mode::RunaheadPre {
            self.exit_pre(now, true);
        }
        let squashed = self.rob.squash_younger_than(branch_id);
        for entry in &squashed {
            self.rename.rollback_squashed(entry.old_dest, entry.dest);
        }
        self.stats.squashed_uops += squashed.len() as u64;
        let ids: Vec<u64> = squashed.iter().map(|e| e.id).collect();
        self.iq
            .remove_where(|e| !e.is_runahead && ids.contains(&e.id));
        self.lsq.squash_younger_than(branch_id);

        self.stats.squashed_uops +=
            (self.uop_queue.len() + self.delay_pipe.len() + self.emq.len()) as u64;
        self.uop_queue.clear();
        self.delay_pipe.flush();
        self.emq.clear();
        if let Some(t) = self.tracer.as_deref_mut() {
            for &id in &ids {
                t.uop_squashed(id, now);
            }
            t.frontend_flushed(now);
        }

        self.fetch_pc = target;
        self.next_dispatch_pc = target;
        self.fetch_stall_until = now + 1;
        self.fetch_done = false;
        self.last_fetch_line = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::config::SimConfig;
    use pre_model::isa::{AluOp, BranchCond, StaticInst};
    use pre_model::program::{Interpreter, Program};
    use pre_model::reg::ArchReg;
    use pre_runahead::Technique;

    fn straight_line_program() -> Program {
        let mut p = Program::new("straight");
        let r1 = ArchReg::int(1);
        let r2 = ArchReg::int(2);
        let r3 = ArchReg::int(3);
        p.insts = vec![
            StaticInst::load_imm(r1, 10),
            StaticInst::load_imm(r2, 32),
            StaticInst::int_alu(AluOp::Add, r3, r1, r2),
            StaticInst::int_alu_imm(AluOp::Shl, r3, r3, 1),
            StaticInst::store(r3, r1, 0x1000),
            StaticInst::load(r2, r1, 0x1000),
        ];
        p
    }

    fn loop_program(iterations: u64) -> Program {
        let mut p = Program::new("loop");
        let i = ArchReg::int(1);
        let n = ArchReg::int(2);
        let acc = ArchReg::int(3);
        p.insts = vec![
            StaticInst::load_imm(i, 0),
            StaticInst::load_imm(n, iterations as i64),
            StaticInst::load_imm(acc, 0),
            StaticInst::int_alu_imm(AluOp::Add, acc, acc, 3), // 3
            StaticInst::int_alu_imm(AluOp::Add, i, i, 1),
            StaticInst::branch(BranchCond::Lt, i, n, 3),
        ];
        p
    }

    fn run_core(program: &Program, max_uops: u64) -> OooCore {
        let cfg = SimConfig::haswell_like();
        let mut core = OooCore::new(&cfg, program, Technique::OutOfOrder).unwrap();
        core.run(max_uops, 2_000_000);
        assert!(!core.deadlocked(), "core deadlocked");
        core
    }

    #[test]
    fn straight_line_matches_interpreter() {
        let p = straight_line_program();
        let core = run_core(&p, 1_000);
        let mut interp = Interpreter::new(&p);
        while interp.step() {}
        assert!(core.halted());
        let a = core.arch_snapshot();
        let b = interp.snapshot();
        assert_eq!(a.regs, b.regs);
        assert_eq!(a.retired, b.retired);
        assert_eq!(a.store_checksum, b.store_checksum);
        assert_eq!(core.arch_reg(ArchReg::int(2)), 84);
    }

    #[test]
    fn loop_with_branches_matches_interpreter() {
        let p = loop_program(500);
        let core = run_core(&p, 100_000);
        let mut interp = Interpreter::new(&p);
        while interp.step() {}
        assert!(core.halted());
        assert_eq!(core.arch_reg(ArchReg::int(3)), 1500);
        assert_eq!(core.arch_snapshot().regs, interp.snapshot().regs);
        assert_eq!(core.stats().committed_uops, interp.retired());
    }

    #[test]
    fn branch_mispredictions_are_recovered_not_committed() {
        // A data-dependent, hard-to-predict branch pattern.
        let mut p = Program::new("noisy-branches");
        let i = ArchReg::int(1);
        let n = ArchReg::int(2);
        let acc = ArchReg::int(3);
        let bit = ArchReg::int(4);
        let one = ArchReg::int(5);
        p.insts = vec![
            StaticInst::load_imm(i, 0),
            StaticInst::load_imm(n, 400),
            StaticInst::load_imm(acc, 0),
            StaticInst::load_imm(one, 1),
            // 4: bit = (i*2654435761) >> 13 & 1  (pseudo-random direction)
            StaticInst::int_mul_imm(bit, i, 2654435761),
            StaticInst::int_alu_imm(AluOp::Shr, bit, bit, 13),
            StaticInst::int_alu(AluOp::And, bit, bit, one),
            // 7: if bit != one skip the add
            StaticInst::branch(BranchCond::Ne, bit, one, 9),
            StaticInst::int_alu_imm(AluOp::Add, acc, acc, 7),
            // 9:
            StaticInst::int_alu_imm(AluOp::Add, i, i, 1),
            StaticInst::branch(BranchCond::Lt, i, n, 4),
        ];
        let core = run_core(&p, 100_000);
        let mut interp = Interpreter::new(&p);
        while interp.step() {}
        assert_eq!(core.arch_reg(acc), interp.reg(acc));
        assert_eq!(core.arch_snapshot().regs, interp.snapshot().regs);
        assert!(
            core.stats().mispredicted_branches > 0,
            "pattern should mispredict"
        );
        assert!(core.stats().squashed_uops > 0);
    }

    #[test]
    fn ipc_is_superscalar_on_independent_work() {
        // A loop of independent immediate loads: once the instruction cache
        // is warm, IPC should comfortably exceed 1.
        let mut p = Program::new("ilp");
        let i = ArchReg::int(30);
        let n = ArchReg::int(31);
        p.insts.push(StaticInst::load_imm(i, 0));
        p.insts.push(StaticInst::load_imm(n, 2_000));
        for r in 1..=8u8 {
            p.insts
                .push(StaticInst::load_imm(ArchReg::int(r), r as i64));
        }
        p.insts.push(StaticInst::int_alu_imm(AluOp::Add, i, i, 1));
        p.insts.push(StaticInst::branch(BranchCond::Lt, i, n, 2));
        let core = run_core(&p, 100_000);
        assert!(core.halted());
        let ipc = core.stats().ipc();
        assert!(ipc > 1.5, "expected superscalar IPC, got {ipc}");
    }

    #[test]
    fn store_to_load_forwarding_preserves_values() {
        let mut p = Program::new("forward");
        let base = ArchReg::int(1);
        let v = ArchReg::int(2);
        let x = ArchReg::int(3);
        p.insts = vec![
            StaticInst::load_imm(base, 0x8000),
            StaticInst::load_imm(v, 1234),
            StaticInst::store(v, base, 0),
            StaticInst::load(x, base, 0),
            StaticInst::int_alu_imm(AluOp::Add, x, x, 1),
        ];
        let core = run_core(&p, 100);
        assert_eq!(core.arch_reg(x), 1235);
    }

    #[test]
    fn cold_misses_make_loads_long_latency() {
        // A pointer-chase over a working set far larger than the LLC.
        let mut p = Program::new("chase");
        let ptr = ArchReg::int(1);
        let n = ArchReg::int(2);
        let i = ArchReg::int(3);
        p.insts = vec![
            StaticInst::load_imm(ptr, 0x100_0000),
            StaticInst::load_imm(n, 64),
            StaticInst::load_imm(i, 0),
            StaticInst::load(ptr, ptr, 0), // 3
            StaticInst::int_alu_imm(AluOp::Add, i, i, 1),
            StaticInst::branch(BranchCond::Lt, i, n, 3),
        ];
        // Build a pointer chain with 1 MB strides.
        let mut addr = 0x100_0000u64;
        for _ in 0..70 {
            let next = addr + 1_048_576 + 64;
            p.initial_mem.push((addr, next));
            addr = next;
        }
        let cfg = SimConfig::haswell_like();
        let mut core = OooCore::new(&cfg, &p, Technique::OutOfOrder).unwrap();
        core.run(10_000, 500_000);
        assert!(!core.deadlocked());
        assert!(
            core.stats().l3_misses > 32,
            "pointer chase should miss the LLC"
        );
        // Dependent misses serialize: the run must take far longer than the
        // instruction count.
        assert!(core.stats().cycles > 64 * 100);
    }
}
