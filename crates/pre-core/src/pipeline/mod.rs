//! The out-of-order pipeline with integrated runahead execution.
//!
//! [`OooCore`] ties together the front end (`pre-frontend`), the rename and
//! back-end structures of this crate, the memory hierarchy (`pre-mem`) and
//! the runahead structures (`pre-runahead`). One instance simulates one
//! program under one [`Technique`].
//!
//! The per-cycle loop walks the pipeline backwards (commit → issue →
//! dispatch → decode → fetch) so that a micro-op spends at least one cycle in
//! each stage. Stage implementations live in [`mod@self`] (commit,
//! completion, run control), `stages` (fetch/decode/dispatch/issue and branch
//! recovery) and `runahead` (full-window-stall detection, runahead entry,
//! exit and the PRE decode filter).

mod runahead;
mod stages;

use crate::iq::{IqEntry, IssueQueue, ReadyKey};
use crate::lsq::LoadStoreQueue;
use crate::regfile::PhysRegFile;
use crate::rename::{RenameCheckpoint, RenameSubsystem};
use crate::rob::ReorderBuffer;
use crate::runahead_store_buffer::RunaheadStoreBuffer;
use crate::uop::DynUop;
use pre_frontend::{BranchPredictorUnit, DelayPipe, UopQueue};
use pre_mem::{HitLevel, MemoryHierarchy};
use pre_model::config::SimConfig;
use pre_model::error::{ConfigError, ProgramError, SimError, WatchdogDiag};
use pre_model::mem::FuncMem;
use pre_model::program::{fold_store_checksum, ArchSnapshot, Program};
use pre_model::reg::{ArchReg, PhysReg, RegClass, NUM_ARCH_REGS};
use pre_model::stats::{SimStats, TerminationKind};
use pre_runahead::{
    ChainReplayEngine, EntryDecision, EntryPolicy, ExtendedMicroOpQueue, RunaheadBuffer,
    StallingSliceTable, Technique,
};
use pre_trace::{CommitRing, CommittedUop, FfMode, Sample, Tracer};
use std::error::Error;
use std::fmt;

mod event_queue;
use event_queue::EventQueue;

/// Cycles without a commit after which the run is declared deadlocked (a
/// modelling-bug safety net, not an architectural feature).
pub(crate) const DEADLOCK_WINDOW: u64 = 200_000;

/// Commits retained by the always-on [`CommitRing`] for watchdog
/// diagnostics.
pub(crate) const COMMIT_RING_CAPACITY: usize = 8;

/// Execution mode of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Normal out-of-order execution.
    Normal,
    /// Flush-style runahead (traditional runahead or the runahead buffer):
    /// the window is discarded at entry and the pipeline is flushed at exit.
    RunaheadFlush(FlushKind),
    /// Precise runahead: the ROB is preserved, runahead micro-ops execute on
    /// free resources.
    RunaheadPre,
}

/// Which flush-style runahead flavour is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlushKind {
    /// Traditional runahead: the front end keeps fetching and the whole
    /// future instruction stream is pre-executed.
    Traditional,
    /// Runahead buffer: the front end is gated and the extracted dependence
    /// chain replays in a loop.
    Buffer,
}

/// A scheduled completion event for an issued micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct InFlight {
    pub completion: u64,
    pub id: u64,
    /// ROB slot of the issuing micro-op ([`crate::rob::INVALID_SLOT`] for
    /// runahead micro-ops); validated against `id` at completion, so stale
    /// events after a squash fail safely.
    pub rob_slot: u32,
    pub is_runahead: bool,
    pub interval_seq: u64,
    pub dest: Option<(RegClass, PhysReg)>,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.completion, self.id).cmp(&(other.completion, other.id))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-interval runahead bookkeeping (checkpoints and exit information).
#[derive(Debug, Clone)]
pub(crate) struct RunaheadInterval {
    pub stalling_pc: u32,
    pub expected_return: u64,
    pub entered_at: u64,
    pub rename_checkpoint: Option<RenameCheckpoint>,
    pub arch_checkpoint: Option<[u64; NUM_ARCH_REGS]>,
    pub history: u64,
    pub ras: Vec<u32>,
    pub resume_fetch_pc: u32,
    /// PRDQ allocation counter at entry, so the exit event can report how
    /// many entries this interval allocated.
    pub prdq_allocs_at_entry: u64,
}

/// Error building an [`OooCore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The simulator configuration is inconsistent.
    Config(ConfigError),
    /// The program is malformed.
    Program(ProgramError),
    /// A requested trace output could not be created (I/O failure when
    /// opening the trace files).
    Trace(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Config(e) => write!(f, "invalid configuration: {e}"),
            BuildError::Program(e) => write!(f, "invalid program: {e}"),
            BuildError::Trace(e) => write!(f, "cannot create trace output: {e}"),
        }
    }
}

impl Error for BuildError {}

impl From<ConfigError> for BuildError {
    fn from(e: ConfigError) -> Self {
        BuildError::Config(e)
    }
}

impl From<ProgramError> for BuildError {
    fn from(e: ProgramError) -> Self {
        BuildError::Program(e)
    }
}

impl From<BuildError> for SimError {
    fn from(e: BuildError) -> Self {
        match e {
            BuildError::Config(e) => SimError::Config(e),
            BuildError::Program(e) => SimError::Program(e),
            BuildError::Trace(detail) => SimError::Trace(detail),
        }
    }
}

/// The out-of-order core simulator.
///
/// See the crate-level documentation for an example.
#[derive(Debug)]
pub struct OooCore {
    pub(crate) cfg: SimConfig,
    pub(crate) technique: Technique,
    pub(crate) program: Program,

    // Functional / architectural state.
    pub(crate) mem_hier: MemoryHierarchy,
    pub(crate) func_mem: FuncMem,
    pub(crate) arf: [u64; NUM_ARCH_REGS],

    // Front end.
    pub(crate) predictor: BranchPredictorUnit,
    pub(crate) delay_pipe: DelayPipe<DynUop>,
    pub(crate) uop_queue: UopQueue<DynUop>,
    pub(crate) fetch_pc: u32,
    pub(crate) fetch_stall_until: u64,
    pub(crate) fetch_done: bool,
    pub(crate) last_fetch_line: Option<u64>,
    pub(crate) next_dispatch_pc: u32,

    // Rename: allocation, mapping, checkpointing and every reclamation path
    // (commit, branch recovery, PRDQ drain, eager drain) live behind this
    // subsystem.
    pub(crate) rename: RenameSubsystem,

    // Back end.
    pub(crate) rob: ReorderBuffer,
    pub(crate) iq: IssueQueue,
    pub(crate) lsq: LoadStoreQueue,
    pub(crate) in_flight: EventQueue,
    pub(crate) next_id: u64,
    pub(crate) dispatch_blocked: bool,
    pub(crate) pending_recovery: Option<(u64, u32)>,

    // Runahead machinery.
    pub(crate) mode: Mode,
    pub(crate) use_emq: bool,
    pub(crate) entry_policy: EntryPolicy,
    pub(crate) sst: StallingSliceTable,
    pub(crate) emq: ExtendedMicroOpQueue<DynUop>,
    pub(crate) runahead_buffer: RunaheadBuffer,
    pub(crate) chain_engine: Option<ChainReplayEngine>,
    /// Line-granular runahead store buffer (runahead stores never reach
    /// memory; their bytes are forwarded to younger runahead loads).
    pub(crate) runahead_store_buffer: RunaheadStoreBuffer,
    pub(crate) interval: Option<RunaheadInterval>,
    pub(crate) interval_seq: u64,
    pub(crate) last_stall_head_id: Option<u64>,
    pub(crate) runahead_done_for: Option<u64>,
    /// Set when an event that can create new eager-drain candidates occurred
    /// this interval (a normal micro-op issued or completed): the candidate
    /// set only changes at those boundaries, so the per-cycle
    /// [`RenameSubsystem::seed_eager`] scan is skipped while this is clear.
    pub(crate) pre_eager_rescan: bool,

    // Time, statistics and run control.
    pub(crate) cycle: u64,
    pub(crate) stats: SimStats,
    pub(crate) halted: bool,
    pub(crate) deadlocked: bool,
    pub(crate) last_progress_cycle: u64,
    /// Always-on ring of the last few committed `(cycle, pc)` pairs, so a
    /// watchdog abort can report where the machine last made progress even
    /// when no tracer was attached. Two stores per commit; covered by the
    /// `compare_sim_speed` gate.
    pub(crate) commit_ring: CommitRing,
    /// Developer aid: print prefetch/demand-miss addresses when the
    /// `PRE_TRACE_PREFETCH` environment variable is set.
    pub(crate) trace_prefetches: bool,
    /// Attached observation hooks (`None` in normal runs: every hook site
    /// pays one untaken branch and nothing else). Tracers observe committed
    /// pipeline decisions and never steer them — the `trace_golden` suite
    /// asserts [`SimStats`] stay bit-identical with and without a tracer.
    pub(crate) tracer: Option<Box<dyn Tracer>>,

    // Reusable scratch buffers so the steady-state tick performs no heap
    // allocation (the event path) and the reference path reuses capacity.
    pub(crate) issue_retry: Vec<ReadyKey>,
    pub(crate) ref_candidates: Vec<IqEntry>,
    pub(crate) ref_issued: Vec<u64>,
    pub(crate) ref_agen_updates: Vec<(u64, Option<u64>, Option<u64>)>,
}

impl OooCore {
    /// Builds a core simulating `program` under `technique`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when the configuration or the program fails
    /// validation.
    pub fn new(
        cfg: &SimConfig,
        program: &Program,
        technique: Technique,
    ) -> Result<Self, BuildError> {
        Self::build(cfg, program, technique, || program.build_memory())
    }

    /// Shared constructor body: `func_mem` supplies the initial functional
    /// memory (built from the program image on a cold start, cloned from a
    /// snapshot on a forked start) and is only invoked after validation.
    /// Taking it as a closure lets [`from_snapshot`](Self::from_snapshot)
    /// skip the program-image build entirely — for multi-megabyte images
    /// that build dominates the per-fork cost of sampled simulation.
    fn build(
        cfg: &SimConfig,
        program: &Program,
        technique: Technique,
        func_mem: impl FnOnce() -> FuncMem,
    ) -> Result<Self, BuildError> {
        cfg.validate()?;
        program.validate()?;
        let core_cfg = &cfg.core;
        let mut arf = [0u64; NUM_ARCH_REGS];
        for &(reg, value) in &program.initial_regs {
            arf[reg.flat_index()] = value;
        }
        let rename = RenameSubsystem::new(
            core_cfg.int_phys_regs,
            core_cfg.fp_phys_regs,
            cfg.runahead.prdq_entries,
            &arf,
        );
        let entry_policy = technique.entry_policy(&cfg.runahead);
        let mut iq = IssueQueue::new(core_cfg.iq_entries);
        iq.set_reference_mode(core_cfg.reference_scheduler);
        Ok(OooCore {
            mem_hier: MemoryHierarchy::new(cfg),
            func_mem: func_mem(),
            arf,
            predictor: BranchPredictorUnit::new(&cfg.frontend),
            delay_pipe: DelayPipe::new(
                core_cfg.frontend_depth as u64,
                core_cfg.fetch_width * (core_cfg.frontend_depth + 1),
            ),
            uop_queue: UopQueue::new(core_cfg.fetch_width * 4),
            fetch_pc: program.entry,
            fetch_stall_until: 0,
            fetch_done: false,
            last_fetch_line: None,
            next_dispatch_pc: program.entry,
            rename,
            rob: ReorderBuffer::new(core_cfg.rob_entries),
            iq,
            lsq: LoadStoreQueue::new(core_cfg.lq_entries, core_cfg.sq_entries),
            in_flight: EventQueue::new(),
            next_id: 1,
            dispatch_blocked: false,
            pending_recovery: None,
            mode: Mode::Normal,
            use_emq: technique.uses_emq(),
            entry_policy,
            sst: StallingSliceTable::new(cfg.runahead.sst_entries),
            emq: ExtendedMicroOpQueue::new(cfg.runahead.emq_entries),
            runahead_buffer: RunaheadBuffer::new(),
            chain_engine: None,
            runahead_store_buffer: RunaheadStoreBuffer::new(),
            interval: None,
            interval_seq: 0,
            last_stall_head_id: None,
            runahead_done_for: None,
            pre_eager_rescan: false,
            cycle: 0,
            stats: SimStats::new(),
            halted: false,
            deadlocked: false,
            last_progress_cycle: 0,
            commit_ring: CommitRing::new(COMMIT_RING_CAPACITY),
            trace_prefetches: std::env::var_os("PRE_TRACE_PREFETCH").is_some(),
            tracer: None,
            issue_retry: Vec::new(),
            ref_candidates: Vec::new(),
            ref_issued: Vec::new(),
            ref_agen_updates: Vec::new(),
            cfg: cfg.clone(),
            technique,
            program: program.clone(),
        })
    }

    /// Builds a core resuming from a warm-up snapshot instead of a cold
    /// start: architectural registers, PC and functional memory come from
    /// `snap`; caches and branch predictor are cloned from `warmed` (built
    /// once per memory-hierarchy configuration via
    /// [`crate::WarmedState::build`] and shared across every core forked
    /// from the same snapshot).
    ///
    /// The core starts at cycle 0 with empty statistics: a snapshot run
    /// reports only the work performed after the snapshot point, and two
    /// cores forked from the same `(snap, warmed)` pair are bit-identical by
    /// construction — there is no separate "restore" code path that could
    /// drift from this one.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when the configuration or the program fails
    /// validation.
    pub fn from_snapshot(
        cfg: &SimConfig,
        program: &Program,
        technique: Technique,
        snap: &pre_model::snapshot::SimSnapshot,
        warmed: &crate::WarmedState,
    ) -> Result<Self, BuildError> {
        let mut core = OooCore::build(cfg, program, technique, || snap.mem.clone())?;
        core.arf = snap.regs;
        // The rename subsystem seeds its initial mappings from the ARF, so
        // rebuild it over the snapshot's register values.
        core.rename = RenameSubsystem::new(
            cfg.core.int_phys_regs,
            cfg.core.fp_phys_regs,
            cfg.runahead.prdq_entries,
            &core.arf,
        );
        core.mem_hier = warmed.mem_hier.clone();
        core.predictor = warmed.predictor.clone();
        // Resume fetch at the snapshot PC. `fetch_done` stays false even
        // when warm-up consumed the whole program: the fetch stage discovers
        // the end itself when no instruction exists at the PC.
        core.fetch_pc = snap.pc;
        core.next_dispatch_pc = snap.pc;
        Ok(core)
    }

    /// The technique this core is configured with.
    pub fn technique(&self) -> Technique {
        self.technique
    }

    /// Current simulated cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// `true` while the core is in (any flavour of) runahead mode.
    pub fn in_runahead(&self) -> bool {
        self.mode != Mode::Normal
    }

    /// `true` once the program has fully retired and the pipeline drained.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// `true` if the run was aborted because no instruction committed for an
    /// implausibly long time (indicates a modelling bug; asserted against in
    /// tests).
    pub fn deadlocked(&self) -> bool {
        self.deadlocked
    }

    /// Diagnostic dump for a watchdog abort: where the machine was when it
    /// wedged (cycle, ROB/IQ occupancy, and the last committed PCs from the
    /// always-on commit ring). `None` unless the run [`deadlocked`](Self::deadlocked).
    pub fn watchdog_diag(&self) -> Option<WatchdogDiag> {
        if !self.deadlocked {
            return None;
        }
        Some(WatchdogDiag {
            cycle: self.cycle,
            committed_uops: self.stats.committed_uops,
            rob_occupancy: self.rob.len(),
            rob_capacity: self.rob.capacity(),
            iq_occupancy: self.iq.len(),
            iq_capacity: self.iq.capacity(),
            last_commits: self.commit_ring.entries(),
        })
    }

    /// The committed (architectural) value of `reg`.
    pub fn arch_reg(&self, reg: ArchReg) -> u64 {
        self.arf[reg.flat_index()]
    }

    /// Read-only view of the committed functional memory.
    pub fn memory(&self) -> &FuncMem {
        &self.func_mem
    }

    /// Current ROB occupancy (useful for experiments and tests).
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// Accumulated statistics. Call [`OooCore::finalize_stats`] (or
    /// [`OooCore::run`], which does it for you) first so that cache, DRAM and
    /// structure counters are folded in.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Attaches a [`Tracer`] whose hooks the pipeline drives from the next
    /// cycle on. Tracers observe and never steer: attaching one leaves the
    /// simulated outcome (and [`SimStats`]) bit-identical.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Detaches and returns the attached tracer, if any. Call after the run
    /// (the run loop already invoked [`Tracer::finish`]).
    pub fn take_tracer(&mut self) -> Option<Box<dyn Tracer>> {
        self.tracer.take()
    }

    /// Snapshot of the committed architectural state, comparable against
    /// [`pre_model::program::Interpreter::snapshot`] after the same number of
    /// retired instructions.
    pub fn arch_snapshot(&self) -> ArchSnapshot {
        ArchSnapshot {
            regs: self.arf,
            retired: self.stats.committed_uops,
            store_checksum: self.stats.store_checksum,
            stores: self.stats.committed_stores,
            next_pc: self
                .rob
                .head()
                .map(|h| h.pc)
                .unwrap_or(self.next_dispatch_pc),
        }
    }

    /// Advances the simulation by one cycle.
    pub fn tick(&mut self) {
        self.cycle += 1;
        let now = self.cycle;
        self.process_completions(now);
        self.check_runahead_exit(now);
        self.commit_stage(now);
        self.issue_stage(now);
        if let Some((branch_id, target)) = self.pending_recovery.take() {
            self.recover_from_branch(branch_id, target, now);
        }
        self.dispatch_stage(now);
        self.decode_stage(now);
        self.fetch_stage(now);
        self.runahead_cycle_hook(now);
    }

    /// Runs until `max_uops` micro-ops have committed, `max_cycles` cycles
    /// have elapsed, or the program retires completely; then folds structure
    /// counters into the statistics.
    ///
    /// With the event-driven scheduler (the default), quiescent stretches —
    /// cycles during which every pipeline stage is provably a no-op, e.g. a
    /// full-window stall on an off-chip load — are fast-forwarded in bulk:
    /// the clock jumps to the next completion event and the per-cycle stall
    /// statistics are accumulated arithmetically. The resulting [`SimStats`]
    /// are bit-identical to ticking cycle by cycle (asserted by the
    /// `scheduler_equivalence` suite against the reference scheduler).
    pub fn run(&mut self, max_uops: u64, max_cycles: u64) -> &SimStats {
        let fast_forward = !self.cfg.core.reference_scheduler;
        while !self.halted
            && !self.deadlocked
            && self.stats.committed_uops < max_uops
            && self.cycle < max_cycles
        {
            self.tick();
            if self.cycle - self.last_progress_cycle > DEADLOCK_WINDOW {
                self.deadlocked = true;
            }
            // Only fast-forward when the loop will keep ticking; advancing
            // the clock after the final tick would diverge from the
            // cycle-by-cycle reference.
            if fast_forward && self.stats.committed_uops < max_uops && self.cycle < max_cycles {
                self.fast_forward_quiescent(max_cycles);
            }
            if self.tracer.is_some() {
                self.trace_sample_tick();
            }
        }
        if self.tracer.is_some() {
            // Close the time series with a final (partial-window) sample so
            // even runs shorter than one window produce a data point.
            self.trace_sample_now();
        }
        // Record how the run ended. Purely a function of simulated machine
        // state and the budget, so it is bit-identical across the event and
        // reference schedulers (and across cached vs recomputed results).
        self.stats.terminated = if self.deadlocked {
            TerminationKind::Watchdog
        } else if self.halted || self.stats.committed_uops >= max_uops {
            TerminationKind::Completed
        } else {
            TerminationKind::MaxCycles
        };
        self.finalize_stats();
        let final_cycle = self.cycle;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.finish(final_cycle);
        }
        &self.stats
    }

    /// Delivers a time-series [`Sample`] to the tracer when one is due. The
    /// snapshot only reads occupancy/counter state (the MSHR read expires
    /// already-completed fills, which every access path does anyway), so
    /// sampling never perturbs the simulation.
    fn trace_sample_tick(&mut self) {
        let now = self.cycle;
        let due = match self.tracer.as_deref_mut() {
            Some(t) => t.sample_due(now),
            None => false,
        };
        if !due {
            return;
        }
        self.trace_sample_now();
    }

    /// Delivers one time-series [`Sample`] unconditionally.
    fn trace_sample_now(&mut self) {
        let now = self.cycle;
        let sample = Sample {
            cycle: now,
            committed_uops: self.stats.committed_uops,
            rob: self.rob.len(),
            rob_cap: self.rob.capacity(),
            iq: self.iq.len(),
            iq_cap: self.iq.capacity(),
            lq: self.lsq.lq_len(),
            sq: self.lsq.sq_len(),
            emq: self.emq.len(),
            emq_cap: self.emq.capacity(),
            free_int_frac: self.rename.free_fraction(RegClass::Int),
            free_fp_frac: self.rename.free_fraction(RegClass::Fp),
            mshr_occupancy: self.mem_hier.l1d_mshr_occupancy(now),
            l2_misses: self.mem_hier.l2_miss_count(),
            l3_misses: self.mem_hier.l3_miss_count(),
            in_runahead: self.mode != Mode::Normal,
        };
        if let Some(t) = self.tracer.as_deref_mut() {
            t.sample(&sample);
        }
    }

    /// Folds memory-hierarchy and structure counters into the statistics.
    pub fn finalize_stats(&mut self) {
        self.stats.cycles = self.cycle;
        self.mem_hier.export_stats(&mut self.stats);
        self.stats.rat_reads = self.rename.rat().reads();
        self.stats.rat_writes = self.rename.rat().writes();
        self.stats.prf_reads =
            self.rename.prf(RegClass::Int).reads() + self.rename.prf(RegClass::Fp).reads();
        self.stats.prf_writes =
            self.rename.prf(RegClass::Int).writes() + self.rename.prf(RegClass::Fp).writes();
        self.stats.iq_writes = self.iq.writes();
        self.stats.rob_writes = self.rob.writes();
        self.stats.rob_reads = self.rob.reads();
        self.stats.lsq_searches = self.lsq.searches();
        self.stats.lsq_forwards = self.lsq.forwards();
        self.stats.forward_blocked_partial = self.lsq.forward_blocked_partial();
        self.stats.sst_lookups = self.sst.lookups();
        self.stats.sst_hits = self.sst.hits();
        self.stats.sst_inserts = self.sst.inserts();
        self.stats.sst_evictions = self.sst.evictions();
        self.stats.prdq_allocations = self.rename.prdq().allocations();
        self.stats.prdq_reclaims = self.rename.prdq().reclaims();
        self.stats.prdq_eager_seeds = self.rename.prdq().eager_seeds();
        self.stats.prdq_eager_reclaims = self.rename.prdq().eager_reclaims();
        self.stats.emq_writes = self.emq.writes();
        self.stats.emq_reads = self.emq.reads();
        self.stats.runahead_buffer_walks = self.runahead_buffer.walks();
    }

    // ---------------------------------------------------------------------
    // Completion (writeback) handling.
    // ---------------------------------------------------------------------

    pub(crate) fn process_completions(&mut self, now: u64) {
        while let Some(head) = self.in_flight.pop_due(now) {
            if head.is_runahead {
                // Runahead micro-ops are only meaningful while their interval
                // is still the active PRE interval.
                if self.mode == Mode::RunaheadPre && head.interval_seq == self.interval_seq {
                    if let Some((class, reg)) = head.dest {
                        self.set_ready_and_wake(class, reg);
                    }
                    self.rename.mark_runahead_executed(head.id);
                    self.stats.iq_wakeups += 1;
                }
                continue;
            }
            // Normal micro-op: it may have been squashed (branch recovery or
            // flush-style runahead) in the meantime, which kills its slot
            // handle.
            if !self.rob.slot_matches(head.rob_slot, head.id) {
                continue;
            }
            if let Some((class, reg)) = head.dest {
                self.set_ready_and_wake(class, reg);
            }
            self.rob.set_executed(head.rob_slot);
            if let Some(t) = self.tracer.as_deref_mut() {
                t.uop_completed(head.id, head.completion);
            }
            if self.mode == Mode::RunaheadPre {
                // A window producer completed: previous mappings whose last
                // consumer already issued may now be eager-drain candidates.
                self.pre_eager_rescan = true;
            }
            self.stats.executed_uops += 1;
            self.stats.iq_wakeups += 1;
        }
    }

    // ---------------------------------------------------------------------
    // Commit stage.
    // ---------------------------------------------------------------------

    pub(crate) fn commit_stage(&mut self, now: u64) {
        match self.mode {
            Mode::RunaheadFlush(_) => {
                self.pseudo_retire(now);
                return;
            }
            Mode::RunaheadPre => {
                // Section 3.1: no instructions commit in runahead mode; the
                // ROB is preserved so commit resumes immediately at exit.
                return;
            }
            Mode::Normal => {}
        }

        // Batch retire: one head-run probe sizes the whole batch of
        // consecutive executed head entries, then the drain pops them without
        // re-checking the head after every entry.
        let batch = self.rob.executed_head_run(self.cfg.core.commit_width);
        for _ in 0..batch {
            let Some(entry) = self.rob.pop_head() else {
                break;
            };
            let inst = entry.uop.inst;
            if let (Some(dest), Some(result)) = (inst.dest, entry.result) {
                self.arf[dest.flat_index()] = result;
            }
            if let Some(width) = inst.opcode.store_width() {
                let addr = entry.mem_addr.expect("committed store has an address");
                let value = entry.store_value.expect("committed store has a value");
                self.func_mem.store_bytes(addr, width.bytes(), value);
                self.mem_hier.store_range(addr, width.bytes(), now);
                self.stats.committed_stores += 1;
                self.stats.store_checksum = fold_store_checksum(
                    self.stats.store_checksum,
                    addr,
                    value,
                    self.stats.committed_stores,
                );
                self.lsq.release_store(entry.id);
            }
            if inst.opcode.is_load() {
                self.stats.committed_loads += 1;
                self.lsq.release_load(entry.id);
            }
            if inst.opcode.is_cond_branch() {
                self.stats.committed_branches += 1;
                if entry.mispredicted {
                    self.stats.mispredicted_branches += 1;
                }
            }
            if let Some((arch, old, _)) = entry.old_dest {
                self.rename.free_committed(arch.class(), old);
            }
            self.stats.committed_uops += 1;
            self.last_progress_cycle = now;
            self.commit_ring.push(now, entry.uop.pc);
            if let Some(t) = self.tracer.as_deref_mut() {
                t.uop_committed(
                    &CommittedUop {
                        id: entry.id,
                        pc: entry.uop.pc,
                        class: inst.opcode.class(),
                        addr: entry.mem_addr,
                        width: inst.opcode.mem_width().map_or(0, |w| w.bytes() as u8),
                    },
                    now,
                );
            }
        }
        // A partial batch means the head is either gone (empty window: check
        // for the end of the program) or still in flight (a commit-blocked
        // full window counts toward the stall statistics).
        if batch < self.cfg.core.commit_width {
            if self.rob.is_empty() {
                if self.fetch_done
                    && self.uop_queue.is_empty()
                    && self.delay_pipe.is_empty()
                    && self.emq.is_empty()
                {
                    self.halted = true;
                }
            } else {
                self.detect_full_window_stall(now);
            }
        }
    }

    /// Pseudo-retirement during flush-style runahead: instructions drain from
    /// the ROB head without updating architectural state.
    fn pseudo_retire(&mut self, now: u64) {
        let batch = self.rob.executed_head_run(self.cfg.core.commit_width);
        for _ in 0..batch {
            let Some(entry) = self.rob.pop_head() else {
                break;
            };
            if entry.uop.inst.opcode.is_store() {
                self.lsq.release_store(entry.id);
            }
            if entry.uop.inst.opcode.is_load() {
                self.lsq.release_load(entry.id);
            }
            if let Some((arch, old, _)) = entry.old_dest {
                self.rename.free_committed(arch.class(), old);
            }
            self.stats.runahead_uops_executed += 1;
            self.last_progress_cycle = now;
            if let Some(t) = self.tracer.as_deref_mut() {
                t.uop_squashed(entry.id, now);
            }
        }
    }

    // ---------------------------------------------------------------------
    // Small helpers shared by the stage implementations.
    // ---------------------------------------------------------------------

    pub(crate) fn prf(&self, class: RegClass) -> &PhysRegFile {
        self.rename.prf(class)
    }

    pub(crate) fn prf_mut(&mut self, class: RegClass) -> &mut PhysRegFile {
        self.rename.prf_mut(class)
    }

    /// Sets `reg`'s ready bit (writeback completed) and, on the not-ready →
    /// ready transition, wakes its waiting consumers through the issue
    /// queue's producer-indexed wakeup table. Every ready-bit set in the
    /// pipeline goes through here so the event scheduler never misses a
    /// wakeup.
    pub(crate) fn set_ready_and_wake(&mut self, class: RegClass, reg: PhysReg) {
        let prf = self.rename.prf_mut(class);
        let newly_ready = !prf.is_ready(reg);
        prf.set_ready(reg, true);
        if newly_ready {
            self.iq.wake(class, reg);
        }
    }

    /// The current speculative value of an architectural register, read
    /// through the RAT (falls back to the committed value when the youngest
    /// producer has not executed yet). Used to seed the runahead-buffer chain
    /// replay.
    pub(crate) fn speculative_arch_value(&self, reg: ArchReg) -> u64 {
        let phys = self.rename.rat().peek(reg);
        let prf = self.prf(reg.class());
        if prf.is_ready(phys) {
            prf.peek(phys)
        } else {
            self.arf[reg.flat_index()]
        }
    }

    // ---------------------------------------------------------------------
    // Quiescent-cycle fast-forward.
    // ---------------------------------------------------------------------

    /// Jumps the clock over cycles during which every pipeline stage is
    /// provably a no-op, bulk-accumulating the per-cycle stall statistics so
    /// the resulting [`SimStats`] are bit-identical to ticking cycle by
    /// cycle. Dispatches to a per-mode fast-forward path; the runahead-buffer
    /// mode never fast-forwards because its chain replay does real work every
    /// cycle.
    pub(crate) fn fast_forward_quiescent(&mut self, max_cycles: u64) {
        if self.halted || self.deadlocked {
            return;
        }
        match self.mode {
            Mode::Normal => self.fast_forward_normal(max_cycles),
            Mode::RunaheadFlush(FlushKind::Traditional) => {
                self.fast_forward_runahead_flush(max_cycles);
            }
            Mode::RunaheadPre => self.fast_forward_runahead_pre(max_cycles),
            Mode::RunaheadFlush(FlushKind::Buffer) => {}
        }
    }

    /// Normal-mode fast-forward.
    ///
    /// The quiescence conditions (all must hold; anything else falls back to
    /// normal ticking):
    ///
    /// * nothing ready or pending in the issue stage (select and store
    ///   address generation idle);
    /// * the ROB head exists and has not executed (commit blocked; an empty
    ///   or committing ROB makes progress);
    /// * dispatch has nothing it could dispatch (no front micro-op, or a
    ///   back-end resource is exhausted);
    /// * fetch and decode cannot act before the jump target (the target is
    ///   capped at `fetch_stall_until` and the delay pipe's next-ready
    ///   cycle).
    ///
    /// Under those conditions the only per-cycle effects are the
    /// full-window-stall counters (plus the runahead entry-skip counters for
    /// runahead techniques) and the front-end stall counter, all of which
    /// are accumulated here exactly as `tick` would. The jump target is the
    /// next `in_flight` completion, additionally capped by the deadlock
    /// watchdog and the caller's cycle limit so aborted runs stop at the
    /// same cycle as the reference scheduler.
    fn fast_forward_normal(&mut self, max_cycles: u64) {
        debug_assert!(self.pending_recovery.is_none());
        debug_assert!(self.interval.is_none());
        if !self.iq.select_idle() {
            return;
        }
        let Some(head) = self.rob.head() else {
            return;
        };
        if head.executed {
            return;
        }
        let head_id = head.id;
        let head_completion = head.completion_cycle;
        let head_blocking = head.is_load && head.issued && head.mem_level == Some(HitLevel::Memory);
        let front = if !self.emq.is_empty() {
            self.emq.peek().copied()
        } else {
            self.uop_queue.front().copied()
        };
        let mut dispatch_would_block = false;
        if let Some(uop) = front {
            if self.dispatch_resources_available(&uop) {
                return;
            }
            dispatch_would_block = true;
        }
        let now = self.cycle;
        // Earliest future cycle at which any stage can make progress again,
        // capped so deadlocked and budget-bounded runs stop exactly where
        // the cycle-by-cycle reference stops.
        let mut target = (self.last_progress_cycle + DEADLOCK_WINDOW + 1).min(max_cycles);
        if let Some(next_completion) = self.in_flight.next_completion() {
            debug_assert!(next_completion > now, "unprocessed completion event");
            target = target.min(next_completion);
        }
        if !self.fetch_done && !self.delay_pipe.is_full() {
            // Fetch resumes (or discovers the end of the program) once the
            // instruction-cache stall expires.
            if self.fetch_stall_until <= now + 1 {
                return;
            }
            target = target.min(self.fetch_stall_until);
        }
        if !self.uop_queue.is_full() {
            if let Some(ready_at) = self.delay_pipe.next_ready_at() {
                if ready_at <= now + 1 {
                    return;
                }
                target = target.min(ready_at);
            }
        }
        if target <= now + 1 {
            return;
        }

        // Emulate the per-cycle statistics of the skipped cycles
        // `now+1 ..= target-1`; `tick` itself runs cycle `target`.
        //
        // The commit stage of skipped cycle `t` observes `dispatch_blocked`
        // as set by cycle `t-1`'s dispatch stage: the first skipped cycle
        // sees the current flag, later ones see the value the (no-op)
        // dispatch stages would recompute.
        let rob_full = self.rob.is_full();
        let head_may_stall =
            head_blocking && (rob_full || self.dispatch_blocked || dispatch_would_block);
        let mut end = target - 1;
        if head_may_stall {
            let is_runahead = self.technique.is_runahead();
            let already = self.runahead_done_for == Some(head_id);
            let (mut free_int, mut free_fp) = (
                self.rename.num_free(RegClass::Int),
                self.rename.num_free(RegClass::Fp),
            );
            if is_runahead && self.entry_policy.needs_free_reg_counts() {
                let (int_reclaimable, fp_reclaimable) =
                    self.rename.count_eager_reclaimable(&self.rob, &self.iq);
                free_int += int_reclaimable;
                free_fp += fp_reclaimable;
            }
            let mut t = now + 1;
            while t <= end {
                let blocked_last_cycle = if t == now + 1 {
                    self.dispatch_blocked
                } else {
                    dispatch_would_block
                };
                if !(rob_full || blocked_last_cycle) {
                    t += 1;
                    continue;
                }
                if is_runahead {
                    let expected_remaining = head_completion.saturating_sub(t);
                    match self
                        .entry_policy
                        .decide(expected_remaining, already, free_int, free_fp)
                    {
                        EntryDecision::Enter => {
                            // The real tick at `t` must perform the entry
                            // (and account that cycle's stall statistics
                            // itself).
                            end = t - 1;
                            break;
                        }
                        EntryDecision::SkipShortInterval => {
                            self.stats.runahead_entries_skipped_short += 1;
                        }
                        EntryDecision::SkipOverlap => {
                            self.stats.runahead_entries_skipped_overlap += 1;
                        }
                        EntryDecision::SkipNoFreeRegs => {
                            self.stats.runahead_entries_skipped_no_regs += 1;
                        }
                    }
                }
                self.stats.full_window_stall_cycles += 1;
                if let Some(tr) = self.tracer.as_deref_mut() {
                    tr.window_stall_cycles(t, 1);
                }
                if self.last_stall_head_id != Some(head_id) {
                    self.last_stall_head_id = Some(head_id);
                    self.stats.full_window_stalls += 1;
                    self.stats
                        .int_free_at_stall_hist
                        .record_fraction(self.rename.free_fraction(RegClass::Int));
                    self.stats
                        .fp_free_at_stall_hist
                        .record_fraction(self.rename.free_fraction(RegClass::Fp));
                }
                t += 1;
            }
        }
        if end <= now {
            return;
        }
        // The skipped dispatch stages each recomputed the blocked flag; the
        // tick at `target` must observe the final value.
        self.dispatch_blocked = dispatch_would_block;
        if !self.fetch_done {
            // Skipped cycles with `t < fetch_stall_until` would each have
            // counted one front-end stall cycle.
            let stalled_until = end.min(self.fetch_stall_until.saturating_sub(1));
            self.stats.frontend_stall_cycles += stalled_until.saturating_sub(now);
        }
        self.stats.ff_cycles.normal += end - now;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.fast_forward(now, end, FfMode::Normal);
        }
        self.cycle = end;
    }

    /// Fast-forward for traditional (flush-style) runahead.
    ///
    /// In this mode the pipeline stays fully active — the front end keeps
    /// fetching, dispatch renames into the preserved structures and the
    /// window drains through pseudo-retirement — so quiescence means every
    /// stage is blocked waiting on an in-flight completion, exactly as in
    /// normal mode with two differences: commit is quiescent when the ROB
    /// head has not executed *or* the ROB is empty (pseudo-retirement never
    /// halts the run or detects full-window stalls), and each skipped cycle
    /// counts as a runahead cycle that marks progress, so no entry-skip or
    /// stall counters can advance. The jump target is additionally capped at
    /// the interval's expected return so the tick at the target performs the
    /// exit check itself.
    fn fast_forward_runahead_flush(&mut self, max_cycles: u64) {
        debug_assert!(self.pending_recovery.is_none());
        if !self.iq.select_idle() {
            return;
        }
        // Pseudo-retirement makes progress on an executed head.
        if self.rob.head().is_some_and(|h| h.executed) {
            return;
        }
        // Flush-style techniques never use the EMQ, so dispatch peeks the
        // micro-op queue only.
        debug_assert!(self.emq.is_empty());
        let mut dispatch_would_block = false;
        if let Some(uop) = self.uop_queue.front().copied() {
            if self.dispatch_resources_available(&uop) {
                return;
            }
            dispatch_would_block = true;
        }
        let now = self.cycle;
        let expected_return = self
            .interval
            .as_ref()
            .expect("runahead mode has an active interval")
            .expected_return;
        let mut target = expected_return.min(max_cycles);
        if let Some(next_completion) = self.in_flight.next_completion() {
            debug_assert!(next_completion > now, "unprocessed completion event");
            target = target.min(next_completion);
        }
        if !self.fetch_done && !self.delay_pipe.is_full() {
            if self.fetch_stall_until <= now + 1 {
                return;
            }
            target = target.min(self.fetch_stall_until);
        }
        if !self.uop_queue.is_full() {
            if let Some(ready_at) = self.delay_pipe.next_ready_at() {
                if ready_at <= now + 1 {
                    return;
                }
                target = target.min(ready_at);
            }
        }
        if target <= now + 1 {
            return;
        }
        let end = target - 1;
        let skipped = end - now;
        // The cycle hook counts every skipped cycle as runahead progress
        // (runahead mode never trips the deadlock watchdog).
        self.stats.runahead_cycles += skipped;
        self.last_progress_cycle = end;
        self.dispatch_blocked = dispatch_would_block;
        if !self.fetch_done {
            let stalled_until = end.min(self.fetch_stall_until.saturating_sub(1));
            self.stats.frontend_stall_cycles += stalled_until.saturating_sub(now);
        }
        self.stats.ff_cycles.runahead += skipped;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.fast_forward(now, end, FfMode::Runahead);
        }
        self.cycle = end;
    }

    /// Fast-forward for precise runahead.
    ///
    /// Commit is architecturally paused in this mode, so quiescence reduces
    /// to:
    ///
    /// * the issue stage idle (select and store address generation);
    /// * the eager-drain machinery settled — the rescan flag clear (the
    ///   per-cycle seed scan is skipped) and the PRDQ head not drainable,
    ///   which the cycle hook that just ran guarantees until the next
    ///   completion event;
    /// * the PRE decode filter blocked: the micro-op queue empty, or the EMQ
    ///   full (zero SST lookups either way), or the head micro-op an SST hit
    ///   waiting for back-end resources — that head performs exactly one
    ///   mutating SST lookup per skipped cycle, replayed in bulk through
    ///   [`StallingSliceTable::record_bulk_hits`];
    /// * fetch and decode unable to act before the jump target (with a full
    ///   EMQ the fetch stage instead counts one EMQ-full stall cycle per
    ///   cycle, accumulated in bulk).
    ///
    /// The jump target is capped at the next in-flight completion and the
    /// interval's expected return, so runahead wake-ups and the exit check
    /// both happen on real ticks.
    fn fast_forward_runahead_pre(&mut self, max_cycles: u64) {
        debug_assert!(self.pending_recovery.is_none());
        debug_assert!(!self.dispatch_blocked);
        if self.pre_eager_rescan {
            // The hook re-runs the eager-drain scan every cycle until it
            // completes with PRDQ room; its effects cannot be bulk-replayed.
            return;
        }
        if !self.iq.select_idle() {
            return;
        }
        // The hook's PRDQ drain just ran: anything drainable was drained,
        // so the per-cycle drain stays a no-op until the next completion.
        debug_assert!(
            self.rename
                .prdq()
                .iter()
                .next()
                .map_or(true, |e| !e.executed),
            "drainable PRDQ head at fast-forward"
        );
        let emq_blocked = self.use_emq && self.emq.is_full();
        let mut blocked_hit_pc = None;
        if !emq_blocked {
            if let Some(&uop) = self.uop_queue.front() {
                // An SST miss at the queue head pops every cycle; a hit with
                // free resources executes. Both are real per-cycle work.
                if !self.sst.contains(uop.pc) {
                    return;
                }
                if self.pre_runahead_resources_available(&uop) {
                    return;
                }
                blocked_hit_pc = Some(uop.pc);
            }
        }
        let now = self.cycle;
        let expected_return = self
            .interval
            .as_ref()
            .expect("runahead mode has an active interval")
            .expected_return;
        let mut target = expected_return.min(max_cycles);
        if let Some(next_completion) = self.in_flight.next_completion() {
            debug_assert!(next_completion > now, "unprocessed completion event");
            target = target.min(next_completion);
        }
        // With a full EMQ the fetch stage stalls before its instruction
        // cache check, so the fetch-resume cap only applies otherwise.
        // Decode drains the delay pipe regardless of the EMQ.
        if !emq_blocked && !self.fetch_done && !self.delay_pipe.is_full() {
            if self.fetch_stall_until <= now + 1 {
                return;
            }
            target = target.min(self.fetch_stall_until);
        }
        if !self.uop_queue.is_full() {
            if let Some(ready_at) = self.delay_pipe.next_ready_at() {
                if ready_at <= now + 1 {
                    return;
                }
                target = target.min(ready_at);
            }
        }
        if target <= now + 1 {
            return;
        }
        let end = target - 1;
        let skipped = end - now;
        if let Some(pc) = blocked_hit_pc {
            // The filter re-looks-up the blocked head once per skipped
            // cycle; replay those hitting lookups in bulk.
            self.sst.record_bulk_hits(pc, skipped);
        }
        if emq_blocked && !self.fetch_done {
            self.stats.emq_full_stall_cycles += skipped;
            if let Some(t) = self.tracer.as_deref_mut() {
                t.emq_full_cycles(now + 1, skipped);
            }
        } else if !self.fetch_done {
            let stalled_until = end.min(self.fetch_stall_until.saturating_sub(1));
            self.stats.frontend_stall_cycles += stalled_until.saturating_sub(now);
        }
        self.stats.runahead_cycles += skipped;
        self.last_progress_cycle = end;
        self.stats.ff_cycles.runahead += skipped;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.fast_forward(now, end, FfMode::Runahead);
        }
        self.cycle = end;
    }
}
