//! Runahead-mode control: full-window-stall detection, entry, exit, the PRE
//! decode filter and the runahead-buffer chain replay.

use super::{FlushKind, Mode, OooCore, RunaheadInterval};
use crate::iq::IqEntry;
use pre_model::reg::{ArchReg, RegClass, NUM_ARCH_REGS};
use pre_model::stats::{RunaheadEvent, RunaheadEventKind};
use pre_runahead::{ChainReplayEngine, EntryDecision, Technique, WindowUop};

impl OooCore {
    // ---------------------------------------------------------------------
    // Full-window-stall detection (normal mode).
    // ---------------------------------------------------------------------

    /// Called from the commit stage when the ROB head is not ready to commit.
    ///
    /// The paper defines a full-window stall as the ROB filling up behind a
    /// load that missed in the LLC. We use the slightly more general
    /// condition "dispatch is blocked on a back-end resource while the ROB
    /// head is an outstanding off-chip load", which reduces to the paper's
    /// definition when the ROB is the binding resource (see DESIGN.md).
    pub(crate) fn detect_full_window_stall(&mut self, now: u64) {
        let window_blocked = self.rob.is_full() || self.dispatch_blocked;
        if !window_blocked {
            return;
        }
        let (head_id, head_pc, head_completion, blocking) = match self.rob.head() {
            Some(head) => (
                head.id,
                head.pc,
                head.completion_cycle,
                head.is_blocking_long_latency_load(now),
            ),
            None => return,
        };
        if !blocking {
            return;
        }
        self.stats.full_window_stall_cycles += 1;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.window_stall_cycles(now, 1);
        }
        if self.last_stall_head_id != Some(head_id) {
            self.last_stall_head_id = Some(head_id);
            self.stats.full_window_stalls += 1;
            // Per-class free-register occupancy at the stall — the paper's
            // §3.4 premise ("~51 % of integer registers free") that the
            // integer-only asm kernels violate.
            self.stats
                .int_free_at_stall_hist
                .record_fraction(self.rename.free_fraction(RegClass::Int));
            self.stats
                .fp_free_at_stall_hist
                .record_fraction(self.rename.free_fraction(RegClass::Fp));
        }
        if !self.technique.is_runahead() {
            return;
        }
        let expected_remaining = head_completion.saturating_sub(now);
        let already = self.runahead_done_for == Some(head_id);
        // The free-register gate counts what the eager drain could release,
        // so it only refuses entry when runahead renaming would stay starved
        // even after reclamation.
        let (mut free_int, mut free_fp) = (
            self.rename.num_free(RegClass::Int),
            self.rename.num_free(RegClass::Fp),
        );
        if self.entry_policy.needs_free_reg_counts() {
            let (int_reclaimable, fp_reclaimable) =
                self.rename.count_eager_reclaimable(&self.rob, &self.iq);
            free_int += int_reclaimable;
            free_fp += fp_reclaimable;
        }
        match self
            .entry_policy
            .decide(expected_remaining, already, free_int, free_fp)
        {
            EntryDecision::Enter => self.enter_runahead(now, head_id, head_pc, head_completion),
            EntryDecision::SkipShortInterval => {
                self.stats.runahead_entries_skipped_short += 1;
            }
            EntryDecision::SkipOverlap => {
                self.stats.runahead_entries_skipped_overlap += 1;
            }
            EntryDecision::SkipNoFreeRegs => {
                self.stats.runahead_entries_skipped_no_regs += 1;
            }
        }
    }

    // ---------------------------------------------------------------------
    // Entry.
    // ---------------------------------------------------------------------

    fn enter_runahead(&mut self, now: u64, head_id: u64, head_pc: u32, completion: u64) {
        self.interval_seq += 1;
        self.stats.runahead_entries += 1;
        self.runahead_done_for = Some(head_id);

        // Stat C: free back-end resources at runahead entry.
        self.stats.iq_free_at_entry.record(self.iq.free_fraction());
        self.stats
            .int_regs_free_at_entry
            .record(self.rename.free_fraction(RegClass::Int));
        self.stats
            .fp_regs_free_at_entry
            .record(self.rename.free_fraction(RegClass::Fp));

        let mut interval = RunaheadInterval {
            stalling_pc: head_pc,
            expected_return: completion.max(now + 1),
            entered_at: now,
            rename_checkpoint: None,
            arch_checkpoint: None,
            history: self.predictor.history(),
            ras: self.predictor.ras_snapshot(),
            resume_fetch_pc: self.next_dispatch_pc,
            prdq_allocs_at_entry: self.rename.prdq().allocations(),
        };

        let mut eager_freed = (0usize, 0usize);
        match self.technique {
            Technique::Runahead => {
                interval.arch_checkpoint = Some(self.arf);
                self.begin_flush_runahead(head_id, FlushKind::Traditional);
            }
            Technique::RunaheadBuffer => {
                interval.arch_checkpoint = Some(self.arf);
                let kind = self.begin_buffer_runahead(now, head_id, head_pc);
                self.begin_flush_runahead(head_id, kind);
            }
            Technique::Pre | Technique::PreEmq => {
                // The checkpoint is captured before the eager drain, so the
                // exit restore also un-frees every eagerly released
                // register.
                interval.rename_checkpoint = Some(self.rename.begin_runahead_interval());
                eager_freed = self.begin_pre_runahead(head_pc);
            }
            Technique::OutOfOrder => unreachable!("baseline never enters runahead"),
        }
        let ev = RunaheadEvent {
            cycle: now,
            kind: RunaheadEventKind::Entry,
            int_free: self.rename.num_free(RegClass::Int),
            fp_free: self.rename.num_free(RegClass::Fp),
            int_eager_freed: eager_freed.0,
            fp_eager_freed: eager_freed.1,
            prdq_allocated: 0,
        };
        if let Some(t) = self.tracer.as_deref_mut() {
            t.runahead_entry(&ev, head_pc);
        }
        self.interval = Some(interval);
    }

    /// Traditional-runahead entry: mark the stalling load — and every other
    /// load in the window still waiting on an off-chip access — invalid, so
    /// the window drains through pseudo-retirement instead of waiting for
    /// data that will be discarded anyway (Mutlu et al.'s INV semantics).
    fn begin_flush_runahead(&mut self, head_id: u64, kind: FlushKind) {
        let now = self.cycle;
        let long_latency_threshold = self.cfg.l3.latency;
        let mut to_invalidate: Vec<(
            u32,
            Option<(pre_model::reg::RegClass, pre_model::reg::PhysReg)>,
        )> = Vec::new();
        for (slot, entry) in self.rob.iter_slots() {
            let pending_off_chip = entry.issued
                && !entry.executed
                && entry.is_load
                && entry.completion_cycle.saturating_sub(now) > long_latency_threshold;
            if entry.id == head_id || pending_off_chip {
                to_invalidate.push((slot, entry.dest));
            }
        }
        for (slot, dest) in to_invalidate {
            self.rob.force_execute(slot);
            if let Some((class, reg)) = dest {
                let prf = self.prf_mut(class);
                prf.write(reg, 0);
                prf.set_inv(reg, true);
                // Waiting consumers of the invalidated register wake now.
                self.set_ready_and_wake(class, reg);
            }
        }
        self.mode = Mode::RunaheadFlush(kind);
    }

    /// Runahead-buffer entry: extract the stalling slice from the window and
    /// start the chain replay. Falls back to traditional runahead when no
    /// chain can be found (no second instance of the load in the window).
    fn begin_buffer_runahead(&mut self, now: u64, head_id: u64, head_pc: u32) -> FlushKind {
        let window: Vec<WindowUop> = self
            .rob
            .iter_uops()
            .map(|u| WindowUop {
                pc: u.pc,
                inst: u.inst,
            })
            .collect();
        let found = self.runahead_buffer.fill_from_window(
            &window,
            head_pc,
            self.cfg.runahead.runahead_buffer_chain_max,
        );
        if !found {
            return FlushKind::Traditional;
        }
        // Seed the replay with the youngest speculative register values, as
        // the hardware's rename table would supply.
        let mut regs = [0u64; NUM_ARCH_REGS];
        for (flat, reg) in regs.iter_mut().enumerate() {
            *reg = self.speculative_arch_value(ArchReg::from_flat_index(flat));
        }
        debug_assert!(
            self.rob.head().is_some_and(|h| h.id == head_id),
            "runahead entry is triggered by the ROB head"
        );
        let inv_regs: Vec<ArchReg> = self
            .rob
            .head_uop()
            .and_then(|u| u.inst.dest)
            .into_iter()
            .collect();
        self.chain_engine = Some(ChainReplayEngine::new(
            self.runahead_buffer.chain().to_vec(),
            &regs,
            &inv_regs,
            now,
        ));
        // The window is discarded, as in traditional runahead; the back-end
        // resources are then used exclusively by the chain replay.
        if self.tracer.is_some() {
            let ids: Vec<u64> = self.rob.iter_slots().map(|(_, e)| e.id).collect();
            if let Some(t) = self.tracer.as_deref_mut() {
                for id in ids {
                    t.uop_squashed(id, now);
                }
            }
        }
        let squashed = self.rob.clear() + self.iq.clear();
        self.stats.squashed_uops += squashed as u64;
        self.lsq.clear();
        FlushKind::Buffer
    }

    /// PRE entry: seed the SST with the stalling load and its producers,
    /// run the eager PRDQ drain so runahead renaming has free destination
    /// registers even when the stalled window exhausted a register class,
    /// and switch the decode path to the SST filter. The ROB, issue queue
    /// and LSQ are left untouched. Returns `(int, fp)` counts of eagerly
    /// freed registers.
    fn begin_pre_runahead(&mut self, head_pc: u32) -> (usize, usize) {
        self.sst.insert(head_pc);
        if let Some(inst) = self.program.inst_at(head_pc) {
            for src in inst.sources() {
                if let Some(pc) = self.rename.rat().producer_pc(src) {
                    self.sst.insert(pc);
                }
            }
        }
        self.mode = Mode::RunaheadPre;
        // Eager drain: seed the PRDQ with the window's dead previous
        // mappings and reclaim them immediately (the PRDQ is empty at
        // entry, so everything drained here is an eager free). Leave the
        // rescan flag set: a seed pass cut short by a full PRDQ retries on
        // the next cycle.
        self.rename.seed_eager(&self.rob, &self.iq);
        self.pre_eager_rescan = true;
        self.rename.drain_prdq()
    }

    // ---------------------------------------------------------------------
    // Per-cycle runahead work.
    // ---------------------------------------------------------------------

    pub(crate) fn runahead_cycle_hook(&mut self, now: u64) {
        match self.mode {
            Mode::Normal => {}
            Mode::RunaheadFlush(FlushKind::Buffer) => {
                self.stats.runahead_cycles += 1;
                self.last_progress_cycle = now;
                if let Some(engine) = &mut self.chain_engine {
                    let latencies = self.cfg.core.latencies;
                    let func_mem = &self.func_mem;
                    engine.step(
                        now,
                        self.cfg.core.dispatch_width,
                        &mut self.mem_hier,
                        |class| latencies.for_class(class),
                        |addr, len| func_mem.load_bytes(addr, len),
                    );
                }
            }
            Mode::RunaheadFlush(FlushKind::Traditional) => {
                self.stats.runahead_cycles += 1;
                self.last_progress_cycle = now;
            }
            Mode::RunaheadPre => {
                self.stats.runahead_cycles += 1;
                self.last_progress_cycle = now;
                // Window mappings whose last consumer issued (or whose
                // producer completed) this cycle are now dead: seed them so
                // the drain below frees them at that boundary instead of
                // waiting for a commit. The candidate set only changes at
                // those events, so the scan is skipped on quiet cycles; a
                // full PRDQ keeps the flag set so unseeded candidates are
                // retried once the drain makes room.
                if self.pre_eager_rescan {
                    self.rename.seed_eager(&self.rob, &self.iq);
                    self.pre_eager_rescan = self.rename.prdq().is_full();
                }
                // Runahead register reclamation: drain executed PRDQ entries
                // in order and return their registers to the free lists.
                self.rename.drain_prdq();
            }
        }
    }

    /// The PRE decode filter (Section 3.3): consume decoded micro-ops, buffer
    /// them in the EMQ when enabled, and speculatively execute the ones that
    /// hit in the SST using free back-end resources.
    pub(crate) fn pre_filter_stage(&mut self, now: u64) {
        for _ in 0..self.cfg.core.fetch_width {
            let uop = match self.uop_queue.front() {
                Some(u) => *u,
                None => break,
            };
            if self.use_emq && self.emq.is_full() {
                break;
            }
            let hit = self.sst.lookup(uop.pc);
            if hit && !self.pre_runahead_resources_available(&uop) {
                // Retry next cycle; the micro-op stays at the queue head so
                // program order within the slice is preserved.
                break;
            }
            let uop = self.uop_queue.pop().expect("front checked above");
            if let Some(t) = self.tracer.as_deref_mut() {
                t.uop_filtered(now, self.use_emq, hit);
            }
            if self.use_emq {
                self.emq.capture(uop).expect("EMQ fullness checked above");
            }
            if hit {
                self.runahead_execute_uop(uop, now);
            }
        }
    }

    pub(crate) fn pre_runahead_resources_available(&self, uop: &crate::uop::DynUop) -> bool {
        if self.iq.is_full() || self.rename.prdq().is_full() {
            return false;
        }
        if let Some(class) = uop.inst.opcode.dest_class() {
            if self.rename.num_free(class) == 0 {
                return false;
            }
        }
        true
    }

    /// Renames and injects one SST-hitting micro-op into the issue queue as a
    /// runahead micro-op, allocating its PRDQ entry and learning its
    /// producers' PCs.
    fn runahead_execute_uop(&mut self, uop: crate::uop::DynUop, now: u64) {
        let inst = uop.inst;
        // Iterative slice learning: the producers of this instruction's
        // sources are part of the slice too.
        for src in inst.sources() {
            if let Some(pc) = self.rename.rat().producer_pc(src) {
                self.sst.insert(pc);
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        let (srcs, dest) = self.rename.runahead_rename(&inst, uop.pc, id);
        // Injected slice micro-ops register with the producer-indexed wakeup
        // table exactly like normal dispatch, so completions wake them
        // without any scan.
        let rename = &self.rename;
        self.iq.insert(
            IqEntry {
                id,
                rob_slot: crate::rob::INVALID_SLOT,
                pc: uop.pc,
                inst,
                srcs,
                dest,
                class: inst.opcode.class(),
                is_runahead: true,
                dispatched_at: now,
                store_addr_ready: false,
            },
            |class, reg| rename.prf(class).is_ready(reg),
        );
        self.stats.renamed_uops += 1;
    }

    // ---------------------------------------------------------------------
    // Exit.
    // ---------------------------------------------------------------------

    pub(crate) fn check_runahead_exit(&mut self, now: u64) {
        let expected = match &self.interval {
            Some(interval) => interval.expected_return,
            None => return,
        };
        if self.mode == Mode::Normal || now < expected {
            return;
        }
        match self.mode {
            Mode::RunaheadFlush(_) => self.exit_flush(now),
            Mode::RunaheadPre => self.exit_pre(now, false),
            Mode::Normal => {}
        }
    }

    /// Exit from traditional runahead or the runahead buffer: the pipeline is
    /// flushed, the architectural checkpoint restored and fetch redirected to
    /// the stalling load (Section 2.2), paying the flush/refill penalty that
    /// PRE avoids (Section 2.4).
    fn exit_flush(&mut self, now: u64) {
        let interval = self
            .interval
            .take()
            .expect("exit requires an active interval");
        self.stats.runahead_exits += 1;
        self.stats
            .runahead_interval_hist
            .record(now - interval.entered_at);
        // Stat A: the analytic flush/refill penalty — refill the front end
        // (depth cycles) and re-dispatch a full window at dispatch width.
        self.stats.flush_refill_cycles += self.cfg.core.frontend_depth as u64
            + (self.cfg.core.rob_entries / self.cfg.core.dispatch_width) as u64;

        if let Some(engine) = self.chain_engine.take() {
            self.stats.runahead_uops_executed += engine.uops_executed();
            self.stats.runahead_loads_executed += engine.loads_executed();
            self.stats.runahead_prefetches_issued += engine.prefetches_issued();
            self.stats.runahead_inv_loads += engine.inv_loads();
            self.stats.runahead_buffer_replays += engine.uops_executed();
        }

        if self.tracer.is_some() {
            let ids: Vec<u64> = self.rob.iter_slots().map(|(_, e)| e.id).collect();
            if let Some(t) = self.tracer.as_deref_mut() {
                for id in ids {
                    t.uop_squashed(id, now);
                }
            }
        }
        let squashed = self.rob.clear() + self.iq.clear();
        self.stats.squashed_uops += squashed as u64;
        self.lsq.clear();
        self.in_flight.clear();
        self.delay_pipe.flush();
        self.uop_queue.clear();
        self.runahead_store_buffer.clear();
        if let Some(t) = self.tracer.as_deref_mut() {
            t.frontend_flushed(now);
        }

        let arch = interval
            .arch_checkpoint
            .expect("flush-style runahead checkpoints the ARF");
        self.rename.reset_from_arch(&arch);
        self.predictor.restore_history(interval.history);
        self.predictor.ras_restore(interval.ras);
        self.record_exit_event(
            now,
            interval.entered_at,
            interval.stalling_pc,
            interval.prdq_allocs_at_entry,
        );

        self.fetch_pc = interval.stalling_pc;
        self.next_dispatch_pc = interval.stalling_pc;
        self.fetch_stall_until = now + 1;
        self.last_fetch_line = None;
        self.fetch_done = false;
        self.last_stall_head_id = None;
        self.mode = Mode::Normal;
        self.last_progress_cycle = now;
    }

    /// Exit from precise runahead: restore the RAT checkpoint and free lists,
    /// discard runahead micro-ops and resume normal execution with the ROB
    /// intact — commit restarts immediately (Section 3.5).
    ///
    /// `aborted` is set when the exit is forced by a normal-mode branch
    /// misprediction rather than by the stalling load returning.
    pub(crate) fn exit_pre(&mut self, now: u64, aborted: bool) {
        let mut interval = self
            .interval
            .take()
            .expect("exit requires an active interval");
        self.stats.runahead_exits += 1;
        self.stats
            .runahead_interval_hist
            .record(now - interval.entered_at);

        let removed = self.iq.remove_where(|e| e.is_runahead);
        self.stats.squashed_uops += removed as u64;
        self.runahead_store_buffer.clear();

        // One call restores the RAT and both free lists (undoing runahead
        // allocations and eager frees alike) and clears the INV bits.
        self.rename.end_runahead_interval(
            interval
                .rename_checkpoint
                .take()
                .expect("PRE checkpoints the rename state"),
        );
        self.predictor.restore_history(interval.history);
        self.predictor.ras_restore(interval.ras);
        self.record_exit_event(
            now,
            interval.entered_at,
            interval.stalling_pc,
            interval.prdq_allocs_at_entry,
        );

        if !self.use_emq || aborted {
            // Without the EMQ the micro-ops fetched during runahead are
            // re-fetched in normal mode.
            self.stats.squashed_uops += (self.uop_queue.len() + self.delay_pipe.len()) as u64;
            self.uop_queue.clear();
            self.delay_pipe.flush();
            self.emq.clear();
            if let Some(t) = self.tracer.as_deref_mut() {
                t.frontend_flushed(now);
            }
            self.fetch_pc = interval.resume_fetch_pc;
            self.next_dispatch_pc = interval.resume_fetch_pc;
            self.fetch_stall_until = now + 1;
            self.last_fetch_line = None;
        }
        self.fetch_done = false;
        self.last_stall_head_id = None;
        self.mode = Mode::Normal;
        self.last_progress_cycle = now;
    }

    /// Reports the runahead exit to the tracer with the post-restore
    /// free-register occupancy and the PRDQ entries this interval allocated.
    fn record_exit_event(
        &mut self,
        now: u64,
        entered_at: u64,
        stalling_pc: u32,
        prdq_allocs_at_entry: u64,
    ) {
        if self.tracer.is_none() {
            return;
        }
        let ev = RunaheadEvent {
            cycle: now,
            kind: RunaheadEventKind::Exit,
            int_free: self.rename.num_free(RegClass::Int),
            fp_free: self.rename.num_free(RegClass::Fp),
            int_eager_freed: 0,
            fp_eager_freed: 0,
            prdq_allocated: self
                .rename
                .prdq()
                .allocations()
                .saturating_sub(prdq_allocs_at_entry),
        };
        if let Some(t) = self.tracer.as_deref_mut() {
            t.runahead_exit(&ev, entered_at, stalling_pc);
        }
    }
}
