//! Physical-register free lists (one per register class).

use pre_model::reg::PhysReg;

/// A free list over a physical register file of fixed size.
///
/// The first `NUM_*_ARCH_REGS` physical registers are initially mapped to the
/// architectural registers; the remainder start out free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreeList {
    capacity: usize,
    free: Vec<PhysReg>,
}

impl FreeList {
    /// Creates a free list for a register file of `capacity` physical
    /// registers, of which the first `reserved` are initially mapped (not
    /// free).
    ///
    /// # Panics
    ///
    /// Panics if `reserved > capacity`.
    pub fn new(capacity: usize, reserved: usize) -> Self {
        assert!(
            reserved <= capacity,
            "cannot reserve {reserved} registers out of {capacity}"
        );
        FreeList {
            capacity,
            free: (reserved..capacity)
                .rev()
                .map(|i| PhysReg(i as u16))
                .collect(),
        }
    }

    /// Allocates a free physical register, if any remain.
    pub fn allocate(&mut self) -> Option<PhysReg> {
        self.free.pop()
    }

    /// Returns a register to the free list.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the register is already free — a
    /// double-free indicates a renaming bug.
    pub fn free(&mut self, reg: PhysReg) {
        debug_assert!(
            !self.free.contains(&reg),
            "double free of physical register {reg}"
        );
        debug_assert!((reg.index()) < self.capacity, "register {reg} out of range");
        self.free.push(reg);
    }

    /// Number of registers currently free.
    pub fn num_free(&self) -> usize {
        self.free.len()
    }

    /// Total physical registers managed.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fraction of the register file that is free.
    pub fn free_fraction(&self) -> f64 {
        self.free.len() as f64 / self.capacity as f64
    }

    /// `true` when `reg` is currently on the free list.
    pub fn is_free(&self, reg: PhysReg) -> bool {
        self.free.contains(&reg)
    }

    /// Snapshot of the free list (used by PRE to checkpoint rename state at
    /// runahead entry).
    pub fn snapshot(&self) -> Vec<PhysReg> {
        self.free.clone()
    }

    /// Restores a previously captured snapshot.
    pub fn restore(&mut self, snapshot: Vec<PhysReg>) {
        self.free = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_free_count_excludes_reserved() {
        let fl = FreeList::new(168, 32);
        assert_eq!(fl.num_free(), 136);
        assert_eq!(fl.capacity(), 168);
        assert!((fl.free_fraction() - 136.0 / 168.0).abs() < 1e-12);
    }

    #[test]
    fn allocate_and_free_roundtrip() {
        let mut fl = FreeList::new(40, 32);
        let mut allocated = Vec::new();
        while let Some(r) = fl.allocate() {
            allocated.push(r);
        }
        assert_eq!(allocated.len(), 8);
        assert_eq!(fl.num_free(), 0);
        for r in allocated {
            fl.free(r);
        }
        assert_eq!(fl.num_free(), 8);
    }

    #[test]
    fn allocation_returns_unreserved_registers() {
        let mut fl = FreeList::new(40, 32);
        let r = fl.allocate().unwrap();
        assert!(r.index() >= 32);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut fl = FreeList::new(40, 32);
        let snap = fl.snapshot();
        let a = fl.allocate().unwrap();
        let b = fl.allocate().unwrap();
        assert_eq!(fl.num_free(), 6);
        fl.restore(snap);
        assert_eq!(fl.num_free(), 8);
        assert!(fl.is_free(a));
        assert!(fl.is_free(b));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics_in_debug() {
        let mut fl = FreeList::new(40, 32);
        let r = fl.allocate().unwrap();
        fl.free(r);
        fl.free(r);
    }

    #[test]
    #[should_panic(expected = "cannot reserve")]
    fn reserving_more_than_capacity_panics() {
        let _ = FreeList::new(8, 16);
    }
}
