//! The reorder buffer (ROB).
//!
//! The buffer is a fixed-capacity ring with the per-entry state split
//! between a **hot** array ([`RobHotEntry`]: the status bits, age, program
//! counter and rename mappings that the per-cycle commit, full-window-stall
//! and eager-reclaim scans touch) and a **cold** array (the micro-op payload
//! needed only when an entry writes back, commits or is squashed). Entries
//! never move: a micro-op keeps its physical slot index from dispatch to
//! removal, so the issue queue and the in-flight completion events carry a
//! slot handle and write back in O(1) — validated against the stored
//! micro-op id, which makes handles that outlive their entry (squash,
//! pseudo-retire during flush-style runahead) fail safely.

use crate::uop::DynUop;
use pre_mem::HitLevel;
use pre_model::isa::StaticInst;
use pre_model::reg::{ArchReg, PhysReg, RegClass};

/// Slot handle carried by issue-queue entries that have no ROB entry
/// (runahead micro-ops). Never validates against a live slot.
pub const INVALID_SLOT: u32 = u32::MAX;

/// One ROB entry, fully assembled. This is the dispatch-side input to
/// [`ReorderBuffer::push`] and the commit/squash-side output; while resident
/// the fields live split across the hot and cold arrays.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Unique, monotonically increasing micro-op identifier (program order).
    /// Always non-zero; zero marks a free slot internally.
    pub id: u64,
    /// The dynamic micro-op.
    pub uop: DynUop,
    /// Destination mapping allocated at rename, if the micro-op writes a
    /// register.
    pub dest: Option<(RegClass, PhysReg)>,
    /// Previous mapping of the destination architectural register (freed at
    /// commit, restored on a squash).
    pub old_dest: Option<(ArchReg, PhysReg, Option<u32>)>,
    /// The micro-op has been issued to a functional unit.
    pub issued: bool,
    /// The micro-op has finished execution.
    pub executed: bool,
    /// Cycle at which execution completes (valid once issued).
    pub completion_cycle: u64,
    /// For loads: the hierarchy level that supplied the data.
    pub mem_level: Option<HitLevel>,
    /// For loads/stores: the effective address.
    pub mem_addr: Option<u64>,
    /// For stores: the value to write at commit.
    pub store_value: Option<u64>,
    /// The value written to the destination register (for updating the
    /// architectural register file at commit).
    pub result: Option<u64>,
    /// For conditional branches: whether the branch was mispredicted.
    pub mispredicted: bool,
    /// For control instructions: the resolved next PC.
    pub actual_next_pc: u32,
}

impl RobEntry {
    /// Creates a freshly dispatched (not yet issued) entry.
    pub fn new(id: u64, uop: DynUop) -> Self {
        RobEntry {
            id,
            uop,
            dest: None,
            old_dest: None,
            issued: false,
            executed: false,
            completion_cycle: 0,
            mem_level: None,
            mem_addr: None,
            store_value: None,
            result: None,
            mispredicted: false,
            actual_next_pc: uop.predicted_next_pc,
        }
    }
}

/// The hot per-entry state: everything the per-cycle scans (commit-head
/// probe, full-window-stall detection, fast-forward gating, the PRE eager
/// reclaim walk) read, so those scans never touch the cold payload.
#[derive(Debug, Clone, Copy)]
pub struct RobHotEntry {
    /// Micro-op identifier; `0` marks a free slot.
    pub id: u64,
    /// Program counter of the micro-op.
    pub pc: u32,
    /// The micro-op is a load (decoded once at push).
    pub is_load: bool,
    /// The micro-op is a conditional branch (decoded once at push).
    pub is_cond_branch: bool,
    /// The micro-op has been issued to a functional unit.
    pub issued: bool,
    /// The micro-op has finished execution.
    pub executed: bool,
    /// Cycle at which execution completes (valid once issued).
    pub completion_cycle: u64,
    /// For loads: the hierarchy level that supplied the data.
    pub mem_level: Option<HitLevel>,
    /// Destination mapping allocated at rename.
    pub dest: Option<(RegClass, PhysReg)>,
    /// Previous mapping of the destination architectural register.
    pub old_dest: Option<(ArchReg, PhysReg, Option<u32>)>,
}

impl RobHotEntry {
    /// `true` when this entry is a load still waiting on an off-chip access.
    pub fn is_blocking_long_latency_load(&self, now: u64) -> bool {
        self.is_load
            && self.issued
            && !self.executed
            && self.mem_level == Some(HitLevel::Memory)
            && self.completion_cycle > now
    }

    fn free() -> Self {
        RobHotEntry {
            id: 0,
            pc: 0,
            is_load: false,
            is_cond_branch: false,
            issued: false,
            executed: false,
            completion_cycle: 0,
            mem_level: None,
            dest: None,
            old_dest: None,
        }
    }
}

/// The cold payload: touched only at writeback, commit and squash.
#[derive(Debug, Clone, Copy)]
struct RobColdEntry {
    uop: DynUop,
    mem_addr: Option<u64>,
    store_value: Option<u64>,
    result: Option<u64>,
    mispredicted: bool,
    actual_next_pc: u32,
}

impl RobColdEntry {
    fn free() -> Self {
        RobColdEntry {
            uop: DynUop::sequential(0, StaticInst::nop(), 0),
            mem_addr: None,
            store_value: None,
            result: None,
            mispredicted: false,
            actual_next_pc: 0,
        }
    }
}

fn split(entry: RobEntry) -> (RobHotEntry, RobColdEntry) {
    let RobEntry {
        id,
        uop,
        dest,
        old_dest,
        issued,
        executed,
        completion_cycle,
        mem_level,
        mem_addr,
        store_value,
        result,
        mispredicted,
        actual_next_pc,
    } = entry;
    (
        RobHotEntry {
            id,
            pc: uop.pc,
            is_load: uop.inst.opcode.is_load(),
            is_cond_branch: uop.inst.opcode.is_cond_branch(),
            issued,
            executed,
            completion_cycle,
            mem_level,
            dest,
            old_dest,
        },
        RobColdEntry {
            uop,
            mem_addr,
            store_value,
            result,
            mispredicted,
            actual_next_pc,
        },
    )
}

fn assemble(hot: RobHotEntry, cold: RobColdEntry) -> RobEntry {
    RobEntry {
        id: hot.id,
        uop: cold.uop,
        dest: hot.dest,
        old_dest: hot.old_dest,
        issued: hot.issued,
        executed: hot.executed,
        completion_cycle: hot.completion_cycle,
        mem_level: hot.mem_level,
        mem_addr: cold.mem_addr,
        store_value: cold.store_value,
        result: cold.result,
        mispredicted: cold.mispredicted,
        actual_next_pc: cold.actual_next_pc,
    }
}

/// The execute-stage writeback payload published into a ROB slot when a
/// micro-op issues (see [`ReorderBuffer::writeback`]).
#[derive(Debug, Clone, Copy)]
pub struct Writeback {
    /// Cycle at which execution completes.
    pub completion_cycle: u64,
    /// The destination value, if the micro-op produces one.
    pub result: Option<u64>,
    /// For loads/stores: the effective address.
    pub mem_addr: Option<u64>,
    /// For loads: the hierarchy level that supplied the data.
    pub mem_level: Option<HitLevel>,
    /// For stores: the value to write at commit.
    pub store_value: Option<u64>,
    /// For conditional branches: whether the branch was mispredicted.
    pub mispredicted: bool,
    /// For control instructions: the resolved next PC (`None` leaves the
    /// predicted fall-through in place).
    pub actual_next_pc: Option<u32>,
}

/// The reorder buffer: a bounded ring of entries in program order (see the
/// module documentation for the hot/cold layout and slot-handle contract).
#[derive(Debug, Clone)]
pub struct ReorderBuffer {
    hot: Box<[RobHotEntry]>,
    cold: Box<[RobColdEntry]>,
    /// Physical index of the oldest entry.
    head: usize,
    len: usize,
    writes: u64,
    reads: u64,
}

impl ReorderBuffer {
    /// Creates a ROB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB capacity must be non-zero");
        ReorderBuffer {
            hot: vec![RobHotEntry::free(); capacity].into_boxed_slice(),
            cold: vec![RobColdEntry::free(); capacity].into_boxed_slice(),
            head: 0,
            len: 0,
            writes: 0,
            reads: 0,
        }
    }

    /// `true` when no entry can be dispatched.
    pub fn is_full(&self) -> bool {
        self.len >= self.hot.len()
    }

    /// `true` when the ROB holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.hot.len()
    }

    /// Physical slot of the `logical`-th oldest entry.
    fn phys(&self, logical: usize) -> usize {
        let p = self.head + logical;
        if p >= self.hot.len() {
            p - self.hot.len()
        } else {
            p
        }
    }

    /// Pushes a dispatched entry at the tail and returns its (stable) slot
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full; the dispatch stage must check
    /// [`ReorderBuffer::is_full`] first.
    pub fn push(&mut self, entry: RobEntry) -> u32 {
        assert!(!self.is_full(), "dispatch into a full ROB");
        debug_assert!(entry.id != 0, "id 0 is reserved for free slots");
        self.writes += 1;
        let slot = self.phys(self.len);
        let (hot, cold) = split(entry);
        self.hot[slot] = hot;
        self.cold[slot] = cold;
        self.len += 1;
        slot as u32
    }

    /// The hot state of the oldest entry, if any.
    pub fn head(&self) -> Option<&RobHotEntry> {
        if self.len == 0 {
            None
        } else {
            Some(&self.hot[self.head])
        }
    }

    /// The micro-op of the oldest entry, if any.
    pub fn head_uop(&self) -> Option<&DynUop> {
        if self.len == 0 {
            None
        } else {
            Some(&self.cold[self.head].uop)
        }
    }

    /// Removes and returns the oldest entry (commit / pseudo-retire).
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        if self.len == 0 {
            return None;
        }
        self.reads += 1;
        let slot = self.head;
        let entry = assemble(self.hot[slot], self.cold[slot]);
        self.hot[slot].id = 0;
        self.head = self.phys(1);
        self.len -= 1;
        Some(entry)
    }

    /// Removes and returns the oldest entry iff it has finished execution:
    /// the fused head-probe-and-pop that lets commit and pseudo-retire drain
    /// every commit-ready head in one pass per cycle.
    pub fn pop_head_if_executed(&mut self) -> Option<RobEntry> {
        if self.len == 0 || !self.hot[self.head].executed {
            return None;
        }
        self.pop_head()
    }

    /// The length of the run of consecutive executed entries at the head,
    /// capped at `max`: the batch size commit can drain this cycle with one
    /// probe instead of re-checking the head after every pop. Nothing marks
    /// entries executed while commit drains, so sizing the batch up front is
    /// equivalent to the head-at-a-time re-checks it replaces.
    pub fn executed_head_run(&self, max: usize) -> usize {
        let limit = max.min(self.len);
        let mut run = 0;
        while run < limit && self.hot[self.phys(run)].executed {
            run += 1;
        }
        run
    }

    /// `true` when `slot` currently holds the micro-op `id`. Handles from
    /// removed entries fail: freed slots clear their id and reused slots
    /// hold a different (younger, unique) id.
    pub fn slot_matches(&self, slot: u32, id: u64) -> bool {
        (slot as usize) < self.hot.len() && self.hot[slot as usize].id == id
    }

    /// Marks the micro-op in `slot` as having finished execution (a memory
    /// completion event). The caller validates the handle with
    /// [`ReorderBuffer::slot_matches`] first.
    pub fn set_executed(&mut self, slot: u32) {
        debug_assert!(
            self.hot[slot as usize].id != 0,
            "completion for a free slot"
        );
        self.hot[slot as usize].executed = true;
    }

    /// Force-executes the entry in `slot` with a zero result (flush-style
    /// runahead INV semantics: the window drains through pseudo-retirement
    /// instead of waiting for data that will be discarded).
    pub fn force_execute(&mut self, slot: u32) {
        debug_assert!(self.hot[slot as usize].id != 0, "invalidating a free slot");
        self.hot[slot as usize].executed = true;
        self.cold[slot as usize].result = Some(0);
    }

    /// Publishes the execute-stage results of micro-op `id` into `slot` and
    /// marks it issued. Returns `false` (and does nothing) when the entry is
    /// gone — an INV-forced entry can pseudo-retire while its issue-queue
    /// copy is still waiting, then issue later against a recycled slot.
    pub fn writeback(&mut self, slot: u32, id: u64, wb: Writeback) -> bool {
        if !self.slot_matches(slot, id) {
            return false;
        }
        let hot = &mut self.hot[slot as usize];
        hot.issued = true;
        hot.completion_cycle = wb.completion_cycle;
        hot.mem_level = wb.mem_level;
        let cold = &mut self.cold[slot as usize];
        cold.result = wb.result;
        cold.mem_addr = wb.mem_addr;
        cold.store_value = wb.store_value;
        cold.mispredicted = wb.mispredicted;
        if let Some(next) = wb.actual_next_pc {
            cold.actual_next_pc = next;
        }
        true
    }

    /// The predicted next PC of micro-op `id` in `slot`, if still resident
    /// (branch resolution compares it against the computed next PC).
    pub fn predicted_next_pc(&self, slot: u32, id: u64) -> Option<u32> {
        if self.slot_matches(slot, id) {
            Some(self.cold[slot as usize].uop.predicted_next_pc)
        } else {
            None
        }
    }

    /// Logical (oldest-first) index of the entry with micro-op `id`. Ids are
    /// assigned in dispatch order, so the ring is sorted by id and a binary
    /// search suffices.
    fn find_logical(&self, id: u64) -> Option<usize> {
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let mid_id = self.hot[self.phys(mid)].id;
            if mid_id == id {
                return Some(mid);
            } else if mid_id < id {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        None
    }

    /// `true` when the ROB still holds the micro-op `id`.
    pub fn contains(&self, id: u64) -> bool {
        self.find_logical(id).is_some()
    }

    /// Iterates over the hot state from oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RobHotEntry> + '_ {
        (0..self.len).map(move |i| &self.hot[self.phys(i)])
    }

    /// Iterates over `(slot handle, hot state)` from oldest to youngest.
    pub fn iter_slots(&self) -> impl Iterator<Item = (u32, &RobHotEntry)> + '_ {
        (0..self.len).map(move |i| {
            let slot = self.phys(i);
            (slot as u32, &self.hot[slot])
        })
    }

    /// Iterates over the micro-ops from oldest to youngest (runahead-buffer
    /// window extraction).
    pub fn iter_uops(&self) -> impl Iterator<Item = &DynUop> + '_ {
        (0..self.len).map(move |i| &self.cold[self.phys(i)].uop)
    }

    /// Removes every entry strictly younger than `id` and returns them
    /// youngest-first (the order needed to roll back the RAT).
    pub fn squash_younger_than(&mut self, id: u64) -> Vec<RobEntry> {
        let mut squashed = Vec::new();
        while self.len > 0 {
            let tail = self.phys(self.len - 1);
            if self.hot[tail].id <= id {
                break;
            }
            squashed.push(assemble(self.hot[tail], self.cold[tail]));
            self.hot[tail].id = 0;
            self.len -= 1;
        }
        squashed
    }

    /// Removes all entries (flush-style runahead discards the window) and
    /// returns how many there were. Unlike commit, nothing reads the
    /// payloads, so this only clears the hot ids.
    pub fn clear(&mut self) -> usize {
        let n = self.len;
        for i in 0..self.len {
            let slot = self.phys(i);
            self.hot[slot].id = 0;
        }
        self.head = 0;
        self.len = 0;
        n
    }

    /// Number of entries pushed (ROB write-port accesses).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of entries popped (ROB read-port accesses at commit).
    pub fn reads(&self) -> u64 {
        self.reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::isa::StaticInst;

    fn entry(id: u64) -> RobEntry {
        RobEntry::new(id, DynUop::sequential(id as u32, StaticInst::nop(), 0))
    }

    #[test]
    fn fifo_commit_order() {
        let mut rob = ReorderBuffer::new(4);
        rob.push(entry(1));
        rob.push(entry(2));
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.pop_head().unwrap().id, 1);
        assert_eq!(rob.pop_head().unwrap().id, 2);
        assert!(rob.is_empty());
    }

    #[test]
    fn ring_wraps_and_slots_stay_stable() {
        let mut rob = ReorderBuffer::new(3);
        let s1 = rob.push(entry(1));
        let s2 = rob.push(entry(2));
        assert_eq!(rob.pop_head().unwrap().id, 1);
        // Push past the physical end: the ring wraps into slot 0.
        let s3 = rob.push(entry(3));
        let s4 = rob.push(entry(4));
        assert_eq!(s4, s1, "freed slot is reused after a wrap");
        assert!(!rob.slot_matches(s1, 1), "stale handle must not match");
        assert!(rob.slot_matches(s2, 2));
        assert!(rob.slot_matches(s3, 3));
        assert!(rob.slot_matches(s4, 4));
        let ids: Vec<u64> = rob.iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn full_detection() {
        let mut rob = ReorderBuffer::new(2);
        rob.push(entry(1));
        assert!(!rob.is_full());
        rob.push(entry(2));
        assert!(rob.is_full());
    }

    #[test]
    #[should_panic(expected = "full ROB")]
    fn push_into_full_rob_panics() {
        let mut rob = ReorderBuffer::new(1);
        rob.push(entry(1));
        rob.push(entry(2));
    }

    #[test]
    fn squash_younger_returns_youngest_first() {
        let mut rob = ReorderBuffer::new(8);
        for id in 1..=5 {
            rob.push(entry(id));
        }
        let squashed = rob.squash_younger_than(3);
        let ids: Vec<_> = squashed.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![5, 4]);
        assert_eq!(rob.len(), 3);
        assert!(rob.contains(3));
        assert!(!rob.contains(4));
    }

    #[test]
    fn clear_empties_and_counts() {
        let mut rob = ReorderBuffer::new(8);
        for id in 1..=3 {
            let slot = rob.push(entry(id));
            assert!(rob.slot_matches(slot, id));
        }
        assert_eq!(rob.clear(), 3);
        assert!(rob.is_empty());
        assert!(!rob.contains(2));
        // Handles into the cleared window are dead.
        for slot in 0..3 {
            assert!(!rob.slot_matches(slot, (slot + 1) as u64));
        }
    }

    #[test]
    fn writeback_is_slot_validated() {
        let mut rob = ReorderBuffer::new(4);
        let slot = rob.push(entry(9));
        let wb = Writeback {
            completion_cycle: 42,
            result: Some(7),
            mem_addr: None,
            mem_level: None,
            store_value: None,
            mispredicted: false,
            actual_next_pc: None,
        };
        assert!(rob.writeback(slot, 9, wb));
        let head = rob.head().unwrap();
        assert!(head.issued);
        assert_eq!(head.completion_cycle, 42);
        let popped = rob.pop_head().unwrap();
        assert_eq!(popped.result, Some(7));
        // The handle is dead after the pop.
        assert!(!rob.writeback(slot, 9, wb));
    }

    #[test]
    fn pop_head_if_executed_drains_ready_prefix_only() {
        let mut rob = ReorderBuffer::new(4);
        let s1 = rob.push(entry(1));
        rob.push(entry(2));
        assert!(rob.pop_head_if_executed().is_none(), "head not executed");
        rob.set_executed(s1);
        assert_eq!(rob.pop_head_if_executed().unwrap().id, 1);
        assert!(rob.pop_head_if_executed().is_none(), "next head not ready");
        assert_eq!(rob.len(), 1);
    }

    #[test]
    fn executed_head_run_counts_ready_prefix_and_wraps() {
        let mut rob = ReorderBuffer::new(4);
        assert_eq!(rob.executed_head_run(4), 0, "empty ROB");
        let slots: Vec<u32> = (1..=4).map(|id| rob.push(entry(id))).collect();
        assert_eq!(rob.executed_head_run(4), 0, "nothing executed yet");
        rob.set_executed(slots[0]);
        rob.set_executed(slots[1]);
        // Entry 3 stays in flight, so the run stops there even though 4 is
        // executed (commit is in-order).
        rob.set_executed(slots[3]);
        assert_eq!(rob.executed_head_run(4), 2);
        assert_eq!(rob.executed_head_run(1), 1, "capped at max");
        // Drain the ready prefix, refill past the ring boundary, and make the
        // whole (wrapped) window ready: the run must follow the wrap.
        assert_eq!(rob.pop_head().unwrap().id, 1);
        assert_eq!(rob.pop_head().unwrap().id, 2);
        let s5 = rob.push(entry(5));
        let s6 = rob.push(entry(6));
        rob.set_executed(slots[2]);
        rob.set_executed(s5);
        rob.set_executed(s6);
        assert_eq!(rob.executed_head_run(8), 4);
    }

    #[test]
    fn force_execute_sets_zero_result() {
        let mut rob = ReorderBuffer::new(2);
        let slot = rob.push(entry(5));
        rob.force_execute(slot);
        let popped = rob.pop_head_if_executed().unwrap();
        assert_eq!(popped.result, Some(0));
        assert!(popped.executed);
    }

    #[test]
    fn long_latency_detection_requires_memory_level() {
        let mut rob = ReorderBuffer::new(2);
        let mut e = entry(1);
        e.uop.inst = StaticInst::load(
            pre_model::reg::ArchReg::int(1),
            pre_model::reg::ArchReg::int(2),
            0,
        );
        e.issued = true;
        e.completion_cycle = 500;
        e.mem_level = Some(HitLevel::L2);
        rob.push(e);
        let head = *rob.head().unwrap();
        assert!(!head.is_blocking_long_latency_load(100));
        let mut head = head;
        head.mem_level = Some(HitLevel::Memory);
        assert!(head.is_blocking_long_latency_load(100));
        assert!(!head.is_blocking_long_latency_load(600));
        head.executed = true;
        assert!(!head.is_blocking_long_latency_load(100));
    }
}
