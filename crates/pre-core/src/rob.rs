//! The reorder buffer (ROB).

use crate::uop::DynUop;
use pre_mem::HitLevel;
use pre_model::reg::{ArchReg, PhysReg, RegClass};
use std::collections::VecDeque;

/// One ROB entry.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Unique, monotonically increasing micro-op identifier (program order).
    pub id: u64,
    /// The dynamic micro-op.
    pub uop: DynUop,
    /// Destination mapping allocated at rename, if the micro-op writes a
    /// register.
    pub dest: Option<(RegClass, PhysReg)>,
    /// Previous mapping of the destination architectural register (freed at
    /// commit, restored on a squash).
    pub old_dest: Option<(ArchReg, PhysReg, Option<u32>)>,
    /// The micro-op has been issued to a functional unit.
    pub issued: bool,
    /// The micro-op has finished execution.
    pub executed: bool,
    /// Cycle at which execution completes (valid once issued).
    pub completion_cycle: u64,
    /// For loads: the hierarchy level that supplied the data.
    pub mem_level: Option<HitLevel>,
    /// For loads/stores: the effective address.
    pub mem_addr: Option<u64>,
    /// For stores: the value to write at commit.
    pub store_value: Option<u64>,
    /// The value written to the destination register (for updating the
    /// architectural register file at commit).
    pub result: Option<u64>,
    /// For conditional branches: whether the branch was mispredicted.
    pub mispredicted: bool,
    /// For control instructions: the resolved next PC.
    pub actual_next_pc: u32,
}

impl RobEntry {
    /// Creates a freshly dispatched (not yet issued) entry.
    pub fn new(id: u64, uop: DynUop) -> Self {
        RobEntry {
            id,
            uop,
            dest: None,
            old_dest: None,
            issued: false,
            executed: false,
            completion_cycle: 0,
            mem_level: None,
            mem_addr: None,
            store_value: None,
            result: None,
            mispredicted: false,
            actual_next_pc: uop.predicted_next_pc,
        }
    }

    /// `true` when this entry is a load still waiting on an off-chip access.
    pub fn is_blocking_long_latency_load(&self, now: u64) -> bool {
        self.uop.inst.opcode.is_load()
            && self.issued
            && !self.executed
            && self.mem_level == Some(HitLevel::Memory)
            && self.completion_cycle > now
    }
}

/// The reorder buffer: a bounded FIFO of [`RobEntry`] in program order.
#[derive(Debug, Clone)]
pub struct ReorderBuffer {
    entries: VecDeque<RobEntry>,
    capacity: usize,
    writes: u64,
    reads: u64,
}

impl ReorderBuffer {
    /// Creates a ROB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB capacity must be non-zero");
        ReorderBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            writes: 0,
            reads: 0,
        }
    }

    /// `true` when no entry can be dispatched.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// `true` when the ROB holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes a dispatched entry at the tail.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full; the dispatch stage must check
    /// [`ReorderBuffer::is_full`] first.
    pub fn push(&mut self, entry: RobEntry) {
        assert!(!self.is_full(), "dispatch into a full ROB");
        self.writes += 1;
        self.entries.push_back(entry);
    }

    /// The oldest entry, if any.
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Mutable access to the oldest entry.
    pub fn head_mut(&mut self) -> Option<&mut RobEntry> {
        self.entries.front_mut()
    }

    /// Removes and returns the oldest entry (commit / pseudo-retire).
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        let e = self.entries.pop_front();
        if e.is_some() {
            self.reads += 1;
        }
        e
    }

    /// Index of the entry with micro-op `id`, if present. Ids are assigned
    /// in dispatch order, so the deque is always sorted by id and a binary
    /// search suffices.
    fn index_of(&self, id: u64) -> Option<usize> {
        crate::sorted_deque::index_by_key(&self.entries, id, |e| e.id)
    }

    /// Finds an entry by micro-op id.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut RobEntry> {
        let idx = self.index_of(id)?;
        self.entries.get_mut(idx)
    }

    /// Finds an entry by micro-op id (immutable).
    pub fn get(&self, id: u64) -> Option<&RobEntry> {
        let idx = self.index_of(id)?;
        self.entries.get(idx)
    }

    /// `true` when the ROB still holds the micro-op `id` (used to drop stale
    /// in-flight completions after a squash).
    pub fn contains(&self, id: u64) -> bool {
        self.index_of(id).is_some()
    }

    /// Iterates over entries from oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Removes every entry strictly younger than `id` and returns them
    /// youngest-first (the order needed to roll back the RAT).
    pub fn squash_younger_than(&mut self, id: u64) -> Vec<RobEntry> {
        let mut squashed = Vec::new();
        while let Some(back) = self.entries.back() {
            if back.id > id {
                squashed.push(self.entries.pop_back().expect("back exists"));
            } else {
                break;
            }
        }
        squashed
    }

    /// Removes all entries (flush) and returns them youngest-first.
    pub fn drain_all(&mut self) -> Vec<RobEntry> {
        let mut all: Vec<RobEntry> = self.entries.drain(..).collect();
        all.reverse();
        all
    }

    /// Number of entries pushed (ROB write-port accesses).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of entries popped (ROB read-port accesses at commit).
    pub fn reads(&self) -> u64 {
        self.reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::isa::StaticInst;

    fn entry(id: u64) -> RobEntry {
        RobEntry::new(id, DynUop::sequential(id as u32, StaticInst::nop(), 0))
    }

    #[test]
    fn fifo_commit_order() {
        let mut rob = ReorderBuffer::new(4);
        rob.push(entry(1));
        rob.push(entry(2));
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.pop_head().unwrap().id, 1);
        assert_eq!(rob.pop_head().unwrap().id, 2);
        assert!(rob.is_empty());
    }

    #[test]
    fn full_detection() {
        let mut rob = ReorderBuffer::new(2);
        rob.push(entry(1));
        assert!(!rob.is_full());
        rob.push(entry(2));
        assert!(rob.is_full());
    }

    #[test]
    #[should_panic(expected = "full ROB")]
    fn push_into_full_rob_panics() {
        let mut rob = ReorderBuffer::new(1);
        rob.push(entry(1));
        rob.push(entry(2));
    }

    #[test]
    fn squash_younger_returns_youngest_first() {
        let mut rob = ReorderBuffer::new(8);
        for id in 1..=5 {
            rob.push(entry(id));
        }
        let squashed = rob.squash_younger_than(3);
        let ids: Vec<_> = squashed.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![5, 4]);
        assert_eq!(rob.len(), 3);
        assert!(rob.contains(3));
        assert!(!rob.contains(4));
    }

    #[test]
    fn drain_all_is_youngest_first_and_empties() {
        let mut rob = ReorderBuffer::new(8);
        for id in 1..=3 {
            rob.push(entry(id));
        }
        let drained = rob.drain_all();
        let ids: Vec<_> = drained.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![3, 2, 1]);
        assert!(rob.is_empty());
    }

    #[test]
    fn get_and_contains_by_id() {
        let mut rob = ReorderBuffer::new(4);
        rob.push(entry(7));
        assert!(rob.contains(7));
        assert!(rob.get(7).is_some());
        rob.get_mut(7).unwrap().executed = true;
        assert!(rob.get(7).unwrap().executed);
        assert!(!rob.contains(8));
    }

    #[test]
    fn long_latency_detection_requires_memory_level() {
        let mut e = entry(1);
        e.uop.inst = StaticInst::load(
            pre_model::reg::ArchReg::int(1),
            pre_model::reg::ArchReg::int(2),
            0,
        );
        e.issued = true;
        e.completion_cycle = 500;
        e.mem_level = Some(HitLevel::L2);
        assert!(!e.is_blocking_long_latency_load(100));
        e.mem_level = Some(HitLevel::Memory);
        assert!(e.is_blocking_long_latency_load(100));
        assert!(!e.is_blocking_long_latency_load(600));
        e.executed = true;
        assert!(!e.is_blocking_long_latency_load(100));
    }
}
