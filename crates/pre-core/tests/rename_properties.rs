//! Randomized-property tests of the rename machinery: for arbitrary
//! sequences of renames, commits, rollbacks and checkpoint/restore
//! operations, physical registers are never leaked, never double-freed, and
//! the RAT always maps every architectural register to a register that is
//! not on the free list.
//!
//! Driven by the workspace's deterministic [`pre_model::rng::SmallRng`]
//! instead of proptest (no crates.io access); every case derives from a fixed
//! seed, so failures reproduce exactly.

use pre_core::freelist::FreeList;
use pre_core::rat::RegisterAliasTable;
use pre_core::rob::{ReorderBuffer, RobEntry};
use pre_core::uop::DynUop;
use pre_model::isa::StaticInst;
use pre_model::reg::{ArchReg, NUM_INT_ARCH_REGS};
use pre_model::rng::SmallRng;

/// One step of the random rename workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Rename architectural register `r` (like dispatching a producer of r).
    Rename(u8),
    /// Commit the oldest outstanding rename (free its previous mapping).
    CommitOldest,
    /// Squash the youngest outstanding rename (rollback + free new mapping).
    SquashYoungest,
}

fn random_op(rng: &mut SmallRng) -> Op {
    match rng.gen_below(3) {
        0 => Op::Rename(rng.gen_range_usize(0..NUM_INT_ARCH_REGS) as u8),
        1 => Op::CommitOldest,
        _ => Op::SquashYoungest,
    }
}

/// Conservation of physical registers across arbitrary rename/commit/squash
/// interleavings: free + live-mapped + pending-free = capacity, and the RAT
/// never maps two architectural registers to one physical register.
#[test]
fn rename_commit_squash_conserves_registers() {
    let mut rng = SmallRng::seed_from_u64(0xC0_0001);
    for _case in 0..48 {
        let len = rng.gen_range_usize(1..300);
        let capacity = 64usize;
        let mut rat = RegisterAliasTable::new();
        let mut free = FreeList::new(capacity, NUM_INT_ARCH_REGS);
        // Outstanding renames, oldest first: (arch, new_phys, old_phys, old_pc).
        let mut outstanding: Vec<(
            ArchReg,
            pre_model::reg::PhysReg,
            pre_model::reg::PhysReg,
            Option<u32>,
        )> = Vec::new();
        let mut pc = 0u32;

        for _ in 0..len {
            match random_op(&mut rng) {
                Op::Rename(r) => {
                    if let Some(new) = free.allocate() {
                        let arch = ArchReg::int(r % NUM_INT_ARCH_REGS as u8);
                        pc += 1;
                        let (old, old_pc) = rat.rename(arch, new, pc);
                        outstanding.push((arch, new, old, old_pc));
                    }
                }
                Op::CommitOldest => {
                    if !outstanding.is_empty() {
                        let (_, _, old, _) = outstanding.remove(0);
                        free.free(old);
                    }
                }
                Op::SquashYoungest => {
                    if let Some((arch, new, old, old_pc)) = outstanding.pop() {
                        rat.rollback(arch, old, old_pc);
                        free.free(new);
                    }
                }
            }
            // Invariant 1: no physical register is both free and mapped.
            for (_, phys) in rat.iter().take(NUM_INT_ARCH_REGS) {
                assert!(
                    !free.is_free(phys),
                    "mapped register {phys} is on the free list"
                );
            }
            // Invariant 2: the RAT mapping is injective over the int class.
            let mut seen = std::collections::HashSet::new();
            for (arch, phys) in rat.iter() {
                if arch.class() == pre_model::reg::RegClass::Int {
                    assert!(
                        seen.insert(phys.index()),
                        "two architectural registers map to {phys}"
                    );
                }
            }
            // Invariant 3: register conservation.
            assert_eq!(
                free.num_free() + NUM_INT_ARCH_REGS + outstanding.len(),
                capacity,
                "registers leaked or duplicated"
            );
        }
    }
}

/// Checkpoint/restore puts the RAT back exactly, regardless of what happened
/// in between.
#[test]
fn rat_checkpoint_restore_is_exact() {
    let mut rng = SmallRng::seed_from_u64(0xC0_0002);
    for _case in 0..48 {
        let len = rng.gen_range_usize(1..100);
        let renames: Vec<(u8, u16)> = (0..len)
            .map(|_| {
                (
                    rng.gen_range_usize(0..32) as u8,
                    rng.gen_range_usize(32..64) as u16,
                )
            })
            .collect();
        let mut rat = RegisterAliasTable::new();
        for (i, &(arch, phys)) in renames.iter().enumerate() {
            if i == renames.len() / 2 {
                let checkpoint = rat.checkpoint();
                let before: Vec<_> = rat.iter().collect();
                // Apply the rest, then restore.
                let mut scratch = rat.clone();
                for &(a2, p2) in &renames[i..] {
                    scratch.rename(ArchReg::int(a2 % 32), pre_model::reg::PhysReg(p2), 7);
                }
                scratch.restore(&checkpoint);
                let after: Vec<_> = scratch.iter().collect();
                assert_eq!(before, after);
            }
            rat.rename(
                ArchReg::int(arch % 32),
                pre_model::reg::PhysReg(phys),
                i as u32,
            );
        }
    }
}

/// The ROB keeps program order: squashing younger than an id never removes
/// older entries, and what remains is still sorted by id.
#[test]
fn rob_squash_preserves_order() {
    let mut rng = SmallRng::seed_from_u64(0xC0_0003);
    for _case in 0..64 {
        let count = rng.gen_range_usize(1..60);
        let cut = rng.gen_range_u64(0..80);
        let mut rob = ReorderBuffer::new(64);
        for id in 1..=count as u64 {
            rob.push(RobEntry::new(
                id,
                DynUop::sequential(id as u32, StaticInst::nop(), 0),
            ));
        }
        let squashed = rob.squash_younger_than(cut);
        for e in &squashed {
            assert!(e.id > cut);
        }
        let remaining: Vec<u64> = rob.iter().map(|e| e.id).collect();
        for w in remaining.windows(2) {
            assert!(w[0] < w[1], "ROB order violated");
        }
        for &id in &remaining {
            assert!(id <= cut, "id {id} survived squash_younger_than({cut})");
        }
        assert_eq!(remaining.len() + squashed.len(), count);
    }
}
