//! Randomized invariant tests of the [`RenameSubsystem`]: under arbitrary
//! interleavings of normal renaming, commits, branch recoveries and precise
//! runahead intervals (runahead renaming, PRDQ drains and the eager drain),
//! physical registers are never double-freed, never freed while mapped or
//! while a waiting micro-op still reads them, and checkpoint/restore puts
//! the rename state back exactly.
//!
//! Driven by the workspace's deterministic [`pre_model::rng::SmallRng`];
//! every case derives from a fixed seed, so failures reproduce exactly.
//! (Double frees additionally trip the free list's debug assertion.)

use pre_core::iq::{IqEntry, IssueQueue, SrcList};
use pre_core::rename::RenameSubsystem;
use pre_core::rob::{ReorderBuffer, RobEntry};
use pre_core::uop::DynUop;
use pre_model::isa::{AluOp, BranchCond, OpClass, StaticInst};
use pre_model::reg::{ArchReg, PhysReg, RegClass, NUM_ARCH_REGS, NUM_INT_ARCH_REGS};
use pre_model::rng::SmallRng;

const INT_REGS: usize = 64;
const FP_REGS: usize = 48;
const PRDQ: usize = 24;

fn subsystem() -> RenameSubsystem {
    RenameSubsystem::new(INT_REGS, FP_REGS, PRDQ, &[0u64; NUM_ARCH_REGS])
}

fn int_mappings(r: &RenameSubsystem) -> Vec<PhysReg> {
    r.rat()
        .iter()
        .filter(|(arch, _)| arch.class() == RegClass::Int)
        .map(|(_, phys)| phys)
        .collect()
}

fn assert_no_free_while_mapped(r: &RenameSubsystem) {
    for phys in int_mappings(r) {
        assert!(
            !r.free_list(RegClass::Int).is_free(phys),
            "mapped register {phys} is on the free list"
        );
    }
}

fn assert_no_free_while_referenced(r: &RenameSubsystem, iq: &IssueQueue) {
    for entry in iq.iter() {
        for &(class, reg) in entry.srcs.iter() {
            assert!(
                !r.free_list(class).is_free(reg),
                "register {reg} is free while waiting micro-op {} reads it",
                entry.id
            );
        }
    }
}

/// Normal-mode conservation: renames, in-order commits and youngest-first
/// squashes through the subsystem's reclamation interface neither leak nor
/// duplicate registers, and the RAT stays injective.
#[test]
fn normal_rename_commit_squash_conserves_registers() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0001);
    for _case in 0..48 {
        let mut r = subsystem();
        // Outstanding renames, oldest first.
        let mut outstanding: Vec<(ArchReg, PhysReg, PhysReg, Option<u32>)> = Vec::new();
        let mut pc = 0u32;
        for _ in 0..rng.gen_range_usize(1..250) {
            match rng.gen_below(3) {
                0 => {
                    let arch = ArchReg::int(rng.gen_range_usize(0..NUM_INT_ARCH_REGS) as u8);
                    pc += 1;
                    if let Some(rename) = r.rename_dest(arch, pc) {
                        outstanding.push((arch, rename.new, rename.old, rename.old_pc));
                    }
                }
                1 => {
                    if !outstanding.is_empty() {
                        let (_, _, old, _) = outstanding.remove(0);
                        r.free_committed(RegClass::Int, old);
                    }
                }
                _ => {
                    if let Some((arch, new, old, old_pc)) = outstanding.pop() {
                        r.rollback_squashed(Some((arch, old, old_pc)), Some((RegClass::Int, new)));
                    }
                }
            }
            assert_no_free_while_mapped(&r);
            let mut seen = std::collections::HashSet::new();
            for phys in int_mappings(&r) {
                assert!(seen.insert(phys.index()), "RAT not injective at {phys}");
            }
            assert_eq!(
                r.num_free(RegClass::Int) + NUM_INT_ARCH_REGS + outstanding.len(),
                INT_REGS,
                "registers leaked or duplicated"
            );
        }
    }
}

/// Builds a random stalled window: a ROB of renamed instructions (some
/// executed, some waiting in the issue queue, the odd unresolved branch)
/// exactly as the pipeline would leave it at a full-window stall.
fn build_window(
    rng: &mut SmallRng,
    r: &mut RenameSubsystem,
    rob: &mut ReorderBuffer,
    iq: &mut IssueQueue,
) {
    let mut id = 0u64;
    for _ in 0..rng.gen_range_usize(1..24) {
        id += 1;
        if rng.gen_below(6) == 0 {
            // An unresolved conditional branch: shadows younger entries.
            let inst = StaticInst::branch(BranchCond::Lt, ArchReg::int(1), ArchReg::int(2), 0);
            let mut entry = RobEntry::new(id, DynUop::sequential(id as u32, inst, 0));
            entry.issued = false;
            rob.push(entry);
            continue;
        }
        let arch = ArchReg::int(rng.gen_range_usize(0..NUM_INT_ARCH_REGS) as u8);
        let src_arch = ArchReg::int(rng.gen_range_usize(0..NUM_INT_ARCH_REGS) as u8);
        let src_phys = r.rat().peek(src_arch);
        let inst = StaticInst::int_alu_imm(AluOp::Add, arch, src_arch, 1);
        let Some(rename) = r.rename_dest(arch, id as u32) else {
            break;
        };
        let mut entry = RobEntry::new(id, DynUop::sequential(id as u32, inst, 0));
        entry.dest = Some((RegClass::Int, rename.new));
        entry.old_dest = Some((arch, rename.old, rename.old_pc));
        let issued = rng.gen_below(3) != 0;
        entry.issued = issued;
        if issued && rng.gen_below(2) == 0 {
            entry.executed = true;
            r.prf_mut(RegClass::Int).set_ready(rename.new, true);
        }
        if !issued && !iq.is_full() {
            iq.insert(
                IqEntry {
                    id,
                    rob_slot: pre_core::rob::INVALID_SLOT,
                    pc: id as u32,
                    inst,
                    srcs: SrcList::from_slice(&[(RegClass::Int, src_phys)]),
                    dest: Some((RegClass::Int, rename.new)),
                    class: OpClass::IntAlu,
                    is_runahead: false,
                    dispatched_at: 0,
                    store_addr_ready: false,
                },
                |_, _| true,
            );
        }
        rob.push(entry);
    }
}

/// A full precise-runahead interval over a random window: runahead renames,
/// out-of-order completions, PRDQ drains and eager drains interleave
/// randomly; no drain ever frees a mapped or still-referenced register, and
/// the exit restore puts the RAT and free lists back bit-exactly.
#[test]
fn runahead_interval_drains_safely_and_restores_exactly() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0002);
    for _case in 0..48 {
        let mut r = subsystem();
        let mut rob = ReorderBuffer::new(32);
        let mut iq = IssueQueue::new(32);
        build_window(&mut rng, &mut r, &mut rob, &mut iq);

        let int_free_before = r.free_list(RegClass::Int).snapshot();
        let fp_free_before = r.free_list(RegClass::Fp).snapshot();
        let rat_before: Vec<_> = r.rat().iter().collect();

        let checkpoint = r.begin_runahead_interval();
        let mut live_runahead: Vec<u64> = Vec::new();
        let mut next_id = 1000u64;
        for _ in 0..rng.gen_range_usize(1..60) {
            match rng.gen_below(4) {
                0 => {
                    // Runahead rename on free resources, as the PRE filter
                    // would.
                    let arch = ArchReg::int(rng.gen_range_usize(0..NUM_INT_ARCH_REGS) as u8);
                    if !r.prdq().is_full() && r.num_free(RegClass::Int) > 0 {
                        next_id += 1;
                        r.runahead_rename(&StaticInst::load_imm(arch, 7), next_id as u32, next_id);
                        live_runahead.push(next_id);
                    }
                }
                1 => {
                    // An out-of-order completion.
                    if !live_runahead.is_empty() {
                        let pick = rng.gen_range_usize(0..live_runahead.len());
                        r.mark_runahead_executed(live_runahead[pick]);
                    }
                }
                2 => {
                    r.seed_eager(&rob, &iq);
                }
                _ => {
                    r.drain_prdq();
                }
            }
            assert_no_free_while_mapped(&r);
            assert_no_free_while_referenced(&r, &iq);
        }
        // Drain everything still pending, then verify the safety properties
        // one final time.
        for &id in &live_runahead {
            r.mark_runahead_executed(id);
        }
        r.seed_eager(&rob, &iq);
        r.drain_prdq();
        assert_no_free_while_mapped(&r);
        assert_no_free_while_referenced(&r, &iq);

        r.end_runahead_interval(checkpoint);
        assert_eq!(
            r.free_list(RegClass::Int).snapshot(),
            int_free_before,
            "int free list not restored exactly"
        );
        assert_eq!(
            r.free_list(RegClass::Fp).snapshot(),
            fp_free_before,
            "fp free list not restored exactly"
        );
        let rat_after: Vec<_> = r.rat().iter().collect();
        assert_eq!(rat_before, rat_after, "RAT not restored exactly");
        assert!(r.prdq().is_empty(), "PRDQ not cleared at exit");
    }
}

/// Checkpoint/restore round-trips under random branch-recovery
/// interleavings: recoveries applied *after* the checkpoint are undone by
/// the restore, and recoveries applied in normal mode keep the subsystem
/// consistent with a recovery-free reference.
#[test]
fn checkpoint_restore_roundtrips_under_branch_recovery() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0003);
    for _case in 0..48 {
        let mut r = subsystem();
        let mut outstanding: Vec<(ArchReg, PhysReg, PhysReg, Option<u32>)> = Vec::new();
        // Random pre-history.
        for pc in 0..rng.gen_range_usize(1..40) {
            let arch = ArchReg::int(rng.gen_range_usize(0..NUM_INT_ARCH_REGS) as u8);
            if let Some(rename) = r.rename_dest(arch, pc as u32) {
                outstanding.push((arch, rename.new, rename.old, rename.old_pc));
            }
        }
        let int_free_at_cp = r.free_list(RegClass::Int).snapshot();
        let rat_at_cp: Vec<_> = r.rat().iter().collect();
        let checkpoint = r.checkpoint();

        // Random post-checkpoint activity: more renames and random
        // branch-recovery rollbacks of the youngest outstanding rename.
        let mut speculative: Vec<(ArchReg, PhysReg, PhysReg, Option<u32>)> = Vec::new();
        for pc in 100..100 + rng.gen_range_usize(1..40) {
            if rng.gen_below(3) == 0 {
                if let Some((arch, new, old, old_pc)) = speculative.pop() {
                    r.rollback_squashed(Some((arch, old, old_pc)), Some((RegClass::Int, new)));
                }
            } else {
                let arch = ArchReg::int(rng.gen_range_usize(0..NUM_INT_ARCH_REGS) as u8);
                if let Some(rename) = r.rename_dest(arch, pc as u32) {
                    speculative.push((arch, rename.new, rename.old, rename.old_pc));
                }
            }
            assert_no_free_while_mapped(&r);
        }

        r.restore(&checkpoint);
        assert_eq!(r.free_list(RegClass::Int).snapshot(), int_free_at_cp);
        let rat_restored: Vec<_> = r.rat().iter().collect();
        assert_eq!(rat_at_cp, rat_restored);
        // The pre-checkpoint history is still committable afterwards.
        for (_, _, old, _) in outstanding {
            r.free_committed(RegClass::Int, old);
        }
    }
}
