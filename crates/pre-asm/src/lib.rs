//! A RISC-V (RV64I subset) assembly frontend for the PRE simulator.
//!
//! The synthetic workloads in `pre-workloads` are *generated*; this crate
//! lets the simulator run *real programs*: a two-pass assembler + loader
//! that lowers an RV64I subset (register/immediate ALU ops including
//! `sra`/`srai`, the full `lb`/`lbu`/`lh`/`lhu`/`lw`/`lwu`/`ld` and
//! `sb`/`sh`/`sw`/`sd` load/store family at their true access widths, the
//! full branch family, `jal`/`jalr`, labels and
//! `.data`/`.byte`/`.half`/`.word`/`.fill`/`.align` directives, with `x0`
//! hardwired-zero semantics) onto the existing micro-op ISA
//! ([`pre_model::isa::StaticInst`], whose memory micro-ops carry an
//! explicit [`pre_model::isa::MemAccess`] width) and emits a ready-to-run
//! [`pre_model::Program`] — instructions, initial memory image (8-byte and
//! byte-granular) and initial registers (`sp` pointing at a stack).
//!
//! See [`assembler`] for the exact lowering rules (signed branches, the
//! `jalr` return-address dispatch, reserved `gp`/`tp` scratch registers)
//! and [`kernels`] for the bundled nine-kernel suite (matmul, quicksort,
//! pointer-chase, box-blur, prime sieve, binary search, chase-large,
//! byte-histo, struct-chase).
//!
//! # Example
//!
//! ```
//! use pre_asm::assemble;
//!
//! let program = assemble(
//!     "triangle",
//!     r#"
//!     main:   li   a0, 10
//!             li   a1, 0
//!     loop:   add  a1, a1, a0
//!             addi a0, a0, -1
//!             bnez a0, loop
//!     "#,
//! )?;
//! let mut interp = pre_model::program::Interpreter::new(&program);
//! while interp.step() {}
//! assert_eq!(interp.reg(pre_model::reg::ArchReg::int(11)), 55);
//! # Ok::<(), pre_asm::AsmError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assembler;
pub mod error;
pub mod kernels;

pub use assembler::{assemble, assemble_with, AsmOptions};
pub use error::{AsmError, AsmErrorKind};
pub use kernels::AsmKernel;
