# LLC-missing pointer chase: a 524288-node ring (4 MB, 4x the 1 MB L3).
# The links are installed by the loader (see `AsmKernel::try_build`) as a
# full-cycle stride permutation, so successive hops land ~1.5 MB apart and
# every load misses the LLC until the ring wraps. The cursor persists
# across rounds (it is NOT reset to the ring base), so each round chases
# 512 fresh, uncached nodes: runahead always has something to chase.
# a0 = outer iteration count (rounds).

main:
        mv      s0, a0
        la      s1, nodes
        li      s2, 512             # chase steps per round
        mv      t3, s1              # cursor, live across rounds

outer:
        beqz    s0, end
        li      t4, 0
chase:
        ld      t3, 0(t3)
        addi    t4, t4, 1
        bltu    t4, s2, chase
        la      t5, result
        sd      t3, 0(t5)
        addi    s0, s0, -1
        j       outer
end:
        nop

.data
nodes:  .fill 524288, 0
result: .word 0
