# Struct-of-bytes pointer chase: a ring of 256 32-byte nodes.
# a0 = outer iteration count (initialized by the loader).
#
# Node layout:   +0  next   (8 bytes, ld)
#                +8  key    (byte, lbu)
#                +9  sign   (byte, lb — sign-extended)
#                +10 weight (halfword, lhu)
#                +12 val    (word, lw — sign-extended)
#                +16 tag    (byte, written per hop; +17..+23 stay zero)
#
# An init loop installs the links (sd) and fields (sb/sh/sw). Each round
# then chases 256 hops — every hop a dependent load of the next pointer
# followed by sub-word field loads off the freshly loaded pointer — and
# stores the live accumulator and cursor. Each hop also tags the visited
# node with a byte store and immediately reads the whole 8-byte tag word
# back: the byte store only partially overlaps the load, so the load
# cannot forward from the store queue and must wait for the store to
# commit (the LSQ's `forward_blocked_partial` path).

main:
        mv      s0, a0              # rounds remaining
        la      s1, nodes
        la      s2, result
        li      s3, 256             # nodes / hops per round
        li      s4, 32              # node stride

        li      t0, 0               # i
init:
        mul     t1, t0, s4
        add     t1, s1, t1          # &node[i]
        addi    t2, t0, 101
        andi    t2, t2, 255
        mul     t2, t2, s4
        add     t2, s1, t2
        sd      t2, 0(t1)           # .next = &node[(i + 101) & 255]
        sb      t0, 8(t1)           # .key  = i (low byte)
        li      t3, 37
        mul     t3, t0, t3
        sb      t3, 9(t1)           # .sign = (i * 37) & 255
        li      t4, 2654435761
        mul     t4, t0, t4
        srli    t5, t4, 8
        sh      t5, 10(t1)          # .weight
        srli    t5, t4, 24
        sw      t5, 12(t1)          # .val
        addi    t0, t0, 1
        bltu    t0, s3, init

        mv      s5, s1              # cursor = &node[0]
        li      a5, 0               # accumulator
outer:
        beqz    s0, end
        li      t0, 0               # hops this round
chase:
        ld      s5, 0(s5)           # cursor = cursor->next
        lbu     t1, 8(s5)
        lb      t2, 9(s5)           # sign-extended
        lhu     t3, 10(s5)
        lw      t4, 12(s5)          # sign-extended
        add     a5, a5, t1
        add     a5, a5, t2
        add     a5, a5, t3
        xor     a5, a5, t4
        sb      a5, 16(s5)          # tag the node (byte field)
        ld      t5, 16(s5)          # whole tag word: partial overlap with
        add     a5, a5, t5          # the sb above -> acc += acc & 0xFF
        addi    t0, t0, 1
        bltu    t0, s3, chase
        sd      a5, 0(s2)           # live accumulator
        sd      s5, 8(s2)           # cursor address
        addi    s0, s0, -1
        j       outer
end:
        nop

.data
nodes:  .fill 1024, 0               # 256 nodes x 32 bytes
result: .word 0, 0
