# Recursive quicksort (Lomuto partition) over 64 u64 keys.
# a0 = outer iteration count; each round re-scrambles and re-sorts,
# then folds the sorted array into `result` so the work stays live.

main:
        mv      s0, a0
        la      s1, arr
        li      s2, 64              # N
outer:
        beqz    s0, end

        # arr[i] = (i * 2654435761 + round * 97) & 1023
        li      t0, 0
        li      t1, 2654435761
        li      t2, 97
        mul     t3, s0, t2          # per-round salt
fill:
        mul     t4, t0, t1
        add     t4, t4, t3
        andi    t4, t4, 1023
        slli    t5, t0, 3
        add     t5, s1, t5
        sd      t4, 0(t5)
        addi    t0, t0, 1
        bltu    t0, s2, fill

        # quicksort(&arr[0], &arr[N-1])
        mv      a1, s1
        slli    t0, s2, 3
        add     a2, s1, t0
        addi    a2, a2, -8
        call    quicksort

        # checksum the sorted array
        li      t0, 0
        li      t6, 0
sum:
        slli    t5, t0, 3
        add     t5, s1, t5
        ld      t4, 0(t5)
        add     t6, t6, t4
        addi    t0, t0, 1
        bltu    t0, s2, sum
        la      t5, result
        sd      t6, 0(t5)
        addi    s0, s0, -1
        j       outer

# quicksort(a1 = lo address, a2 = hi address); clobbers a3-a7.
quicksort:
        bgeu    a1, a2, qret
        ld      a3, 0(a2)           # pivot = *hi
        mv      a4, a1              # store position
        mv      a5, a1              # scan cursor
qscan:
        bgeu    a5, a2, qswap
        ld      a6, 0(a5)
        bgeu    a6, a3, qnext       # keys are 10-bit, unsigned compare is fine
        ld      a7, 0(a4)
        sd      a6, 0(a4)
        sd      a7, 0(a5)
        addi    a4, a4, 8
qnext:
        addi    a5, a5, 8
        j       qscan
qswap:
        ld      a6, 0(a4)
        ld      a7, 0(a2)
        sd      a7, 0(a4)
        sd      a6, 0(a2)
        addi    sp, sp, -24
        sd      ra, 0(sp)
        sd      a2, 8(sp)
        sd      a4, 16(sp)
        addi    a2, a4, -8
        call    quicksort           # left part: [lo, p-1]
        ld      a4, 16(sp)
        ld      a2, 8(sp)
        addi    a1, a4, 8
        call    quicksort           # right part: [p+1, hi]
        ld      ra, 0(sp)
        addi    sp, sp, 24
qret:
        ret
end:
        nop

.data
arr:    .fill 64, 0
result: .word 0
