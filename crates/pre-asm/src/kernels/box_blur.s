# Streaming three-tap box blur: every round blurs a fresh 512-element
# tile of a 16 MB arena into a fixed output tile, then advances to the
# next tile (wrapping at the end). The source stream is always cold —
# compulsory misses all the way to DRAM — so this kernel is genuinely
# memory-bound, like the image filters it imitates. The arena is read
# uninitialized: the functional memory returns deterministic
# address-derived values, the same idiom the synthetic streaming
# workloads use.
# a0 = outer iteration count.

main:
        mv      s0, a0
        li      s1, 0x1000000       # arena base (16 MB mark)
        la      s2, dst
        li      s3, 512             # tile elements
        li      s4, 0               # byte cursor into the arena
        li      s5, 0xFFFFFF        # arena wrap mask (16 MB)
outer:
        beqz    s0, end
        add     s6, s1, s4          # current source tile
        li      t0, 1
        addi    t5, s3, -1          # last interior index
blur:
        slli    t1, t0, 3
        add     t2, s6, t1
        ld      t3, -8(t2)
        ld      t4, 0(t2)
        ld      t6, 8(t2)
        add     t3, t3, t4
        add     t3, t3, t6
        srli    t3, t3, 2
        add     t4, s2, t1
        sd      t3, 0(t4)
        addi    t0, t0, 1
        bltu    t0, t5, blur
        addi    s4, s4, 4096        # advance one tile
        and     s4, s4, s5
        addi    s0, s0, -1
        j       outer
end:
        nop

.data
dst:    .fill 512, 0
