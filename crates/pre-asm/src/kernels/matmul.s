# 8x8 u64 matrix multiply: C += A * B on every outer round.
# a0 = outer iteration count (initialized by the loader).

main:
        mv      s0, a0              # rounds remaining
        la      s1, mat_a
        la      s2, mat_b
        la      s4, mat_c
        li      s3, 8               # N

        # A[i][j] = i*N + j + 1;  B[i][j] = i - j + 3 (wrapping is fine)
        li      t0, 0               # i
init_i:
        li      t1, 0               # j
init_j:
        mul     t2, t0, s3
        add     t2, t2, t1          # i*N + j
        slli    t3, t2, 3
        add     t4, s1, t3
        addi    t5, t2, 1
        sd      t5, 0(t4)
        add     t4, s2, t3
        sub     t6, t0, t1
        addi    t6, t6, 3
        sd      t6, 0(t4)
        add     t4, s4, t3
        sd      zero, 0(t4)
        addi    t1, t1, 1
        bltu    t1, s3, init_j
        addi    t0, t0, 1
        bltu    t0, s3, init_i

outer:
        beqz    s0, end
        li      t0, 0               # i
row:
        li      t1, 0               # j
col:
        li      t2, 0               # k
        li      a5, 0               # dot-product accumulator
dot:
        mul     t3, t0, s3
        add     t3, t3, t2          # i*N + k
        slli    t3, t3, 3
        add     t3, s1, t3
        ld      a1, 0(t3)           # A[i][k]
        mul     t4, t2, s3
        add     t4, t4, t1          # k*N + j
        slli    t4, t4, 3
        add     t4, s2, t4
        ld      a2, 0(t4)           # B[k][j]
        mul     a3, a1, a2
        add     a5, a5, a3
        addi    t2, t2, 1
        bltu    t2, s3, dot
        mul     t5, t0, s3
        add     t5, t5, t1
        slli    t5, t5, 3
        add     t5, s4, t5
        ld      a4, 0(t5)
        add     a4, a4, a5
        sd      a4, 0(t5)           # C[i][j] += dot
        addi    t1, t1, 1
        bltu    t1, s3, col
        addi    t0, t0, 1
        bltu    t0, s3, row
        addi    s0, s0, -1
        j       outer
end:
        nop

.data
mat_a:  .fill 64, 0
mat_b:  .fill 64, 0
mat_c:  .fill 64, 0
