# Byte-histogram / strlen-style scan over a pseudo-random byte string.
# a0 = outer iteration count (initialized by the loader).
#
# An init loop writes 2047 non-zero pseudo-random bytes (sb) plus a NUL
# terminator. Each round then walks the string byte by byte (lbu) until the
# NUL, bumping a 64-bucket histogram whose address depends on the loaded
# byte value — a dependent chain through a sub-word load — and accumulating
# a checksum that is stored live at the end of every round.

main:
        mv      s0, a0              # rounds remaining
        la      s1, text
        la      s2, hist
        la      s3, result

        # init: text[i] = prng(i) | forced non-zero, text[2047] = 0
        li      t0, 0               # i
        li      t1, 2047
        li      t2, 0x9E3779B9      # x
init:
        li      t3, 2654435761
        mul     t2, t2, t3
        add     t2, t2, t0          # x = x * 2654435761 + i
        srli    t3, t2, 16
        andi    t3, t3, 255
        bnez    t3, store_b
        li      t3, 170             # never store the terminator early
store_b:
        add     t4, s1, t0
        sb      t3, 0(t4)
        addi    t0, t0, 1
        bltu    t0, t1, init
        add     t4, s1, t1
        sb      zero, 0(t4)         # terminator

outer:
        beqz    s0, end
        mv      t0, s1              # cursor
        li      a5, 0               # checksum
scan:
        lbu     t1, 0(t0)
        beqz    t1, done
        andi    t2, t1, 63
        slli    t2, t2, 3
        add     t2, s2, t2
        ld      t3, 0(t2)
        addi    t3, t3, 1
        sd      t3, 0(t2)           # hist[b & 63] += 1
        add     a5, a5, t1
        addi    t0, t0, 1
        j       scan
done:
        sd      a5, 0(s3)           # live checksum
        sub     t4, t0, s1
        sd      t4, 8(s3)           # string length
        addi    s0, s0, -1
        j       outer
end:
        nop

.data
text:   .fill 256, 0                # 2048 bytes, written by the init loop
hist:   .fill 64, 0
result: .word 0, 0
