# Sieve of Eratosthenes over 1024 flag words; each round clears the
# flags, marks composites, and counts the primes below 1024 into
# `result` (there are 172 of them).
# a0 = outer iteration count.

main:
        mv      s0, a0
        la      s1, flags
        li      s2, 1024
outer:
        beqz    s0, end

        li      t0, 0
clear:
        slli    t1, t0, 3
        add     t1, s1, t1
        sd      zero, 0(t1)
        addi    t0, t0, 1
        bltu    t0, s2, clear

        li      t0, 2
mark_i:
        mul     t1, t0, t0          # first multiple worth marking: i*i
        bgeu    t1, s2, count
        slli    t2, t0, 3
        add     t2, s1, t2
        ld      t3, 0(t2)
        bnez    t3, mark_next       # i itself already composite
        li      t4, 1
mark:
        slli    t5, t1, 3
        add     t5, s1, t5
        sd      t4, 0(t5)
        add     t1, t1, t0
        bltu    t1, s2, mark
mark_next:
        addi    t0, t0, 1
        j       mark_i

count:
        li      t6, 0
        li      t0, 2
cnt:
        slli    t1, t0, 3
        add     t1, s1, t1
        ld      t2, 0(t1)
        bnez    t2, cnt_next
        addi    t6, t6, 1
cnt_next:
        addi    t0, t0, 1
        bltu    t0, s2, cnt
        la      t1, result
        sd      t6, 0(t1)
        addi    s0, s0, -1
        j       outer
end:
        nop

.data
flags:  .fill 1024, 0
result: .word 0
