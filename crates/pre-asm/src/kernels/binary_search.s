# Binary search: 64 scrambled probes per round into a sorted
# 1024-entry table — a data-dependent branch pattern no predictor
# can learn, with a short dependent-load chain per probe.
# a0 = outer iteration count.

main:
        mv      s0, a0
        la      s1, table
        li      s2, 1024

        li      t0, 0
tinit:
        slli    t1, t0, 1
        add     t1, t1, t0          # 3*i
        addi    t1, t1, 1           # sorted keys: 3*i + 1
        slli    t2, t0, 3
        add     t2, s1, t2
        sd      t1, 0(t2)
        addi    t0, t0, 1
        bltu    t0, s2, tinit

        li      s3, 2654435761      # query scrambler
        li      s4, 4095            # query mask (max key is 3070)
outer:
        beqz    s0, end
        li      s5, 0               # hits
        li      t0, 0               # query number
        li      s6, 64              # queries per round
probe:
        mul     t1, t0, s3
        add     t1, t1, s0          # salt with the round counter
        and     t1, t1, s4          # key
        li      t2, 0               # lo
        mv      t3, s2              # hi
bsearch:
        bgeu    t2, t3, miss
        add     t4, t2, t3
        srli    t4, t4, 1           # mid
        slli    t5, t4, 3
        add     t5, s1, t5
        ld      t6, 0(t5)
        beq     t6, t1, hit
        bltu    t6, t1, go_right
        mv      t3, t4              # hi = mid
        j       bsearch
go_right:
        addi    t2, t4, 1           # lo = mid + 1
        j       bsearch
hit:
        addi    s5, s5, 1
miss:
        addi    t0, t0, 1
        bltu    t0, s6, probe
        la      t1, result
        sd      s5, 0(t1)
        addi    s0, s0, -1
        j       outer
end:
        nop

.data
table:  .fill 1024, 0
result: .word 0
