# Pointer chase over a 4096-node ring (32 KB, larger than the L1).
# The ring is laid out with a coprime stride so the traversal order is
# scattered relative to the layout: a single dependent load chain.
# a0 = outer iteration count; each round chases all 4096 links.

main:
        mv      s0, a0
        la      s1, nodes
        li      s2, 4096            # nodes
        li      s3, 1531            # coprime step
        li      s4, 4095            # index mask

        li      t0, 0
build:
        add     t1, t0, s3
        and     t1, t1, s4
        slli    t1, t1, 3
        add     t1, s1, t1          # &nodes[(i + step) & mask]
        slli    t2, t0, 3
        add     t2, s1, t2
        sd      t1, 0(t2)
        addi    t0, t0, 1
        bltu    t0, s2, build

outer:
        beqz    s0, end
        mv      t3, s1              # cursor = &nodes[0]
        li      t4, 0
chase:
        ld      t3, 0(t3)
        addi    t4, t4, 1
        bltu    t4, s2, chase
        la      t5, result
        sd      t3, 0(t5)
        addi    s0, s0, -1
        j       outer
end:
        nop

.data
nodes:  .fill 4096, 0
result: .word 0
