//! The bundled RISC-V assembly kernel suite.
//!
//! Nine small but real programs — written fresh for this reproduction in
//! the style of classic teaching-simulator kernels — covering the
//! control-flow and address-stream shapes the synthetic suite cannot
//! express: nested loops over 2-D indexing (matmul), data-dependent
//! recursion with a real stack (quicksort), a single serial dependence
//! chain (pointer-chase), streaming with a store stream (box-blur),
//! irregular inner-loop trip counts (prime sieve), unpredictable
//! data-dependent branching (binary search), an LLC-missing dependent
//! chase over a 4 MB working set (chase-large), and two kernels whose
//! semantics depend on byte-granular memory: a byte-histogram scan
//! (byte-histo) and a struct-of-bytes pointer chase (struct-chase).
//!
//! Every kernel follows the same loader convention: the **outer iteration
//! count arrives in `a0`** (set via [`AsmKernel::build`]), each round ends
//! by storing a live result into its `.data` section, and the program falls
//! off the end (halts) when the rounds are exhausted.

use crate::assembler::assemble;
use crate::error::AsmError;
use pre_model::program::Program;
use pre_model::reg::ArchReg;
use std::fmt;
use std::str::FromStr;

/// RISC-V register carrying the outer iteration count into a kernel (`a0`).
pub fn iter_reg() -> ArchReg {
    ArchReg::int(10)
}

/// The bundled assembly kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsmKernel {
    /// 8×8 integer matrix multiply (nested loops, 2-D indexing).
    Matmul,
    /// Recursive quicksort over 64 keys (call/return, stack traffic).
    Quicksort,
    /// Single pointer chase over a 4096-node scattered ring.
    PointerChase,
    /// 1-D three-tap box blur streaming a cold 16 MB arena.
    BoxBlur,
    /// Sieve of Eratosthenes over 1024 flags (irregular trip counts).
    PrimeSieve,
    /// 64 scrambled binary searches per round (data-dependent branches).
    BinarySearch,
    /// Pointer chase over a 4 MB ring (4× the LLC): every hop is an LLC
    /// miss, so runahead always has a stalling slice to chase.
    ChaseLarge,
    /// Byte-histogram / strlen-style scan: `lbu` walks a NUL-terminated
    /// pseudo-random string, the histogram address depends on the loaded
    /// byte value (sub-word semantics are load-bearing).
    ByteHisto,
    /// Struct-of-bytes pointer chase: each hop loads the next pointer, then
    /// byte/halfword/word fields (`lbu`/`lb`/`lhu`/`lw`) off the freshly
    /// loaded pointer.
    StructChase,
}

/// Number of nodes in the [`AsmKernel::ChaseLarge`] ring: 4 MB of 8-byte
/// links, four times the 1 MB LLC of the Table 1 configuration.
pub const CHASE_LARGE_NODES: u64 = 524_288;

// The working set must stay at least 4x the Table 1 LLC (1 MB) so the chase
// keeps missing off-chip, and a power of two so the stride mask is valid.
const _: () = assert!(CHASE_LARGE_NODES * 8 >= 4 * 1024 * 1024);
const _: () = assert!(CHASE_LARGE_NODES.is_power_of_two());

/// Chase hops per outer round of [`AsmKernel::ChaseLarge`]. Small enough
/// that one round stays within tier-1 test budgets even though every hop is
/// a serial LLC miss; the cursor carries across rounds, so longer runs keep
/// visiting fresh nodes.
pub const CHASE_LARGE_STEPS_PER_ROUND: u64 = 512;

/// Stride of the [`AsmKernel::ChaseLarge`] permutation. Odd, so
/// `i -> (i + STEP) mod NODES` is a full cycle over the power-of-two ring,
/// and large, so successive hops land ~1.5 MB apart.
pub const CHASE_LARGE_STEP: u64 = 196_613;

impl AsmKernel {
    /// Every bundled kernel.
    pub const ALL: [AsmKernel; 9] = [
        AsmKernel::Matmul,
        AsmKernel::Quicksort,
        AsmKernel::PointerChase,
        AsmKernel::BoxBlur,
        AsmKernel::PrimeSieve,
        AsmKernel::BinarySearch,
        AsmKernel::ChaseLarge,
        AsmKernel::ByteHisto,
        AsmKernel::StructChase,
    ];

    /// Short name (also the workload name with an `asm-` prefix).
    pub fn name(&self) -> &'static str {
        match self {
            AsmKernel::Matmul => "matmul",
            AsmKernel::Quicksort => "quicksort",
            AsmKernel::PointerChase => "pointer-chase",
            AsmKernel::BoxBlur => "box-blur",
            AsmKernel::PrimeSieve => "prime-sieve",
            AsmKernel::BinarySearch => "binary-search",
            AsmKernel::ChaseLarge => "chase-large",
            AsmKernel::ByteHisto => "byte-histo",
            AsmKernel::StructChase => "struct-chase",
        }
    }

    /// One-line description.
    pub fn description(&self) -> &'static str {
        match self {
            AsmKernel::Matmul => "8x8 integer matmul, nested loops over 2-D indexing",
            AsmKernel::Quicksort => "recursive quicksort over 64 keys with a real stack",
            AsmKernel::PointerChase => "single dependent load chain over a scattered ring",
            AsmKernel::BoxBlur => "three-tap 1-D blur streaming a cold arena + store stream",
            AsmKernel::PrimeSieve => "sieve of Eratosthenes, irregular inner trip counts",
            AsmKernel::BinarySearch => "scrambled binary searches, unpredictable branches",
            AsmKernel::ChaseLarge => "LLC-missing pointer chase over a 4 MB scattered ring",
            AsmKernel::ByteHisto => "byte-histogram strlen-style scan, byte-indexed buckets",
            AsmKernel::StructChase => "struct-of-bytes pointer chase with sub-word field loads",
        }
    }

    /// The kernel's assembly source text.
    pub fn source(&self) -> &'static str {
        match self {
            AsmKernel::Matmul => include_str!("kernels/matmul.s"),
            AsmKernel::Quicksort => include_str!("kernels/quicksort.s"),
            AsmKernel::PointerChase => include_str!("kernels/pointer_chase.s"),
            AsmKernel::BoxBlur => include_str!("kernels/box_blur.s"),
            AsmKernel::PrimeSieve => include_str!("kernels/prime_sieve.s"),
            AsmKernel::BinarySearch => include_str!("kernels/binary_search.s"),
            AsmKernel::ChaseLarge => include_str!("kernels/chase_large.s"),
            AsmKernel::ByteHisto => include_str!("kernels/byte_histo.s"),
            AsmKernel::StructChase => include_str!("kernels/struct_chase.s"),
        }
    }

    /// Assembles the kernel and initializes `a0` with the outer iteration
    /// count.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] if the embedded source fails to assemble —
    /// which would be a packaging bug; [`AsmKernel::build`] is the
    /// infallible variant the workload suite uses.
    pub fn try_build(&self, iterations: u64) -> Result<Program, AsmError> {
        let mut program = assemble(&format!("asm-{}", self.name()), self.source())?;
        if let AsmKernel::ChaseLarge = self {
            // The ring links are installed by the loader: building them in
            // assembly would burn ~4 M instructions per simulation before
            // the chase even starts. `nodes` is the first `.data` symbol,
            // so it sits at the default data base; later `initial_mem`
            // entries override the `.fill` zeros.
            let base = crate::assembler::AsmOptions::default().data_base;
            for i in 0..CHASE_LARGE_NODES {
                let next = (i + CHASE_LARGE_STEP) & (CHASE_LARGE_NODES - 1);
                program.initial_mem.push((base + i * 8, base + next * 8));
            }
        }
        program.initial_regs.push((iter_reg(), iterations));
        Ok(program)
    }

    /// Assembles the kernel ([`AsmKernel::try_build`]), panicking on error.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to assemble; the bundled sources
    /// are compiled into the crate and covered by tests, so this is
    /// unreachable in practice.
    pub fn build(&self, iterations: u64) -> Program {
        self.try_build(iterations)
            .expect("bundled kernel must assemble")
    }
}

impl fmt::Display for AsmKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown kernel name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmKernelError(String);

impl fmt::Display for ParseAsmKernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown asm kernel `{}`", self.0)
    }
}

impl std::error::Error for ParseAsmKernelError {}

impl FromStr for AsmKernel {
    type Err = ParseAsmKernelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let wanted = s.to_ascii_lowercase();
        let wanted = wanted.strip_prefix("asm-").unwrap_or(&wanted);
        AsmKernel::ALL
            .iter()
            .copied()
            .find(|k| k.name() == wanted)
            .ok_or_else(|| ParseAsmKernelError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::AsmOptions;
    use pre_model::program::Interpreter;

    fn finish(kernel: AsmKernel, iterations: u64) -> Interpreter {
        let program = kernel.build(iterations);
        program.validate().expect("kernel validates");
        let mut interp = Interpreter::new(&program);
        interp.run(20_000_000);
        assert!(interp.halted(), "{kernel} did not halt");
        interp
    }

    #[test]
    fn all_kernels_assemble_and_halt() {
        for kernel in AsmKernel::ALL {
            let interp = finish(kernel, 2);
            assert!(interp.loads() > 0, "{kernel} issued no loads");
        }
    }

    #[test]
    fn zero_iterations_skip_the_body() {
        for kernel in AsmKernel::ALL {
            // Setup/init loops may run, but the program must still halt fast.
            let interp = finish(kernel, 0);
            assert!(interp.retired() < 200_000);
        }
    }

    #[test]
    fn prime_sieve_counts_172_primes_below_1024() {
        let interp = finish(AsmKernel::PrimeSieve, 1);
        let result_addr = AsmOptions::default().data_base + 1024 * 8;
        assert_eq!(interp.memory().load_u64(result_addr), 172);
    }

    #[test]
    fn quicksort_sorts_the_array() {
        let interp = finish(AsmKernel::Quicksort, 1);
        let base = AsmOptions::default().data_base;
        let mut prev = 0;
        for i in 0..64 {
            let v = interp.memory().load_u64(base + i * 8);
            assert!(v >= prev, "arr[{i}] = {v} < {prev}: not sorted");
            assert!(v < 1024, "keys are 10-bit");
            prev = v;
        }
    }

    #[test]
    fn matmul_computes_the_product() {
        let interp = finish(AsmKernel::Matmul, 1);
        let base = AsmOptions::default().data_base;
        let n = 8u64;
        let a = |i: u64, j: u64| i * n + j + 1;
        let b = |i: u64, j: u64| i.wrapping_sub(j).wrapping_add(3);
        // Spot-check two elements of C (third matrix in the data section).
        for (i, j) in [(0u64, 0u64), (7, 5)] {
            let expected: u64 = (0..n).fold(0u64, |acc, k| {
                acc.wrapping_add(a(i, k).wrapping_mul(b(k, j)))
            });
            let addr = base + (2 * n * n + i * n + j) * 8;
            assert_eq!(interp.memory().load_u64(addr), expected, "C[{i}][{j}]");
        }
    }

    #[test]
    fn binary_search_hit_count_matches_reference() {
        let interp = finish(AsmKernel::BinarySearch, 1);
        // Mirror the kernel: key = (q * 2654435761 + round) & 4095, table
        // holds 3*i + 1; the final round executes with round counter 1.
        let hits = (0..64u64)
            .filter(|q| {
                let key = (q.wrapping_mul(2_654_435_761).wrapping_add(1)) & 4095;
                key % 3 == 1 && key / 3 < 1024
            })
            .count() as u64;
        let result_addr = AsmOptions::default().data_base + 1024 * 8;
        assert_eq!(interp.memory().load_u64(result_addr), hits);
    }

    #[test]
    fn pointer_chase_ends_each_round_at_a_node_address() {
        let interp = finish(AsmKernel::PointerChase, 1);
        let base = AsmOptions::default().data_base;
        let result = interp.memory().load_u64(base + 4096 * 8);
        // After 4096 steps of a full-cycle permutation the cursor is back at
        // the ring entry.
        assert_eq!(result, base);
    }

    #[test]
    fn chase_large_ring_is_a_full_cycle_over_four_megabytes() {
        let program = AsmKernel::ChaseLarge.build(1);
        let mem = program.build_memory();
        let base = AsmOptions::default().data_base;
        let mut cursor = base;
        for step in 1..=CHASE_LARGE_NODES {
            cursor = mem.load_u64(cursor);
            let offset = cursor - base;
            assert_eq!(offset % 8, 0);
            assert!(offset / 8 < CHASE_LARGE_NODES, "link escaped the ring");
            if cursor == base {
                assert_eq!(step, CHASE_LARGE_NODES, "permutation is not a full cycle");
            }
        }
        assert_eq!(cursor, base, "ring does not close");
    }

    #[test]
    fn chase_large_cursor_advances_across_rounds() {
        let interp = finish(AsmKernel::ChaseLarge, 2);
        let base = AsmOptions::default().data_base;
        let mask = CHASE_LARGE_NODES - 1;
        // The cursor is not reset between rounds: after r rounds it sits at
        // index (r * steps_per_round * STEP) mod NODES.
        let index = (2 * CHASE_LARGE_STEPS_PER_ROUND * CHASE_LARGE_STEP) & mask;
        let result = interp.memory().load_u64(base + CHASE_LARGE_NODES * 8);
        assert_eq!(result, base + index * 8);
    }

    /// The byte string the `byte-histo` init loop generates.
    fn byte_histo_reference_string() -> Vec<u8> {
        let mut x = 0x9E37_79B9u64;
        let mut text: Vec<u8> = (0..2047u64)
            .map(|i| {
                x = x.wrapping_mul(2_654_435_761).wrapping_add(i);
                let b = ((x >> 16) & 255) as u8;
                if b == 0 {
                    170
                } else {
                    b
                }
            })
            .collect();
        text.push(0);
        text
    }

    #[test]
    fn byte_histo_matches_a_rust_reference() {
        let rounds = 3u64;
        let interp = finish(AsmKernel::ByteHisto, rounds);
        let text = byte_histo_reference_string();
        let checksum: u64 = text.iter().map(|&b| u64::from(b)).sum();
        let base = AsmOptions::default().data_base;
        let result = base + 2048 + 64 * 8;
        assert_eq!(interp.memory().load_u64(result), checksum);
        assert_eq!(interp.memory().load_u64(result + 8), 2047);
        // Histogram buckets accumulate across rounds.
        let mut per_round = [0u64; 64];
        for &b in text.iter().filter(|&&b| b != 0) {
            per_round[(b & 63) as usize] += 1;
        }
        for (k, &count) in per_round.iter().enumerate() {
            let addr = base + 2048 + k as u64 * 8;
            assert_eq!(
                interp.memory().load_u64(addr),
                count * rounds,
                "hist[{k}] after {rounds} rounds"
            );
        }
        // The generated string is byte-granular: the image stores it as
        // bytes, not words.
        assert_eq!(interp.memory().load_bytes(base, 1), u64::from(text[0]));
    }

    #[test]
    fn struct_chase_matches_a_rust_reference() {
        let rounds = 2u64;
        let interp = finish(AsmKernel::StructChase, rounds);
        let base = AsmOptions::default().data_base;
        // Replicate the init loop's fields and the chase.
        let key = |i: u64| i & 255;
        let sign = |i: u64| ((i.wrapping_mul(37) & 255) as u8) as i8 as i64 as u64;
        let weight = |i: u64| (i.wrapping_mul(2_654_435_761) >> 8) & 0xFFFF;
        let val = |i: u64| {
            let w = (i.wrapping_mul(2_654_435_761) >> 24) & 0xFFFF_FFFF;
            w as u32 as i32 as i64 as u64
        };
        let mut acc = 0u64;
        let mut node = 0u64;
        for _ in 0..rounds * 256 {
            node = (node + 101) & 255;
            acc = acc
                .wrapping_add(key(node))
                .wrapping_add(sign(node))
                .wrapping_add(weight(node));
            acc ^= val(node);
            // The tag write-then-read: the 8-byte read returns the freshly
            // stored low byte (bytes +17..+23 of the node are zero).
            acc = acc.wrapping_add(acc & 0xFF);
        }
        let result = base + 256 * 32;
        assert_eq!(interp.memory().load_u64(result), acc);
        // 256 hops per round is a full cycle (101 is odd), so the cursor is
        // back at node 0 at every round boundary.
        assert_eq!(interp.memory().load_u64(result + 8), base);
    }

    #[test]
    fn names_parse_and_roundtrip() {
        for kernel in AsmKernel::ALL {
            assert_eq!(kernel.name().parse::<AsmKernel>().unwrap(), kernel);
            let prefixed = format!("asm-{kernel}");
            assert_eq!(prefixed.parse::<AsmKernel>().unwrap(), kernel);
            assert!(!kernel.description().is_empty());
        }
        assert!("unknown".parse::<AsmKernel>().is_err());
    }

    #[test]
    fn more_iterations_do_more_work() {
        let one = finish(AsmKernel::BoxBlur, 1).retired();
        let three = finish(AsmKernel::BoxBlur, 3).retired();
        assert!(three > one * 2, "{three} vs {one}");
    }
}
