//! The two-pass RV64I-subset assembler.
//!
//! Pass 1 parses the source into normalized instructions and data items,
//! binds labels (text labels to micro-op indices, data labels to byte
//! addresses) and sizes every instruction's lowering. Pass 2 encodes each
//! instruction into [`StaticInst`] micro-ops with all labels resolved and
//! emits a ready-to-run [`Program`].
//!
//! # Lowering rules
//!
//! The micro-op ISA is smaller than RV64I, so a few constructs expand:
//!
//! * **`x0`** is not hardwired in the micro-op register file. The assembler
//!   guarantees its semantics structurally: `x0` (flat integer register 0)
//!   is never used as a destination — instructions that write `x0` have
//!   their destination redirected to the `tp` scratch register — so reads
//!   of `x0` always observe the initial value 0.
//! * **Signed branches** (`blt`/`bge` and friends): the micro-op ISA
//!   compares unsigned, so both operands are XORed with the sign bit into
//!   the `gp`/`tp` scratch registers first (`a <s b  ⟺  a^2⁶³ <u b^2⁶³`),
//!   3 micro-ops total.
//! * **`jal rd, label`** with `rd != x0` becomes `li rd, return_index`
//!   followed by a jump — the return address is a micro-op *index*, since
//!   program counters are indices into the program.
//! * **`jalr`**: the micro-op ISA has no indirect jump, so an indirect
//!   target is dispatched over the finite set of return addresses the
//!   program can produce (every `jal`/`jalr` link value): a chain of
//!   compare-and-branch pairs, falling through to the halt pad when the
//!   register matches no call site. This keeps returns — including
//!   recursion — fully executable on the existing ISA at a modelled cost
//!   proportional to the number of call sites.
//! * **Sub-word loads and stores** are first class: the functional memory
//!   is byte-addressable, so `lb`/`lbu`/`lh`/`lhu`/`lw`/`lwu` and
//!   `sb`/`sh`/`sw` lower to micro-ops carrying their true access width
//!   and sign/zero extension ([`pre_model::isa::MemAccess`]). Accesses are
//!   naturally aligned (the effective address is aligned down to the
//!   access width). `.byte` and `.half` place byte-granular data;
//!   `.align`/`.p2align` (power-of-two) and `.balign` (byte count) align
//!   the data cursor.
//!
//! Because of the scratch lowering, `gp` (x3) and `tp` (x4) are **reserved**
//! — using them in source text is an [`AsmError`] — and `div`/`rem` are not
//! in the subset (the micro-op ALU has no division; `sra`/`srai` lower to
//! the ALU's arithmetic shift).

use crate::error::{AsmError, AsmErrorKind};
use pre_model::isa::{AluOp, BranchCond, MemAccess, MemWidth, StaticInst};
use pre_model::program::Program;
use pre_model::reg::ArchReg;
use std::collections::HashMap;

/// Scratch register used for lowered intermediate values (`gp`, x3).
pub const SCRATCH_GP: u8 = 3;
/// Scratch register used for lowered intermediate values and discarded
/// destinations (`tp`, x4).
pub const SCRATCH_TP: u8 = 4;
/// The stack pointer (`sp`, x2), initialized to [`AsmOptions::stack_top`].
pub const REG_SP: u8 = 2;

const SIGN_BIT: i64 = i64::MIN;

/// Loader/layout options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsmOptions {
    /// Byte address where the `.data` section is placed.
    pub data_base: u64,
    /// Initial value of `sp` (the stack grows down from here).
    pub stack_top: u64,
}

impl Default for AsmOptions {
    fn default() -> Self {
        AsmOptions {
            data_base: 0x10_0000,
            stack_top: 0x8_0000,
        }
    }
}

/// Assembles `source` into a validated [`Program`] with default
/// [`AsmOptions`].
///
/// # Errors
///
/// Returns an [`AsmError`] pointing at the offending line/column/token.
pub fn assemble(name: &str, source: &str) -> Result<Program, AsmError> {
    assemble_with(name, source, &AsmOptions::default())
}

/// A normalized, label-unresolved instruction (pass-1 output).
#[derive(Debug, Clone)]
enum PInst {
    AluReg {
        op: AluOp,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    MulReg {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    AluImm {
        op: AluOp,
        rd: u8,
        rs1: u8,
        imm: i64,
    },
    Li {
        rd: u8,
        imm: i64,
    },
    La {
        rd: u8,
        label: String,
    },
    Load {
        rd: u8,
        rs1: u8,
        imm: i64,
        access: MemAccess,
    },
    Store {
        rs2: u8,
        rs1: u8,
        imm: i64,
        width: MemWidth,
    },
    /// Direct (unsigned or equality) conditional branch.
    BranchU {
        cond: BranchCond,
        rs1: u8,
        rs2: u8,
        label: String,
    },
    /// Signed conditional branch, lowered via the sign-bit XOR trick.
    BranchS {
        cond: BranchCond,
        rs1: u8,
        rs2: u8,
        label: String,
    },
    Jump {
        label: String,
    },
    /// `jal` with a live link register (`rd != x0`).
    Jal {
        rd: u8,
        label: String,
    },
    Jalr {
        rd: u8,
        rs1: u8,
        imm: i64,
    },
    Nop,
}

/// Where a label points.
#[derive(Debug, Clone, Copy)]
enum LabelVal {
    /// Micro-op index in the text section.
    Text(u32),
    /// Byte address in the data section.
    Data(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// One parsed text instruction plus its source position (for late errors).
#[derive(Debug, Clone)]
struct TextItem {
    inst: PInst,
    line: u32,
    col: u32,
}

/// Assembles `source` into a validated [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] pointing at the offending line/column/token.
pub fn assemble_with(name: &str, source: &str, opts: &AsmOptions) -> Result<Program, AsmError> {
    // ---- pass 1: parse ---------------------------------------------------
    let mut items: Vec<TextItem> = Vec::new();
    let mut data: Vec<(u64, u64)> = Vec::new();
    let mut data_bytes: Vec<(u64, u8)> = Vec::new();
    let mut labels: HashMap<String, LabelVal> = HashMap::new();
    // Text labels bind to *instruction ordinals* first; converted to micro-op
    // indices once lowered sizes are known.
    let mut text_labels: Vec<(String, usize, u32, u32)> = Vec::new();
    let mut section = Section::Text;
    let mut data_cursor = opts.data_base;

    for (line_no, raw_line) in source.lines().enumerate() {
        let line_no = line_no as u32 + 1;
        // Columns are computed against the comment-stripped line: every
        // remainder below is a suffix of it, so the length difference is the
        // 0-based offset of that remainder within the line.
        let stripped = strip_comment(raw_line);
        let mut rest = stripped;
        // Bind any leading labels.
        loop {
            let trimmed = rest.trim_start();
            let col = (stripped.len() - trimmed.len()) as u32 + 1;
            match split_label(trimmed) {
                Some((label, tail)) => {
                    if !is_valid_label(label) {
                        return Err(AsmError::new(
                            AsmErrorKind::BadDirective,
                            line_no,
                            col,
                            label,
                        ));
                    }
                    let value = match section {
                        Section::Text => {
                            text_labels.push((label.to_string(), items.len(), line_no, col));
                            rest = tail;
                            continue;
                        }
                        Section::Data => LabelVal::Data(data_cursor),
                    };
                    if labels.insert(label.to_string(), value).is_some() {
                        return Err(AsmError::new(
                            AsmErrorKind::DuplicateLabel,
                            line_no,
                            col,
                            label,
                        ));
                    }
                    rest = tail;
                }
                None => break,
            }
        }
        let trimmed = rest.trim();
        if trimmed.is_empty() {
            continue;
        }
        let col = (stripped.len() - rest.trim_start().len()) as u32 + 1;
        if let Some(directive) = trimmed.strip_prefix('.') {
            match parse_directive(directive, line_no, col)? {
                Directive::Text => section = Section::Text,
                Directive::Data => section = Section::Data,
                Directive::Ignored => {}
                Directive::Words(words) => {
                    if section != Section::Data {
                        return Err(AsmError::new(
                            AsmErrorKind::WrongSection,
                            line_no,
                            col,
                            trimmed,
                        ));
                    }
                    for w in words {
                        data.push((data_cursor, w));
                        data_cursor += 8;
                    }
                }
                Directive::Bytes(bytes) => {
                    if section != Section::Data {
                        return Err(AsmError::new(
                            AsmErrorKind::WrongSection,
                            line_no,
                            col,
                            trimmed,
                        ));
                    }
                    for b in bytes {
                        data_bytes.push((data_cursor, b));
                        data_cursor += 1;
                    }
                }
                Directive::Align(bytes) => {
                    if section == Section::Data {
                        data_cursor = data_cursor.next_multiple_of(bytes);
                    }
                }
                Directive::Fill { repeat, value } => {
                    if section != Section::Data {
                        return Err(AsmError::new(
                            AsmErrorKind::WrongSection,
                            line_no,
                            col,
                            trimmed,
                        ));
                    }
                    for _ in 0..repeat {
                        data.push((data_cursor, value));
                        data_cursor += 8;
                    }
                }
            }
            continue;
        }
        if section != Section::Text {
            return Err(AsmError::new(
                AsmErrorKind::WrongSection,
                line_no,
                col,
                trimmed,
            ));
        }
        let inst = parse_inst(trimmed, line_no, col)?;
        items.push(TextItem {
            inst,
            line: line_no,
            col,
        });
    }

    // ---- sizing: micro-op index of every instruction ---------------------
    // The jalr dispatch size depends only on the *count* of call sites,
    // which is known after parsing.
    let call_sites = items
        .iter()
        .filter(|i| match i.inst {
            PInst::Jal { .. } => true, // `jal x0` is parsed as a plain jump
            PInst::Jalr { rd, .. } => rd != 0,
            _ => false,
        })
        .count();
    let mut starts = Vec::with_capacity(items.len());
    let mut pc: u32 = 0;
    for item in &items {
        starts.push(pc);
        pc += lowered_len(&item.inst, call_sites);
    }
    let halt_idx = pc; // one trailing nop is appended as the halt pad
    let text_len = pc + 1;

    for (label, ordinal, line, col) in text_labels {
        // A label at the very end of the text section binds to the halt pad.
        let idx = starts.get(ordinal).copied().unwrap_or(halt_idx);
        if labels.insert(label.clone(), LabelVal::Text(idx)).is_some() {
            return Err(AsmError::new(
                AsmErrorKind::DuplicateLabel,
                line,
                col,
                label,
            ));
        }
    }

    // Link values: the return addresses produced by every call site, in
    // ascending order (the dispatch chain probes them in this order).
    let mut links: Vec<u32> = items
        .iter()
        .zip(&starts)
        .filter_map(|(item, &start)| match item.inst {
            PInst::Jal { rd, .. } if rd != 0 => Some(start + 2),
            PInst::Jalr { rd, .. } if rd != 0 => Some(start + lowered_len(&item.inst, call_sites)),
            _ => None,
        })
        .collect();
    links.sort_unstable();
    links.dedup();

    // ---- pass 2: encode --------------------------------------------------
    let mut program = Program::new(name);
    for (item, &start) in items.iter().zip(&starts) {
        encode(
            &item.inst,
            start,
            &labels,
            &links,
            halt_idx,
            item.line,
            item.col,
            &mut program.insts,
        )?;
        debug_assert_eq!(
            program.insts.len() as u32,
            start + lowered_len(&item.inst, call_sites),
            "lowered size mismatch at line {}",
            item.line
        );
    }
    program.insts.push(StaticInst::nop()); // halt pad
    debug_assert_eq!(program.insts.len() as u32, text_len);

    program.entry = match labels.get("_start").or_else(|| labels.get("main")) {
        Some(LabelVal::Text(idx)) => *idx,
        _ => 0,
    };
    program.initial_mem = data;
    program.initial_mem_bytes = data_bytes;
    program.initial_regs = vec![(ArchReg::int(REG_SP), opts.stack_top)];

    program
        .validate()
        .map_err(|e| AsmError::new(AsmErrorKind::Program(e), 0, 0, ""))?;
    Ok(program)
}

/// Number of micro-ops `inst` lowers to, given the program's call-site count.
fn lowered_len(inst: &PInst, call_sites: usize) -> u32 {
    match inst {
        PInst::BranchS { .. } => 3,
        PInst::Jal { .. } => 2,
        PInst::Jalr { rd, .. } => {
            // tp = rs1 + imm, optional link write, two micro-ops per probed
            // return address, final jump to the halt pad.
            1 + u32::from(*rd != 0) + 2 * call_sites as u32 + 1
        }
        _ => 1,
    }
}

/// Destination register with `x0` writes redirected to the `tp` scratch.
fn dest(rd: u8) -> ArchReg {
    ArchReg::int(if rd == 0 { SCRATCH_TP } else { rd })
}

fn reg(r: u8) -> ArchReg {
    ArchReg::int(r)
}

#[allow(clippy::too_many_arguments)]
fn encode(
    inst: &PInst,
    start: u32,
    labels: &HashMap<String, LabelVal>,
    links: &[u32],
    halt_idx: u32,
    line: u32,
    col: u32,
    out: &mut Vec<StaticInst>,
) -> Result<(), AsmError> {
    let text_target = |label: &str| -> Result<u32, AsmError> {
        match labels.get(label) {
            Some(LabelVal::Text(idx)) => Ok(*idx),
            _ => Err(AsmError::new(
                AsmErrorKind::UndefinedLabel,
                line,
                col,
                label,
            )),
        }
    };
    match inst {
        PInst::AluReg { op, rd, rs1, rs2 } => {
            out.push(StaticInst::int_alu(*op, dest(*rd), reg(*rs1), reg(*rs2)));
        }
        PInst::MulReg { rd, rs1, rs2 } => {
            out.push(StaticInst::int_mul(dest(*rd), reg(*rs1), reg(*rs2)));
        }
        PInst::AluImm { op, rd, rs1, imm } => {
            out.push(StaticInst::int_alu_imm(*op, dest(*rd), reg(*rs1), *imm));
        }
        PInst::Li { rd, imm } => out.push(StaticInst::load_imm(dest(*rd), *imm)),
        PInst::La { rd, label } => {
            let value = match labels.get(label.as_str()) {
                Some(LabelVal::Data(addr)) => *addr as i64,
                Some(LabelVal::Text(idx)) => *idx as i64,
                None => {
                    return Err(AsmError::new(
                        AsmErrorKind::UndefinedLabel,
                        line,
                        col,
                        label.as_str(),
                    ))
                }
            };
            out.push(StaticInst::load_imm(dest(*rd), value));
        }
        PInst::Load {
            rd,
            rs1,
            imm,
            access,
        } => out.push(StaticInst::load_width(dest(*rd), reg(*rs1), *imm, *access)),
        PInst::Store {
            rs2,
            rs1,
            imm,
            width,
        } => out.push(StaticInst::store_width(reg(*rs2), reg(*rs1), *imm, *width)),
        PInst::BranchU {
            cond,
            rs1,
            rs2,
            label,
        } => {
            let target = text_target(label)?;
            out.push(StaticInst::branch(*cond, reg(*rs1), reg(*rs2), target));
        }
        PInst::BranchS {
            cond,
            rs1,
            rs2,
            label,
        } => {
            let target = text_target(label)?;
            out.push(StaticInst::int_alu_imm(
                AluOp::Xor,
                reg(SCRATCH_TP),
                reg(*rs1),
                SIGN_BIT,
            ));
            out.push(StaticInst::int_alu_imm(
                AluOp::Xor,
                reg(SCRATCH_GP),
                reg(*rs2),
                SIGN_BIT,
            ));
            out.push(StaticInst::branch(
                *cond,
                reg(SCRATCH_TP),
                reg(SCRATCH_GP),
                target,
            ));
        }
        PInst::Jump { label } => {
            let target = text_target(label)?;
            out.push(StaticInst::jump(target));
        }
        PInst::Jal { rd, label } => {
            let target = text_target(label)?;
            out.push(StaticInst::load_imm(dest(*rd), (start + 2) as i64));
            out.push(StaticInst::jump(target));
        }
        PInst::Jalr { rd, rs1, imm } => {
            // tp = rs1 + imm (computed first so a link write to rs1 — e.g.
            // `jalr ra, ra, 0` — cannot clobber the dispatch operand).
            out.push(StaticInst::int_alu_imm(
                AluOp::Add,
                reg(SCRATCH_TP),
                reg(*rs1),
                *imm,
            ));
            let size = 1 + u32::from(*rd != 0) + 2 * links.len() as u32 + 1;
            if *rd != 0 {
                out.push(StaticInst::load_imm(reg(*rd), (start + size) as i64));
            }
            for &link in links {
                out.push(StaticInst::load_imm(reg(SCRATCH_GP), link as i64));
                out.push(StaticInst::branch(
                    BranchCond::Eq,
                    reg(SCRATCH_TP),
                    reg(SCRATCH_GP),
                    link,
                ));
            }
            // No call site matched: land on the halt pad (program ends).
            out.push(StaticInst::jump(halt_idx));
        }
        PInst::Nop => out.push(StaticInst::nop()),
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Line-level parsing.
// ---------------------------------------------------------------------------

/// Strips `#`, `;` and `//` comments.
fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for (i, c) in line.char_indices() {
        if c == '#' || c == ';' {
            end = i;
            break;
        }
        if c == '/' && line[i + 1..].starts_with('/') {
            end = i;
            break;
        }
    }
    &line[..end]
}

/// Splits a leading `label:` off `s` (already trimmed at the start).
fn split_label(s: &str) -> Option<(&str, &str)> {
    let colon = s.find(':')?;
    let label = &s[..colon];
    // Only treat it as a label when the text before ':' looks like one
    // (avoids mis-splitting operands, which never contain ':').
    if !is_valid_label(label) {
        return None;
    }
    Some((label, &s[colon + 1..]))
}

fn is_valid_label(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
}

/// Upper bound on one `.fill`/`.zero`/`.space` repeat count (16 Mi 8-byte
/// words = 128 MiB of image), so a negative count — which wraps to a huge
/// `u64` — errors instead of exhausting memory.
const MAX_FILL_WORDS: u64 = 1 << 24;

#[derive(Debug)]
enum Directive {
    Text,
    Data,
    Ignored,
    Words(Vec<u64>),
    /// Byte-granular data items (`.byte` = 1 byte each, `.half` = 2), stored
    /// little-endian at the running data cursor.
    Bytes(Vec<u8>),
    /// Align the data cursor up to a multiple of this many bytes.
    Align(u64),
    Fill {
        repeat: u64,
        value: u64,
    },
}

fn parse_directive(body: &str, line: u32, col: u32) -> Result<Directive, AsmError> {
    let (name, rest) = match body.find(char::is_whitespace) {
        Some(i) => (&body[..i], body[i..].trim()),
        None => (body, ""),
    };
    let imm = |tok: &str| -> Result<u64, AsmError> {
        parse_imm(tok)
            .map(|v| v as u64)
            .ok_or_else(|| AsmError::new(AsmErrorKind::BadImmediate, line, col, tok))
    };
    // Comma-separated immediates constrained to `bytes`-byte range, emitted
    // little-endian.
    let byte_list = |bytes: u32| -> Result<Directive, AsmError> {
        let mut out = Vec::new();
        for tok in rest.split(',') {
            let tok = tok.trim();
            if tok.is_empty() {
                return Err(AsmError::new(AsmErrorKind::BadDirective, line, col, body));
            }
            let v = parse_imm(tok)
                .ok_or_else(|| AsmError::new(AsmErrorKind::BadImmediate, line, col, tok))?;
            let bits = bytes * 8;
            let min = -(1i64 << (bits - 1));
            let max = (1i64 << bits) - 1;
            if v < min || v > max {
                return Err(AsmError::new(AsmErrorKind::BadImmediate, line, col, tok));
            }
            out.extend_from_slice(&(v as u64).to_le_bytes()[..bytes as usize]);
        }
        if out.is_empty() {
            return Err(AsmError::new(AsmErrorKind::BadDirective, line, col, body));
        }
        Ok(Directive::Bytes(out))
    };
    match name {
        "text" => Ok(Directive::Text),
        "data" => Ok(Directive::Data),
        "globl" | "global" => Ok(Directive::Ignored),
        "align" | "p2align" | "balign" => {
            let tok = rest.split(',').next().unwrap_or("").trim();
            if tok.is_empty() {
                // A bare `.align` is accepted as a no-op, as before.
                return Ok(Directive::Ignored);
            }
            let n = imm(tok)?;
            let bytes = if name == "balign" {
                if n == 0 || !n.is_power_of_two() || n > 4096 {
                    return Err(AsmError::new(AsmErrorKind::BadImmediate, line, col, tok));
                }
                n
            } else {
                if n > 12 {
                    return Err(AsmError::new(AsmErrorKind::BadImmediate, line, col, tok));
                }
                1 << n
            };
            Ok(Directive::Align(bytes))
        }
        "byte" => byte_list(1),
        "half" | "short" => byte_list(2),
        "word" | "dword" | "quad" => {
            let mut words = Vec::new();
            for tok in rest.split(',') {
                let tok = tok.trim();
                if tok.is_empty() {
                    return Err(AsmError::new(AsmErrorKind::BadDirective, line, col, body));
                }
                words.push(imm(tok)?);
            }
            if words.is_empty() {
                return Err(AsmError::new(AsmErrorKind::BadDirective, line, col, body));
            }
            Ok(Directive::Words(words))
        }
        "fill" | "zero" | "space" => {
            let mut parts = rest.split(',').map(str::trim);
            let repeat = match parts.next() {
                Some(tok) if !tok.is_empty() => {
                    let repeat = imm(tok)?;
                    // Negative counts wrap to huge u64s; bound the image so a
                    // typo returns an error instead of exhausting memory.
                    if repeat > MAX_FILL_WORDS {
                        return Err(AsmError::new(AsmErrorKind::BadImmediate, line, col, tok));
                    }
                    repeat
                }
                _ => {
                    return Err(AsmError::new(AsmErrorKind::BadDirective, line, col, body));
                }
            };
            let value = match parts.next() {
                Some(tok) if !tok.is_empty() => imm(tok)?,
                _ => 0,
            };
            Ok(Directive::Fill { repeat, value })
        }
        _ => Err(AsmError::new(AsmErrorKind::BadDirective, line, col, name)),
    }
}

/// Parses a register name (`x0`..`x31` or an ABI name).
fn parse_reg(tok: &str) -> Option<u8> {
    let t = tok.trim();
    if let Some(num) = t.strip_prefix('x') {
        if let Ok(n) = num.parse::<u8>() {
            if n < 32 {
                return Some(n);
            }
        }
    }
    let idx = match t {
        "zero" => 0,
        "ra" => 1,
        "sp" => 2,
        "gp" => 3,
        "tp" => 4,
        "t0" => 5,
        "t1" => 6,
        "t2" => 7,
        "s0" | "fp" => 8,
        "s1" => 9,
        "a0" => 10,
        "a1" => 11,
        "a2" => 12,
        "a3" => 13,
        "a4" => 14,
        "a5" => 15,
        "a6" => 16,
        "a7" => 17,
        "t3" => 28,
        "t4" => 29,
        "t5" => 30,
        "t6" => 31,
        _ => {
            if let Some(num) = t.strip_prefix('s') {
                // s2..s11 -> x18..x27
                if let Ok(n) = num.parse::<u8>() {
                    if (2..=11).contains(&n) {
                        return Some(16 + n);
                    }
                }
            }
            return None;
        }
    };
    Some(idx)
}

/// Parses a decimal or `0x` hexadecimal immediate (optionally signed).
fn parse_imm(tok: &str) -> Option<i64> {
    let t = tok.trim();
    let (neg, body) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t.strip_prefix('+').unwrap_or(t)),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()? as i64
    } else {
        body.replace('_', "").parse::<u64>().ok()? as i64
    };
    Some(if neg { value.wrapping_neg() } else { value })
}

/// One comma-separated operand with its 1-based column in the line.
#[derive(Debug, Clone, Copy)]
struct Operand<'a> {
    text: &'a str,
    col: u32,
}

fn parse_inst(text: &str, line: u32, col: u32) -> Result<PInst, AsmError> {
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();
    let operands: Vec<Operand> = if rest.is_empty() {
        Vec::new()
    } else {
        let rest_col = col + (text.len() - rest.len()) as u32;
        let mut ops = Vec::new();
        let mut offset = 0usize;
        for piece in rest.split(',') {
            let lead = piece.len() - piece.trim_start().len();
            ops.push(Operand {
                text: piece.trim(),
                col: rest_col + (offset + lead) as u32,
            });
            offset += piece.len() + 1;
        }
        ops
    };
    Parser {
        line,
        col,
        mnemonic: &mnemonic,
        operands,
    }
    .parse()
}

struct Parser<'a> {
    line: u32,
    col: u32,
    mnemonic: &'a str,
    operands: Vec<Operand<'a>>,
}

impl<'a> Parser<'a> {
    fn err(&self, kind: AsmErrorKind, op: Option<&Operand>) -> AsmError {
        match op {
            Some(op) => AsmError::new(kind, self.line, op.col, op.text),
            None => AsmError::new(kind, self.line, self.col, self.mnemonic),
        }
    }

    fn bad_operands(&self, expected: &'static str) -> AsmError {
        self.err(AsmErrorKind::BadOperands { expected }, None)
    }

    fn expect_count(&self, n: usize, expected: &'static str) -> Result<(), AsmError> {
        if self.operands.len() == n {
            Ok(())
        } else {
            Err(self.bad_operands(expected))
        }
    }

    fn reg_at(&self, i: usize) -> Result<u8, AsmError> {
        let op = &self.operands[i];
        let r =
            parse_reg(op.text).ok_or_else(|| self.err(AsmErrorKind::UnknownRegister, Some(op)))?;
        if r == SCRATCH_GP || r == SCRATCH_TP {
            return Err(self.err(AsmErrorKind::ReservedRegister, Some(op)));
        }
        Ok(r)
    }

    fn imm_at(&self, i: usize) -> Result<i64, AsmError> {
        let op = &self.operands[i];
        parse_imm(op.text).ok_or_else(|| self.err(AsmErrorKind::BadImmediate, Some(op)))
    }

    fn label_at(&self, i: usize) -> Result<String, AsmError> {
        let op = &self.operands[i];
        if is_valid_label(op.text) {
            Ok(op.text.to_string())
        } else {
            Err(self.err(AsmErrorKind::UndefinedLabel, Some(op)))
        }
    }

    /// Parses a `off(rs)` memory operand.
    fn mem_at(&self, i: usize) -> Result<(u8, i64), AsmError> {
        let op = &self.operands[i];
        let open = op.text.find('(').ok_or_else(|| {
            self.err(
                AsmErrorKind::BadOperands {
                    expected: "off(rs1)",
                },
                Some(op),
            )
        })?;
        let close = op.text.rfind(')').filter(|&c| c > open).ok_or_else(|| {
            self.err(
                AsmErrorKind::BadOperands {
                    expected: "off(rs1)",
                },
                Some(op),
            )
        })?;
        let off_text = op.text[..open].trim();
        let imm = if off_text.is_empty() {
            0
        } else {
            parse_imm(off_text).ok_or_else(|| self.err(AsmErrorKind::BadImmediate, Some(op)))?
        };
        let reg_text = op.text[open + 1..close].trim();
        let r =
            parse_reg(reg_text).ok_or_else(|| self.err(AsmErrorKind::UnknownRegister, Some(op)))?;
        if r == SCRATCH_GP || r == SCRATCH_TP {
            return Err(self.err(AsmErrorKind::ReservedRegister, Some(op)));
        }
        Ok((r, imm))
    }

    fn parse(self) -> Result<PInst, AsmError> {
        let alu_reg = |op| -> Result<PInst, AsmError> {
            self.expect_count(3, "rd, rs1, rs2")?;
            Ok(PInst::AluReg {
                op,
                rd: self.reg_at(0)?,
                rs1: self.reg_at(1)?,
                rs2: self.reg_at(2)?,
            })
        };
        let alu_imm = |op| -> Result<PInst, AsmError> {
            self.expect_count(3, "rd, rs1, imm")?;
            Ok(PInst::AluImm {
                op,
                rd: self.reg_at(0)?,
                rs1: self.reg_at(1)?,
                imm: self.imm_at(2)?,
            })
        };
        // Branches: direct for equality/unsigned, sign-bit lowering for
        // signed, operand swap for the gt/le spellings.
        let branch = |signed: bool, cond, swap: bool| -> Result<PInst, AsmError> {
            self.expect_count(3, "rs1, rs2, label")?;
            let (a, b) = (self.reg_at(0)?, self.reg_at(1)?);
            let (rs1, rs2) = if swap { (b, a) } else { (a, b) };
            let label = self.label_at(2)?;
            Ok(if signed {
                PInst::BranchS {
                    cond,
                    rs1,
                    rs2,
                    label,
                }
            } else {
                PInst::BranchU {
                    cond,
                    rs1,
                    rs2,
                    label,
                }
            })
        };
        let branch_zero = |signed: bool, cond, swap: bool| -> Result<PInst, AsmError> {
            self.expect_count(2, "rs1, label")?;
            let r = self.reg_at(0)?;
            let (rs1, rs2) = if swap { (0, r) } else { (r, 0) };
            let label = self.label_at(1)?;
            Ok(if signed {
                PInst::BranchS {
                    cond,
                    rs1,
                    rs2,
                    label,
                }
            } else {
                PInst::BranchU {
                    cond,
                    rs1,
                    rs2,
                    label,
                }
            })
        };
        match self.mnemonic {
            "add" => alu_reg(AluOp::Add),
            "sub" => alu_reg(AluOp::Sub),
            "and" => alu_reg(AluOp::And),
            "or" => alu_reg(AluOp::Or),
            "xor" => alu_reg(AluOp::Xor),
            "sll" => alu_reg(AluOp::Shl),
            "srl" => alu_reg(AluOp::Shr),
            "sra" => alu_reg(AluOp::Sra),
            "mul" => {
                self.expect_count(3, "rd, rs1, rs2")?;
                Ok(PInst::MulReg {
                    rd: self.reg_at(0)?,
                    rs1: self.reg_at(1)?,
                    rs2: self.reg_at(2)?,
                })
            }
            "addi" => alu_imm(AluOp::Add),
            "andi" => alu_imm(AluOp::And),
            "ori" => alu_imm(AluOp::Or),
            "xori" => alu_imm(AluOp::Xor),
            "slli" => alu_imm(AluOp::Shl),
            "srli" => alu_imm(AluOp::Shr),
            "srai" => alu_imm(AluOp::Sra),
            "li" => {
                self.expect_count(2, "rd, imm")?;
                Ok(PInst::Li {
                    rd: self.reg_at(0)?,
                    imm: self.imm_at(1)?,
                })
            }
            "la" => {
                self.expect_count(2, "rd, label")?;
                Ok(PInst::La {
                    rd: self.reg_at(0)?,
                    label: self.label_at(1)?,
                })
            }
            "mv" => {
                self.expect_count(2, "rd, rs")?;
                Ok(PInst::AluImm {
                    op: AluOp::Add,
                    rd: self.reg_at(0)?,
                    rs1: self.reg_at(1)?,
                    imm: 0,
                })
            }
            "neg" => {
                self.expect_count(2, "rd, rs")?;
                Ok(PInst::AluReg {
                    op: AluOp::Sub,
                    rd: self.reg_at(0)?,
                    rs1: 0,
                    rs2: self.reg_at(1)?,
                })
            }
            "not" => {
                self.expect_count(2, "rd, rs")?;
                Ok(PInst::AluImm {
                    op: AluOp::Xor,
                    rd: self.reg_at(0)?,
                    rs1: self.reg_at(1)?,
                    imm: -1,
                })
            }
            "ld" | "lw" | "lwu" | "lh" | "lhu" | "lb" | "lbu" => {
                self.expect_count(2, "rd, off(rs1)")?;
                let rd = self.reg_at(0)?;
                let (rs1, imm) = self.mem_at(1)?;
                let access = match self.mnemonic {
                    "ld" => MemAccess::D,
                    "lw" => MemAccess::signed(MemWidth::W),
                    "lwu" => MemAccess::unsigned(MemWidth::W),
                    "lh" => MemAccess::signed(MemWidth::H),
                    "lhu" => MemAccess::unsigned(MemWidth::H),
                    "lb" => MemAccess::signed(MemWidth::B),
                    _ => MemAccess::unsigned(MemWidth::B),
                };
                Ok(PInst::Load {
                    rd,
                    rs1,
                    imm,
                    access,
                })
            }
            "sd" | "sw" | "sh" | "sb" => {
                self.expect_count(2, "rs2, off(rs1)")?;
                let rs2 = self.reg_at(0)?;
                let (rs1, imm) = self.mem_at(1)?;
                let width = match self.mnemonic {
                    "sd" => MemWidth::D,
                    "sw" => MemWidth::W,
                    "sh" => MemWidth::H,
                    _ => MemWidth::B,
                };
                Ok(PInst::Store {
                    rs2,
                    rs1,
                    imm,
                    width,
                })
            }
            "beq" => branch(false, BranchCond::Eq, false),
            "bne" => branch(false, BranchCond::Ne, false),
            "bltu" => branch(false, BranchCond::Lt, false),
            "bgeu" => branch(false, BranchCond::Ge, false),
            "bgtu" => branch(false, BranchCond::Lt, true),
            "bleu" => branch(false, BranchCond::Ge, true),
            "blt" => branch(true, BranchCond::Lt, false),
            "bge" => branch(true, BranchCond::Ge, false),
            "bgt" => branch(true, BranchCond::Lt, true),
            "ble" => branch(true, BranchCond::Ge, true),
            "beqz" => branch_zero(false, BranchCond::Eq, false),
            "bnez" => branch_zero(false, BranchCond::Ne, false),
            "bltz" => branch_zero(true, BranchCond::Lt, false),
            "bgez" => branch_zero(true, BranchCond::Ge, false),
            "bgtz" => branch_zero(true, BranchCond::Lt, true),
            "blez" => branch_zero(true, BranchCond::Ge, true),
            "j" => {
                self.expect_count(1, "label")?;
                Ok(PInst::Jump {
                    label: self.label_at(0)?,
                })
            }
            "jal" => match self.operands.len() {
                1 => Ok(PInst::Jal {
                    rd: 1,
                    label: self.label_at(0)?,
                }),
                2 => {
                    let rd = self.reg_at(0)?;
                    let label = self.label_at(1)?;
                    Ok(if rd == 0 {
                        PInst::Jump { label }
                    } else {
                        PInst::Jal { rd, label }
                    })
                }
                _ => Err(self.bad_operands("[rd,] label")),
            },
            "call" => {
                self.expect_count(1, "label")?;
                Ok(PInst::Jal {
                    rd: 1,
                    label: self.label_at(0)?,
                })
            }
            "jr" => {
                self.expect_count(1, "rs1")?;
                Ok(PInst::Jalr {
                    rd: 0,
                    rs1: self.reg_at(0)?,
                    imm: 0,
                })
            }
            "jalr" => match self.operands.len() {
                1 => Ok(PInst::Jalr {
                    rd: 1,
                    rs1: self.reg_at(0)?,
                    imm: 0,
                }),
                3 => Ok(PInst::Jalr {
                    rd: self.reg_at(0)?,
                    rs1: self.reg_at(1)?,
                    imm: self.imm_at(2)?,
                }),
                _ => Err(self.bad_operands("rd, rs1, imm")),
            },
            "ret" => {
                self.expect_count(0, "(no operands)")?;
                Ok(PInst::Jalr {
                    rd: 0,
                    rs1: 1,
                    imm: 0,
                })
            }
            "nop" => {
                self.expect_count(0, "(no operands)")?;
                Ok(PInst::Nop)
            }
            _ => Err(AsmError::new(
                AsmErrorKind::UnknownMnemonic,
                self.line,
                self.col,
                self.mnemonic,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::program::Interpreter;

    fn run(source: &str) -> Interpreter {
        let program = assemble("test", source).expect("assembles");
        let mut interp = Interpreter::new(&program);
        interp.run(1_000_000);
        assert!(interp.halted(), "program did not halt");
        interp
    }

    #[test]
    fn straight_line_alu() {
        let interp = run("li a0, 5\naddi a0, a0, 7\nslli a1, a0, 2\nsub a2, a1, a0");
        assert_eq!(interp.reg(ArchReg::int(10)), 12);
        assert_eq!(interp.reg(ArchReg::int(11)), 48);
        assert_eq!(interp.reg(ArchReg::int(12)), 36);
    }

    #[test]
    fn x0_reads_zero_and_writes_are_discarded() {
        let interp = run("li a0, 9\nadd x0, a0, a0\nadd a1, zero, x0\naddi a2, x0, 3");
        assert_eq!(interp.reg(ArchReg::int(0)), 0);
        assert_eq!(interp.reg(ArchReg::int(11)), 0);
        assert_eq!(interp.reg(ArchReg::int(12)), 3);
    }

    #[test]
    fn loads_and_stores_roundtrip_through_data() {
        let interp = run(concat!(
            "main:\n",
            "  la a0, buf\n",
            "  ld a1, 0(a0)\n",
            "  addi a1, a1, 1\n",
            "  sd a1, 8(a0)\n",
            "  lw a2, 8(a0)\n",
            ".data\n",
            "buf: .word 41\n",
            "     .word 0\n",
        ));
        assert_eq!(interp.reg(ArchReg::int(12)), 42);
        let base = AsmOptions::default().data_base;
        assert_eq!(interp.memory().load_u64(base + 8), 42);
    }

    #[test]
    fn sub_word_loads_extend_and_stores_truncate() {
        let interp = run(concat!(
            "main:\n",
            "  la a0, buf\n",
            "  lb a1, 0(a0)\n",  // 0x80 sign-extends to -128
            "  lbu a2, 0(a0)\n", // 0x80 zero-extends to 128
            "  lh a3, 2(a0)\n",  // 0xFFFF -> -1
            "  lhu a4, 2(a0)\n", // 0xFFFF -> 65535
            "  lw a5, 4(a0)\n",  // 0xFFFF_FFFF -> -1
            "  lwu a6, 4(a0)\n",
            "  li t0, 0x1122334455667788\n",
            "  sb t0, 8(a0)\n",
            "  sh t0, 10(a0)\n",
            "  sw t0, 12(a0)\n",
            "  ld a7, 8(a0)\n",
            ".data\n",
            "buf: .byte 0x80, 0\n",
            "     .half -1\n",
            "     .word 0xFFFFFFFF\n",
            "     .word 0\n",
        ));
        assert_eq!(interp.reg(ArchReg::int(11)) as i64, -128);
        assert_eq!(interp.reg(ArchReg::int(12)), 128);
        assert_eq!(interp.reg(ArchReg::int(13)) as i64, -1);
        assert_eq!(interp.reg(ArchReg::int(14)), 65535);
        assert_eq!(interp.reg(ArchReg::int(15)) as i64, -1);
        assert_eq!(interp.reg(ArchReg::int(16)), 0xFFFF_FFFF);
        // sb wrote byte 0x88 at +8, sh wrote 0x7788 at +10, sw wrote
        // 0x55667788 at +12; byte +9 keeps the zero from the first .word's
        // high bytes.
        assert_eq!(interp.reg(ArchReg::int(17)), 0x5566_7788_7788_0088);
    }

    #[test]
    fn sra_is_an_arithmetic_shift() {
        let interp = run(concat!(
            "li a0, -64\n",
            "srai a1, a0, 3\n",
            "li a2, 2\n",
            "sra a3, a0, a2\n",
            "li a4, 64\n",
            "srai a5, a4, 3\n",
        ));
        assert_eq!(interp.reg(ArchReg::int(11)) as i64, -8);
        assert_eq!(interp.reg(ArchReg::int(13)) as i64, -16);
        assert_eq!(interp.reg(ArchReg::int(15)), 8);
    }

    #[test]
    fn byte_and_half_directives_pack_and_align() {
        let program = assemble(
            "t",
            ".data\na: .byte 1, 2, 3\nb: .half 0x0504\n.align 3\nc: .word 9\n.text\nmain: nop",
        )
        .expect("assembles");
        let base = AsmOptions::default().data_base;
        assert_eq!(
            program.initial_mem_bytes,
            vec![
                (base, 1),
                (base + 1, 2),
                (base + 2, 3),
                (base + 3, 0x04),
                (base + 4, 0x05)
            ]
        );
        // `.align 3` advanced the cursor from base+5 to the next 8-byte
        // boundary before the .word.
        assert_eq!(program.initial_mem, vec![(base + 8, 9)]);
        let mem = program.build_memory();
        assert_eq!(mem.load_bytes(base, 2), 0x0201);
        assert_eq!(mem.load_bytes(base + 3, 2), 0x0504);
    }

    #[test]
    fn byte_directive_range_checks() {
        let e = assemble("t", ".data\na: .byte 256").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::BadImmediate);
        let e = assemble("t", ".data\na: .byte -129").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::BadImmediate);
        let e = assemble("t", ".data\na: .half 65536").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::BadImmediate);
        assert!(assemble("t", ".data\na: .byte -128, 255").is_ok());
        let e = assemble("t", ".text\n.byte 1").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::WrongSection);
        let e = assemble("t", ".data\n.align 99").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::BadImmediate);
    }

    #[test]
    fn unsigned_and_equality_branches() {
        // Count down from 5.
        let interp = run("li a0, 5\nloop: addi a0, a0, -1\nbnez a0, loop\nli a1, 77");
        assert_eq!(interp.reg(ArchReg::int(10)), 0);
        assert_eq!(interp.reg(ArchReg::int(11)), 77);
    }

    #[test]
    fn signed_branches_compare_signed() {
        // -1 <s 1 is true (unsigned it would be false).
        let interp = run(concat!(
            "li a0, -1\n",
            "li a1, 1\n",
            "li a2, 0\n",
            "blt a0, a1, took\n",
            "li a2, 111\n",
            "j end\n",
            "took: li a2, 222\n",
            "end: nop\n",
        ));
        assert_eq!(interp.reg(ArchReg::int(12)), 222);
    }

    #[test]
    fn ble_and_bgt_swap_operands() {
        let interp = run(concat!(
            "li a0, 3\n",
            "li a1, 3\n",
            "li a2, 0\n",
            "ble a0, a1, le\n",
            "j end\n",
            "le: li a2, 1\n",
            "bgt a0, a1, gt\n",
            "j end\n",
            "gt: li a2, 2\n",
            "end: nop\n",
        ));
        assert_eq!(interp.reg(ArchReg::int(12)), 1);
    }

    #[test]
    fn call_and_ret_link_through_the_dispatch() {
        let interp = run(concat!(
            "main:\n",
            "  li a0, 10\n",
            "  call double\n",
            "  call double\n",
            "  j end\n",
            "double:\n",
            "  add a0, a0, a0\n",
            "  ret\n",
            "end: nop\n",
        ));
        assert_eq!(interp.reg(ArchReg::int(10)), 40);
    }

    #[test]
    fn recursion_with_a_stack() {
        // Triangular number via recursion: f(n) = n + f(n-1), f(0) = 0.
        let interp = run(concat!(
            "main:\n",
            "  li a0, 5\n",
            "  call tri\n",
            "  j end\n",
            "tri:\n",
            "  bnez a0, rec\n",
            "  ret\n",
            "rec:\n",
            "  addi sp, sp, -16\n",
            "  sd ra, 0(sp)\n",
            "  sd a0, 8(sp)\n",
            "  addi a0, a0, -1\n",
            "  call tri\n",
            "  ld a1, 8(sp)\n",
            "  add a0, a0, a1\n",
            "  ld ra, 0(sp)\n",
            "  addi sp, sp, 16\n",
            "  ret\n",
            "end: nop\n",
        ));
        assert_eq!(interp.reg(ArchReg::int(10)), 15);
        // sp is restored.
        assert_eq!(
            interp.reg(ArchReg::int(REG_SP)),
            AsmOptions::default().stack_top
        );
    }

    #[test]
    fn fill_and_word_layout_data() {
        let program = assemble(
            "t",
            ".data\na: .fill 3, 7\nb: .word 1, 2\n.text\nmain: la a0, b\nld a1, 0(a0)",
        )
        .expect("assembles");
        let base = AsmOptions::default().data_base;
        assert_eq!(
            program.initial_mem,
            vec![
                (base, 7),
                (base + 8, 7),
                (base + 16, 7),
                (base + 24, 1),
                (base + 32, 2)
            ]
        );
    }

    #[test]
    fn entry_prefers_start_then_main() {
        let p = assemble("t", "nop\nmain: li a0, 1").unwrap();
        assert_eq!(p.entry, 1);
        let p = assemble("t", "nop\n_start: li a0, 1\nmain: li a0, 2").unwrap();
        assert_eq!(p.entry, 1);
        let p = assemble("t", "li a0, 1").unwrap();
        assert_eq!(p.entry, 0);
    }

    #[test]
    fn errors_carry_line_and_token() {
        let e = assemble("t", "nop\nfrob a0, a1").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.kind, AsmErrorKind::UnknownMnemonic);
        assert_eq!(e.token, "frob");

        let e = assemble("t", "add a0, a1, q9").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::UnknownRegister);
        assert_eq!(e.token, "q9");
        assert!(e.col > 1);

        let e = assemble("t", "li a0, banana").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::BadImmediate);

        let e = assemble("t", "j nowhere").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::UndefinedLabel);

        let e = assemble("t", "x: nop\nx: nop").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::DuplicateLabel);

        let e = assemble("t", "add a0, a1, gp").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::ReservedRegister);

        let e = assemble("t", ".data\n.word 1\nadd a0, a0, a0").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::WrongSection);

        let e = assemble("t", ".frobnicate 12").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::BadDirective);
    }

    #[test]
    fn error_columns_ignore_trailing_comments() {
        let e = assemble("t", "frob a0 # a very long trailing comment").unwrap_err();
        assert_eq!((e.line, e.col), (1, 1), "{e}");
        let e = assemble("t", "  add a0, a1, q9 ; note").unwrap_err();
        assert_eq!(e.token, "q9");
        assert_eq!(e.col, 15, "{e}");
    }

    #[test]
    fn fill_with_negative_or_huge_repeat_errors() {
        let e = assemble("t", ".data\nbuf: .fill -1").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::BadImmediate);
        assert_eq!(e.line, 2);
        let e = assemble("t", ".data\nbuf: .fill 0x7FFFFFFFFFFF, 3").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::BadImmediate);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = assemble(
            "t",
            "# header\n  ; another\nli a0, 1 // trailing\n\n   \nnop # done",
        )
        .unwrap();
        // li + nop + halt pad.
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn assembly_is_deterministic() {
        let src = "main: li a0, 3\nloop: addi a0, a0, -1\nbnez a0, loop\ncall f\nj e\nf: ret\ne: nop\n.data\nd: .fill 4, 9";
        let a = assemble("t", src).unwrap();
        let b = assemble("t", src).unwrap();
        assert_eq!(a.insts, b.insts);
        assert_eq!(a.initial_mem, b.initial_mem);
        assert_eq!(a.initial_regs, b.initial_regs);
        assert_eq!(a.entry, b.entry);
    }

    #[test]
    fn register_names_cover_abi_and_numeric() {
        for (name, idx) in [
            ("zero", 0),
            ("ra", 1),
            ("sp", 2),
            ("t0", 5),
            ("s0", 8),
            ("fp", 8),
            ("s1", 9),
            ("a0", 10),
            ("a7", 17),
            ("s2", 18),
            ("s11", 27),
            ("t3", 28),
            ("t6", 31),
            ("x13", 13),
        ] {
            assert_eq!(parse_reg(name), Some(idx), "{name}");
        }
        assert_eq!(parse_reg("x32"), None);
        assert_eq!(parse_reg("s12"), None);
        assert_eq!(parse_reg("q1"), None);
    }

    #[test]
    fn immediates_parse_hex_and_negative() {
        assert_eq!(parse_imm("42"), Some(42));
        assert_eq!(parse_imm("-8"), Some(-8));
        assert_eq!(parse_imm("0x10"), Some(16));
        assert_eq!(parse_imm("0xFFFF_FFFF_FFFF_FFFF"), Some(-1));
        assert_eq!(parse_imm("1_000"), Some(1000));
        assert_eq!(parse_imm("zzz"), None);
    }
}
