//! Actionable assembler diagnostics.
//!
//! Every error produced while assembling carries the 1-based source line and
//! column plus the offending token, so a failing kernel points straight at
//! the broken text instead of at an instruction index deep inside the
//! lowered program.

use pre_model::error::ProgramError;
use std::error::Error;
use std::fmt;

/// What went wrong while assembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// The mnemonic is not part of the supported RV64I subset.
    UnknownMnemonic,
    /// The register name is not a valid RV64I register.
    UnknownRegister,
    /// The register is reserved by the assembler for lowering scratch
    /// (`gp`/`tp` hold intermediate values for signed branches and `jalr`
    /// return dispatch).
    ReservedRegister,
    /// An immediate operand did not parse as a 64-bit integer.
    BadImmediate,
    /// A referenced label was never defined.
    UndefinedLabel,
    /// The same label was defined twice.
    DuplicateLabel,
    /// An instruction has the wrong number or shape of operands.
    BadOperands {
        /// What the instruction expects, e.g. `"rd, rs1, imm"`.
        expected: &'static str,
    },
    /// An unknown or malformed directive.
    BadDirective,
    /// An instruction appeared in `.data`, or data in `.text`.
    WrongSection,
    /// The lowered program failed [`pre_model::Program::validate`]; this
    /// indicates an assembler bug, not bad input, but is surfaced rather
    /// than panicking.
    Program(ProgramError),
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::UnknownMnemonic => write!(f, "unknown mnemonic"),
            AsmErrorKind::UnknownRegister => write!(f, "unknown register"),
            AsmErrorKind::ReservedRegister => {
                write!(f, "register is reserved as assembler scratch (gp/tp)")
            }
            AsmErrorKind::BadImmediate => write!(f, "malformed immediate"),
            AsmErrorKind::UndefinedLabel => write!(f, "undefined label"),
            AsmErrorKind::DuplicateLabel => write!(f, "duplicate label"),
            AsmErrorKind::BadOperands { expected } => {
                write!(f, "bad operands, expected `{expected}`")
            }
            AsmErrorKind::BadDirective => write!(f, "unknown or malformed directive"),
            AsmErrorKind::WrongSection => write!(f, "not allowed in this section"),
            AsmErrorKind::Program(e) => write!(f, "lowered program failed validation: {e}"),
        }
    }
}

/// An assembly error: the kind, the 1-based source position and the
/// offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// What went wrong.
    pub kind: AsmErrorKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based column of the offending token (best effort: the column where
    /// the token starts).
    pub col: u32,
    /// The offending token text (empty for whole-line problems).
    pub token: String,
}

impl AsmError {
    /// Creates an error at the given position.
    pub fn new(kind: AsmErrorKind, line: u32, col: u32, token: impl Into<String>) -> Self {
        AsmError {
            kind,
            line,
            col,
            token: token.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.token.is_empty() {
            write!(f, "line {}:{}: {}", self.line, self.col, self.kind)
        } else {
            write!(
                f,
                "line {}:{}: {} `{}`",
                self.line, self.col, self.kind, self.token
            )
        }
    }
}

impl Error for AsmError {}

impl From<AsmError> for String {
    fn from(e: AsmError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_token() {
        let e = AsmError::new(AsmErrorKind::UnknownMnemonic, 12, 9, "frobnicate");
        let text = e.to_string();
        assert!(text.contains("line 12:9"), "{text}");
        assert!(text.contains("`frobnicate`"), "{text}");
        assert!(text.contains("unknown mnemonic"), "{text}");
    }

    #[test]
    fn display_without_token_omits_backticks() {
        let e = AsmError::new(AsmErrorKind::BadDirective, 3, 1, "");
        let text = e.to_string();
        assert!(text.contains("line 3:1"), "{text}");
        assert!(!text.contains('`'), "{text}");
    }

    #[test]
    fn bad_operands_names_the_expected_shape() {
        let e = AsmError::new(
            AsmErrorKind::BadOperands {
                expected: "rd, off(rs1)",
            },
            7,
            4,
            "ld",
        );
        assert!(e.to_string().contains("rd, off(rs1)"), "{e}");
    }

    #[test]
    fn program_errors_are_wrapped_verbatim() {
        let inner = ProgramError::Empty;
        let e = AsmError::new(AsmErrorKind::Program(inner.clone()), 1, 1, "");
        assert!(e.to_string().contains(&inner.to_string()), "{e}");
    }

    #[test]
    fn asm_error_is_a_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<AsmError>();
    }
}
