//! Running a single (workload, technique) simulation.

use crate::sample::{SampleMeta, SampleSpec};
use pre_core::OooCore;
use pre_energy::{EnergyBreakdown, EnergyModel};
use pre_model::config::SimConfig;
use pre_model::error::{SimError, WatchdogDiag};
use pre_model::stats::{SimStats, TerminationKind};
use pre_runahead::Technique;
use pre_trace::{TraceSession, TraceSpec, Tracer};
use pre_workloads::{Workload, WorkloadParams};

/// Specification of one simulation run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The workload to simulate.
    pub workload: Workload,
    /// The machine configuration (baseline or one of the runahead flavours).
    pub technique: Technique,
    /// The simulator configuration.
    pub config: SimConfig,
    /// Workload build parameters.
    pub params: WorkloadParams,
    /// Stop after this many committed micro-ops.
    pub max_uops: u64,
    /// Hard cycle limit (safety net).
    pub max_cycles: u64,
    /// Optional trace outputs: when set, [`run_one`] attaches a
    /// [`TraceSession`] writing the requested streams for this cell.
    pub trace: Option<TraceSpec>,
    /// Micro-ops of functional warm-up before detailed simulation. `0` is a
    /// cold start; anything else builds the core from a shared warm-up
    /// snapshot ([`crate::stores::snapshot_for`]), so every spec with the
    /// same (workload, params, warm-up) amortizes one warm-up execution.
    /// The committed-uop budget counts post-warm-up commits only.
    pub warmup_uops: u64,
    /// Warm-trace window for the warm-up snapshot: when set, the snapshot's
    /// cache/predictor warm trace covers only the final `warm_window` uops of
    /// the warm-up instead of all of it. Architectural state is unaffected.
    /// Sampled runs use this to fork mid-execution representatives cheaply.
    /// `None` (the default) traces the whole warm-up.
    pub warm_window: Option<u64>,
    /// Sampled-mode parameters: when set, [`run_one`] estimates the result
    /// via SimPoint-style interval sampling ([`crate::sample::run_sampled`])
    /// instead of simulating the whole budget in detail. The result then
    /// carries [`RunResult::sample`] metadata.
    pub sample: Option<SampleSpec>,
    /// Consult the result cache ([`crate::stores`]) before simulating and
    /// store the outcome after. Off by default so timing harnesses measure
    /// real simulations unless they opt in.
    pub use_result_cache: bool,
}

impl RunSpec {
    /// A run of `workload` under `technique` with the paper's Table 1
    /// configuration and the default evaluation budget.
    pub fn new(workload: Workload, technique: Technique) -> Self {
        RunSpec {
            workload,
            technique,
            config: SimConfig::haswell_like(),
            params: WorkloadParams::default(),
            max_uops: 300_000,
            max_cycles: 60_000_000,
            trace: None,
            warmup_uops: 0,
            warm_window: None,
            sample: None,
            use_result_cache: false,
        }
    }

    /// Overrides the committed-micro-op budget (the cycle limit scales with
    /// it).
    pub fn with_budget(mut self, max_uops: u64) -> Self {
        self.max_uops = max_uops;
        self.max_cycles = max_uops.saturating_mul(200).max(1_000_000);
        self
    }

    /// Overrides the simulator configuration.
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the workload parameters.
    pub fn with_params(mut self, params: WorkloadParams) -> Self {
        self.params = params;
        self
    }

    /// Requests trace outputs for this run (see [`TraceSpec`]).
    pub fn with_trace(mut self, trace: TraceSpec) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Requests `uops` of functional warm-up (snapshot-based) before
    /// detailed simulation.
    pub fn with_warmup(mut self, uops: u64) -> Self {
        self.warmup_uops = uops;
        self
    }

    /// Limits the warm-up snapshot's warm trace to the final `uops` of the
    /// warm-up (see [`RunSpec::warm_window`]).
    pub fn with_warm_window(mut self, uops: u64) -> Self {
        self.warm_window = Some(uops);
        self
    }

    /// Requests SimPoint-style interval sampling with the given parameters
    /// (see [`crate::sample::run_sampled`]).
    pub fn sampled(mut self, sample: SampleSpec) -> Self {
        self.sample = Some(sample);
        self
    }

    /// Opts this run into the result cache.
    pub fn with_result_cache(mut self, on: bool) -> Self {
        self.use_result_cache = on;
        self
    }

    /// The canonical file-name stem for this run's cell, e.g.
    /// `lbm-like_pre-emq`.
    pub fn cell_name(&self) -> String {
        cell_name(self.workload, self.technique)
    }
}

/// The canonical `<workload>_<technique>` cell name used for trace files
/// and progress output, e.g. `asm-chase-large_pre-emq`.
pub fn cell_name(workload: Workload, technique: Technique) -> String {
    format!(
        "{}_{}",
        workload.name(),
        technique.label().to_lowercase().replace('+', "-")
    )
}

/// The outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The workload that was simulated.
    pub workload: Workload,
    /// The technique that was simulated.
    pub technique: Technique,
    /// Raw simulation statistics.
    pub stats: SimStats,
    /// Energy breakdown computed by the default [`EnergyModel`].
    pub energy: EnergyBreakdown,
    /// Whether the run hit the deadlock watchdog (indicates a modelling bug).
    pub deadlocked: bool,
    /// `true` when this result came out of the result cache rather than a
    /// simulation (never serialized; a cached copy of a run is bit-identical
    /// to the run in every other field).
    pub cache_hit: bool,
    /// Watchdog diagnostics when the run deadlocked (never serialized; a
    /// cached copy of a watchdog run reconstructs a minimal diagnostic from
    /// its stats via [`RunResult::watchdog_error`]).
    pub watchdog: Option<Box<WatchdogDiag>>,
    /// Sampling metadata when this result was *extrapolated* from
    /// representative intervals rather than measured in full
    /// ([`crate::sample::run_sampled`]); `None` for measured runs. Reporting
    /// marks such results with `~`.
    pub sample: Option<SampleMeta>,
}

impl RunResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// Total energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy.total_mj()
    }

    /// How the run terminated (completed / cycle budget / watchdog).
    pub fn terminated(&self) -> TerminationKind {
        self.stats.terminated
    }

    /// For a deadlocked run, the [`SimError::Watchdog`] describing it (built
    /// from the captured diagnostics, or minimally from the stats for a
    /// cache hit). `None` when the run did not deadlock. Watchdog runs still
    /// carry their full stats, so callers choose between treating them as
    /// data (warning markers) or as failures (this error).
    pub fn watchdog_error(&self) -> Option<SimError> {
        if !self.deadlocked {
            return None;
        }
        let diag = self.watchdog.clone().unwrap_or_else(|| {
            Box::new(WatchdogDiag {
                cycle: self.stats.cycles,
                committed_uops: self.stats.committed_uops,
                ..WatchdogDiag::default()
            })
        });
        Some(SimError::Watchdog(diag))
    }
}

/// Runs one simulation.
///
/// # Errors
///
/// Returns [`SimError`] if the configuration or the generated program is
/// invalid, or if trace output cannot be written.
pub fn run_one(spec: &RunSpec) -> Result<RunResult, SimError> {
    if spec.sample.is_some() {
        return crate::sample::run_sampled(spec);
    }
    let Some(ts) = &spec.trace else {
        return run_one_plain(spec);
    };
    let session =
        TraceSession::create(ts, &spec.cell_name()).map_err(|e| SimError::Trace(e.to_string()))?;
    let (result, tracer) = run_one_traced(spec, Box::new(session))?;
    let session = tracer.into_any().downcast::<TraceSession>().map_err(|_| {
        SimError::Trace("tracer returned by the core is not the attached session".to_string())
    })?;
    if let Some(e) = session.io_error() {
        return Err(SimError::Trace(e.to_string()));
    }
    Ok(result)
}

/// Runs one simulation with an explicit tracer attached, returning the
/// tracer afterwards so the caller can inspect what it collected (downcast
/// via [`Tracer::into_any`]).
///
/// # Errors
///
/// Returns [`SimError`] if the configuration or the generated program is
/// invalid.
pub fn run_one_traced(
    spec: &RunSpec,
    tracer: Box<dyn Tracer>,
) -> Result<(RunResult, Box<dyn Tracer>), SimError> {
    let program = crate::stores::program_for(spec.workload, &spec.params);
    let mut core = build_core(spec, &program)?;
    core.set_tracer(tracer);
    core.run(spec.max_uops, spec.max_cycles);
    let tracer = core
        .take_tracer()
        .ok_or_else(|| SimError::Trace("core lost the attached tracer".to_string()))?;
    let stats = core.stats().clone();
    let energy = EnergyModel::default().evaluate(&stats, &spec.config);
    let watchdog = core.watchdog_diag().map(Box::new);
    Ok((
        RunResult {
            workload: spec.workload,
            technique: spec.technique,
            stats,
            energy,
            deadlocked: core.deadlocked(),
            cache_hit: false,
            watchdog,
            sample: None,
        },
        tracer,
    ))
}

/// Builds the core for `spec`: cold when `warmup_uops` is 0, otherwise from
/// the shared warm-up snapshot and warmed state. Cold-with-warmup and
/// snapshot-forked runs go through this one path, so they are bit-identical
/// by construction.
fn build_core(spec: &RunSpec, program: &pre_model::Program) -> Result<OooCore, SimError> {
    if spec.warmup_uops == 0 {
        return OooCore::new(&spec.config, program, spec.technique).map_err(SimError::from);
    }
    let window = spec
        .warm_window
        .map_or(spec.warmup_uops, |w| w.min(spec.warmup_uops));
    let snap = crate::stores::snapshot_for_windowed(program, spec.warmup_uops, window);
    let warmed = crate::stores::warmed_for(&spec.config, program, spec.warmup_uops, window, &snap);
    OooCore::from_snapshot(&spec.config, program, spec.technique, &snap, &warmed)
        .map_err(SimError::from)
}

fn simulate(spec: &RunSpec, program: &pre_model::Program) -> Result<RunResult, SimError> {
    let mut core = build_core(spec, program)?;
    core.run(spec.max_uops, spec.max_cycles);
    let stats = core.stats().clone();
    let energy = EnergyModel::default().evaluate(&stats, &spec.config);
    let watchdog = core.watchdog_diag().map(Box::new);
    Ok(RunResult {
        workload: spec.workload,
        technique: spec.technique,
        stats,
        energy,
        deadlocked: core.deadlocked(),
        cache_hit: false,
        watchdog,
        sample: None,
    })
}

fn run_one_plain(spec: &RunSpec) -> Result<RunResult, SimError> {
    let program = crate::stores::program_for(spec.workload, &spec.params);
    if !spec.use_result_cache {
        return simulate(spec, &program);
    }
    let (key, desc) = crate::stores::result_key(spec, &program);
    let disk = crate::stores::env_cache_dir();
    if let Some(hit) = crate::stores::result_lookup(key, &desc, disk.as_deref()) {
        return Ok(hit);
    }
    let result = simulate(spec, &program)?;
    crate::stores::result_store(key, &desc, &result, disk.as_deref());
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders_apply_overrides() {
        let spec = RunSpec::new(Workload::LbmLike, Technique::Pre)
            .with_budget(1_000)
            .with_params(WorkloadParams::short(10));
        assert_eq!(spec.max_uops, 1_000);
        assert_eq!(spec.params.iterations, 10);
        assert!(spec.max_cycles >= 1_000_000);
    }

    #[test]
    fn compute_bound_run_produces_stats_and_energy() {
        let spec = RunSpec::new(Workload::ComputeBound, Technique::OutOfOrder).with_budget(5_000);
        let result = run_one(&spec).expect("valid run");
        assert!(!result.deadlocked);
        assert!(result.stats.committed_uops >= 5_000);
        assert!(result.ipc() > 0.5);
        assert!(result.energy_mj() > 0.0);
        assert_eq!(result.terminated(), TerminationKind::Completed);
        assert!(result.watchdog.is_none());
        assert!(result.watchdog_error().is_none());
    }
}
