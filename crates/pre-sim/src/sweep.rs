//! Declarative parameter-grid sweeps.
//!
//! A [`Sweep`] names a base run (workload, technique, budget, warm-up) plus
//! a list of [`GridDim`]s — parameter dimensions with value lists, parsed
//! from the `dim=v1,v2,...` grammar the `sweep` binary accepts. The
//! Cartesian product of the dimensions expands into one [`RunSpec`] per
//! point; points run over the `pre-par` worker pool, share warm-up
//! snapshots ([`crate::stores`]) and consult the result cache, so a repeated
//! sweep answers from cache and a cold sweep pays warm-up once instead of
//! once per point.
//!
//! Points are failure-isolated: [`Sweep::run_isolated`] completes the whole
//! grid even when individual points error or panic, reporting the failed
//! cells (with their [`SimError`]s and attempt counts) alongside the
//! successful ones. `max_retries` re-runs a failed point; `fail_fast` stops
//! launching new points after the first failure.
//!
//! The EMQ/SST sensitivity experiments (`emq_sensitivity`,
//! `sst_sensitivity`) are one-dimensional sweeps over this engine.

// Failure isolation is this module's contract: a grid point must never take
// down the sweep, so every fallible step here surfaces a SimError instead of
// unwinding.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::runner::{run_one, RunResult, RunSpec};
use crate::sample::SampleSpec;
use pre_model::config::SimConfig;
use pre_model::error::SimError;
use pre_runahead::Technique;
use pre_workloads::{Workload, WorkloadParams};
use std::fmt;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

/// One sweepable configuration parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepDim {
    /// `emq` — extended micro-op queue entries (`runahead.emq_entries`).
    Emq,
    /// `sst` — stalling slice table entries (`runahead.sst_entries`).
    Sst,
    /// `rob` — reorder-buffer entries (`core.rob_entries`).
    Rob,
    /// `iq` — issue-queue entries (`core.iq_entries`).
    Iq,
    /// `prdq` — precise register deallocation queue entries
    /// (`runahead.prdq_entries`).
    Prdq,
    /// `min-free-int` — runahead entry gate on free integer registers
    /// (`runahead.min_free_int_regs`).
    MinFreeInt,
    /// `min-free-fp` — runahead entry gate on free FP registers
    /// (`runahead.min_free_fp_regs`).
    MinFreeFp,
    /// `l3-kb` — L3 capacity in KiB (`l3.size_bytes`; geometry change, forks
    /// the warmed cache state).
    L3Kb,
    /// `min-ra-cycles` — minimum expected runahead interval
    /// (`runahead.min_expected_runahead_cycles`).
    MinRaCycles,
}

/// All sweepable dimensions (for usage messages).
pub const ALL_DIMS: [SweepDim; 9] = [
    SweepDim::Emq,
    SweepDim::Sst,
    SweepDim::Rob,
    SweepDim::Iq,
    SweepDim::Prdq,
    SweepDim::MinFreeInt,
    SweepDim::MinFreeFp,
    SweepDim::L3Kb,
    SweepDim::MinRaCycles,
];

impl SweepDim {
    /// The grammar name of the dimension (`emq`, `sst`, `rob`, …).
    pub fn name(&self) -> &'static str {
        match self {
            SweepDim::Emq => "emq",
            SweepDim::Sst => "sst",
            SweepDim::Rob => "rob",
            SweepDim::Iq => "iq",
            SweepDim::Prdq => "prdq",
            SweepDim::MinFreeInt => "min-free-int",
            SweepDim::MinFreeFp => "min-free-fp",
            SweepDim::L3Kb => "l3-kb",
            SweepDim::MinRaCycles => "min-ra-cycles",
        }
    }

    /// Applies `value` to `cfg`.
    pub fn apply(&self, cfg: &mut SimConfig, value: u64) {
        match self {
            SweepDim::Emq => cfg.runahead.emq_entries = value as usize,
            SweepDim::Sst => cfg.runahead.sst_entries = value as usize,
            SweepDim::Rob => cfg.core.rob_entries = value as usize,
            SweepDim::Iq => cfg.core.iq_entries = value as usize,
            SweepDim::Prdq => cfg.runahead.prdq_entries = value as usize,
            SweepDim::MinFreeInt => cfg.runahead.min_free_int_regs = value as usize,
            SweepDim::MinFreeFp => cfg.runahead.min_free_fp_regs = value as usize,
            SweepDim::L3Kb => cfg.l3.size_bytes = value as usize * 1024,
            SweepDim::MinRaCycles => cfg.runahead.min_expected_runahead_cycles = value,
        }
    }
}

impl fmt::Display for SweepDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a sweep dimension or grid specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGridError(String);

impl fmt::Display for ParseGridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseGridError {}

impl FromStr for SweepDim {
    type Err = ParseGridError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ALL_DIMS
            .iter()
            .copied()
            .find(|d| d.name() == s)
            .ok_or_else(|| {
                let names: Vec<_> = ALL_DIMS.iter().map(|d| d.name()).collect();
                ParseGridError(format!(
                    "unknown sweep dimension `{s}` (expected one of {})",
                    names.join(", ")
                ))
            })
    }
}

/// One sweep dimension with its value list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridDim {
    /// The parameter being swept.
    pub dim: SweepDim,
    /// The values it takes (one sweep point per combination across
    /// dimensions).
    pub values: Vec<u64>,
}

impl FromStr for GridDim {
    type Err = ParseGridError;

    /// Parses `dim=v1,v2,...` (e.g. `emq=192,384,768`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, list) = s
            .split_once('=')
            .ok_or_else(|| ParseGridError(format!("grid entry `{s}` is not `dim=v1,v2,...`")))?;
        let dim = SweepDim::from_str(name.trim())?;
        let values: Vec<u64> = list
            .split(',')
            .map(|v| v.trim().parse::<u64>())
            .collect::<Result<_, _>>()
            .map_err(|_| ParseGridError(format!("bad value list in `{s}`")))?;
        if values.is_empty() {
            return Err(ParseGridError(format!("empty value list in `{s}`")));
        }
        Ok(GridDim { dim, values })
    }
}

/// A compact `dim=value dim=value` label (`base` for an empty grid), shared
/// by points and failures.
fn settings_label(settings: &[(SweepDim, u64)]) -> String {
    if settings.is_empty() {
        return "base".to_string();
    }
    let mut out = String::new();
    for (i, (dim, value)) in settings.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{dim}={value}");
    }
    out
}

/// One point of an expanded sweep: the dimension settings, the spec they
/// produce, and (after running) the result.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// `(dimension, value)` pairs, in grid order.
    pub settings: Vec<(SweepDim, u64)>,
    /// The fully-resolved run specification.
    pub spec: RunSpec,
    /// The run's outcome.
    pub result: RunResult,
}

impl SweepPoint {
    /// A compact `dim=value dim=value` label for tables and progress output.
    pub fn label(&self) -> String {
        settings_label(&self.settings)
    }
}

/// One failed sweep point: its grid position and settings, the final
/// [`SimError`] (a caught panic surfaces as [`SimError::Panic`]), and how
/// many attempts were made. Points skipped by `fail_fast` carry
/// [`SimError::Skipped`] and zero attempts.
#[derive(Debug)]
pub struct SweepFailure {
    /// Index of the point in grid order.
    pub index: usize,
    /// `(dimension, value)` pairs, in grid order.
    pub settings: Vec<(SweepDim, u64)>,
    /// The error of the final attempt.
    pub error: SimError,
    /// Attempts made (`1 + retries`; 0 when skipped by fail-fast).
    pub attempts: u32,
}

impl SweepFailure {
    /// A compact `dim=value dim=value` label for tables and reports.
    pub fn label(&self) -> String {
        settings_label(&self.settings)
    }
}

/// The outcome of a failure-isolated sweep: the successful points (grid
/// order) plus every failure. A failed or panicking point never takes down
/// the grid.
#[derive(Debug)]
pub struct SweepRun {
    /// The successful points, in grid order.
    pub points: Vec<SweepPoint>,
    /// The failed (or fail-fast-skipped) points, in grid order.
    pub failures: Vec<SweepFailure>,
    /// Total points in the grid (`points.len() + failures.len()`).
    pub total: usize,
}

impl SweepRun {
    /// `true` when every point produced a result.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// All points, or the first real failure in grid order (preferring a
    /// concrete error over a fail-fast [`SimError::Skipped`] marker).
    ///
    /// # Errors
    ///
    /// Returns the first failed point's error when any point failed.
    pub fn into_result(mut self) -> Result<Vec<SweepPoint>, SimError> {
        if self.failures.is_empty() {
            return Ok(self.points);
        }
        let pos = self
            .failures
            .iter()
            .position(|f| !matches!(f.error, SimError::Skipped))
            .unwrap_or(0);
        Err(self.failures.swap_remove(pos).error)
    }
}

/// A declarative parameter sweep: one base run expanded over the Cartesian
/// product of its grid dimensions.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// The workload every point simulates.
    pub workload: Workload,
    /// The technique every point simulates.
    pub technique: Technique,
    /// The base configuration the grid perturbs.
    pub base_config: SimConfig,
    /// Workload build parameters.
    pub params: WorkloadParams,
    /// Committed-uop budget per point (post-warm-up).
    pub budget: u64,
    /// Warm-up micro-ops shared across all points (0 = cold).
    pub warmup_uops: u64,
    /// Whether points consult/populate the result cache.
    pub use_result_cache: bool,
    /// When set, every point is *estimated* by SimPoint-style interval
    /// sampling ([`crate::sample::run_sampled`]) instead of simulated in
    /// full; the JSON report records the sampling parameters and marks the
    /// points.
    pub sample: Option<SampleSpec>,
    /// Stop launching new points after the first failure. Already-running
    /// points finish; points not yet started are reported as
    /// [`SimError::Skipped`]. Which points were already running is
    /// scheduling-dependent (deterministic under `PRE_THREADS=1`).
    pub fail_fast: bool,
    /// Re-run a failed point up to this many extra times before recording
    /// the failure. Retries cover panics too (each attempt runs under
    /// `catch_unwind`); a deterministic failure simply fails every attempt.
    pub max_retries: u32,
    /// The grid dimensions.
    pub dims: Vec<GridDim>,
}

impl Sweep {
    /// A sweep of `workload` under `technique` from the paper's Table 1
    /// configuration, with no grid (one base point) until dimensions are
    /// added.
    pub fn new(workload: Workload, technique: Technique) -> Self {
        Sweep {
            workload,
            technique,
            base_config: SimConfig::haswell_like(),
            params: WorkloadParams::default(),
            budget: 300_000,
            warmup_uops: 0,
            use_result_cache: false,
            sample: None,
            fail_fast: false,
            max_retries: 0,
            dims: Vec::new(),
        }
    }

    /// Adds a grid dimension.
    pub fn with_dim(mut self, dim: GridDim) -> Self {
        self.dims.push(dim);
        self
    }

    /// Number of points the grid expands to.
    pub fn num_points(&self) -> usize {
        self.dims.iter().map(|d| d.values.len()).product()
    }

    /// Expands the Cartesian product into per-point specs (grid order:
    /// first dimension slowest, last fastest).
    pub fn specs(&self) -> Vec<(Vec<(SweepDim, u64)>, RunSpec)> {
        let mut points: Vec<Vec<(SweepDim, u64)>> = vec![Vec::new()];
        for grid_dim in &self.dims {
            points = points
                .into_iter()
                .flat_map(|prefix| {
                    grid_dim.values.iter().map(move |&v| {
                        let mut settings = prefix.clone();
                        settings.push((grid_dim.dim, v));
                        settings
                    })
                })
                .collect();
        }
        points
            .into_iter()
            .map(|settings| {
                let mut config = self.base_config.clone();
                for &(dim, value) in &settings {
                    dim.apply(&mut config, value);
                }
                let mut spec = RunSpec::new(self.workload, self.technique)
                    .with_budget(self.budget)
                    .with_config(config)
                    .with_params(self.params)
                    .with_warmup(self.warmup_uops)
                    .with_result_cache(self.use_result_cache);
                spec.sample = self.sample;
                (settings, spec)
            })
            .collect()
    }

    /// Runs every point over the worker pool, invoking `progress` as points
    /// complete. Points are returned in grid order regardless of completion
    /// order. All-or-nothing wrapper around [`Sweep::run_isolated`].
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] in grid order (a caught point panic
    /// included, as [`SimError::Panic`]).
    pub fn run(
        &self,
        progress: impl FnMut(&SweepPoint) + Send,
    ) -> Result<Vec<SweepPoint>, SimError> {
        self.run_isolated(progress).into_result()
    }

    /// Runs every point over the worker pool with failure isolation: a point
    /// that errors or panics (after `max_retries` extra attempts) is
    /// recorded in [`SweepRun::failures`] while the rest of the grid
    /// completes and stays bit-identical to a clean run. With `fail_fast`,
    /// points not yet launched when the first failure lands are skipped.
    pub fn run_isolated(&self, progress: impl FnMut(&SweepPoint) + Send) -> SweepRun {
        let specs = self.specs();
        let progress = Mutex::new(progress);
        let abort = AtomicBool::new(false);
        let attempts_allowed = self.max_retries.saturating_add(1);
        let indices: Vec<usize> = (0..specs.len()).collect();
        let outcomes = pre_par::par_map(&indices, |&i| {
            if self.fail_fast && abort.load(Ordering::Relaxed) {
                return Err((SimError::Skipped, 0));
            }
            let (settings, spec) = &specs[i];
            let mut last_error = SimError::Skipped;
            for _attempt in 0..attempts_allowed {
                // Per-attempt catch_unwind so retries cover panics, not just
                // clean errors.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    crate::fault::panic_if_cell_faulted(i);
                    run_one(spec)
                }));
                match outcome {
                    Ok(Ok(result)) => {
                        let point = SweepPoint {
                            settings: settings.clone(),
                            spec: spec.clone(),
                            result,
                        };
                        // The callback only renders progress output, so a
                        // poisoned lock is safe to recover.
                        let mut report = progress.lock().unwrap_or_else(PoisonError::into_inner);
                        (*report)(&point);
                        return Ok(point);
                    }
                    Ok(Err(error)) => last_error = error,
                    Err(payload) => {
                        last_error = SimError::Panic {
                            detail: pre_par::panic_message(payload.as_ref()),
                        }
                    }
                }
            }
            if self.fail_fast {
                abort.store(true, Ordering::Relaxed);
            }
            Err((last_error, attempts_allowed))
        });
        let mut points = Vec::new();
        let mut failures = Vec::new();
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(point) => points.push(point),
                Err((error, attempts)) => failures.push(SweepFailure {
                    index: i,
                    settings: specs[i].0.clone(),
                    error,
                    attempts,
                }),
            }
        }
        SweepRun {
            points,
            failures,
            total: specs.len(),
        }
    }
}

/// Fraction of points answered from the result cache.
pub fn cache_hit_rate(points: &[SweepPoint]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let hits = points.iter().filter(|p| p.result.cache_hit).count();
    hits as f64 / points.len() as f64
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders sweep results as JSON, including the failed points (with their
/// errors and attempt counts) so a partially-failed sweep is still
/// machine-readable. Top-level keys deliberately avoid the `cells` key used
/// by the bench aggregate format, so tooling that scans for it is
/// unaffected.
pub fn sweep_json(
    sweep: &Sweep,
    points: &[SweepPoint],
    failures: &[SweepFailure],
    elapsed_secs: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"workload\": \"{}\",", sweep.workload.name());
    let _ = writeln!(out, "  \"technique\": \"{}\",", sweep.technique.label());
    let _ = writeln!(out, "  \"budget\": {},", sweep.budget);
    let _ = writeln!(out, "  \"warmup\": {},", sweep.warmup_uops);
    match &sweep.sample {
        Some(s) => {
            let _ = writeln!(out, "  \"sample\": \"{}\",", json_escape(&s.label()));
        }
        None => out.push_str("  \"sample\": null,\n"),
    }
    let _ = writeln!(out, "  \"elapsed_secs\": {elapsed_secs:.6},");
    let _ = writeln!(out, "  \"num_points\": {},", points.len());
    let _ = writeln!(out, "  \"failed_points\": {},", failures.len());
    let hits = points.iter().filter(|p| p.result.cache_hit).count();
    let _ = writeln!(out, "  \"cache_hits\": {hits},");
    let _ = writeln!(out, "  \"cache_hit_rate\": {:.6},", cache_hit_rate(points));
    out.push_str("  \"failures\": [\n");
    for (i, f) in failures.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"index\": {}, \"label\": \"{}\", \"attempts\": {}, \"error\": \"{}\"}}",
            f.index,
            json_escape(&f.label()),
            f.attempts,
            json_escape(&f.error.to_string())
        );
        if i + 1 < failures.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str("    {");
        for (dim, value) in &p.settings {
            let _ = write!(out, "\"{dim}\": {value}, ");
        }
        let _ = write!(
            out,
            "\"ipc\": {:.6}, \"sim_cycles\": {}, \"committed_uops\": {}, \"energy_mj\": {:.6}, \"cache_hit\": {}, \"deadlocked\": {}, \"sampled\": {}",
            p.result.ipc(),
            p.result.stats.cycles,
            p.result.stats.committed_uops,
            p.result.energy_mj(),
            p.result.cache_hit,
            p.result.deadlocked,
            p.result.sample.is_some()
        );
        out.push('}');
        if i + 1 < points.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders sweep results as CSV (one row per point, one column per
/// dimension plus the headline metrics). Failed points have no metrics and
/// are deliberately absent — consumers needing them read the JSON report.
pub fn sweep_csv(sweep: &Sweep, points: &[SweepPoint]) -> String {
    let mut out = String::new();
    for grid_dim in &sweep.dims {
        let _ = write!(out, "{},", grid_dim.dim);
    }
    out.push_str("ipc,sim_cycles,committed_uops,energy_mj,cache_hit,deadlocked\n");
    for p in points {
        for (_, value) in &p.settings {
            let _ = write!(out, "{value},");
        }
        let _ = writeln!(
            out,
            "{:.6},{},{},{:.6},{},{}",
            p.result.ipc(),
            p.result.stats.cycles,
            p.result.stats.committed_uops,
            p.result.energy_mj(),
            p.result.cache_hit,
            p.result.deadlocked
        );
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn grid_parsing_and_errors() {
        let g: GridDim = "emq=192,384,768".parse().expect("parses");
        assert_eq!(g.dim, SweepDim::Emq);
        assert_eq!(g.values, vec![192, 384, 768]);
        assert!("emq".parse::<GridDim>().is_err());
        assert!("emq=".parse::<GridDim>().is_err());
        assert!("emq=a,b".parse::<GridDim>().is_err());
        assert!("nope=1,2".parse::<GridDim>().is_err());
        let spaced: GridDim = " sst = 4 , 8 ".parse().expect("tolerates spaces");
        assert_eq!(spaced.values, vec![4, 8]);
    }

    #[test]
    fn cartesian_expansion_applies_settings() {
        let sweep = Sweep::new(Workload::LbmLike, Technique::PreEmq)
            .with_dim("emq=192,768".parse().unwrap())
            .with_dim("rob=128,192,256".parse().unwrap());
        assert_eq!(sweep.num_points(), 6);
        let specs = sweep.specs();
        assert_eq!(specs.len(), 6);
        // First dimension slowest: the first three points share emq=192.
        for (settings, spec) in &specs[..3] {
            assert_eq!(settings[0], (SweepDim::Emq, 192));
            assert_eq!(spec.config.runahead.emq_entries, 192);
        }
        let (settings, spec) = &specs[5];
        assert_eq!(settings[1], (SweepDim::Rob, 256));
        assert_eq!(spec.config.core.rob_entries, 256);
        assert_eq!(spec.config.runahead.emq_entries, 768);
        // Un-swept parameters keep the base value.
        assert_eq!(
            spec.config.runahead.sst_entries,
            SimConfig::haswell_like().runahead.sst_entries
        );
    }

    #[test]
    fn every_dim_applies_to_its_field() {
        let mut cfg = SimConfig::haswell_like();
        for dim in ALL_DIMS {
            dim.apply(&mut cfg, 64);
        }
        assert_eq!(cfg.runahead.emq_entries, 64);
        assert_eq!(cfg.runahead.sst_entries, 64);
        assert_eq!(cfg.core.rob_entries, 64);
        assert_eq!(cfg.core.iq_entries, 64);
        assert_eq!(cfg.runahead.prdq_entries, 64);
        assert_eq!(cfg.runahead.min_free_int_regs, 64);
        assert_eq!(cfg.runahead.min_free_fp_regs, 64);
        assert_eq!(cfg.l3.size_bytes, 64 * 1024);
        assert_eq!(cfg.runahead.min_expected_runahead_cycles, 64);
    }

    #[test]
    fn empty_grid_is_one_base_point() {
        let sweep = Sweep::new(Workload::ComputeBound, Technique::OutOfOrder);
        assert_eq!(sweep.num_points(), 1);
        let specs = sweep.specs();
        assert_eq!(specs.len(), 1);
        assert!(specs[0].0.is_empty());
    }

    #[test]
    fn json_and_csv_shapes() {
        let mut sweep = Sweep::new(Workload::ComputeBound, Technique::OutOfOrder)
            .with_dim("rob=128,192".parse().unwrap());
        sweep.budget = 2_000;
        sweep.params = WorkloadParams::short(50);
        sweep.base_config = SimConfig::small_for_tests();
        let points = sweep.run(|_| {}).expect("runs");
        assert_eq!(points.len(), 2);
        let json = sweep_json(&sweep, &points, &[], 1.25);
        assert!(json.contains("\"num_points\": 2"));
        assert!(json.contains("\"failed_points\": 0"));
        assert!(json.contains("\"rob\": 128"));
        assert!(!json.contains("\"cells\""));
        let csv = sweep_csv(&sweep, &points);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "rob,ipc,sim_cycles,committed_uops,energy_mj,cache_hit,deadlocked"
        );
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(points[0].label(), "rob=128");
    }

    #[test]
    fn sweep_json_reports_failures() {
        let sweep = Sweep::new(Workload::ComputeBound, Technique::OutOfOrder)
            .with_dim("rob=128,192".parse().unwrap());
        let failures = vec![SweepFailure {
            index: 1,
            settings: vec![(SweepDim::Rob, 192)],
            error: SimError::Panic {
                detail: "boom \"quoted\"".to_string(),
            },
            attempts: 2,
        }];
        let json = sweep_json(&sweep, &[], &failures, 0.5);
        assert!(json.contains("\"failed_points\": 1"));
        assert!(json.contains("\"label\": \"rob=192\""));
        assert!(json.contains("\"attempts\": 2"));
        assert!(json.contains("boom \\\"quoted\\\""));
    }

    #[test]
    fn into_result_prefers_real_failures_over_skips() {
        let run = SweepRun {
            points: Vec::new(),
            failures: vec![
                SweepFailure {
                    index: 0,
                    settings: Vec::new(),
                    error: SimError::Skipped,
                    attempts: 0,
                },
                SweepFailure {
                    index: 1,
                    settings: Vec::new(),
                    error: SimError::Panic {
                        detail: "real".to_string(),
                    },
                    attempts: 1,
                },
            ],
            total: 2,
        };
        assert!(!run.is_complete());
        assert!(matches!(
            run.into_result(),
            Err(SimError::Panic { detail }) if detail == "real"
        ));
    }
}
