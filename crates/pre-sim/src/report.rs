//! Plain-text tables and CSV output for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of headers.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut header_line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(header_line, "{:<width$}  ", h, width = widths[i]);
        }
        let _ = writeln!(out, "{}", header_line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header_line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<width$}  ", cell, width = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV rendering to `path`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from writing the file.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_csv())
    }
}

/// Formats a ratio as a percentage improvement string (e.g. `+35.5 %`).
pub fn pct_improvement(ratio: f64) -> String {
    format!("{:+.1} %", (ratio - 1.0) * 100.0)
}

/// Formats a fraction as a percentage (e.g. `6.1 %`).
pub fn pct(fraction: f64) -> String {
    format!("{:+.1} %", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns_and_includes_title() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.add_row(vec!["short".into(), "1".into()]);
        t.add_row(vec!["a-much-longer-name".into(), "2".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("a-much-longer-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("a,b"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["1".into()]);
    }

    #[test]
    fn percentage_helpers() {
        assert_eq!(pct_improvement(1.355), "+35.5 %");
        assert_eq!(pct(0.061), "+6.1 %");
        assert_eq!(pct(-0.027), "-2.7 %");
    }
}
