//! Global snapshot stores and the content-addressed result cache.
//!
//! Three stores, all keyed by stable FNV-1a hashes
//! ([`pre_model::hash::StableHasher`]) so keys survive across processes:
//!
//! 1. **Snapshot store** — configuration-*independent* warm-up snapshots
//!    ([`SimSnapshot`]), keyed by (program content hash, warm-up budget).
//!    Captured once per workload and shared by every sweep point; persisted
//!    under the cache directory so repeated invocations skip warm-up too.
//! 2. **Warmed-state store** — configuration-*dependent* warmed caches and
//!    predictor ([`WarmedState`]), keyed additionally by the memory-hierarchy
//!    and frontend configuration. A ROB/IQ/EMQ/SST sweep shares one entry.
//! 3. **Result cache** — finished [`RunResult`]s keyed by the full run
//!    specification (config + technique + program + budget + warm-up),
//!    in-memory always, and persisted as text files under a directory
//!    (`PRE_CACHE_DIR`) when one is configured.
//!
//! Every entry stores its full human-readable key description alongside the
//! 64-bit hash and verifies it on lookup, so a hash collision degrades to a
//! cache miss, never to a wrong answer. Cached results are byte-identical to
//! the run that produced them (the stats serialization round-trips exactly),
//! which the golden tests assert.
//!
//! # Disk integrity
//!
//! Every on-disk entry is framed by a magic/version header carrying the body
//! length and an FNV-1a checksum, and is written atomically (unique temp
//! file in the same directory + `rename`), so concurrent sweeps sharing one
//! `PRE_CACHE_DIR` never observe a half-written entry. A file that fails the
//! header, checksum, length or parse check is **quarantined** — renamed to
//! `<name>.corrupt` with a warning — and treated as a cache miss, so a
//! corrupt or truncated entry (including pre-header `v1` files) degrades to
//! recomputation, never to a wrong answer or an abort. Quarantined snapshot
//! entries fall back to a cold re-capture, which is bit-identical by
//! construction.

// The degradation contract above is why unwrap/expect are banned here: every
// failure on this path must surface as a typed error or a quarantine+miss,
// never an unwind.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::runner::{RunResult, RunSpec};
use pre_core::WarmedState;
use pre_energy::EnergyBreakdown;
use pre_model::config::SimConfig;
use pre_model::error::SimError;
use pre_model::hash::{stable_hash_of_debug, StableHasher};
use pre_model::program::Program;
use pre_model::snapshot::SimSnapshot;
use pre_model::stats::SimStats;
use pre_runahead::Technique;
use pre_workloads::{Workload, WorkloadParams};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// A stored value plus the full key description it was stored under.
#[derive(Debug, Clone)]
struct Keyed<T> {
    desc: String,
    value: T,
}

type Store<T> = OnceLock<Mutex<HashMap<u64, Keyed<T>>>>;

static SNAPSHOTS: Store<Arc<SimSnapshot>> = OnceLock::new();
static WARMED: Store<Arc<WarmedState>> = OnceLock::new();
static RESULTS: Store<RunResult> = OnceLock::new();
static PROGRAMS: Store<Arc<Program>> = OnceLock::new();

fn store<T>(cell: &Store<T>) -> &Mutex<HashMap<u64, Keyed<T>>> {
    cell.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Locks a store mutex, recovering from poisoning. The supervised pool
/// catches cell panics, so a worker that died while holding a store lock
/// must not cascade its failure into every surviving cell; store values are
/// only ever inserted whole (no partial mutation mid-lock), so the map is
/// consistent even after a poisoned unlock.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn lookup<T: Clone>(cell: &Store<T>, key: u64, desc: &str) -> Option<T> {
    let map = lock_recover(store(cell));
    let entry = map.get(&key)?;
    // Collision safety: the description must match, not just the hash.
    (entry.desc == desc).then(|| entry.value.clone())
}

fn insert_or_get<T: Clone>(cell: &Store<T>, key: u64, desc: &str, value: T) -> T {
    use std::collections::hash_map::Entry;
    let mut map = lock_recover(store(cell));
    match map.entry(key) {
        Entry::Occupied(entry) => {
            if entry.get().desc == desc {
                // A concurrent builder got here first; both values are
                // deterministic, so serve the incumbent (sharing the Arc).
                entry.get().value.clone()
            } else {
                // A 64-bit collision between two live keys: keep the
                // incumbent, serve the caller its own value. Safe, merely
                // uncached.
                value
            }
        }
        Entry::Vacant(slot) => {
            slot.insert(Keyed {
                desc: desc.to_string(),
                value: value.clone(),
            });
            value
        }
    }
}

/// Empties every in-process store, including the sampling-plan memo
/// ([`crate::sample::clear_plans`]). Benches and golden tests call this to
/// force cold paths; the on-disk result cache is untouched.
pub fn clear_stores() {
    if let Some(m) = PROGRAMS.get() {
        lock_recover(m).clear();
    }
    if let Some(m) = SNAPSHOTS.get() {
        lock_recover(m).clear();
    }
    if let Some(m) = WARMED.get() {
        lock_recover(m).clear();
    }
    if let Some(m) = RESULTS.get() {
        lock_recover(m).clear();
    }
    crate::sample::clear_plans();
}

/// The built program for `(workload, params)`, shared process-wide.
///
/// Building a workload is pure, so every run of the same cell constructs
/// the same program — but multi-megabyte images (the large pointer-chase
/// table) cost milliseconds to build and milliseconds more to content-hash,
/// and a sampled run launches one detailed run per representative slice.
/// Serving one `Arc<Program>` per cell makes those slices share a single
/// build *and* a single memoized [`Program::content_hash`], which every
/// downstream store key (snapshots, warmed state, results) asks for.
pub fn program_for(workload: Workload, params: &WorkloadParams) -> Arc<Program> {
    let desc = format!("program v1 workload={workload} params={params:?}");
    let mut h = StableHasher::new();
    h.write_str(&desc);
    let key = h.finish();
    if let Some(hit) = lookup(&PROGRAMS, key, &desc) {
        return hit;
    }
    let program = Arc::new(workload.build(params));
    insert_or_get(&PROGRAMS, key, &desc, program)
}

// ---------------------------------------------------------------------------
// Disk-cache integrity: framing, atomic writes, quarantine
// ---------------------------------------------------------------------------

/// Magic + version of the framed on-disk cache format. Bumping the version
/// quarantines (and recomputes) every older entry.
const CACHE_MAGIC: &str = "pre-cache v2";

fn body_checksum(body: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(body);
    h.finish()
}

/// Frames `body` with the integrity header:
/// `pre-cache v2 <kind> <body-bytes> <fnv1a-checksum>`.
pub fn encode_cache_file(kind: &str, body: &str) -> String {
    format!(
        "{CACHE_MAGIC} {kind} {} {:016x}\n{body}",
        body.len(),
        body_checksum(body)
    )
}

/// Verifies the framing written by [`encode_cache_file`] and returns the
/// body.
///
/// # Errors
///
/// Returns a description of the first integrity violation (bad magic, wrong
/// kind, truncated body, checksum mismatch).
pub fn decode_cache_file<'a>(kind: &str, text: &'a str) -> Result<&'a str, String> {
    let (header, body) = text
        .split_once('\n')
        .ok_or_else(|| "missing cache header line".to_string())?;
    let rest = header
        .strip_prefix(CACHE_MAGIC)
        .ok_or_else(|| format!("not a `{CACHE_MAGIC}` file"))?;
    let mut parts = rest.split_whitespace();
    let file_kind = parts.next().ok_or("missing cache entry kind")?;
    if file_kind != kind {
        return Err(format!(
            "cache entry kind is `{file_kind}`, expected `{kind}`"
        ));
    }
    let len: usize = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or("bad body length in cache header")?;
    let checksum = parts
        .next()
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or("bad checksum in cache header")?;
    if parts.next().is_some() {
        return Err("trailing fields in cache header".to_string());
    }
    if body.len() != len {
        return Err(format!(
            "truncated cache entry: header says {len} bytes, file has {}",
            body.len()
        ));
    }
    let actual = body_checksum(body);
    if actual != checksum {
        return Err(format!(
            "cache checksum mismatch: header {checksum:016x}, body {actual:016x}"
        ));
    }
    Ok(body)
}

/// Writes `contents` to `path` atomically: a uniquely-named temp file in the
/// same directory, then `rename`. Readers (and concurrent writers racing on
/// the same key) observe either the old file or the whole new one, never a
/// torn write; whichever rename lands last wins, and both payloads are
/// deterministic for one key so either winner is correct.
fn write_atomic(path: &Path, contents: &str) -> Result<(), String> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().ok_or("cache path has no parent directory")?;
    std::fs::create_dir_all(dir).map_err(|e| format!("create_dir_all: {e}"))?;
    let name = path
        .file_name()
        .ok_or("cache path has no file name")?
        .to_string_lossy();
    let tmp = dir.join(format!(
        ".{name}.tmp-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, contents).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("rename {} -> {}: {e}", tmp.display(), path.display())
    })
}

/// Quarantines a corrupt cache entry: renames it to `<name>.corrupt` (so it
/// stops matching lookups and is preserved for inspection) and logs a
/// warning. Every caller then proceeds as a cache miss.
fn quarantine(path: &Path, detail: &str) {
    let mut target = path.as_os_str().to_owned();
    target.push(".corrupt");
    let target = PathBuf::from(target);
    let renamed = std::fs::rename(path, &target);
    match renamed {
        Ok(()) => eprintln!(
            "warning: quarantined corrupt cache entry {} -> {}: {detail}",
            path.display(),
            target.display()
        ),
        Err(e) => eprintln!(
            "warning: corrupt cache entry {} ({detail}); quarantine rename failed: {e}",
            path.display()
        ),
    }
}

/// Reads and integrity-checks one framed cache file. Missing file → `None`;
/// any other failure (I/O, framing, checksum) → quarantine + `None`, so
/// callers uniformly see a miss.
fn read_framed(path: &Path, kind: &str) -> Option<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            // Not UTF-8: bit rot, not a transient I/O failure.
            quarantine(path, "cache entry is not valid UTF-8");
            return None;
        }
        Err(e) => {
            eprintln!("warning: cannot read cache entry {}: {e}", path.display());
            return None;
        }
    };
    match decode_cache_file(kind, &text) {
        Ok(body) => Some(body.to_string()),
        Err(detail) => {
            quarantine(path, &detail);
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot + warmed-state stores
// ---------------------------------------------------------------------------

fn snapshot_key(program: &Program, warmup_uops: u64, window: u64) -> (u64, String) {
    // The warm-trace window is part of the key: a per-interval snapshot at
    // offset W with a one-interval window must never collide with the plain
    // warm-up-budget snapshot at the same W (full window), or forked runs
    // would warm from the wrong trace span.
    let desc = format!(
        "snapshot v2 program={:016x} warmup={} window={}",
        program.content_hash(),
        warmup_uops,
        window
    );
    let mut h = StableHasher::new();
    h.write_str(&desc);
    (h.finish(), desc)
}

fn snapshot_disk_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("snapshot_{key:016x}.txt"))
}

/// The warm-up snapshot for (`program`, `warmup_uops`) with a full warm
/// trace, captured on first request and shared (via `Arc`) afterwards.
/// Consults the on-disk cache (`PRE_CACHE_DIR`) before capturing; see
/// [`snapshot_for_with_dir`].
pub fn snapshot_for(program: &Program, warmup_uops: u64) -> Arc<SimSnapshot> {
    snapshot_for_with_dir(
        program,
        warmup_uops,
        warmup_uops,
        env_cache_dir().as_deref(),
    )
}

/// [`snapshot_for`] with a bounded warm-trace window: the snapshot's warm
/// trace covers only the final `window` uops of the warm-up. Sampled runs
/// fork mid-execution representatives this way (one interval of warm
/// history); `window == warmup_uops` is exactly [`snapshot_for`].
pub fn snapshot_for_windowed(program: &Program, warmup_uops: u64, window: u64) -> Arc<SimSnapshot> {
    snapshot_for_with_dir(program, warmup_uops, window, env_cache_dir().as_deref())
}

/// [`snapshot_for_windowed`] with an explicit disk directory (`None` =
/// memory only).
///
/// Lookup order: in-memory store, then `disk_dir`, then a fresh capture.
/// A disk entry that fails the integrity or parse checks is quarantined and
/// the snapshot is re-captured cold — bit-identical to the persisted one by
/// determinism, so a truncated snapshot file costs time, never correctness.
/// Capture happens outside the store lock, so concurrent first requests may
/// both capture; the result is deterministic, so whichever insertion wins is
/// correct for both.
pub fn snapshot_for_with_dir(
    program: &Program,
    warmup_uops: u64,
    window: u64,
    disk_dir: Option<&Path>,
) -> Arc<SimSnapshot> {
    if let Some(snap) = snapshot_lookup(program, warmup_uops, window, disk_dir) {
        return snap;
    }
    let snap = SimSnapshot::capture_windowed(program, warmup_uops, window);
    snapshot_publish(program, warmup_uops, window, snap, disk_dir)
}

/// Probes the snapshot store (memory, then `disk_dir`) without capturing on
/// a miss. Disk hits are promoted into the in-memory store. The sampling
/// batch-capture pass uses this to skip offsets that are already cached.
pub fn snapshot_lookup(
    program: &Program,
    warmup_uops: u64,
    window: u64,
    disk_dir: Option<&Path>,
) -> Option<Arc<SimSnapshot>> {
    let (key, desc) = snapshot_key(program, warmup_uops, window);
    if let Some(snap) = lookup(&SNAPSHOTS, key, &desc) {
        return Some(snap);
    }
    let dir = disk_dir?;
    let snap = snapshot_from_disk(dir, key, &desc)?;
    Some(insert_or_get(&SNAPSHOTS, key, &desc, Arc::new(snap)))
}

/// Inserts an externally-captured snapshot into the store (and, best-effort,
/// onto disk), returning the shared entry. The sampling batch-capture pass
/// publishes per-interval snapshots through this; the snapshot must be
/// bit-identical to what [`SimSnapshot::capture_windowed`] would produce for
/// the same key, which the batch pass guarantees by construction.
pub fn snapshot_publish(
    program: &Program,
    warmup_uops: u64,
    window: u64,
    snap: SimSnapshot,
    disk_dir: Option<&Path>,
) -> Arc<SimSnapshot> {
    let (key, desc) = snapshot_key(program, warmup_uops, window);
    let snap = Arc::new(snap);
    if let Some(dir) = disk_dir {
        if let Err(e) = snapshot_to_disk(dir, key, &desc, &snap) {
            eprintln!("warning: cannot persist snapshot: {e}");
        }
    }
    insert_or_get(&SNAPSHOTS, key, &desc, snap)
}

fn snapshot_from_disk(dir: &Path, key: u64, desc: &str) -> Option<SimSnapshot> {
    let path = snapshot_disk_path(dir, key);
    let body = read_framed(&path, "snapshot")?;
    let (stored_desc, snap_text) = match body.split_once('\n') {
        Some((first, rest)) => match first.strip_prefix("keydesc ") {
            Some(d) => (d, rest),
            None => {
                quarantine(&path, "missing keydesc line");
                return None;
            }
        },
        None => {
            quarantine(&path, "empty snapshot body");
            return None;
        }
    };
    if stored_desc != desc {
        // A hash collision with another live key: miss, not corruption.
        return None;
    }
    match SimSnapshot::from_text(snap_text) {
        Ok(snap) => Some(snap),
        Err(detail) => {
            quarantine(&path, &detail);
            None
        }
    }
}

fn snapshot_to_disk(dir: &Path, key: u64, desc: &str, snap: &SimSnapshot) -> Result<(), SimError> {
    let path = snapshot_disk_path(dir, key);
    let body = format!("keydesc {desc}\n{}", snap.to_text());
    write_atomic(&path, &encode_cache_file("snapshot", &body)).map_err(|detail| {
        SimError::Cache {
            path: path.display().to_string(),
            detail,
        }
    })?;
    if crate::fault::should_truncate_snapshot() {
        inject_truncation(&path);
    }
    Ok(())
}

fn warmed_key(cfg: &SimConfig, program: &Program, warmup_uops: u64, window: u64) -> (u64, String) {
    // Everything MemoryHierarchy::new and BranchPredictorUnit::new read:
    // the four cache geometries, DRAM timing, the core frequency (DRAM
    // latency conversion), the prefetch-fill-L1 policy bit carried by the
    // hierarchy, and the frontend (predictor) configuration. Core and
    // runahead sizing parameters are deliberately absent so a ROB/IQ/EMQ/SST
    // sweep shares one warmed state. The warm-trace window is present: a
    // windowed trace warms different state than a full one.
    let desc = format!(
        "warmed v2 program={:016x} warmup={} window={} mem={:016x} freq={:016x} fill_l1={} frontend={:016x}",
        program.content_hash(),
        warmup_uops,
        window,
        stable_hash_of_debug(&(&cfg.l1i, &cfg.l1d, &cfg.l2, &cfg.l3, &cfg.dram)),
        cfg.core.freq_ghz.to_bits(),
        cfg.runahead.prefetch_fill_l1,
        stable_hash_of_debug(&cfg.frontend),
    );
    let mut h = StableHasher::new();
    h.write_str(&desc);
    (h.finish(), desc)
}

/// The warmed caches + predictor for `cfg`'s memory hierarchy and frontend,
/// derived from `snap`'s trace on first request and shared afterwards.
/// `window` is the snapshot's warm-trace window (the warm-up budget itself
/// for full snapshots).
pub fn warmed_for(
    cfg: &SimConfig,
    program: &Program,
    warmup_uops: u64,
    window: u64,
    snap: &SimSnapshot,
) -> Arc<WarmedState> {
    let (key, desc) = warmed_key(cfg, program, warmup_uops, window);
    if let Some(warmed) = lookup(&WARMED, key, &desc) {
        return warmed;
    }
    let warmed = Arc::new(WarmedState::build(cfg, &snap.trace));
    insert_or_get(&WARMED, key, &desc, warmed)
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

/// The stable key (hash + full description) of one run specification.
/// Everything that can change the outcome enters the description: the
/// complete configuration, the technique, the *content* of the program the
/// workload builds (so editing a generator invalidates its entries), the
/// budget, the warm-up, and — only when set, so pre-existing descriptions
/// are unchanged — the warm-trace window and the sampling parameters.
/// Sampled (extrapolated) results therefore cache independently of full
/// runs of the same cell.
pub fn result_key(spec: &RunSpec, program: &Program) -> (u64, String) {
    let mut desc = format!(
        "result v1 workload={} program={:016x} technique={} budget={} cycles={} warmup={} config={:?}",
        spec.workload.name(),
        program.content_hash(),
        spec.technique.label(),
        spec.max_uops,
        spec.max_cycles,
        spec.warmup_uops,
        spec.config,
    );
    if let Some(window) = spec.warm_window {
        let _ = write!(desc, " window={window}");
    }
    if let Some(sample) = &spec.sample {
        let _ = write!(desc, " sample={}", sample.label());
    }
    let mut h = StableHasher::new();
    h.write_str(&desc);
    (h.finish(), desc)
}

/// The on-disk cache directory, if the `PRE_CACHE_DIR` environment variable
/// names one.
pub fn env_cache_dir() -> Option<PathBuf> {
    std::env::var_os("PRE_CACHE_DIR").map(PathBuf::from)
}

fn disk_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("result_{key:016x}.txt"))
}

/// Looks up a finished result, consulting the in-memory store first and then
/// `disk_dir` (if given). Disk hits are promoted into the in-memory store;
/// disk entries that fail the integrity checks are quarantined and reported
/// as a miss. The returned result has `cache_hit` set.
pub fn result_lookup(key: u64, desc: &str, disk_dir: Option<&Path>) -> Option<RunResult> {
    if let Some(mut hit) = lookup(&RESULTS, key, desc) {
        hit.cache_hit = true;
        return Some(hit);
    }
    let dir = disk_dir?;
    let path = disk_path(dir, key);
    let body = read_framed(&path, "result")?;
    let (stored_desc, result) = match result_from_text(&body) {
        Ok(parsed) => parsed,
        Err(detail) => {
            quarantine(&path, &detail);
            return None;
        }
    };
    if stored_desc != desc {
        return None;
    }
    let mut promoted = insert_or_get(&RESULTS, key, desc, result);
    promoted.cache_hit = true;
    Some(promoted)
}

/// Stores a finished result in the in-memory store and, when `disk_dir` is
/// given, as a framed text file under it. The disk write is best-effort (a
/// failure leaves only the in-memory entry and logs a warning); use
/// [`try_result_store_disk`] to surface the error instead.
pub fn result_store(key: u64, desc: &str, result: &RunResult, disk_dir: Option<&Path>) {
    let mut stored = result.clone();
    stored.cache_hit = false;
    insert_or_get(&RESULTS, key, desc, stored);
    if let Some(dir) = disk_dir {
        if let Err(e) = try_result_store_disk(dir, key, desc, result) {
            eprintln!("warning: cannot persist result: {e}");
        }
    }
}

/// Persists one result under `dir` (framed, atomic), surfacing I/O failures
/// as [`SimError::Cache`].
///
/// # Errors
///
/// Returns [`SimError::Cache`] when the temp-file write or rename fails.
pub fn try_result_store_disk(
    dir: &Path,
    key: u64,
    desc: &str,
    result: &RunResult,
) -> Result<(), SimError> {
    let path = disk_path(dir, key);
    let body = result_to_text(desc, result);
    write_atomic(&path, &encode_cache_file("result", &body)).map_err(|detail| SimError::Cache {
        path: path.display().to_string(),
        detail,
    })?;
    if crate::fault::should_corrupt_cache(key) {
        inject_corruption(&path);
    }
    Ok(())
}

/// `corrupt-cache` fault: overwrites a span in the middle of the file so the
/// checksum no longer matches (deliberately not atomic — it models a torn or
/// bit-rotted entry).
fn inject_corruption(path: &Path) {
    if let Ok(mut bytes) = std::fs::read(path) {
        let mid = bytes.len() / 2;
        for b in bytes.iter_mut().skip(mid).take(16) {
            *b = b'X';
        }
        let _ = std::fs::write(path, bytes);
    }
}

/// `truncate-snapshot` fault: cuts the file in half, modelling a writer that
/// died mid-write without the atomic-rename protection.
fn inject_truncation(path: &Path) {
    if let Ok(bytes) = std::fs::read(path) {
        let _ = std::fs::write(path, &bytes[..bytes.len() / 2]);
    }
}

fn energy_field_names() -> [&'static str; 6] {
    [
        "core_dynamic_nj",
        "runahead_structures_nj",
        "cache_dynamic_nj",
        "dram_dynamic_nj",
        "core_static_nj",
        "dram_static_nj",
    ]
}

fn energy_fields(e: &EnergyBreakdown) -> [f64; 6] {
    [
        e.core_dynamic_nj,
        e.runahead_structures_nj,
        e.cache_dynamic_nj,
        e.dram_dynamic_nj,
        e.core_static_nj,
        e.dram_static_nj,
    ]
}

/// Serializes a result (with its key description) to the line-oriented cache
/// body format. Exact roundtrip: energies are written as raw IEEE-754 bits.
/// On disk the body is additionally framed by [`encode_cache_file`].
pub fn result_to_text(desc: &str, result: &RunResult) -> String {
    let mut out = String::new();
    out.push_str("pre-result v1\n");
    let _ = writeln!(out, "keydesc {desc}");
    let _ = writeln!(out, "workload {}", result.workload.name());
    let _ = writeln!(out, "technique {}", result.technique.label());
    let _ = writeln!(out, "deadlocked {}", u8::from(result.deadlocked));
    if let Some(meta) = &result.sample {
        // Written only for extrapolated results, so measured entries stay
        // byte-identical to the pre-sampling format.
        let _ = writeln!(out, "sample.spec {}", meta.spec.label());
        let _ = writeln!(out, "sample.intervals_total {}", meta.intervals_total);
        let _ = writeln!(out, "sample.total_uops {}", meta.total_uops);
        let _ = writeln!(out, "sample.simulated_uops {}", meta.simulated_uops);
        let reps: Vec<String> = meta
            .weights
            .iter()
            .map(|w| format!("{}:{}:{}", w.interval, w.weight, w.uops))
            .collect();
        let _ = writeln!(
            out,
            "sample.reps {}",
            if reps.is_empty() {
                "-".to_string()
            } else {
                reps.join(",")
            }
        );
    }
    for (name, value) in energy_field_names()
        .iter()
        .zip(energy_fields(&result.energy))
    {
        let _ = writeln!(out, "energy.{name} {:016x}", value.to_bits());
    }
    out.push_str("stats\n");
    out.push_str(&result.stats.to_kv());
    out.push_str("end\n");
    out
}

/// Parses the format written by [`result_to_text`], returning the stored key
/// description and the result (with `cache_hit` false).
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn result_from_text(text: &str) -> Result<(String, RunResult), String> {
    let mut lines = text.lines();
    if lines.next() != Some("pre-result v1") {
        return Err("not a pre-result v1 file".to_string());
    }
    let mut desc = None;
    let mut workload = None;
    let mut technique = None;
    let mut deadlocked = false;
    let mut energy = [0f64; 6];
    let mut sample: Option<crate::sample::SampleMeta> = None;
    let mut stats_text = String::new();
    let mut in_stats = false;
    let mut saw_end = false;
    for line in lines {
        if in_stats {
            if line == "end" {
                saw_end = true;
                break;
            }
            stats_text.push_str(line);
            stats_text.push('\n');
            continue;
        }
        if line == "stats" {
            in_stats = true;
            continue;
        }
        let (tag, value) = line
            .split_once(' ')
            .ok_or_else(|| format!("malformed result line: {line}"))?;
        match tag {
            "keydesc" => desc = Some(value.to_string()),
            "workload" => {
                workload =
                    Some(Workload::from_str(value).map_err(|_| format!("bad workload: {value}"))?);
            }
            "technique" => {
                technique = Some(
                    Technique::from_str(&value.to_ascii_lowercase())
                        .map_err(|_| format!("bad technique: {value}"))?,
                );
            }
            "deadlocked" => deadlocked = value == "1",
            _ => {
                if let Some(field) = tag.strip_prefix("sample.") {
                    let meta = sample.get_or_insert_with(Default::default);
                    match field {
                        "spec" => {
                            meta.spec =
                                value.parse().map_err(|e| format!("bad sample spec: {e}"))?;
                        }
                        "intervals_total" => {
                            meta.intervals_total = value
                                .parse()
                                .map_err(|_| format!("bad sample.intervals_total: {value}"))?;
                        }
                        "total_uops" => {
                            meta.total_uops = value
                                .parse()
                                .map_err(|_| format!("bad sample.total_uops: {value}"))?;
                        }
                        "simulated_uops" => {
                            meta.simulated_uops = value
                                .parse()
                                .map_err(|_| format!("bad sample.simulated_uops: {value}"))?;
                        }
                        "reps" => {
                            meta.weights = parse_rep_weights(value)?;
                        }
                        other => return Err(format!("unknown sample field `{other}`")),
                    }
                } else if let Some(field) = tag.strip_prefix("energy.") {
                    let idx = energy_field_names()
                        .iter()
                        .position(|n| *n == field)
                        .ok_or_else(|| format!("unknown energy field `{field}`"))?;
                    let bits = u64::from_str_radix(value, 16)
                        .map_err(|_| format!("bad energy bits: {value}"))?;
                    energy[idx] = f64::from_bits(bits);
                } else {
                    return Err(format!("unknown result line tag `{tag}`"));
                }
            }
        }
    }
    if !saw_end {
        return Err("truncated result (no end marker)".to_string());
    }
    let stats = SimStats::from_kv(&stats_text)?;
    Ok((
        desc.ok_or("missing keydesc")?,
        RunResult {
            workload: workload.ok_or("missing workload")?,
            technique: technique.ok_or("missing technique")?,
            stats,
            energy: EnergyBreakdown {
                core_dynamic_nj: energy[0],
                runahead_structures_nj: energy[1],
                cache_dynamic_nj: energy[2],
                dram_dynamic_nj: energy[3],
                core_static_nj: energy[4],
                dram_static_nj: energy[5],
            },
            deadlocked,
            cache_hit: false,
            watchdog: None,
            sample,
        },
    ))
}

/// Parses the `sample.reps` value: comma-separated `interval:weight:uops`
/// triples, or `-` for an empty list.
fn parse_rep_weights(value: &str) -> Result<Vec<crate::sample::RepWeight>, String> {
    if value == "-" {
        return Ok(Vec::new());
    }
    value
        .split(',')
        .map(|entry| {
            let mut parts = entry.split(':');
            let mut next = || {
                parts
                    .next()
                    .and_then(|p| p.parse::<u64>().ok())
                    .ok_or_else(|| format!("bad sample.reps entry `{entry}`"))
            };
            let (interval, weight, uops) = (next()?, next()?, next()?);
            if parts.next().is_some() {
                return Err(format!("bad sample.reps entry `{entry}`"));
            }
            Ok(crate::sample::RepWeight {
                interval,
                weight,
                uops,
            })
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::runner::run_one;
    use pre_workloads::WorkloadParams;

    fn small_result() -> (RunSpec, RunResult) {
        let spec = RunSpec::new(Workload::ComputeBound, Technique::Pre)
            .with_budget(2_000)
            .with_config(SimConfig::small_for_tests())
            .with_params(WorkloadParams::short(50));
        let result = run_one(&spec).expect("valid run");
        (spec, result)
    }

    #[test]
    fn result_text_roundtrip_is_exact() {
        let (spec, result) = small_result();
        let program = spec.workload.build(&spec.params);
        let (_, desc) = result_key(&spec, &program);
        let text = result_to_text(&desc, &result);
        let (back_desc, back) = result_from_text(&text).expect("parses");
        assert_eq!(back_desc, desc);
        assert_eq!(back.workload, result.workload);
        assert_eq!(back.technique, result.technique);
        assert_eq!(back.stats, result.stats);
        assert_eq!(back.stats.to_kv(), result.stats.to_kv());
        assert_eq!(back.energy, result.energy);
        assert_eq!(back.deadlocked, result.deadlocked);
        // Re-serialization is byte-identical (cache hit == miss, bytewise).
        assert_eq!(result_to_text(&desc, &back), text);
    }

    #[test]
    fn framing_roundtrips_and_detects_damage() {
        let body = "hello cache\nline two\n";
        let framed = encode_cache_file("result", body);
        assert_eq!(decode_cache_file("result", &framed).unwrap(), body);
        // Wrong kind.
        assert!(decode_cache_file("snapshot", &framed).is_err());
        // Flipped byte in the body.
        let corrupt = framed.replace("hello", "hellO");
        assert!(decode_cache_file("result", &corrupt).is_err());
        // Truncation.
        let truncated = &framed[..framed.len() - 4];
        assert!(decode_cache_file("result", truncated).is_err());
        // Unframed v1-era file.
        assert!(decode_cache_file("result", body).is_err());
    }

    #[test]
    fn disk_cache_roundtrips_and_verifies_keydesc() {
        let (spec, result) = small_result();
        let program = spec.workload.build(&spec.params);
        let (key, desc) = result_key(&spec, &program);
        let dir = std::env::temp_dir().join(format!("pre-cache-test-{key:016x}"));
        let _ = std::fs::remove_dir_all(&dir);
        clear_stores();
        assert!(result_lookup(key, &desc, Some(&dir)).is_none());
        result_store(key, &desc, &result, Some(&dir));
        clear_stores(); // force the disk path
        let hit = result_lookup(key, &desc, Some(&dir)).expect("disk hit");
        assert!(hit.cache_hit);
        assert_eq!(hit.stats, result.stats);
        assert_eq!(hit.stats.to_kv(), result.stats.to_kv());
        // A different description under the same hash is a miss, not a wrong
        // answer.
        clear_stores();
        assert!(result_lookup(key, "some other spec", Some(&dir)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_disk_roundtrip_and_truncation_fallback() {
        let program = Workload::ComputeBound.build(&WorkloadParams::short(80));
        let (key, _) = snapshot_key(&program, 300, 300);
        let dir = std::env::temp_dir().join(format!("pre-snap-test-{key:016x}"));
        let _ = std::fs::remove_dir_all(&dir);
        clear_stores();
        let cold = snapshot_for_with_dir(&program, 300, 300, Some(&dir));
        let path = snapshot_disk_path(&dir, key);
        assert!(path.exists(), "snapshot persisted");
        // A fresh process (cleared stores) answers from disk, identically.
        clear_stores();
        let from_disk = snapshot_for_with_dir(&program, 300, 300, Some(&dir));
        assert!(!Arc::ptr_eq(&cold, &from_disk));
        assert_eq!(from_disk.to_text(), cold.to_text());
        // Truncate the file: next lookup quarantines it and re-captures.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        clear_stores();
        let refetched = snapshot_for_with_dir(&program, 300, 300, Some(&dir));
        assert_eq!(
            refetched.to_text(),
            cold.to_text(),
            "cold fallback is bit-identical"
        );
        let corrupt = PathBuf::from(format!("{}.corrupt", path.display()));
        assert!(corrupt.exists(), "truncated snapshot was quarantined");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_key_is_sensitive_to_spec_changes() {
        let spec = RunSpec::new(Workload::ComputeBound, Technique::Pre).with_budget(2_000);
        let program = spec.workload.build(&spec.params);
        let (k1, _) = result_key(&spec, &program);
        let (k2, _) = result_key(&spec.clone().with_budget(3_000), &program);
        let (k3, _) = result_key(&spec.clone().with_warmup(1_000), &program);
        let mut cfg_spec = spec.clone();
        cfg_spec.config.runahead.sst_entries = 16;
        let (k4, _) = result_key(&cfg_spec, &program);
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        assert_ne!(k1, k4);
    }

    #[test]
    fn interval_snapshot_keys_never_collide_with_warmup_snapshots() {
        let program = Workload::ComputeBound.build(&WorkloadParams::short(200));
        // A per-interval snapshot at offset 10k with a 2k warm window vs the
        // plain warm-up snapshot for a 10k warm-up budget (full window):
        // same program, same offset, different trace coverage.
        let (k_interval, d_interval) = snapshot_key(&program, 10_000, 2_000);
        let (k_warmup, d_warmup) = snapshot_key(&program, 10_000, 10_000);
        assert_ne!(k_interval, k_warmup, "keys must differ");
        assert_ne!(d_interval, d_warmup);
        assert!(d_interval.contains("window=2000"), "{d_interval}");

        // And the stores never cross-serve them.
        clear_stores();
        let windowed = snapshot_for_with_dir(&program, 600, 200, None);
        assert!(
            snapshot_lookup(&program, 600, 600, None).is_none(),
            "full-window lookup must not hit the windowed entry"
        );
        let full = snapshot_for_with_dir(&program, 600, 600, None);
        assert!(!Arc::ptr_eq(&windowed, &full));
        // Same architectural state, different trace coverage.
        assert_eq!(windowed.regs, full.regs);
        assert_eq!(windowed.pc, full.pc);
        assert!(windowed.trace.len() <= full.trace.len());
    }

    #[test]
    fn sampled_result_text_roundtrips_with_metadata() {
        use crate::sample::{RepWeight, SampleMeta, SampleSpec};
        let (spec, mut result) = small_result();
        result.sample = Some(SampleMeta {
            spec: SampleSpec::new(3, 500),
            intervals_total: 4,
            total_uops: 2_000,
            simulated_uops: 1_500,
            weights: vec![
                RepWeight {
                    interval: 0,
                    weight: 2,
                    uops: 500,
                },
                RepWeight {
                    interval: 2,
                    weight: 1,
                    uops: 500,
                },
                RepWeight {
                    interval: 3,
                    weight: 1,
                    uops: 500,
                },
            ],
        });
        let program = spec.workload.build(&spec.params);
        let sampled_spec = spec.clone().sampled(SampleSpec::new(3, 500));
        let (_, desc) = result_key(&sampled_spec, &program);
        assert!(desc.ends_with("sample=n=3,interval=500"), "{desc}");
        let (_, plain_desc) = result_key(&spec, &program);
        assert_ne!(desc, plain_desc, "sampled results cache independently");
        let text = result_to_text(&desc, &result);
        let (back_desc, back) = result_from_text(&text).expect("parses");
        assert_eq!(back_desc, desc);
        assert_eq!(back.sample, result.sample);
        assert_eq!(result_to_text(&desc, &back), text);
        // A measured result still serializes without any sample.* lines.
        let plain_text = result_to_text(
            &plain_desc,
            &RunResult {
                sample: None,
                ..result.clone()
            },
        );
        assert!(!plain_text.contains("sample."));
        let (_, plain_back) = result_from_text(&plain_text).expect("parses");
        assert!(plain_back.sample.is_none());
    }

    #[test]
    fn snapshot_store_shares_one_capture() {
        clear_stores();
        let program = Workload::ComputeBound.build(&WorkloadParams::short(200));
        let a = snapshot_for_with_dir(&program, 500, 500, None);
        let b = snapshot_for_with_dir(&program, 500, 500, None);
        assert!(Arc::ptr_eq(&a, &b), "second request reuses the capture");
        let c = snapshot_for_with_dir(&program, 600, 600, None);
        assert!(!Arc::ptr_eq(&a, &c), "different warm-up is a different key");
    }

    #[test]
    fn warmed_store_shares_across_core_sizing() {
        clear_stores();
        let program = Workload::ComputeBound.build(&WorkloadParams::short(200));
        let snap = snapshot_for_with_dir(&program, 500, 500, None);
        let base = SimConfig::haswell_like();
        let mut resized = base.clone();
        resized.core.rob_entries = 128;
        resized.runahead.sst_entries = 16;
        let a = warmed_for(&base, &program, 500, 500, &snap);
        let b = warmed_for(&resized, &program, 500, 500, &snap);
        assert!(
            Arc::ptr_eq(&a, &b),
            "ROB/SST sizing shares the warmed state"
        );
        let mut l3_grown = base.clone();
        l3_grown.l3.size_bytes *= 2;
        let c = warmed_for(&l3_grown, &program, 500, 500, &snap);
        assert!(
            !Arc::ptr_eq(&a, &c),
            "cache geometry forks the warmed state"
        );
    }
}
