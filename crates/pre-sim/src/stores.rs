//! Global snapshot stores and the content-addressed result cache.
//!
//! Three stores, all keyed by stable FNV-1a hashes
//! ([`pre_model::hash::StableHasher`]) so keys survive across processes:
//!
//! 1. **Snapshot store** — configuration-*independent* warm-up snapshots
//!    ([`SimSnapshot`]), keyed by (program content hash, warm-up budget).
//!    Captured once per workload and shared by every sweep point.
//! 2. **Warmed-state store** — configuration-*dependent* warmed caches and
//!    predictor ([`WarmedState`]), keyed additionally by the memory-hierarchy
//!    and frontend configuration. A ROB/IQ/EMQ/SST sweep shares one entry.
//! 3. **Result cache** — finished [`RunResult`]s keyed by the full run
//!    specification (config + technique + program + budget + warm-up),
//!    in-memory always, and persisted as text files under a directory
//!    (`PRE_CACHE_DIR`) when one is configured.
//!
//! Every entry stores its full human-readable key description alongside the
//! 64-bit hash and verifies it on lookup, so a hash collision degrades to a
//! cache miss, never to a wrong answer. Cached results are byte-identical to
//! the run that produced them (the stats serialization round-trips exactly),
//! which the golden tests assert.

use crate::runner::{RunResult, RunSpec};
use pre_core::WarmedState;
use pre_energy::EnergyBreakdown;
use pre_model::config::SimConfig;
use pre_model::hash::{stable_hash_of_debug, StableHasher};
use pre_model::program::Program;
use pre_model::snapshot::SimSnapshot;
use pre_model::stats::SimStats;
use pre_runahead::Technique;
use pre_workloads::Workload;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::{Arc, Mutex, OnceLock};

/// A stored value plus the full key description it was stored under.
#[derive(Debug, Clone)]
struct Keyed<T> {
    desc: String,
    value: T,
}

type Store<T> = OnceLock<Mutex<HashMap<u64, Keyed<T>>>>;

static SNAPSHOTS: Store<Arc<SimSnapshot>> = OnceLock::new();
static WARMED: Store<Arc<WarmedState>> = OnceLock::new();
static RESULTS: Store<RunResult> = OnceLock::new();

fn store<T>(cell: &Store<T>) -> &Mutex<HashMap<u64, Keyed<T>>> {
    cell.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lookup<T: Clone>(cell: &Store<T>, key: u64, desc: &str) -> Option<T> {
    let map = store(cell).lock().expect("store poisoned");
    let entry = map.get(&key)?;
    // Collision safety: the description must match, not just the hash.
    (entry.desc == desc).then(|| entry.value.clone())
}

fn insert_or_get<T: Clone>(cell: &Store<T>, key: u64, desc: &str, value: T) -> T {
    use std::collections::hash_map::Entry;
    let mut map = store(cell).lock().expect("store poisoned");
    match map.entry(key) {
        Entry::Occupied(entry) => {
            if entry.get().desc == desc {
                // A concurrent builder got here first; both values are
                // deterministic, so serve the incumbent (sharing the Arc).
                entry.get().value.clone()
            } else {
                // A 64-bit collision between two live keys: keep the
                // incumbent, serve the caller its own value. Safe, merely
                // uncached.
                value
            }
        }
        Entry::Vacant(slot) => {
            slot.insert(Keyed {
                desc: desc.to_string(),
                value: value.clone(),
            });
            value
        }
    }
}

/// Empties every in-process store. Benches and golden tests call this to
/// force cold paths; the on-disk result cache is untouched.
pub fn clear_stores() {
    if let Some(m) = SNAPSHOTS.get() {
        m.lock().expect("store poisoned").clear();
    }
    if let Some(m) = WARMED.get() {
        m.lock().expect("store poisoned").clear();
    }
    if let Some(m) = RESULTS.get() {
        m.lock().expect("store poisoned").clear();
    }
}

// ---------------------------------------------------------------------------
// Snapshot + warmed-state stores
// ---------------------------------------------------------------------------

fn snapshot_key(program: &Program, warmup_uops: u64) -> (u64, String) {
    let desc = format!(
        "snapshot v1 program={:016x} warmup={}",
        program.content_hash(),
        warmup_uops
    );
    let mut h = StableHasher::new();
    h.write_str(&desc);
    (h.finish(), desc)
}

/// The warm-up snapshot for (`program`, `warmup_uops`), captured on first
/// request and shared (via `Arc`) afterwards. Capture happens outside the
/// store lock, so concurrent first requests may both capture; the result is
/// deterministic, so whichever insertion wins is correct for both.
pub fn snapshot_for(program: &Program, warmup_uops: u64) -> Arc<SimSnapshot> {
    let (key, desc) = snapshot_key(program, warmup_uops);
    if let Some(snap) = lookup(&SNAPSHOTS, key, &desc) {
        return snap;
    }
    let snap = Arc::new(SimSnapshot::capture(program, warmup_uops));
    insert_or_get(&SNAPSHOTS, key, &desc, snap)
}

fn warmed_key(cfg: &SimConfig, program: &Program, warmup_uops: u64) -> (u64, String) {
    // Everything MemoryHierarchy::new and BranchPredictorUnit::new read:
    // the four cache geometries, DRAM timing, the core frequency (DRAM
    // latency conversion), the prefetch-fill-L1 policy bit carried by the
    // hierarchy, and the frontend (predictor) configuration. Core and
    // runahead sizing parameters are deliberately absent so a ROB/IQ/EMQ/SST
    // sweep shares one warmed state.
    let desc = format!(
        "warmed v1 program={:016x} warmup={} mem={:016x} freq={:016x} fill_l1={} frontend={:016x}",
        program.content_hash(),
        warmup_uops,
        stable_hash_of_debug(&(&cfg.l1i, &cfg.l1d, &cfg.l2, &cfg.l3, &cfg.dram)),
        cfg.core.freq_ghz.to_bits(),
        cfg.runahead.prefetch_fill_l1,
        stable_hash_of_debug(&cfg.frontend),
    );
    let mut h = StableHasher::new();
    h.write_str(&desc);
    (h.finish(), desc)
}

/// The warmed caches + predictor for `cfg`'s memory hierarchy and frontend,
/// derived from `snap`'s trace on first request and shared afterwards.
pub fn warmed_for(
    cfg: &SimConfig,
    program: &Program,
    warmup_uops: u64,
    snap: &SimSnapshot,
) -> Arc<WarmedState> {
    let (key, desc) = warmed_key(cfg, program, warmup_uops);
    if let Some(warmed) = lookup(&WARMED, key, &desc) {
        return warmed;
    }
    let warmed = Arc::new(WarmedState::build(cfg, &snap.trace));
    insert_or_get(&WARMED, key, &desc, warmed)
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

/// The stable key (hash + full description) of one run specification.
/// Everything that can change the outcome enters the description: the
/// complete configuration, the technique, the *content* of the program the
/// workload builds (so editing a generator invalidates its entries), the
/// budget and the warm-up.
pub fn result_key(spec: &RunSpec, program: &Program) -> (u64, String) {
    let desc = format!(
        "result v1 workload={} program={:016x} technique={} budget={} cycles={} warmup={} config={:?}",
        spec.workload.name(),
        program.content_hash(),
        spec.technique.label(),
        spec.max_uops,
        spec.max_cycles,
        spec.warmup_uops,
        spec.config,
    );
    let mut h = StableHasher::new();
    h.write_str(&desc);
    (h.finish(), desc)
}

/// The on-disk cache directory, if the `PRE_CACHE_DIR` environment variable
/// names one.
pub fn env_cache_dir() -> Option<PathBuf> {
    std::env::var_os("PRE_CACHE_DIR").map(PathBuf::from)
}

fn disk_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("result_{key:016x}.txt"))
}

/// Looks up a finished result, consulting the in-memory store first and then
/// `disk_dir` (if given). Disk hits are promoted into the in-memory store.
/// The returned result has `cache_hit` set.
pub fn result_lookup(key: u64, desc: &str, disk_dir: Option<&Path>) -> Option<RunResult> {
    if let Some(mut hit) = lookup(&RESULTS, key, desc) {
        hit.cache_hit = true;
        return Some(hit);
    }
    let dir = disk_dir?;
    let text = std::fs::read_to_string(disk_path(dir, key)).ok()?;
    let (stored_desc, result) = result_from_text(&text).ok()?;
    if stored_desc != desc {
        return None;
    }
    let mut promoted = insert_or_get(&RESULTS, key, desc, result);
    promoted.cache_hit = true;
    Some(promoted)
}

/// Stores a finished result in the in-memory store and, when `disk_dir` is
/// given, as a text file under it (best-effort: I/O failures leave only the
/// in-memory entry).
pub fn result_store(key: u64, desc: &str, result: &RunResult, disk_dir: Option<&Path>) {
    let mut stored = result.clone();
    stored.cache_hit = false;
    insert_or_get(&RESULTS, key, desc, stored);
    if let Some(dir) = disk_dir {
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(disk_path(dir, key), result_to_text(desc, result));
    }
}

fn energy_field_names() -> [&'static str; 6] {
    [
        "core_dynamic_nj",
        "runahead_structures_nj",
        "cache_dynamic_nj",
        "dram_dynamic_nj",
        "core_static_nj",
        "dram_static_nj",
    ]
}

fn energy_fields(e: &EnergyBreakdown) -> [f64; 6] {
    [
        e.core_dynamic_nj,
        e.runahead_structures_nj,
        e.cache_dynamic_nj,
        e.dram_dynamic_nj,
        e.core_static_nj,
        e.dram_static_nj,
    ]
}

/// Serializes a result (with its key description) to the line-oriented cache
/// file format. Exact roundtrip: energies are written as raw IEEE-754 bits.
pub fn result_to_text(desc: &str, result: &RunResult) -> String {
    let mut out = String::new();
    out.push_str("pre-result v1\n");
    let _ = writeln!(out, "keydesc {desc}");
    let _ = writeln!(out, "workload {}", result.workload.name());
    let _ = writeln!(out, "technique {}", result.technique.label());
    let _ = writeln!(out, "deadlocked {}", u8::from(result.deadlocked));
    for (name, value) in energy_field_names()
        .iter()
        .zip(energy_fields(&result.energy))
    {
        let _ = writeln!(out, "energy.{name} {:016x}", value.to_bits());
    }
    out.push_str("stats\n");
    out.push_str(&result.stats.to_kv());
    out.push_str("end\n");
    out
}

/// Parses the format written by [`result_to_text`], returning the stored key
/// description and the result (with `cache_hit` false).
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn result_from_text(text: &str) -> Result<(String, RunResult), String> {
    let mut lines = text.lines();
    if lines.next() != Some("pre-result v1") {
        return Err("not a pre-result v1 file".to_string());
    }
    let mut desc = None;
    let mut workload = None;
    let mut technique = None;
    let mut deadlocked = false;
    let mut energy = [0f64; 6];
    let mut stats_text = String::new();
    let mut in_stats = false;
    let mut saw_end = false;
    for line in lines {
        if in_stats {
            if line == "end" {
                saw_end = true;
                break;
            }
            stats_text.push_str(line);
            stats_text.push('\n');
            continue;
        }
        if line == "stats" {
            in_stats = true;
            continue;
        }
        let (tag, value) = line
            .split_once(' ')
            .ok_or_else(|| format!("malformed result line: {line}"))?;
        match tag {
            "keydesc" => desc = Some(value.to_string()),
            "workload" => {
                workload =
                    Some(Workload::from_str(value).map_err(|_| format!("bad workload: {value}"))?);
            }
            "technique" => {
                technique = Some(
                    Technique::from_str(&value.to_ascii_lowercase())
                        .map_err(|_| format!("bad technique: {value}"))?,
                );
            }
            "deadlocked" => deadlocked = value == "1",
            _ => {
                if let Some(field) = tag.strip_prefix("energy.") {
                    let idx = energy_field_names()
                        .iter()
                        .position(|n| *n == field)
                        .ok_or_else(|| format!("unknown energy field `{field}`"))?;
                    let bits = u64::from_str_radix(value, 16)
                        .map_err(|_| format!("bad energy bits: {value}"))?;
                    energy[idx] = f64::from_bits(bits);
                } else {
                    return Err(format!("unknown result line tag `{tag}`"));
                }
            }
        }
    }
    if !saw_end {
        return Err("truncated result (no end marker)".to_string());
    }
    let stats = SimStats::from_kv(&stats_text)?;
    Ok((
        desc.ok_or("missing keydesc")?,
        RunResult {
            workload: workload.ok_or("missing workload")?,
            technique: technique.ok_or("missing technique")?,
            stats,
            energy: EnergyBreakdown {
                core_dynamic_nj: energy[0],
                runahead_structures_nj: energy[1],
                cache_dynamic_nj: energy[2],
                dram_dynamic_nj: energy[3],
                core_static_nj: energy[4],
                dram_static_nj: energy[5],
            },
            deadlocked,
            cache_hit: false,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_one;
    use pre_workloads::WorkloadParams;

    fn small_result() -> (RunSpec, RunResult) {
        let spec = RunSpec::new(Workload::ComputeBound, Technique::Pre)
            .with_budget(2_000)
            .with_config(SimConfig::small_for_tests())
            .with_params(WorkloadParams::short(50));
        let result = run_one(&spec).expect("valid run");
        (spec, result)
    }

    #[test]
    fn result_text_roundtrip_is_exact() {
        let (spec, result) = small_result();
        let program = spec.workload.build(&spec.params);
        let (_, desc) = result_key(&spec, &program);
        let text = result_to_text(&desc, &result);
        let (back_desc, back) = result_from_text(&text).expect("parses");
        assert_eq!(back_desc, desc);
        assert_eq!(back.workload, result.workload);
        assert_eq!(back.technique, result.technique);
        assert_eq!(back.stats, result.stats);
        assert_eq!(back.stats.to_kv(), result.stats.to_kv());
        assert_eq!(back.energy, result.energy);
        assert_eq!(back.deadlocked, result.deadlocked);
        // Re-serialization is byte-identical (cache hit == miss, bytewise).
        assert_eq!(result_to_text(&desc, &back), text);
    }

    #[test]
    fn disk_cache_roundtrips_and_verifies_keydesc() {
        let (spec, result) = small_result();
        let program = spec.workload.build(&spec.params);
        let (key, desc) = result_key(&spec, &program);
        let dir = std::env::temp_dir().join(format!("pre-cache-test-{key:016x}"));
        let _ = std::fs::remove_dir_all(&dir);
        clear_stores();
        assert!(result_lookup(key, &desc, Some(&dir)).is_none());
        result_store(key, &desc, &result, Some(&dir));
        clear_stores(); // force the disk path
        let hit = result_lookup(key, &desc, Some(&dir)).expect("disk hit");
        assert!(hit.cache_hit);
        assert_eq!(hit.stats, result.stats);
        assert_eq!(hit.stats.to_kv(), result.stats.to_kv());
        // A different description under the same hash is a miss, not a wrong
        // answer.
        clear_stores();
        assert!(result_lookup(key, "some other spec", Some(&dir)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_key_is_sensitive_to_spec_changes() {
        let spec = RunSpec::new(Workload::ComputeBound, Technique::Pre).with_budget(2_000);
        let program = spec.workload.build(&spec.params);
        let (k1, _) = result_key(&spec, &program);
        let (k2, _) = result_key(&spec.clone().with_budget(3_000), &program);
        let (k3, _) = result_key(&spec.clone().with_warmup(1_000), &program);
        let mut cfg_spec = spec.clone();
        cfg_spec.config.runahead.sst_entries = 16;
        let (k4, _) = result_key(&cfg_spec, &program);
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        assert_ne!(k1, k4);
    }

    #[test]
    fn snapshot_store_shares_one_capture() {
        clear_stores();
        let program = Workload::ComputeBound.build(&WorkloadParams::short(200));
        let a = snapshot_for(&program, 500);
        let b = snapshot_for(&program, 500);
        assert!(Arc::ptr_eq(&a, &b), "second request reuses the capture");
        let c = snapshot_for(&program, 600);
        assert!(!Arc::ptr_eq(&a, &c), "different warm-up is a different key");
    }

    #[test]
    fn warmed_store_shares_across_core_sizing() {
        clear_stores();
        let program = Workload::ComputeBound.build(&WorkloadParams::short(200));
        let snap = snapshot_for(&program, 500);
        let base = SimConfig::haswell_like();
        let mut resized = base.clone();
        resized.core.rob_entries = 128;
        resized.runahead.sst_entries = 16;
        let a = warmed_for(&base, &program, 500, &snap);
        let b = warmed_for(&resized, &program, 500, &snap);
        assert!(
            Arc::ptr_eq(&a, &b),
            "ROB/SST sizing shares the warmed state"
        );
        let mut l3_grown = base.clone();
        l3_grown.l3.size_bytes *= 2;
        let c = warmed_for(&l3_grown, &program, 500, &snap);
        assert!(
            !Arc::ptr_eq(&a, &c),
            "cache geometry forks the warmed state"
        );
    }
}
