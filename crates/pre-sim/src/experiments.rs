//! Experiment definitions: one function per figure/table/statistic of the
//! paper, shared by the `pre-sim` binaries and the Criterion benches.

use crate::matrix::EvaluationMatrix;
use crate::report::{pct, pct_improvement, Table};
use crate::runner::{run_one, RunResult, RunSpec};
use pre_core::pipeline::BuildError;
use pre_model::config::{SimConfig, SimConfigBuilder};
use pre_runahead::Technique;
use pre_workloads::{Workload, WorkloadParams};

/// Default committed-micro-op budget per (workload, technique) run used by
/// the experiment binaries. The paper simulates 1-billion-instruction
/// SimPoints; this reproduction uses a budget that keeps the full evaluation
/// matrix tractable on one machine while still covering thousands of
/// runahead intervals per run. Override with the first command-line argument
/// of each binary.
pub const DEFAULT_EVAL_UOPS: u64 = 300_000;

/// Reduced budget used by the Criterion benches (they re-run experiments
/// several times).
pub const BENCH_EVAL_UOPS: u64 = 60_000;

/// Parses an optional per-run micro-op budget from the command line
/// (`<binary> [max_uops]`), falling back to `default`.
pub fn budget_from_args(default: u64) -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
}

/// Runs the full Figure 2 / Figure 3 evaluation matrix: every
/// memory-intensive workload under every technique.
///
/// # Errors
///
/// Propagates [`BuildError`] from the simulator.
pub fn run_evaluation_matrix(
    max_uops: u64,
    progress: impl FnMut(&RunResult) + Send,
) -> Result<EvaluationMatrix, BuildError> {
    EvaluationMatrix::run(
        &Workload::MEMORY_INTENSIVE,
        &Technique::ALL,
        &SimConfig::haswell_like(),
        &WorkloadParams::default(),
        max_uops,
        progress,
    )
}

/// Builds the Figure 2 table (performance normalized to the out-of-order
/// baseline) from an evaluation matrix.
pub fn fig2_table(matrix: &EvaluationMatrix) -> Table {
    let mut table = Table::new(
        "Figure 2 — performance normalized to OoO (IPC ratio)",
        &["workload", "RA", "RA-buffer", "PRE", "PRE+EMQ"],
    );
    for workload in matrix.workloads() {
        let cell = |t: Technique| {
            matrix
                .speedup(workload, t)
                .map(|s| format!("{s:.3}"))
                .unwrap_or_else(|| "-".into())
        };
        table.add_row(vec![
            workload.name().to_string(),
            cell(Technique::Runahead),
            cell(Technique::RunaheadBuffer),
            cell(Technique::Pre),
            cell(Technique::PreEmq),
        ]);
    }
    let gmean = |t: Technique| format!("{:.3}", matrix.gmean_speedup(t));
    table.add_row(vec![
        "gmean".into(),
        gmean(Technique::Runahead),
        gmean(Technique::RunaheadBuffer),
        gmean(Technique::Pre),
        gmean(Technique::PreEmq),
    ]);
    table
}

/// Summary lines comparing the measured average improvements against the
/// numbers the paper reports for Figure 2.
pub fn fig2_summary(matrix: &EvaluationMatrix) -> String {
    let mut out = String::new();
    let paper = [
        (Technique::Runahead, 14.5),
        (Technique::RunaheadBuffer, 14.4),
        (Technique::Pre, 35.5),
        (Technique::PreEmq, 28.6),
    ];
    for (technique, paper_pct) in paper {
        let measured = matrix.gmean_speedup(technique);
        out.push_str(&format!(
            "{:<10} paper: +{:.1} %   measured: {}\n",
            technique.label(),
            paper_pct,
            pct_improvement(measured)
        ));
    }
    out
}

/// Builds the Figure 3 table (energy savings relative to the baseline).
pub fn fig3_table(matrix: &EvaluationMatrix) -> Table {
    let mut table = Table::new(
        "Figure 3 — energy savings relative to OoO (core + DRAM)",
        &["workload", "RA", "RA-buffer", "PRE", "PRE+EMQ"],
    );
    for workload in matrix.workloads() {
        let cell = |t: Technique| {
            matrix
                .energy_savings(workload, t)
                .map(pct)
                .unwrap_or_else(|| "-".into())
        };
        table.add_row(vec![
            workload.name().to_string(),
            cell(Technique::Runahead),
            cell(Technique::RunaheadBuffer),
            cell(Technique::Pre),
            cell(Technique::PreEmq),
        ]);
    }
    let mean = |t: Technique| pct(matrix.mean_energy_savings(t));
    table.add_row(vec![
        "mean".into(),
        mean(Technique::Runahead),
        mean(Technique::RunaheadBuffer),
        mean(Technique::Pre),
        mean(Technique::PreEmq),
    ]);
    table
}

/// Summary lines comparing measured energy savings against the paper's
/// Figure 3 numbers.
pub fn fig3_summary(matrix: &EvaluationMatrix) -> String {
    let mut out = String::new();
    let paper = [
        (Technique::Runahead, -2.7),
        (Technique::RunaheadBuffer, 0.0),
        (Technique::Pre, 6.1),
        (Technique::PreEmq, 7.2),
    ];
    for (technique, paper_pct) in paper {
        out.push_str(&format!(
            "{:<10} paper: {:+.1} %   measured: {}\n",
            technique.label(),
            paper_pct,
            pct(matrix.mean_energy_savings(technique))
        ));
    }
    out
}

/// Renders Table 1 (the baseline configuration) from the live `SimConfig`
/// defaults, so the printed table always matches what the simulator actually
/// uses.
pub fn table1() -> Table {
    let cfg = SimConfig::haswell_like();
    let mut t = Table::new(
        "Table 1 — baseline out-of-order core",
        &["parameter", "value"],
    );
    let rows: Vec<(&str, String)> = vec![
        ("frequency", format!("{:.2} GHz", cfg.core.freq_ghz)),
        ("ROB", cfg.core.rob_entries.to_string()),
        (
            "issue/load/store queue",
            format!(
                "{}/{}/{}",
                cfg.core.iq_entries, cfg.core.lq_entries, cfg.core.sq_entries
            ),
        ),
        ("width", cfg.core.dispatch_width.to_string()),
        (
            "front-end depth",
            format!("{} stages", cfg.core.frontend_depth),
        ),
        (
            "register file",
            format!(
                "{} int, {} fp",
                cfg.core.int_phys_regs, cfg.core.fp_phys_regs
            ),
        ),
        (
            "SST",
            format!("{} entry, fully assoc, LRU", cfg.runahead.sst_entries),
        ),
        ("PRDQ size", cfg.runahead.prdq_entries.to_string()),
        ("EMQ size", cfg.runahead.emq_entries.to_string()),
        (
            "L1 I-cache",
            format!(
                "{} KB, assoc {}, {} cyc",
                cfg.l1i.size_bytes / 1024,
                cfg.l1i.assoc,
                cfg.l1i.latency
            ),
        ),
        (
            "L1 D-cache",
            format!(
                "{} KB, assoc {}, {} cyc",
                cfg.l1d.size_bytes / 1024,
                cfg.l1d.assoc,
                cfg.l1d.latency
            ),
        ),
        (
            "private L2",
            format!(
                "{} KB, assoc {}, {} cyc",
                cfg.l2.size_bytes / 1024,
                cfg.l2.assoc,
                cfg.l2.latency
            ),
        ),
        (
            "shared L3",
            format!(
                "{} KB, assoc {}, {} cyc",
                cfg.l3.size_bytes / 1024,
                cfg.l3.assoc,
                cfg.l3.latency
            ),
        ),
        (
            "memory",
            format!(
                "DDR3-1600, {:.0} MHz, ranks {}, banks {}, page {} KB, tRP-tCL-tRCD {}-{}-{}",
                cfg.dram.bus_mhz,
                cfg.dram.ranks,
                cfg.dram.banks,
                cfg.dram.page_bytes / 1024,
                cfg.dram.t_rp,
                cfg.dram.t_cl,
                cfg.dram.t_rcd
            ),
        ),
    ];
    for (k, v) in rows {
        t.add_row(vec![k.to_string(), v]);
    }
    t
}

/// Stat A (§2.4): the per-invocation flush/refill penalty of flush-style
/// runahead: the analytic 8 + 192/4 = 56 cycles, plus the measured average
/// from a traditional-runahead run.
pub fn stat_flush_overhead(max_uops: u64) -> Result<Table, BuildError> {
    let cfg = SimConfig::haswell_like();
    let analytic =
        cfg.core.frontend_depth as u64 + (cfg.core.rob_entries / cfg.core.dispatch_width) as u64;
    let mut table = Table::new(
        "Stat A — flush/refill penalty per runahead invocation",
        &[
            "workload",
            "invocations",
            "avg penalty (cycles)",
            "analytic (cycles)",
        ],
    );
    for workload in [
        Workload::LbmLike,
        Workload::LibquantumLike,
        Workload::MilcLike,
    ] {
        let result = run_one(&RunSpec::new(workload, Technique::Runahead).with_budget(max_uops))?;
        let exits = result.stats.runahead_exits.max(1);
        table.add_row(vec![
            workload.name().into(),
            result.stats.runahead_exits.to_string(),
            format!(
                "{:.1}",
                result.stats.flush_refill_cycles as f64 / exits as f64
            ),
            analytic.to_string(),
        ]);
    }
    Ok(table)
}

/// Stat B (§2.4): the distribution of runahead-interval lengths and the
/// fraction below 20 cycles (the paper reports 27 % on average).
pub fn stat_intervals(max_uops: u64) -> Result<Table, BuildError> {
    let mut table = Table::new(
        "Stat B — runahead interval lengths (PRE, unrestricted entry)",
        &["workload", "intervals", "mean (cycles)", "< 20 cycles"],
    );
    for workload in Workload::MEMORY_INTENSIVE {
        let result = run_one(&RunSpec::new(workload, Technique::Pre).with_budget(max_uops))?;
        let hist = &result.stats.runahead_interval_hist;
        table.add_row(vec![
            workload.name().into(),
            hist.count().to_string(),
            format!("{:.1}", hist.mean()),
            pct(hist.fraction_below(20)),
        ]);
    }
    Ok(table)
}

/// Stat C (§3.4): free back-end resources sampled at runahead entry
/// (the paper reports ≈37 % of IQ entries, 51 % of integer and 59 % of
/// floating-point registers free).
pub fn stat_free_resources(max_uops: u64) -> Result<Table, BuildError> {
    let mut table = Table::new(
        "Stat C — free resources at runahead entry (PRE)",
        &["workload", "IQ free", "int regs free", "fp regs free"],
    );
    for workload in Workload::MEMORY_INTENSIVE {
        let result = run_one(&RunSpec::new(workload, Technique::Pre).with_budget(max_uops))?;
        table.add_row(vec![
            workload.name().into(),
            pct(result.stats.iq_free_at_entry.mean()),
            pct(result.stats.int_regs_free_at_entry.mean()),
            pct(result.stats.fp_regs_free_at_entry.mean()),
        ]);
    }
    Ok(table)
}

/// Stat D (§5.1): how much more often PRE (and PRE+EMQ) invoke runahead
/// compared with traditional runahead (paper: 1.62× and 1.95×).
pub fn stat_invocations(matrix: &EvaluationMatrix) -> Table {
    let mut table = Table::new(
        "Stat D — runahead invocations relative to traditional runahead",
        &["technique", "paper", "measured"],
    );
    table.add_row(vec![
        "PRE".into(),
        "1.62x".into(),
        format!(
            "{:.2}x",
            matrix.invocation_ratio_vs_runahead(Technique::Pre)
        ),
    ]);
    table.add_row(vec![
        "PRE+EMQ".into(),
        "1.95x".into(),
        format!(
            "{:.2}x",
            matrix.invocation_ratio_vs_runahead(Technique::PreEmq)
        ),
    ]);
    table
}

/// Stat F / ablation (§3.6): SST-capacity sensitivity. Returns
/// `(entries, speedup over OoO, SST hit rate)` rows for one representative
/// multi-slice workload.
pub fn sst_sensitivity(max_uops: u64, sizes: &[usize]) -> Result<Table, BuildError> {
    let workload = Workload::LbmLike;
    let baseline = run_one(&RunSpec::new(workload, Technique::OutOfOrder).with_budget(max_uops))?;
    let base_ipc = baseline.ipc();
    let mut table = Table::new(
        "Stat F — SST capacity sensitivity (lbm-like, PRE)",
        &["SST entries", "speedup vs OoO", "SST hit rate", "evictions"],
    );
    for &entries in sizes {
        let config = SimConfigBuilder::haswell_like()
            .sst_entries(entries)
            .build()
            .expect("valid configuration");
        let result = run_one(
            &RunSpec::new(workload, Technique::Pre)
                .with_budget(max_uops)
                .with_config(config),
        )?;
        table.add_row(vec![
            entries.to_string(),
            format!("{:.3}", result.ipc() / base_ipc),
            format!("{:.3}", result.stats.sst_hit_rate()),
            result.stats.sst_evictions.to_string(),
        ]);
    }
    Ok(table)
}

/// EMQ-capacity ablation: how the EMQ size bounds PRE+EMQ's benefit.
pub fn emq_sensitivity(max_uops: u64, sizes: &[usize]) -> Result<Table, BuildError> {
    let workload = Workload::LbmLike;
    let baseline = run_one(&RunSpec::new(workload, Technique::OutOfOrder).with_budget(max_uops))?;
    let base_ipc = baseline.ipc();
    let mut table = Table::new(
        "Ablation — EMQ capacity sensitivity (lbm-like, PRE+EMQ)",
        &["EMQ entries", "speedup vs OoO", "EMQ-full stall cycles"],
    );
    for &entries in sizes {
        let config = SimConfigBuilder::haswell_like()
            .emq_entries(entries)
            .build()
            .expect("valid configuration");
        let result = run_one(
            &RunSpec::new(workload, Technique::PreEmq)
                .with_budget(max_uops)
                .with_config(config),
        )?;
        table.add_row(vec![
            entries.to_string(),
            format!("{:.3}", result.ipc() / base_ipc),
            result.stats.emq_full_stall_cycles.to_string(),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_the_paper_parameters() {
        let t = table1();
        let text = t.render();
        assert!(text.contains("ROB"));
        assert!(text.contains("192"));
        assert!(text.contains("DDR3-1600"));
        assert!(text.contains("SST"));
    }

    #[test]
    fn fig2_table_from_synthetic_matrix_has_gmean_row() {
        let matrix = EvaluationMatrix::new();
        let t = fig2_table(&matrix);
        // Empty matrix still renders the gmean row.
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn budget_default_is_used_without_args() {
        assert_eq!(budget_from_args(1234).max(1), budget_from_args(1234));
    }
}
