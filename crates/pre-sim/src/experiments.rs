//! Experiment definitions: one function per figure/table/statistic of the
//! paper, shared by the `pre-sim` binaries and the Criterion benches.

use crate::matrix::{EvaluationMatrix, MatrixRun};
use crate::report::{pct, pct_improvement, Table};
use crate::runner::{run_one, RunResult, RunSpec};
use crate::sample::SampleSpec;
use crate::sweep::{GridDim, Sweep, SweepDim};
use pre_model::config::SimConfig;
use pre_model::error::SimError;
use pre_runahead::Technique;
use pre_trace::TraceSpec;
use pre_workloads::{Workload, WorkloadParams};
use std::fmt;
use std::str::FromStr;

/// Default committed-micro-op budget per (workload, technique) run used by
/// the experiment binaries. The paper simulates 1-billion-instruction
/// SimPoints; this reproduction uses a budget that keeps the full evaluation
/// matrix tractable on one machine while still covering thousands of
/// runahead intervals per run. Override with the first command-line argument
/// of each binary.
pub const DEFAULT_EVAL_UOPS: u64 = 300_000;

/// Reduced budget used by the Criterion benches (they re-run experiments
/// several times).
pub const BENCH_EVAL_UOPS: u64 = 60_000;

/// Which workload set an experiment binary runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Suite {
    /// The synthetic memory-intensive SPEC-2006-like suite (the default,
    /// matching the paper's figures).
    #[default]
    Synthetic,
    /// The assembled RISC-V kernel suite (`pre-asm`): real programs.
    Asm,
    /// Both suites in one matrix.
    Mixed,
}

impl Suite {
    /// The workloads this suite runs, in figure order.
    pub fn workloads(&self) -> Vec<Workload> {
        match self {
            Suite::Synthetic => Workload::MEMORY_INTENSIVE.to_vec(),
            Suite::Asm => Workload::ASM_SUITE.to_vec(),
            Suite::Mixed => {
                let mut all = Workload::MEMORY_INTENSIVE.to_vec();
                all.extend(Workload::ASM_SUITE);
                all
            }
        }
    }

    /// A reduced, representative workload subset for smoke binaries
    /// (`quick_check`) and quick statistics: the synthetic suite keeps the
    /// five behaviourally distinct workloads; the asm suite is small enough
    /// to run whole.
    pub fn quick_workloads(&self) -> Vec<Workload> {
        match self {
            Suite::Synthetic => vec![
                Workload::LibquantumLike,
                Workload::LbmLike,
                Workload::MilcLike,
                Workload::McfLike,
                Workload::ComputeBound,
            ],
            Suite::Asm => Workload::ASM_SUITE.to_vec(),
            Suite::Mixed => {
                let mut all = Suite::Synthetic.quick_workloads();
                all.extend(Workload::ASM_SUITE);
                all
            }
        }
    }

    /// Every (workload, technique) cell of this suite's full matrix in
    /// canonical order: workload-major, techniques in [`Technique::ALL`]
    /// order. All binaries iterating the matrix share this iterator so
    /// their cell orderings agree.
    pub fn cells(&self) -> impl Iterator<Item = (Workload, Technique)> {
        Self::cells_of(self.workloads())
    }

    /// The cells of the reduced [`Suite::quick_workloads`] matrix, in the
    /// same canonical order.
    pub fn quick_cells(&self) -> impl Iterator<Item = (Workload, Technique)> {
        Self::cells_of(self.quick_workloads())
    }

    fn cells_of(workloads: Vec<Workload>) -> impl Iterator<Item = (Workload, Technique)> {
        workloads
            .into_iter()
            .flat_map(|w| Technique::ALL.iter().map(move |&t| (w, t)))
    }

    /// Short name used on the command line.
    pub fn name(&self) -> &'static str {
        match self {
            Suite::Synthetic => "synthetic",
            Suite::Asm => "asm",
            Suite::Mixed => "mixed",
        }
    }
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown suite name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSuiteError(String);

impl fmt::Display for ParseSuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown suite `{}` (expected synthetic|asm|mixed)",
            self.0
        )
    }
}

impl std::error::Error for ParseSuiteError {}

impl FromStr for Suite {
    type Err = ParseSuiteError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "synthetic" | "spec" => Ok(Suite::Synthetic),
            "asm" | "riscv" => Ok(Suite::Asm),
            "mixed" | "all" => Ok(Suite::Mixed),
            _ => Err(ParseSuiteError(s.to_string())),
        }
    }
}

/// Common command-line arguments of the experiment binaries:
/// `<binary> [--suite synthetic|asm|mixed] [--reference-scheduler]
/// [--warmup <uops>] [--trace <spec>] [max_uops]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliArgs {
    /// Which workload suite to run.
    pub suite: Suite,
    /// Committed-micro-op budget per run.
    pub budget: u64,
    /// Escape hatch: run on the reference (scan-based, no fast-forward)
    /// scheduler instead of the event-driven one. Statistics are
    /// bit-identical; only wall-clock time differs.
    pub reference_scheduler: bool,
    /// Micro-ops of functional warm-up before detailed simulation
    /// (`--warmup <uops>`; 0 = cold start). Warm-up snapshots are shared
    /// across the cells of one invocation, so the warm-up executes once per
    /// workload.
    pub warmup: u64,
    /// Trace outputs requested with `--trace <spec>` (see
    /// [`TraceSpec`] for the spec grammar). `None` when tracing is off.
    pub trace: Option<TraceSpec>,
    /// Sampled-mode parameters requested with `--sample [n=K,interval=N]`
    /// (see [`SampleSpec`] for the grammar). When set, every cell is
    /// estimated by SimPoint-style interval sampling instead of a full
    /// detailed run, and reported numbers are marked `~`.
    pub sample: Option<SampleSpec>,
}

impl CliArgs {
    /// The simulator configuration these arguments select: the paper's
    /// Table 1 baseline, with the reference scheduler applied when
    /// requested.
    pub fn config(&self) -> SimConfig {
        let mut cfg = SimConfig::haswell_like();
        cfg.core.reference_scheduler = self.reference_scheduler;
        cfg
    }
}

/// Extracts a `--suite <name>` / `--suite=<name>` flag from `args`,
/// returning the suite (default [`Suite::Synthetic`]) and the remaining
/// positional arguments in order. Shared by every experiment binary so the
/// flag parses identically everywhere.
///
/// # Errors
///
/// Returns a message suitable for printing when the flag is malformed.
pub fn split_suite_flag<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<(Suite, Vec<String>), String> {
    let mut suite = Suite::default();
    let mut positional = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if arg == "--suite" {
            let value = args.next().ok_or("--suite requires a value")?;
            suite = value.parse().map_err(|e: ParseSuiteError| e.to_string())?;
        } else if let Some(value) = arg.strip_prefix("--suite=") {
            suite = value.parse().map_err(|e: ParseSuiteError| e.to_string())?;
        } else {
            positional.push(arg);
        }
    }
    Ok((suite, positional))
}

/// Parses `[--suite <name>] [--reference-scheduler] [--warmup <uops>]
/// [--trace <spec>] [--sample [n=K,interval=N]] [max_uops]` from an argument
/// iterator. `--sample` with no value uses the default sampling parameters
/// ([`SampleSpec::default`]).
///
/// # Errors
///
/// Returns a message suitable for printing when a flag is malformed.
pub fn parse_cli<I: IntoIterator<Item = String>>(
    args: I,
    default_budget: u64,
) -> Result<CliArgs, String> {
    let (suite, positional) = split_suite_flag(args)?;
    let mut cli = CliArgs {
        suite,
        budget: default_budget,
        reference_scheduler: false,
        warmup: 0,
        trace: None,
        sample: None,
    };
    let mut positional = positional.into_iter().peekable();
    while let Some(arg) = positional.next() {
        if arg == "--reference-scheduler" {
            cli.reference_scheduler = true;
            continue;
        }
        if arg == "--warmup" {
            let value = positional.next().ok_or("--warmup requires a value")?;
            cli.warmup = value
                .parse()
                .map_err(|_| format!("bad --warmup value `{value}`"))?;
            continue;
        }
        if let Some(value) = arg.strip_prefix("--warmup=") {
            cli.warmup = value
                .parse()
                .map_err(|_| format!("bad --warmup value `{value}`"))?;
            continue;
        }
        if arg == "--trace" {
            let value = positional.next().ok_or("--trace requires a value")?;
            cli.trace = Some(value.parse().map_err(|e| format!("{e}"))?);
            continue;
        }
        if let Some(value) = arg.strip_prefix("--trace=") {
            cli.trace = Some(value.parse().map_err(|e| format!("{e}"))?);
            continue;
        }
        if arg == "--sample" {
            // The value is optional: consume the next argument only when it
            // looks like a sample spec (contains `=`), so `--sample 60000`
            // still reads the budget.
            let spec = match positional.peek() {
                Some(next) if next.contains('=') => {
                    let value = positional.next().unwrap_or_default();
                    value.parse().map_err(|e| format!("bad --sample: {e}"))?
                }
                _ => SampleSpec::default(),
            };
            cli.sample = Some(spec);
            continue;
        }
        if let Some(value) = arg.strip_prefix("--sample=") {
            cli.sample = Some(value.parse().map_err(|e| format!("bad --sample: {e}"))?);
            continue;
        }
        match arg.parse() {
            Ok(budget) => cli.budget = budget,
            Err(_) => return Err(format!("unrecognized argument `{arg}`")),
        }
    }
    Ok(cli)
}

/// Parses the process command line
/// (`[--suite <name>] [--reference-scheduler] [--warmup <uops>]
/// [--trace <spec>] [--sample [n=K,interval=N]] [max_uops]`), exiting with a
/// usage message on malformed input.
pub fn cli_from_args(default_budget: u64) -> CliArgs {
    match parse_cli(std::env::args().skip(1), default_budget) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: <binary> [--suite synthetic|asm|mixed] [--reference-scheduler] \
                 [--warmup <uops>] [--trace <spec>] [--sample [n=K,interval=N]] [max_uops]"
            );
            std::process::exit(2);
        }
    }
}

/// Parses an optional per-run micro-op budget from the command line
/// (`<binary> [max_uops]`), falling back to `default`. `--suite` flags are
/// tolerated and ignored (use [`cli_from_args`] to honour them).
pub fn budget_from_args(default: u64) -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--suite" {
            let _ = args.next(); // skip the flag's value
            continue;
        }
        if arg.starts_with("--") {
            continue;
        }
        if let Ok(budget) = arg.parse() {
            return budget;
        }
    }
    default
}

/// Runs the full Figure 2 / Figure 3 evaluation matrix: every
/// memory-intensive workload under every technique.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_evaluation_matrix(
    max_uops: u64,
    progress: impl FnMut(&RunResult) + Send,
) -> Result<EvaluationMatrix, SimError> {
    run_suite_matrix(Suite::Synthetic, max_uops, progress)
}

/// Runs the evaluation matrix over the given [`Suite`]: every workload in
/// the suite under every technique.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_suite_matrix(
    suite: Suite,
    max_uops: u64,
    progress: impl FnMut(&RunResult) + Send,
) -> Result<EvaluationMatrix, SimError> {
    run_suite_matrix_with(suite, &SimConfig::haswell_like(), max_uops, progress)
}

/// Runs the evaluation matrix over the given [`Suite`] with an explicit
/// configuration (e.g. the `--reference-scheduler` escape hatch).
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_suite_matrix_with(
    suite: Suite,
    config: &SimConfig,
    max_uops: u64,
    progress: impl FnMut(&RunResult) + Send,
) -> Result<EvaluationMatrix, SimError> {
    EvaluationMatrix::run(
        &suite.workloads(),
        &Technique::ALL,
        config,
        &WorkloadParams::default(),
        max_uops,
        progress,
    )
}

/// Runs the evaluation matrix described by parsed [`CliArgs`], honouring
/// `--suite`, `--reference-scheduler`, `--warmup` and `--trace` (the trace
/// spec, when present, is applied to every cell; each cell writes its own
/// files named after [`crate::runner::cell_name`]). Cells consult the result
/// cache, so a repeated invocation (with `PRE_CACHE_DIR` set, or within one
/// process) answers unchanged cells without simulating; traced cells always
/// simulate.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator, including trace-file I/O
/// failures.
pub fn run_suite_matrix_cli(
    cli: &CliArgs,
    progress: impl FnMut(&RunResult) + Send,
) -> Result<EvaluationMatrix, SimError> {
    EvaluationMatrix::run_specs(&suite_matrix_specs(cli), progress)
}

/// The failure-isolated sibling of [`run_suite_matrix_cli`]: a cell that
/// errors or panics is reported in [`MatrixRun::failures`] while every other
/// cell still contributes its result, so one broken cell degrades the report
/// instead of aborting the evaluation.
pub fn run_suite_matrix_cli_isolated(
    cli: &CliArgs,
    progress: impl FnMut(&RunResult) + Send,
) -> MatrixRun {
    EvaluationMatrix::run_specs_isolated(&suite_matrix_specs(cli), progress)
}

/// The per-cell specs behind [`run_suite_matrix_cli`], in matrix order.
fn suite_matrix_specs(cli: &CliArgs) -> Vec<RunSpec> {
    let config = cli.config();
    cli.suite
        .cells()
        .map(|(workload, technique)| {
            let mut spec = RunSpec::new(workload, technique)
                .with_budget(cli.budget)
                .with_config(config.clone())
                .with_warmup(cli.warmup)
                .with_result_cache(true);
            spec.trace.clone_from(&cli.trace);
            spec.sample = cli.sample;
            spec
        })
        .collect()
}

/// `~` when the cell's result was extrapolated by sampling, so estimated
/// numbers are never mistaken for measured ones in the rendered tables.
fn est_marker(result: Option<&RunResult>) -> &'static str {
    match result.and_then(|r| r.sample.as_ref()) {
        Some(_) => "~",
        None => "",
    }
}

/// `~` when any of `technique`'s cells in the matrix is extrapolated (the
/// aggregate rows inherit the marker from their inputs).
fn est_marker_any(matrix: &EvaluationMatrix, technique: Technique) -> &'static str {
    if matrix
        .results()
        .iter()
        .any(|r| r.technique == technique && r.sample.is_some())
    {
        "~"
    } else {
        ""
    }
}

/// Builds the Figure 2 table (performance normalized to the out-of-order
/// baseline) from an evaluation matrix.
pub fn fig2_table(matrix: &EvaluationMatrix) -> Table {
    let mut table = Table::new(
        "Figure 2 — performance normalized to OoO (IPC ratio)",
        &["workload", "RA", "RA-buffer", "PRE", "PRE+EMQ"],
    );
    for workload in matrix.workloads() {
        let cell = |t: Technique| {
            // `~` marks extrapolated (sampled) cells.
            let est = est_marker(matrix.get(workload, t));
            matrix
                .speedup(workload, t)
                .map(|s| format!("{est}{s:.3}"))
                .unwrap_or_else(|| "-".into())
        };
        table.add_row(vec![
            workload.name().to_string(),
            cell(Technique::Runahead),
            cell(Technique::RunaheadBuffer),
            cell(Technique::Pre),
            cell(Technique::PreEmq),
        ]);
    }
    let gmean = |t: Technique| {
        format!(
            "{}{:.3}",
            est_marker_any(matrix, t),
            matrix.gmean_speedup(t)
        )
    };
    table.add_row(vec![
        "gmean".into(),
        gmean(Technique::Runahead),
        gmean(Technique::RunaheadBuffer),
        gmean(Technique::Pre),
        gmean(Technique::PreEmq),
    ]);
    table
}

/// Summary lines comparing the measured average improvements against the
/// numbers the paper reports for Figure 2.
pub fn fig2_summary(matrix: &EvaluationMatrix) -> String {
    let mut out = String::new();
    let paper = [
        (Technique::Runahead, 14.5),
        (Technique::RunaheadBuffer, 14.4),
        (Technique::Pre, 35.5),
        (Technique::PreEmq, 28.6),
    ];
    for (technique, paper_pct) in paper {
        let measured = matrix.gmean_speedup(technique);
        out.push_str(&format!(
            "{:<10} paper: +{:.1} %   measured: {}\n",
            technique.label(),
            paper_pct,
            pct_improvement(measured)
        ));
    }
    out
}

/// Builds the Figure 3 table (energy savings relative to the baseline).
pub fn fig3_table(matrix: &EvaluationMatrix) -> Table {
    let mut table = Table::new(
        "Figure 3 — energy savings relative to OoO (core + DRAM)",
        &["workload", "RA", "RA-buffer", "PRE", "PRE+EMQ"],
    );
    for workload in matrix.workloads() {
        let cell = |t: Technique| {
            let est = est_marker(matrix.get(workload, t));
            matrix
                .energy_savings(workload, t)
                .map(|s| format!("{est}{}", pct(s)))
                .unwrap_or_else(|| "-".into())
        };
        table.add_row(vec![
            workload.name().to_string(),
            cell(Technique::Runahead),
            cell(Technique::RunaheadBuffer),
            cell(Technique::Pre),
            cell(Technique::PreEmq),
        ]);
    }
    let mean = |t: Technique| {
        format!(
            "{}{}",
            est_marker_any(matrix, t),
            pct(matrix.mean_energy_savings(t))
        )
    };
    table.add_row(vec![
        "mean".into(),
        mean(Technique::Runahead),
        mean(Technique::RunaheadBuffer),
        mean(Technique::Pre),
        mean(Technique::PreEmq),
    ]);
    table
}

/// Summary lines comparing measured energy savings against the paper's
/// Figure 3 numbers.
pub fn fig3_summary(matrix: &EvaluationMatrix) -> String {
    let mut out = String::new();
    let paper = [
        (Technique::Runahead, -2.7),
        (Technique::RunaheadBuffer, 0.0),
        (Technique::Pre, 6.1),
        (Technique::PreEmq, 7.2),
    ];
    for (technique, paper_pct) in paper {
        out.push_str(&format!(
            "{:<10} paper: {:+.1} %   measured: {}\n",
            technique.label(),
            paper_pct,
            pct(matrix.mean_energy_savings(technique))
        ));
    }
    out
}

/// Renders Table 1 (the baseline configuration) from the live `SimConfig`
/// defaults, so the printed table always matches what the simulator actually
/// uses.
pub fn table1() -> Table {
    let cfg = SimConfig::haswell_like();
    let mut t = Table::new(
        "Table 1 — baseline out-of-order core",
        &["parameter", "value"],
    );
    let rows: Vec<(&str, String)> = vec![
        ("frequency", format!("{:.2} GHz", cfg.core.freq_ghz)),
        ("ROB", cfg.core.rob_entries.to_string()),
        (
            "issue/load/store queue",
            format!(
                "{}/{}/{}",
                cfg.core.iq_entries, cfg.core.lq_entries, cfg.core.sq_entries
            ),
        ),
        ("width", cfg.core.dispatch_width.to_string()),
        (
            "front-end depth",
            format!("{} stages", cfg.core.frontend_depth),
        ),
        (
            "register file",
            format!(
                "{} int, {} fp",
                cfg.core.int_phys_regs, cfg.core.fp_phys_regs
            ),
        ),
        (
            "SST",
            format!("{} entry, fully assoc, LRU", cfg.runahead.sst_entries),
        ),
        ("PRDQ size", cfg.runahead.prdq_entries.to_string()),
        ("EMQ size", cfg.runahead.emq_entries.to_string()),
        (
            "L1 I-cache",
            format!(
                "{} KB, assoc {}, {} cyc",
                cfg.l1i.size_bytes / 1024,
                cfg.l1i.assoc,
                cfg.l1i.latency
            ),
        ),
        (
            "L1 D-cache",
            format!(
                "{} KB, assoc {}, {} cyc",
                cfg.l1d.size_bytes / 1024,
                cfg.l1d.assoc,
                cfg.l1d.latency
            ),
        ),
        (
            "private L2",
            format!(
                "{} KB, assoc {}, {} cyc",
                cfg.l2.size_bytes / 1024,
                cfg.l2.assoc,
                cfg.l2.latency
            ),
        ),
        (
            "shared L3",
            format!(
                "{} KB, assoc {}, {} cyc",
                cfg.l3.size_bytes / 1024,
                cfg.l3.assoc,
                cfg.l3.latency
            ),
        ),
        (
            "memory",
            format!(
                "DDR3-1600, {:.0} MHz, ranks {}, banks {}, page {} KB, tRP-tCL-tRCD {}-{}-{}",
                cfg.dram.bus_mhz,
                cfg.dram.ranks,
                cfg.dram.banks,
                cfg.dram.page_bytes / 1024,
                cfg.dram.t_rp,
                cfg.dram.t_cl,
                cfg.dram.t_rcd
            ),
        ),
    ];
    for (k, v) in rows {
        t.add_row(vec![k.to_string(), v]);
    }
    t
}

/// Stat A (§2.4): the per-invocation flush/refill penalty of flush-style
/// runahead: the analytic 8 + 192/4 = 56 cycles, plus the measured average
/// from a traditional-runahead run.
pub fn stat_flush_overhead(max_uops: u64) -> Result<Table, SimError> {
    let cfg = SimConfig::haswell_like();
    let analytic =
        cfg.core.frontend_depth as u64 + (cfg.core.rob_entries / cfg.core.dispatch_width) as u64;
    let mut table = Table::new(
        "Stat A — flush/refill penalty per runahead invocation",
        &[
            "workload",
            "invocations",
            "avg penalty (cycles)",
            "analytic (cycles)",
        ],
    );
    for workload in [
        Workload::LbmLike,
        Workload::LibquantumLike,
        Workload::MilcLike,
    ] {
        let result = run_one(&RunSpec::new(workload, Technique::Runahead).with_budget(max_uops))?;
        let exits = result.stats.runahead_exits.max(1);
        table.add_row(vec![
            workload.name().into(),
            result.stats.runahead_exits.to_string(),
            format!(
                "{:.1}",
                result.stats.flush_refill_cycles as f64 / exits as f64
            ),
            analytic.to_string(),
        ]);
    }
    Ok(table)
}

/// Stat B (§2.4): the distribution of runahead-interval lengths and the
/// fraction below 20 cycles (the paper reports 27 % on average).
pub fn stat_intervals(max_uops: u64) -> Result<Table, SimError> {
    let mut table = Table::new(
        "Stat B — runahead interval lengths (PRE, unrestricted entry)",
        &["workload", "intervals", "mean (cycles)", "< 20 cycles"],
    );
    for workload in Workload::MEMORY_INTENSIVE {
        let result = run_one(&RunSpec::new(workload, Technique::Pre).with_budget(max_uops))?;
        let hist = &result.stats.runahead_interval_hist;
        table.add_row(vec![
            workload.name().into(),
            hist.count().to_string(),
            format!("{:.1}", hist.mean()),
            pct(hist.fraction_below(20)),
        ]);
    }
    Ok(table)
}

/// Stat C (§3.4): free back-end resources sampled at runahead entry
/// (the paper reports ≈37 % of IQ entries, 51 % of integer and 59 % of
/// floating-point registers free), plus the per-class free-register
/// occupancy histograms at full-window stalls and the eager-drain volume —
/// the counters behind the `asm-box-blur` reproduction finding.
pub fn stat_free_resources(suite: Suite, max_uops: u64) -> Result<Table, SimError> {
    stat_free_resources_with(suite, &SimConfig::haswell_like(), max_uops)
}

/// [`stat_free_resources`] with an explicit configuration (e.g. the
/// `--reference-scheduler` escape hatch).
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn stat_free_resources_with(
    suite: Suite,
    config: &SimConfig,
    max_uops: u64,
) -> Result<Table, SimError> {
    let mut table = Table::new(
        "Stat C — free resources at runahead entry (PRE)",
        &[
            "workload",
            "IQ free",
            "int regs free",
            "fp regs free",
            "int <5% @stall",
            "eager frees",
        ],
    );
    // Walk the canonical `Suite::cells` matrix (shared with `quick_check`
    // and the benches) restricted to the PRE column, so cell orderings
    // agree across binaries.
    for (workload, technique) in suite.cells().filter(|&(_, t)| t == Technique::Pre) {
        let result = run_one(
            &RunSpec::new(workload, technique)
                .with_budget(max_uops)
                .with_config(config.clone()),
        )?;
        table.add_row(vec![
            workload.name().into(),
            pct(result.stats.iq_free_at_entry.mean()),
            pct(result.stats.int_regs_free_at_entry.mean()),
            pct(result.stats.fp_regs_free_at_entry.mean()),
            pct(result.stats.int_free_at_stall_hist.fraction_below(5)),
            result.stats.prdq_eager_reclaims.to_string(),
        ]);
    }
    Ok(table)
}

/// Stat D (§5.1): how much more often PRE (and PRE+EMQ) invoke runahead
/// compared with traditional runahead (paper: 1.62× and 1.95×).
pub fn stat_invocations(matrix: &EvaluationMatrix) -> Table {
    let mut table = Table::new(
        "Stat D — runahead invocations relative to traditional runahead",
        &["technique", "paper", "measured"],
    );
    table.add_row(vec![
        "PRE".into(),
        "1.62x".into(),
        format!(
            "{:.2}x",
            matrix.invocation_ratio_vs_runahead(Technique::Pre)
        ),
    ]);
    table.add_row(vec![
        "PRE+EMQ".into(),
        "1.95x".into(),
        format!(
            "{:.2}x",
            matrix.invocation_ratio_vs_runahead(Technique::PreEmq)
        ),
    ]);
    table
}

/// Runs a one-dimensional capacity sweep of `workload` under `technique`
/// (sharing the sweep engine with the `sweep` binary) and returns the points
/// in grid order plus the out-of-order baseline IPC the rows normalize to.
fn capacity_sweep(
    workload: Workload,
    technique: Technique,
    dim: SweepDim,
    sizes: &[usize],
    max_uops: u64,
) -> Result<(Vec<crate::sweep::SweepPoint>, f64), SimError> {
    let baseline = run_one(&RunSpec::new(workload, Technique::OutOfOrder).with_budget(max_uops))?;
    let mut sweep = Sweep::new(workload, technique).with_dim(GridDim {
        dim,
        values: sizes.iter().map(|&s| s as u64).collect(),
    });
    sweep.budget = max_uops;
    let points = sweep.run(|_| {})?;
    Ok((points, baseline.ipc()))
}

/// Stat F / ablation (§3.6): SST-capacity sensitivity. Returns
/// `(entries, speedup over OoO, SST hit rate)` rows for one representative
/// multi-slice workload.
pub fn sst_sensitivity(max_uops: u64, sizes: &[usize]) -> Result<Table, SimError> {
    let (points, base_ipc) = capacity_sweep(
        Workload::LbmLike,
        Technique::Pre,
        SweepDim::Sst,
        sizes,
        max_uops,
    )?;
    let mut table = Table::new(
        "Stat F — SST capacity sensitivity (lbm-like, PRE)",
        &["SST entries", "speedup vs OoO", "SST hit rate", "evictions"],
    );
    for p in points {
        table.add_row(vec![
            p.settings[0].1.to_string(),
            format!("{:.3}", p.result.ipc() / base_ipc),
            format!("{:.3}", p.result.stats.sst_hit_rate()),
            p.result.stats.sst_evictions.to_string(),
        ]);
    }
    Ok(table)
}

/// EMQ-capacity ablation: how the EMQ size bounds PRE+EMQ's benefit.
pub fn emq_sensitivity(max_uops: u64, sizes: &[usize]) -> Result<Table, SimError> {
    let (points, base_ipc) = capacity_sweep(
        Workload::LbmLike,
        Technique::PreEmq,
        SweepDim::Emq,
        sizes,
        max_uops,
    )?;
    let mut table = Table::new(
        "Ablation — EMQ capacity sensitivity (lbm-like, PRE+EMQ)",
        &["EMQ entries", "speedup vs OoO", "EMQ-full stall cycles"],
    );
    for p in points {
        table.add_row(vec![
            p.settings[0].1.to_string(),
            format!("{:.3}", p.result.ipc() / base_ipc),
            p.result.stats.emq_full_stall_cycles.to_string(),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_the_paper_parameters() {
        let t = table1();
        let text = t.render();
        assert!(text.contains("ROB"));
        assert!(text.contains("192"));
        assert!(text.contains("DDR3-1600"));
        assert!(text.contains("SST"));
    }

    #[test]
    fn fig2_table_from_synthetic_matrix_has_gmean_row() {
        let matrix = EvaluationMatrix::new();
        let t = fig2_table(&matrix);
        // Empty matrix still renders the gmean row.
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn budget_default_is_used_without_args() {
        assert_eq!(budget_from_args(1234).max(1), budget_from_args(1234));
    }

    #[test]
    fn suites_select_the_right_workloads() {
        assert_eq!(
            Suite::Synthetic.workloads(),
            Workload::MEMORY_INTENSIVE.to_vec()
        );
        assert_eq!(Suite::Asm.workloads(), Workload::ASM_SUITE.to_vec());
        let mixed = Suite::Mixed.workloads();
        assert_eq!(
            mixed.len(),
            Workload::MEMORY_INTENSIVE.len() + Workload::ASM_SUITE.len()
        );
        assert!(Suite::Asm.workloads().iter().all(|w| w.is_asm()));
    }

    #[test]
    fn cli_parses_suite_and_budget_in_any_order() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let cli = parse_cli(args(&[]), 777).unwrap();
        assert_eq!(cli.suite, Suite::Synthetic);
        assert_eq!(cli.budget, 777);

        let cli = parse_cli(args(&["--suite", "asm", "5000"]), 777).unwrap();
        assert_eq!(cli.suite, Suite::Asm);
        assert_eq!(cli.budget, 5000);

        let cli = parse_cli(args(&["9000", "--suite=mixed"]), 777).unwrap();
        assert_eq!(cli.suite, Suite::Mixed);
        assert_eq!(cli.budget, 9000);

        assert!(parse_cli(args(&["--suite", "bogus"]), 777).is_err());
        assert!(parse_cli(args(&["--suite"]), 777).is_err());
        assert!(parse_cli(args(&["wat"]), 777).is_err());
    }

    #[test]
    fn cli_parses_sample_flag_forms() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let cli = parse_cli(args(&[]), 777).unwrap();
        assert_eq!(cli.sample, None);

        let cli = parse_cli(args(&["--sample"]), 777).unwrap();
        assert_eq!(cli.sample, Some(SampleSpec::default()));

        let cli = parse_cli(args(&["--sample", "n=4,interval=5000"]), 777).unwrap();
        assert_eq!(cli.sample, Some(SampleSpec::new(4, 5_000)));

        let cli = parse_cli(args(&["--sample=n=3", "9000"]), 777).unwrap();
        assert_eq!(
            cli.sample,
            Some(SampleSpec::new(3, SampleSpec::DEFAULT_INTERVAL_UOPS))
        );
        assert_eq!(cli.budget, 9000);

        // A bare `--sample` followed by the budget leaves the budget intact.
        let cli = parse_cli(args(&["--sample", "60000"]), 777).unwrap();
        assert_eq!(cli.sample, Some(SampleSpec::default()));
        assert_eq!(cli.budget, 60_000);

        assert!(parse_cli(args(&["--sample=n=0"]), 777).is_err());
    }

    #[test]
    fn split_suite_flag_preserves_positionals() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (suite, positional) =
            split_suite_flag(args(&["asm-quicksort", "--suite", "asm", "pre", "3000"])).unwrap();
        assert_eq!(suite, Suite::Asm);
        assert_eq!(positional, args(&["asm-quicksort", "pre", "3000"]));
        assert!(split_suite_flag(args(&["--suite", "bogus"])).is_err());
    }

    #[test]
    fn suite_names_roundtrip() {
        for suite in [Suite::Synthetic, Suite::Asm, Suite::Mixed] {
            assert_eq!(suite.name().parse::<Suite>().unwrap(), suite);
        }
        assert!("nope".parse::<Suite>().is_err());
    }
}
