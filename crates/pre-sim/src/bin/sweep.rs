//! Declarative parameter sweeps over one (workload, technique) pair.
//!
//! Expands a grid (`--grid dim=v1,v2,... --grid dim=...`) into its Cartesian
//! product, runs every point over the worker pool, and prints a table plus
//! an optional JSON/CSV dump. Points share one warm-up snapshot per workload
//! (`--warmup`) and answer from the result cache when they have run before
//! (in-memory within one invocation; across invocations when `PRE_CACHE_DIR`
//! names a directory).
//!
//! Usage:
//!
//! ```text
//! sweep [--workload <name>] [--technique <name>] [--budget <uops>]
//!       [--warmup <uops>] [--grid dim=v1,v2,...]... [--json <path>]
//!       [--csv <path>] [--no-cache] [--expect-min-hit-rate <pct>]
//!       [--reference-scheduler] [--fail-fast] [--max-retries <n>]
//!       [--sample [n=K,interval=N]]
//! ```
//!
//! Dimensions: `emq`, `sst`, `rob`, `iq`, `prdq`, `min-free-int`,
//! `min-free-fp`, `l3-kb`, `min-ra-cycles`.
//!
//! `--sample` estimates every point by SimPoint-style interval sampling
//! instead of a full detailed run: point IPCs are printed with a `~` prefix,
//! and the JSON report records the sampling parameters and marks the points
//! `"sampled": true`. The profile and clustering are computed once per
//! (workload, budget) and shared by all points.
//!
//! Failures are isolated: a point that errors or panics is reported (and
//! retried `--max-retries` times) while the rest of the grid completes; the
//! exit code is then 1 and the JSON report lists the failed points.
//! `--fail-fast` stops launching new points after the first failure.

use pre_runahead::Technique;
use pre_sim::sample::SampleSpec;
use pre_sim::sweep::{cache_hit_rate, sweep_csv, sweep_json, GridDim, Sweep, ALL_DIMS};
use pre_workloads::Workload;
use std::str::FromStr;
use std::time::Instant;

struct Args {
    sweep: Sweep,
    json: Option<String>,
    csv: Option<String>,
    expect_min_hit_rate: Option<f64>,
}

fn usage() -> ! {
    let dims: Vec<_> = ALL_DIMS.iter().map(|d| d.name()).collect();
    eprintln!(
        "usage: sweep [--workload <name>] [--technique <name>] [--budget <uops>] \
         [--warmup <uops>] [--grid dim=v1,v2,...]... [--json <path>] [--csv <path>] \
         [--no-cache] [--expect-min-hit-rate <pct>] [--reference-scheduler] \
         [--fail-fast] [--max-retries <n>] [--sample [n=K,interval=N]]"
    );
    eprintln!("dimensions: {}", dims.join(", "));
    std::process::exit(2);
}

fn parse_args() -> Args {
    // Defaults mirror the EMQ ablation: lbm-like under PRE+EMQ.
    let mut sweep = Sweep::new(Workload::LbmLike, Technique::PreEmq);
    sweep.budget = 150_000;
    sweep.use_result_cache = true;
    let mut json = None;
    let mut csv = None;
    let mut expect_min_hit_rate = None;
    let mut args = std::env::args().skip(1).peekable();
    let bail = |msg: String| -> ! {
        eprintln!("{msg}");
        usage();
    };
    while let Some(arg) = args.next() {
        if arg == "--sample" {
            // The value is optional; consume the next argument only when it
            // looks like a sample spec (contains `=`).
            sweep.sample = Some(match args.peek() {
                Some(next) if next.contains('=') && !next.starts_with("--") => {
                    match args.next().unwrap_or_default().parse::<SampleSpec>() {
                        Ok(s) => s,
                        Err(e) => bail(format!("bad --sample: {e}")),
                    }
                }
                _ => SampleSpec::default(),
            });
            continue;
        }
        if let Some(value) = arg.strip_prefix("--sample=") {
            match value.parse::<SampleSpec>() {
                Ok(s) => sweep.sample = Some(s),
                Err(e) => bail(format!("bad --sample: {e}")),
            }
            continue;
        }
        let mut value_of = |flag: &str| -> String {
            match args.next() {
                Some(v) => v,
                None => bail(format!("{flag} requires a value")),
            }
        };
        match arg.as_str() {
            "--workload" => {
                let v = value_of("--workload");
                match Workload::from_str(&v) {
                    Ok(w) => sweep.workload = w,
                    Err(e) => bail(format!("{e}")),
                }
            }
            "--technique" => {
                let v = value_of("--technique");
                match Technique::from_str(&v.to_ascii_lowercase()) {
                    Ok(t) => sweep.technique = t,
                    Err(e) => bail(format!("{e}")),
                }
            }
            "--budget" => match value_of("--budget").parse() {
                Ok(b) => sweep.budget = b,
                Err(_) => bail("bad --budget value".to_string()),
            },
            "--warmup" => match value_of("--warmup").parse() {
                Ok(w) => sweep.warmup_uops = w,
                Err(_) => bail("bad --warmup value".to_string()),
            },
            "--grid" => match value_of("--grid").parse::<GridDim>() {
                Ok(g) => sweep.dims.push(g),
                Err(e) => bail(format!("{e}")),
            },
            "--json" => json = Some(value_of("--json")),
            "--csv" => csv = Some(value_of("--csv")),
            "--no-cache" => sweep.use_result_cache = false,
            "--expect-min-hit-rate" => match value_of("--expect-min-hit-rate").parse::<f64>() {
                Ok(p) => expect_min_hit_rate = Some(p / 100.0),
                Err(_) => bail("bad --expect-min-hit-rate value".to_string()),
            },
            "--reference-scheduler" => sweep.base_config.core.reference_scheduler = true,
            "--fail-fast" => sweep.fail_fast = true,
            "--max-retries" => match value_of("--max-retries").parse() {
                Ok(n) => sweep.max_retries = n,
                Err(_) => bail("bad --max-retries value".to_string()),
            },
            _ => bail(format!("unrecognized argument `{arg}`")),
        }
    }
    Args {
        sweep,
        json,
        csv,
        expect_min_hit_rate,
    }
}

fn main() {
    let args = parse_args();
    let sweep = &args.sweep;
    eprintln!(
        "sweep: {} / {} — {} points, budget {} uops, warmup {} uops, cache {}",
        sweep.workload.name(),
        sweep.technique.label(),
        sweep.num_points(),
        sweep.budget,
        sweep.warmup_uops,
        if sweep.use_result_cache { "on" } else { "off" },
    );
    let start = Instant::now();
    let run = sweep.run_isolated(|p| {
        eprintln!(
            "  [{:>7.2}s] {:<28} ipc {}{:.3}{}",
            start.elapsed().as_secs_f64(),
            p.label(),
            if p.result.sample.is_some() { "~" } else { "" },
            p.result.ipc(),
            if p.result.cache_hit { "  (cached)" } else { "" },
        );
    });
    let elapsed = start.elapsed().as_secs_f64();
    let points = &run.points;

    println!(
        "{:<28} {:>8} {:>12} {:>10} {:>7} {:>9}",
        "point", "ipc", "cycles", "energy-mJ", "cache", "deadlock"
    );
    for p in points {
        println!(
            "{:<28} {:>8} {:>12} {:>10.2} {:>7} {:>9}",
            p.label(),
            format!(
                "{}{:.3}",
                if p.result.sample.is_some() { "~" } else { "" },
                p.result.ipc()
            ),
            p.result.stats.cycles,
            p.result.energy_mj(),
            if p.result.cache_hit { "hit" } else { "sim" },
            if p.result.deadlocked { "YES" } else { "-" },
        );
    }
    for f in &run.failures {
        println!(
            "{:<28} FAILED ({} attempts): {}",
            f.label(),
            f.attempts,
            f.error
        );
    }
    let hit_rate = cache_hit_rate(points);
    println!(
        "{} of {} points in {:.2}s ({:.1} points/s), cache hit rate {:.1}%{}",
        points.len(),
        run.total,
        elapsed,
        points.len() as f64 / elapsed.max(1e-9),
        hit_rate * 100.0,
        if run.failures.is_empty() {
            String::new()
        } else {
            format!(", {} FAILED", run.failures.len())
        },
    );

    if let Some(path) = &args.json {
        let text = sweep_json(sweep, points, &run.failures, elapsed);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
    if let Some(path) = &args.csv {
        let text = sweep_csv(sweep, points);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }

    let mut failed = points.iter().any(|p| p.result.deadlocked) || !run.failures.is_empty();
    if let Some(min) = args.expect_min_hit_rate {
        if hit_rate < min {
            eprintln!(
                "cache hit rate {:.1}% below required {:.1}%",
                hit_rate * 100.0,
                min * 100.0
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
