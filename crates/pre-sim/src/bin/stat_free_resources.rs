//! Stat C (Section 3.4): free back-end resources at runahead entry. The paper
//! reports ≈37 % of issue-queue entries, ≈51 % of integer and ≈59 % of
//! floating-point physical registers free on average — the headroom PRE uses
//! to execute stalling slices without discarding the window.
//!
//! Usage: `stat_free_resources [--suite synthetic|asm|mixed]
//! [--reference-scheduler] [max_uops_per_run]`.

use pre_sim::experiments::{cli_from_args, stat_free_resources_with, DEFAULT_EVAL_UOPS};

fn main() {
    let cli = cli_from_args(DEFAULT_EVAL_UOPS / 2);
    let table =
        stat_free_resources_with(cli.suite, &cli.config(), cli.budget).expect("stat C runs");
    println!("{}", table.render());
    println!("paper: ~37 % IQ, ~51 % integer registers, ~59 % FP registers free at entry");
    println!("note: see EXPERIMENTS.md — our synthetic integer kernels are denser in");
    println!("destination-writing micro-ops than SPEC x86 code, so the integer-register");
    println!("headroom is smaller for the integer workloads.");
}
