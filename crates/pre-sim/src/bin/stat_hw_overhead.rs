//! Stat E (Section 3.6): storage overhead of the PRE structures — 1 KB SST +
//! 768 B PRDQ + 256 B RAT extension = 2 KB, plus 3 KB for the optional EMQ,
//! compared with ≈1.7 KB for the prior-work runahead buffer.

use pre_energy::HardwareOverhead;
use pre_model::config::RunaheadConfig;

fn main() {
    let hw = HardwareOverhead::for_config(&RunaheadConfig::default());
    println!("== Stat E — hardware overhead (Section 3.6) ==");
    println!("{hw}");
    println!();
    println!(
        "paper: SST 1 KB, PRDQ 768 B, RAT extension 256 B (2 KB total), EMQ +3 KB, runahead buffer ~1.7 KB"
    );
}
