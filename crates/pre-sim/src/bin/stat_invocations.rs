//! Stat D (Section 5.1): PRE and PRE+EMQ invoke runahead execution more often
//! than traditional runahead (1.62× and 1.95× in the paper) because entry and
//! exit are cheap enough to profit from short intervals.
//!
//! Usage: `stat_invocations [max_uops_per_run]`.

use pre_sim::experiments::{
    budget_from_args, run_evaluation_matrix, stat_invocations, DEFAULT_EVAL_UOPS,
};

fn main() {
    let budget = budget_from_args(DEFAULT_EVAL_UOPS / 2);
    let matrix = run_evaluation_matrix(budget, |_| {}).expect("evaluation matrix");
    println!("{}", stat_invocations(&matrix).render());
}
