//! Stat B (Section 2.4): distribution of runahead-interval lengths. The paper
//! reports that 27 % of runahead intervals take less than 20 cycles on
//! average for memory-intensive workloads, which is why PRE's ability to
//! profit from short intervals matters.
//!
//! Usage: `stat_intervals [max_uops_per_run]`.

use pre_sim::experiments::{budget_from_args, stat_intervals, DEFAULT_EVAL_UOPS};

fn main() {
    let budget = budget_from_args(DEFAULT_EVAL_UOPS / 2);
    let table = stat_intervals(budget).expect("stat B runs");
    println!("{}", table.render());
    println!("paper: ~27 % of runahead intervals are shorter than 20 cycles");
}
