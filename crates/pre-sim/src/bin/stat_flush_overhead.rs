//! Stat A (Section 2.4): the flush/refill penalty every traditional-runahead
//! invocation pays — analytically 8 (front-end refill) + 192/4 (window
//! re-dispatch) = 56 cycles, compared against the measured per-invocation
//! overhead of the RA configuration.
//!
//! Usage: `stat_flush_overhead [max_uops_per_run]`.

use pre_sim::experiments::{budget_from_args, stat_flush_overhead, DEFAULT_EVAL_UOPS};

fn main() {
    let budget = budget_from_args(DEFAULT_EVAL_UOPS / 2);
    let _ = DEFAULT_EVAL_UOPS;
    let table = stat_flush_overhead(budget).expect("stat A runs");
    println!("{}", table.render());
    println!("paper: approximately 56 cycles per invocation for a 192-entry ROB");
}
