//! Runs the complete evaluation matrix once and prints every result that
//! depends on it: Figure 2 (performance), Figure 3 (energy) and Stat D
//! (runahead invocation ratios). This is the cheapest way to regenerate the
//! paper's headline numbers because the matrix is simulated only once.
//!
//! Usage: `full_eval [--suite synthetic|asm|mixed] [--reference-scheduler]
//! [--warmup <uops>] [--trace <spec>] [--sample [n=K,interval=N]]
//! [max_uops_per_run]` (defaults: the synthetic memory-intensive suite,
//! 300 000 uops, event-driven scheduler). `--sample` estimates every cell by
//! SimPoint-style interval sampling (profile → cluster → simulate one
//! representative per cluster → extrapolate); sampled numbers are marked `~`
//! in the tables and the sampling metadata is printed after them.
//! `--reference-scheduler` selects the scan-based escape-hatch scheduler —
//! bit-identical statistics, much slower wall clock; useful for timing
//! comparisons and debugging. `--warmup` shares one functional warm-up
//! snapshot per workload across its cells. `--trace dir=traces,all`
//! additionally writes per-cell trace files (pipeview/Chrome/time-series/
//! commit streams). Cells consult the result cache (persisted when
//! `PRE_CACHE_DIR` names a directory), so a repeated invocation answers
//! unchanged cells in milliseconds; the progress log marks those `(cached)`.

use pre_model::stats::TerminationKind;
use pre_sim::experiments::{
    cli_from_args, fig2_summary, fig2_table, fig3_summary, fig3_table,
    run_suite_matrix_cli_isolated, stat_invocations, Suite, DEFAULT_EVAL_UOPS,
};
use pre_sim::runner::cell_name;

fn main() {
    let cli = cli_from_args(DEFAULT_EVAL_UOPS);
    eprintln!(
        "running the full evaluation matrix over the {} suite ({} committed uops per run{})...",
        cli.suite,
        cli.budget,
        if cli.reference_scheduler {
            ", reference scheduler"
        } else {
            ""
        }
    );
    if let Some(trace) = &cli.trace {
        eprintln!("writing per-cell traces under {}", trace.dir.display());
    }
    let start = std::time::Instant::now();
    // Failure-isolated: a cell that errors or panics degrades the report
    // (and the exit code) instead of aborting the other cells.
    let run = run_suite_matrix_cli_isolated(&cli, |r| {
        eprintln!(
            "  [{:>6.1}s] {:<18} {:<10} ipc {}{:.3}{}{}",
            start.elapsed().as_secs_f64(),
            r.workload.name(),
            r.technique.label(),
            if r.sample.is_some() { "~" } else { "" },
            r.ipc(),
            if r.cache_hit { "  (cached)" } else { "" },
            match r.terminated() {
                TerminationKind::Completed => "",
                TerminationKind::MaxCycles => "  ! hit cycle budget",
                TerminationKind::Watchdog => "  ! WATCHDOG",
            },
        );
    });
    let matrix = run.matrix;

    let fig2 = fig2_table(&matrix);
    println!("{}", fig2.render());
    let fig3 = fig3_table(&matrix);
    println!("{}", fig3.render());
    if cli.suite == Suite::Synthetic {
        println!("paper-vs-measured (Figure 2):\n{}", fig2_summary(&matrix));
        println!("paper-vs-measured (Figure 3):\n{}", fig3_summary(&matrix));
    }
    println!("{}", stat_invocations(&matrix).render());

    if cli.sample.is_some() {
        println!("sampling metadata (~ numbers above are extrapolated):");
        // The profile is functional (technique-independent), so one line per
        // workload describes every cell of its row.
        let mut seen = Vec::new();
        for r in matrix.results() {
            if seen.contains(&r.workload) {
                continue;
            }
            if let Some(meta) = &r.sample {
                seen.push(r.workload);
                println!("  {:<18} {}", r.workload.name(), meta.summary());
            }
        }
        println!();
    }

    let _ = fig2.write_csv("fig2_performance.csv");
    let _ = fig3.write_csv("fig3_energy.csv");
    eprintln!(
        "total wall-clock time: {:.1}s",
        start.elapsed().as_secs_f64()
    );

    let mut failed = false;
    for r in matrix.results() {
        match r.terminated() {
            TerminationKind::Completed => {}
            TerminationKind::MaxCycles => eprintln!(
                "WARNING: {} stopped at the cycle budget before committing its uop budget",
                cell_name(r.workload, r.technique)
            ),
            TerminationKind::Watchdog => {
                match r.watchdog_error() {
                    Some(e) => eprintln!("WARNING: {}: {e}", cell_name(r.workload, r.technique)),
                    None => eprintln!(
                        "WARNING: {} hit the deadlock watchdog",
                        cell_name(r.workload, r.technique)
                    ),
                }
                failed = true;
            }
        }
    }
    for f in &run.failures {
        eprintln!("FAILED: {f}");
        failed = true;
    }
    if !run.failures.is_empty() {
        eprintln!(
            "{} of {} cells failed; the tables above cover the {} that completed",
            run.failures.len(),
            run.cells,
            matrix.results().len()
        );
    }
    if failed {
        std::process::exit(1);
    }
}
