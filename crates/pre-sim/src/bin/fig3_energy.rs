//! Regenerates Figure 3: energy savings (core + DRAM) of RA, RA-buffer, PRE
//! and PRE+EMQ relative to the out-of-order baseline.
//!
//! Usage: `fig3_energy [max_uops_per_run]` (default 300 000).

use pre_sim::experiments::{
    budget_from_args, fig3_summary, fig3_table, run_evaluation_matrix, DEFAULT_EVAL_UOPS,
};

fn main() {
    let budget = budget_from_args(DEFAULT_EVAL_UOPS);
    eprintln!("running the Figure 3 evaluation matrix ({budget} committed uops per run)...");
    let matrix = run_evaluation_matrix(budget, |r| {
        eprintln!(
            "  {:<16} {:<10} energy {:.3} mJ",
            r.workload.name(),
            r.technique.label(),
            r.energy_mj()
        );
    })
    .expect("evaluation matrix");
    let table = fig3_table(&matrix);
    println!("{}", table.render());
    println!("paper-vs-measured (average energy savings over OoO):");
    println!("{}", fig3_summary(&matrix));
    if let Err(e) = table.write_csv("fig3_energy.csv") {
        eprintln!("could not write fig3_energy.csv: {e}");
    } else {
        eprintln!("wrote fig3_energy.csv");
    }
}
