//! Regenerates Figure 3: energy savings (core + DRAM) of RA, RA-buffer, PRE
//! and PRE+EMQ relative to the out-of-order baseline.
//!
//! Usage: `fig3_energy [--suite synthetic|asm|mixed] [--reference-scheduler]
//! [max_uops_per_run]` (defaults: the synthetic memory-intensive suite,
//! 300 000 uops, event-driven scheduler).

use pre_sim::experiments::{
    cli_from_args, fig3_summary, fig3_table, run_suite_matrix_with, Suite, DEFAULT_EVAL_UOPS,
};

fn main() {
    let cli = cli_from_args(DEFAULT_EVAL_UOPS);
    eprintln!(
        "running the Figure 3 evaluation matrix over the {} suite ({} committed uops per run)...",
        cli.suite, cli.budget
    );
    let matrix = run_suite_matrix_with(cli.suite, &cli.config(), cli.budget, |r| {
        eprintln!(
            "  {:<18} {:<10} energy {:.3} mJ",
            r.workload.name(),
            r.technique.label(),
            r.energy_mj()
        );
    })
    .expect("evaluation matrix");
    let table = fig3_table(&matrix);
    println!("{}", table.render());
    if cli.suite == Suite::Synthetic {
        println!("paper-vs-measured (average energy savings over OoO):");
        println!("{}", fig3_summary(&matrix));
    }
    if let Err(e) = table.write_csv("fig3_energy.csv") {
        eprintln!("could not write fig3_energy.csv: {e}");
    } else {
        eprintln!("wrote fig3_energy.csv");
    }
}
