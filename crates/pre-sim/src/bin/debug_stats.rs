//! Development aid: dump detailed statistics for one workload under one
//! technique.
//!
//! Usage: `debug_stats [--suite synthetic|asm|mixed] [workload] [technique]
//! [max_uops]`. Workload names include the asm kernels (`asm-matmul`,
//! `quicksort`, ...); when only `--suite` is given, the suite's first
//! workload is dumped.

use pre_runahead::Technique;
use pre_sim::experiments::split_suite_flag;
use pre_sim::runner::{run_one, RunSpec};
use pre_workloads::Workload;

fn main() {
    let (suite, positional) = match split_suite_flag(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("usage: debug_stats [--suite synthetic|asm|mixed] [workload] [technique] [max_uops]");
            std::process::exit(2);
        }
    };
    let workload: Workload = positional
        .first()
        .map(|s| s.parse().expect("workload"))
        .unwrap_or_else(|| suite.workloads()[0]);
    let technique: Technique = positional
        .get(1)
        .map(|s| s.parse().expect("technique"))
        .unwrap_or(Technique::OutOfOrder);
    let budget: u64 = positional
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);

    let result = run_one(&RunSpec::new(workload, technique).with_budget(budget)).expect("run");
    let s = &result.stats;
    println!(
        "workload {workload}  technique {technique}  deadlocked {}",
        result.deadlocked
    );
    println!("{s}");
    println!("--- pipeline ---");
    println!(
        "fetched {}  decoded {}  renamed {}  dispatched {}  issued {}  executed {}  squashed {}",
        s.fetched_uops,
        s.decoded_uops,
        s.renamed_uops,
        s.dispatched_uops,
        s.issued_uops,
        s.executed_uops,
        s.squashed_uops
    );
    println!(
        "frontend stall cycles {}  fw-stall cycles {}  fw-stalls {}",
        s.frontend_stall_cycles, s.full_window_stall_cycles, s.full_window_stalls
    );
    println!("--- memory ---");
    println!("l1d acc {} miss {}  l2 acc {} miss {}  l3 acc {} miss {}  dram rd {} wr {} rowhit {} rowmiss {}",
        s.l1d_accesses, s.l1d_misses, s.l2_accesses, s.l2_misses, s.l3_accesses, s.l3_misses,
        s.dram_reads, s.dram_writes, s.dram_row_hits, s.dram_row_misses);
    println!("--- runahead ---");
    println!("entries {}  exits {}  cycles {}  uops {}  loads {}  inv-loads {}  prefetches {}  useful {}",
        s.runahead_entries, s.runahead_exits, s.runahead_cycles, s.runahead_uops_executed,
        s.runahead_loads_executed, s.runahead_inv_loads, s.runahead_prefetches_issued, s.runahead_prefetches_useful);
    println!(
        "skipped short {}  skipped overlap {}  emq-full stalls {}  flush/refill {}",
        s.runahead_entries_skipped_short,
        s.runahead_entries_skipped_overlap,
        s.emq_full_stall_cycles,
        s.flush_refill_cycles
    );
    println!(
        "interval mean {:.1}  <20cyc {:.2}",
        s.runahead_interval_hist.mean(),
        s.runahead_interval_hist.fraction_below(20)
    );
    println!(
        "sst lookups {} hits {} inserts {} evictions {}",
        s.sst_lookups, s.sst_hits, s.sst_inserts, s.sst_evictions
    );
    println!(
        "prdq alloc {} reclaim {}  emq w {} r {}  rabuf walks {} replays {}",
        s.prdq_allocations,
        s.prdq_reclaims,
        s.emq_writes,
        s.emq_reads,
        s.runahead_buffer_walks,
        s.runahead_buffer_replays
    );
    println!(
        "free@entry iq {:.2} int {:.2} fp {:.2}",
        s.iq_free_at_entry.mean(),
        s.int_regs_free_at_entry.mean(),
        s.fp_regs_free_at_entry.mean()
    );
    println!("--- energy ---");
    println!(
        "total {:.3} mJ  static fraction {:.2}",
        result.energy.total_mj(),
        result.energy.static_fraction()
    );
}
