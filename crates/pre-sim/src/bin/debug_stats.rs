//! Development aid: dump detailed statistics for one workload under one
//! technique.
//!
//! Usage: `debug_stats [--suite synthetic|asm|mixed] [--trace <spec>]
//! [--sample [n=K,interval=N]] [workload] [technique] [max_uops]`. Workload
//! names include the asm kernels (`asm-matmul`, `quicksort`, ...); when only
//! `--suite` is given, the suite's first workload is dumped. Run with
//! `--help` for the environment variables the tools honour.

use pre_runahead::Technique;
use pre_sim::experiments::split_suite_flag;
use pre_sim::runner::{run_one, run_one_traced, RunSpec};
use pre_sim::sample::SampleSpec;
use pre_trace::collect::IntervalLog;
use pre_trace::{IntervalCollector, TraceSession, TraceSpec, Tracer};
use pre_workloads::Workload;

const HELP: &str = "\
usage: debug_stats [--suite synthetic|asm|mixed] [--trace <spec>] [--sample [n=K,interval=N]] [workload] [technique] [max_uops]

Dumps every statistic of one (workload, technique) run, including the
runahead interval entry/exit event log collected through the tracer.

  --suite <name>   pick the default workload from this suite
  --trace <spec>   also write trace files; <spec> is a comma-separated list
                   of dir=PATH, pipeview, chrome, timeseries[=csv|json],
                   commit, all, window=K, ring=N (see the README)
  --sample [spec]  estimate the run by SimPoint-style interval sampling
                   instead of simulating the whole budget; statistics are
                   then extrapolated (marked ~) and the sampling metadata
                   (clusters, coverage, weights) is dumped. Incompatible
                   with --trace.
  --help           this message

environment variables:
  PRE_DEBUG_ALL_EVENTS  print every interval event instead of the first 200
  PRE_THREADS           cap the worker pool used by the matrix binaries
  PRE_BENCH_JSON        write bench results as JSON (pre-bench harness)
  PRE_SIM_SPEED_CELLS   cells measured by the sim-speed bench
  PRE_SIM_SPEED_UOPS    per-cell budget of the sim-speed bench
  PRE_SIM_SPEED_REFERENCE  also time the reference scheduler
";

fn main() {
    let (suite, positional) = match split_suite_flag(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            eprint!("{HELP}");
            std::process::exit(2);
        }
    };
    let mut trace: Option<TraceSpec> = None;
    let mut sample: Option<SampleSpec> = None;
    let mut rest = Vec::new();
    let mut args = positional.into_iter().peekable();
    while let Some(arg) = args.next() {
        if arg == "--help" || arg == "-h" {
            print!("{HELP}");
            return;
        }
        if arg == "--trace" {
            let value = args.next().unwrap_or_else(|| {
                eprintln!("--trace requires a value");
                std::process::exit(2);
            });
            trace = Some(value.parse().expect("valid --trace spec"));
            continue;
        }
        if let Some(value) = arg.strip_prefix("--trace=") {
            trace = Some(value.parse().expect("valid --trace spec"));
            continue;
        }
        if arg == "--sample" {
            // The value is optional; consume the next argument only when it
            // looks like a sample spec (contains `=`).
            sample = Some(match args.peek() {
                Some(next) if next.contains('=') => args
                    .next()
                    .unwrap_or_default()
                    .parse()
                    .expect("valid --sample spec"),
                _ => SampleSpec::default(),
            });
            continue;
        }
        if let Some(value) = arg.strip_prefix("--sample=") {
            sample = Some(value.parse().expect("valid --sample spec"));
            continue;
        }
        rest.push(arg);
    }
    if sample.is_some() && trace.is_some() {
        eprintln!("--sample and --trace are incompatible (sampled runs cannot be traced)");
        std::process::exit(2);
    }
    let workload: Workload = rest
        .first()
        .map(|s| s.parse().expect("workload"))
        .unwrap_or_else(|| suite.workloads()[0]);
    let technique: Technique = rest
        .get(1)
        .map(|s| s.parse().expect("technique"))
        .unwrap_or(Technique::OutOfOrder);
    let budget: u64 = rest.get(2).and_then(|s| s.parse().ok()).unwrap_or(60_000);

    let mut spec = RunSpec::new(workload, technique).with_budget(budget);
    spec.sample = sample;
    let (result, events, trace_files) = if sample.is_some() {
        // Sampled runs cannot carry a tracer; the interval event log stays
        // empty and the extrapolated statistics are dumped with a ~ marker.
        let result = run_one(&spec).expect("run");
        (result, IntervalLog::default(), None)
    } else {
        // The interval event log rides on the tracer: a full TraceSession
        // when `--trace` asks for files, the lightweight IntervalCollector
        // otherwise.
        let tracer: Box<dyn Tracer> = match &trace {
            Some(ts) => Box::new(
                TraceSession::create(ts, &spec.cell_name()).expect("trace files can be created"),
            ),
            None => Box::new(IntervalCollector::new()),
        };
        let (result, tracer) = run_one_traced(&spec, tracer).expect("run");
        let (events, trace_files) = recover_log(tracer, trace.is_some());
        (result, events, trace_files)
    };
    let s = &result.stats;
    println!(
        "workload {workload}  technique {technique}  deadlocked {}{}",
        result.deadlocked,
        if result.sample.is_some() {
            "  (sampled: statistics below are ~extrapolated)"
        } else {
            ""
        }
    );
    if let Some(meta) = &result.sample {
        println!("sampling: {}", meta.summary());
    }
    println!("{s}");
    println!("--- pipeline ---");
    println!(
        "fetched {}  decoded {}  renamed {}  dispatched {}  issued {}  executed {}  squashed {}",
        s.fetched_uops,
        s.decoded_uops,
        s.renamed_uops,
        s.dispatched_uops,
        s.issued_uops,
        s.executed_uops,
        s.squashed_uops
    );
    println!(
        "frontend stall cycles {}  fw-stall cycles {}  fw-stalls {}",
        s.frontend_stall_cycles, s.full_window_stall_cycles, s.full_window_stalls
    );
    println!(
        "scheduler: normal cycles {} simulated + {} fast-forwarded, \
         runahead cycles {} simulated + {} fast-forwarded (ff fraction {:.3})",
        s.normal_cycles_simulated(),
        s.ff_cycles.normal,
        s.runahead_cycles_simulated(),
        s.ff_cycles.runahead,
        s.ff_fraction()
    );
    println!("--- memory ---");
    println!("l1d acc {} miss {}  l2 acc {} miss {}  l3 acc {} miss {}  dram rd {} wr {} rowhit {} rowmiss {}",
        s.l1d_accesses, s.l1d_misses, s.l2_accesses, s.l2_misses, s.l3_accesses, s.l3_misses,
        s.dram_reads, s.dram_writes, s.dram_row_hits, s.dram_row_misses);
    println!(
        "lsq searches {}  forwards {}  fwd-blk (partial overlap) {}",
        s.lsq_searches, s.lsq_forwards, s.forward_blocked_partial
    );
    println!("--- runahead ---");
    println!("entries {}  exits {}  cycles {}  uops {}  loads {}  inv-loads {}  prefetches {}  useful {}",
        s.runahead_entries, s.runahead_exits, s.runahead_cycles, s.runahead_uops_executed,
        s.runahead_loads_executed, s.runahead_inv_loads, s.runahead_prefetches_issued, s.runahead_prefetches_useful);
    println!(
        "skipped short {}  skipped overlap {}  emq-full stalls {}  flush/refill {}",
        s.runahead_entries_skipped_short,
        s.runahead_entries_skipped_overlap,
        s.emq_full_stall_cycles,
        s.flush_refill_cycles
    );
    println!(
        "interval mean {:.1}  <20cyc {:.2}",
        s.runahead_interval_hist.mean(),
        s.runahead_interval_hist.fraction_below(20)
    );
    println!(
        "sst lookups {} hits {} inserts {} evictions {}",
        s.sst_lookups, s.sst_hits, s.sst_inserts, s.sst_evictions
    );
    println!(
        "prdq alloc {} reclaim {}  eager seeds {} reclaims {}  emq w {} r {}  rabuf walks {} replays {}",
        s.prdq_allocations,
        s.prdq_reclaims,
        s.prdq_eager_seeds,
        s.prdq_eager_reclaims,
        s.emq_writes,
        s.emq_reads,
        s.runahead_buffer_walks,
        s.runahead_buffer_replays
    );
    println!(
        "free@entry iq {:.2} int {:.2} fp {:.2}  skipped(no-regs) {}",
        s.iq_free_at_entry.mean(),
        s.int_regs_free_at_entry.mean(),
        s.fp_regs_free_at_entry.mean(),
        s.runahead_entries_skipped_no_regs
    );
    println!("--- free PRF at full-window stalls ---");
    for (label, hist) in [
        ("int", &s.int_free_at_stall_hist),
        ("fp ", &s.fp_free_at_stall_hist),
    ] {
        let buckets: Vec<String> = hist
            .buckets()
            .map(|(bound, count)| {
                if bound == u64::MAX {
                    format!(">=90%:{count}")
                } else {
                    format!("<{bound}%:{count}")
                }
            })
            .collect();
        println!(
            "{label} stalls {}  mean {:.1}%  [{}]",
            hist.count(),
            hist.mean(),
            buckets.join(" ")
        );
    }
    println!("--- runahead entry/exit events (free regs per class) ---");
    if events.events().is_empty() {
        println!("(no runahead events)");
    }
    // Keep the dump usable on big budgets; PRE_DEBUG_ALL_EVENTS lifts the cap.
    let shown = if std::env::var_os("PRE_DEBUG_ALL_EVENTS").is_some() {
        events.events().len()
    } else {
        events.events().len().min(200)
    };
    for event in &events.events()[..shown] {
        match event.kind {
            pre_model::stats::RunaheadEventKind::Entry => println!(
                "cycle {:>9}  ENTER  int free {:>3} (eager +{})  fp free {:>3} (eager +{})",
                event.cycle,
                event.int_free,
                event.int_eager_freed,
                event.fp_free,
                event.fp_eager_freed
            ),
            pre_model::stats::RunaheadEventKind::Exit => println!(
                "cycle {:>9}  EXIT   int free {:>3}  fp free {:>3}  prdq allocs {}",
                event.cycle, event.int_free, event.fp_free, event.prdq_allocated
            ),
        }
    }
    let hidden = events.events().len() - shown;
    if hidden > 0 {
        println!("({hidden} further events hidden; set PRE_DEBUG_ALL_EVENTS=1 to print all)");
    }
    if events.dropped() > 0 {
        println!("({} further events dropped)", events.dropped());
    }
    println!("--- energy ---");
    println!(
        "total {:.3} mJ  static fraction {:.2}",
        result.energy.total_mj(),
        result.energy.static_fraction()
    );
    if let Some(files) = trace_files {
        println!("--- trace files ---");
        for f in files {
            println!("{}", f.display());
        }
    }
}

/// Downcasts the returned tracer back to whichever concrete type was
/// attached, extracting the interval event log (and, for a trace session,
/// the list of files written).
fn recover_log(
    tracer: Box<dyn Tracer>,
    traced_to_files: bool,
) -> (IntervalLog, Option<Vec<std::path::PathBuf>>) {
    if traced_to_files {
        let session = tracer
            .into_any()
            .downcast::<TraceSession>()
            .expect("tracer is the session attached above");
        if let Some(e) = session.io_error() {
            eprintln!("warning: trace output incomplete: {e}");
        }
        let files = session.files().to_vec();
        (session.interval_log().clone(), Some(files))
    } else {
        let collector = tracer
            .into_any()
            .downcast::<IntervalCollector>()
            .expect("tracer is the collector attached above");
        (collector.log, None)
    }
}
