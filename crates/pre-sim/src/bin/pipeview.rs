//! Records every trace stream for one (workload, technique) cell and prints
//! the files written — the quickest way to get a Konata/O3PipeView view of
//! the pipeline or a `chrome://tracing` timeline of runahead intervals.
//!
//! Usage: `pipeview [--suite synthetic|asm|mixed] [--trace <spec>]
//! [workload] [technique] [max_uops]`. Defaults: the suite's first
//! workload, `pre-emq`, 20 000 committed uops, every stream under
//! `traces/`. Open the `.pipeview` file with Konata (or gem5's
//! o3-pipeview script) and the `.trace.json` file with `chrome://tracing`
//! or Perfetto.

use pre_runahead::Technique;
use pre_sim::experiments::split_suite_flag;
use pre_sim::runner::{run_one_traced, RunSpec};
use pre_trace::{TraceSession, TraceSpec};
use pre_workloads::Workload;

fn main() {
    let (suite, positional) = match split_suite_flag(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            usage();
        }
    };
    let mut trace: Option<TraceSpec> = None;
    let mut rest = Vec::new();
    let mut args = positional.into_iter();
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            let value = args.next().unwrap_or_else(|| {
                eprintln!("--trace requires a value");
                usage();
            });
            trace = Some(parse_spec(&value));
            continue;
        }
        if let Some(value) = arg.strip_prefix("--trace=") {
            trace = Some(parse_spec(value));
            continue;
        }
        if arg == "--help" || arg == "-h" {
            usage();
        }
        rest.push(arg);
    }
    let workload: Workload = rest
        .first()
        .map(|s| s.parse().expect("workload"))
        .unwrap_or_else(|| suite.workloads()[0]);
    let technique: Technique = rest
        .get(1)
        .map(|s| s.parse().expect("technique"))
        .unwrap_or(Technique::PreEmq);
    let budget: u64 = rest.get(2).and_then(|s| s.parse().ok()).unwrap_or(20_000);

    let trace = trace.unwrap_or_default();
    let spec = RunSpec::new(workload, technique).with_budget(budget);
    let session = match TraceSession::create(&trace, &spec.cell_name()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "cannot create trace files under {}: {e}",
                trace.dir.display()
            );
            std::process::exit(1);
        }
    };
    eprintln!(
        "tracing {} / {} for {} committed uops...",
        workload.name(),
        technique.label(),
        budget
    );
    let (result, tracer) = match run_one_traced(&spec, Box::new(session)) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("trace run failed: {e}");
            std::process::exit(1);
        }
    };
    let session = tracer
        .into_any()
        .downcast::<TraceSession>()
        .expect("tracer is the session attached above");
    eprintln!(
        "done: ipc {:.3}, {} cycles, {} runahead intervals",
        result.ipc(),
        result.stats.cycles,
        result.stats.runahead_entries
    );
    for f in session.files() {
        println!("{}", f.display());
    }
    if let Some(e) = session.io_error() {
        eprintln!("trace output incomplete: {e}");
        std::process::exit(1);
    }
}

fn parse_spec(value: &str) -> TraceSpec {
    value.parse().unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: pipeview [--suite synthetic|asm|mixed] [--trace <spec>] \
         [workload] [technique] [max_uops]"
    );
    std::process::exit(2);
}
