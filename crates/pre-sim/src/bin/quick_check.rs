//! Quick sanity check: run a few representative workloads under every
//! technique with a small budget and print IPC, runahead activity and
//! energy. Intended for development and for a fast "does the reproduction
//! behave sensibly" smoke test; the real figures come from the
//! `fig2_performance` / `fig3_energy` binaries.
//!
//! Usage: `quick_check [--suite synthetic|asm|mixed] [--warmup <uops>]
//! [--trace <spec>] [max_uops]` (`--suite asm` smoke-tests every assembled
//! RISC-V kernel). Cells consult the result cache (persisted when
//! `PRE_CACHE_DIR` is set); the `cache` column shows `hit` for cells
//! answered from it and `sim` for cells actually simulated.

use pre_runahead::Technique;
use pre_sim::experiments::cli_from_args;
use pre_sim::runner::{run_one, RunSpec};

fn main() {
    let cli = cli_from_args(60_000);
    println!(
        "{:<18} {:<10} {:>7} {:>9} {:>8} {:>9} {:>10} {:>9} {:>8} {:>8} {:>8} {:>6} {:>8} {:>6}",
        "workload",
        "technique",
        "ipc",
        "speedup",
        "entries",
        "ra-cycles",
        "prefetches",
        "useful",
        "prdq",
        "fwd",
        "fwd-blk",
        "ff",
        "mJ",
        "cache"
    );
    let mut failed = false;
    let mut base_ipc = 0.0;
    // The synthetic suite is large, so the quick check runs the reduced
    // representative matrix; the cell order is the canonical
    // `Suite::quick_cells` order shared with the other binaries.
    for (workload, technique) in cli.suite.quick_cells() {
        let mut spec = RunSpec::new(workload, technique)
            .with_budget(cli.budget)
            .with_config(cli.config())
            .with_warmup(cli.warmup)
            .with_result_cache(true);
        spec.trace.clone_from(&cli.trace);
        match run_one(&spec) {
            Ok(result) => {
                if technique == Technique::OutOfOrder {
                    base_ipc = result.ipc();
                }
                let speedup = if base_ipc > 0.0 {
                    result.ipc() / base_ipc
                } else {
                    0.0
                };
                failed |= result.deadlocked;
                println!(
                    "{:<18} {:<10} {:>7.3} {:>9.3} {:>8} {:>9} {:>10} {:>9} {:>8} {:>8} {:>8} {:>6.3} {:>8.2} {:>6}{}",
                    workload.name(),
                    technique.label(),
                    result.ipc(),
                    speedup,
                    result.stats.runahead_entries,
                    result.stats.runahead_cycles,
                    result.stats.runahead_prefetches_issued,
                    result.stats.runahead_prefetches_useful,
                    result.stats.prdq_allocations,
                    result.stats.lsq_forwards,
                    result.stats.forward_blocked_partial,
                    result.stats.ff_fraction(),
                    result.energy_mj(),
                    if result.cache_hit { "hit" } else { "sim" },
                    if result.deadlocked { "  DEADLOCK" } else { "" },
                );
            }
            Err(e) => {
                failed = true;
                println!("{workload} / {technique}: build error: {e}");
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
