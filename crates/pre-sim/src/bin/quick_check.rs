//! Quick sanity check: run a few representative workloads under every
//! technique with a small budget and print IPC, runahead activity and
//! energy. Intended for development and for a fast "does the reproduction
//! behave sensibly" smoke test; the real figures come from the
//! `fig2_performance` / `fig3_energy` binaries.
//!
//! Usage: `quick_check [--suite synthetic|asm|mixed] [--warmup <uops>]
//! [--trace <spec>] [--sample [n=K,interval=N]] [max_uops]` (`--suite asm`
//! smoke-tests every assembled RISC-V kernel). Cells consult the result
//! cache (persisted when `PRE_CACHE_DIR` is set); the `cache` column shows
//! `hit` for cells answered from it and `sim` for cells actually simulated.
//! With `--sample`, cells are *estimated* by SimPoint-style interval
//! sampling: their IPC is printed with a `~` prefix and the sampling
//! metadata (clusters, coverage, weights) follows the table.
//!
//! Cells are failure-isolated: a cell that errors or panics prints its
//! failure and the remaining cells still run; the exit code is then 1. A
//! watchdog-terminated cell additionally dumps its diagnostics (cycle,
//! occupancies, last committed PCs).

use pre_model::stats::TerminationKind;
use pre_runahead::Technique;
use pre_sim::experiments::cli_from_args;
use pre_sim::runner::{run_one, RunSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn main() {
    let cli = cli_from_args(60_000);
    println!(
        "{:<18} {:<10} {:>7} {:>9} {:>8} {:>9} {:>10} {:>9} {:>8} {:>8} {:>8} {:>6} {:>8} {:>6}",
        "workload",
        "technique",
        "ipc",
        "speedup",
        "entries",
        "ra-cycles",
        "prefetches",
        "useful",
        "prdq",
        "fwd",
        "fwd-blk",
        "ff",
        "mJ",
        "cache"
    );
    let mut failed = false;
    let mut base_ipc = 0.0;
    let mut sample_lines: Vec<String> = Vec::new();
    // The synthetic suite is large, so the quick check runs the reduced
    // representative matrix; the cell order is the canonical
    // `Suite::quick_cells` order shared with the other binaries.
    for (index, (workload, technique)) in cli.suite.quick_cells().enumerate() {
        let mut spec = RunSpec::new(workload, technique)
            .with_budget(cli.budget)
            .with_config(cli.config())
            .with_warmup(cli.warmup)
            .with_result_cache(true);
        spec.trace.clone_from(&cli.trace);
        spec.sample = cli.sample;
        // Contain cell panics (including PRE_FAULT-injected ones) so one
        // broken cell doesn't hide the others' results.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pre_sim::fault::panic_if_cell_faulted(index);
            run_one(&spec)
        }));
        match outcome {
            Ok(Ok(result)) => {
                if technique == Technique::OutOfOrder {
                    base_ipc = result.ipc();
                }
                let speedup = if base_ipc > 0.0 {
                    result.ipc() / base_ipc
                } else {
                    0.0
                };
                let marker = match result.terminated() {
                    TerminationKind::Completed => "",
                    TerminationKind::MaxCycles => "  ! MAX-CYCLES",
                    TerminationKind::Watchdog => "  ! WATCHDOG",
                };
                failed |= result.terminated() == TerminationKind::Watchdog;
                // `~` marks extrapolated (sampled) numbers so they are never
                // mistaken for measured ones.
                let est = if result.sample.is_some() { "~" } else { "" };
                if let Some(meta) = &result.sample {
                    sample_lines.push(format!(
                        "  {} {}: {}",
                        workload.name(),
                        technique.label(),
                        meta.summary()
                    ));
                }
                println!(
                    "{:<18} {:<10} {:>7} {:>9} {:>8} {:>9} {:>10} {:>9} {:>8} {:>8} {:>8} {:>6.3} {:>8.2} {:>6}{}",
                    workload.name(),
                    technique.label(),
                    format!("{est}{:.3}", result.ipc()),
                    format!("{est}{speedup:.3}"),
                    result.stats.runahead_entries,
                    result.stats.runahead_cycles,
                    result.stats.runahead_prefetches_issued,
                    result.stats.runahead_prefetches_useful,
                    result.stats.prdq_allocations,
                    result.stats.lsq_forwards,
                    result.stats.forward_blocked_partial,
                    result.stats.ff_fraction(),
                    result.energy_mj(),
                    if result.cache_hit { "hit" } else { "sim" },
                    marker,
                );
                if let Some(e) = result.watchdog_error() {
                    eprintln!("  {e}");
                }
            }
            Ok(Err(e)) => {
                failed = true;
                println!("{workload} / {technique}: FAILED: {e}");
            }
            Err(payload) => {
                failed = true;
                println!(
                    "{workload} / {technique}: FAILED: cell panicked: {}",
                    pre_par::panic_message(payload.as_ref())
                );
            }
        }
    }
    if !sample_lines.is_empty() {
        println!("sampling metadata (~ rows are extrapolated):");
        for line in sample_lines {
            println!("{line}");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
