//! Prints Table 1 (the baseline core configuration) from the live simulator
//! defaults, plus the hardware-overhead accounting of Section 3.6.

use pre_energy::HardwareOverhead;
use pre_model::config::SimConfig;
use pre_sim::experiments::table1;

fn main() {
    println!("{}", table1().render());
    let cfg = SimConfig::haswell_like();
    println!("== Section 3.6 — hardware overhead ==");
    println!("{}", HardwareOverhead::for_config(&cfg.runahead));
    println!();
    println!(
        "isolated LLC-miss latency (closed page): {} core cycles",
        cfg.dram_closed_page_latency() + cfg.l1d.latency + cfg.l2.latency + cfg.l3.latency
    );
}
