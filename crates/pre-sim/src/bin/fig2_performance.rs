//! Regenerates Figure 2: performance of RA, RA-buffer, PRE and PRE+EMQ
//! normalized to the out-of-order baseline, for every workload in the
//! selected suite plus the geometric mean.
//!
//! Usage: `fig2_performance [--suite synthetic|asm|mixed]
//! [--reference-scheduler] [max_uops_per_run]` (defaults: the synthetic
//! memory-intensive suite, 300 000 uops, event-driven scheduler).

use pre_sim::experiments::{
    cli_from_args, fig2_summary, fig2_table, run_suite_matrix_with, Suite, DEFAULT_EVAL_UOPS,
};

fn main() {
    let cli = cli_from_args(DEFAULT_EVAL_UOPS);
    eprintln!(
        "running the Figure 2 evaluation matrix over the {} suite ({} committed uops per run)...",
        cli.suite, cli.budget
    );
    let matrix = run_suite_matrix_with(cli.suite, &cli.config(), cli.budget, |r| {
        eprintln!(
            "  {:<18} {:<10} ipc {:.3}  runahead entries {}",
            r.workload.name(),
            r.technique.label(),
            r.ipc(),
            r.stats.runahead_entries
        );
    })
    .expect("evaluation matrix");
    let table = fig2_table(&matrix);
    println!("{}", table.render());
    if cli.suite == Suite::Synthetic {
        println!("paper-vs-measured (average improvement over OoO):");
        println!("{}", fig2_summary(&matrix));
    }
    if let Err(e) = table.write_csv("fig2_performance.csv") {
        eprintln!("could not write fig2_performance.csv: {e}");
    } else {
        eprintln!("wrote fig2_performance.csv");
    }
    if matrix.any_deadlocked() {
        eprintln!("WARNING: at least one run hit the deadlock watchdog");
        std::process::exit(1);
    }
}
