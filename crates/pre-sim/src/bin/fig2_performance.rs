//! Regenerates Figure 2: performance of RA, RA-buffer, PRE and PRE+EMQ
//! normalized to the out-of-order baseline, for every memory-intensive
//! workload plus the geometric mean.
//!
//! Usage: `fig2_performance [max_uops_per_run]` (default 300 000).

use pre_sim::experiments::{
    budget_from_args, fig2_summary, fig2_table, run_evaluation_matrix, DEFAULT_EVAL_UOPS,
};

fn main() {
    let budget = budget_from_args(DEFAULT_EVAL_UOPS);
    eprintln!("running the Figure 2 evaluation matrix ({budget} committed uops per run)...");
    let matrix = run_evaluation_matrix(budget, |r| {
        eprintln!(
            "  {:<16} {:<10} ipc {:.3}  runahead entries {}",
            r.workload.name(),
            r.technique.label(),
            r.ipc(),
            r.stats.runahead_entries
        );
    })
    .expect("evaluation matrix");
    let table = fig2_table(&matrix);
    println!("{}", table.render());
    println!("paper-vs-measured (average improvement over OoO):");
    println!("{}", fig2_summary(&matrix));
    if let Err(e) = table.write_csv("fig2_performance.csv") {
        eprintln!("could not write fig2_performance.csv: {e}");
    } else {
        eprintln!("wrote fig2_performance.csv");
    }
    if matrix.any_deadlocked() {
        eprintln!("WARNING: at least one run hit the deadlock watchdog");
        std::process::exit(1);
    }
}
