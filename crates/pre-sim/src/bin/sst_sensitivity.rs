//! Stat F (Section 3.6): SST capacity sensitivity. The paper provisions 256
//! entries and observes that this holds the stalling slices with almost no
//! misses; this sweep shows the speedup and SST behaviour across capacities.
//!
//! Usage: `sst_sensitivity [max_uops_per_run]`.

use pre_sim::experiments::{budget_from_args, sst_sensitivity, DEFAULT_EVAL_UOPS};

fn main() {
    let budget = budget_from_args(DEFAULT_EVAL_UOPS / 2);
    let table = sst_sensitivity(budget, &[4, 8, 16, 64, 256]).expect("SST sweep");
    println!("{}", table.render());
    println!("paper: a 256-entry SST holds the stalling slices with almost no misses");
}
