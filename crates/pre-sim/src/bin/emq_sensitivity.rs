//! Ablation: EMQ capacity sensitivity. The EMQ bounds how far PRE+EMQ can run
//! ahead (Section 3.3); the paper evaluates 768 entries (4 × ROB).
//!
//! Usage: `emq_sensitivity [max_uops_per_run]`.

use pre_sim::experiments::{budget_from_args, emq_sensitivity, DEFAULT_EVAL_UOPS};

fn main() {
    let budget = budget_from_args(DEFAULT_EVAL_UOPS / 2);
    let table = emq_sensitivity(budget, &[192, 384, 768, 1536]).expect("EMQ sweep");
    println!("{}", table.render());
    println!(
        "paper: PRE+EMQ with a 768-entry EMQ improves performance by 28.6 % vs 35.5 % for PRE"
    );
}
