//! Experiment runner for the PRE reproduction.
//!
//! This crate turns the simulator (`pre-core`), the workload suite
//! (`pre-workloads`) and the energy model (`pre-energy`) into the experiments
//! of the paper's evaluation section. Each figure, table and headline text
//! statistic has a binary under `src/bin/` that regenerates it; the shared
//! machinery lives here:
//!
//! * [`runner`] — run one (workload, technique) pair and collect statistics
//!   plus energy.
//! * [`matrix`] — run the full evaluation matrix and compute the normalized
//!   metrics the figures plot (speedup over the out-of-order baseline,
//!   energy savings, invocation ratios, …). Cells are independent
//!   simulations and run in parallel over a [`pre_par`] worker pool;
//!   `PRE_THREADS` caps the worker count.
//! * [`experiments`] — the per-figure/per-stat experiment definitions,
//!   including the reduced default budgets that keep runs tractable on a
//!   laptop.
//! * [`stores`] — warm-up snapshot sharing and the content-addressed result
//!   cache (in-memory always, on disk under `PRE_CACHE_DIR`).
//! * [`sample`] — SimPoint-style interval sampling: profile → cluster →
//!   simulate representatives → extrapolate, with sampling metadata on the
//!   result (`--sample` on the binaries).
//! * [`sweep`] — declarative parameter-grid sweeps expanded over the worker
//!   pool, cache-aware, with JSON/CSV emission (the `sweep` binary).
//! * [`report`] — plain-text table and CSV rendering.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod fault;
pub mod matrix;
pub mod report;
pub mod runner;
pub mod sample;
pub mod stores;
pub mod sweep;

pub use matrix::{CellFailure, EvaluationMatrix, MatrixRun};
pub use runner::{cell_name, run_one, run_one_traced, RunResult, RunSpec};
pub use sample::{run_sampled, RepWeight, SampleMeta, SampleSpec};
pub use sweep::{Sweep, SweepFailure, SweepPoint, SweepRun};
