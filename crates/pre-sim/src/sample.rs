//! SimPoint-style sampled simulation: profile → cluster → simulate
//! representatives → extrapolate.
//!
//! [`run_sampled`] estimates a full run's statistics from a handful of
//! detailed-simulation slices:
//!
//! ```text
//!  functional profile        deterministic k-means        detailed sim (parallel)
//!  ┌──────────────────┐      ┌──────────────────┐      ┌─────────────────────────┐
//!  │ interval BBVs    │ ───► │ K clusters,      │ ───► │ fork each representative │
//!  │ (pre_model::     │      │ 1 representative │      │ from a windowed snapshot,│
//!  │  profile)        │      │ + weight each    │      │ warm-replay, run 1 slice │
//!  └──────────────────┘      └──────────────────┘      └─────────────────────────┘
//!                                                                 │
//!                                              weighted extrapolation (SimStats
//!                                              × cluster weight, exact integers)
//! ```
//!
//! The profiling/clustering plan and the representative snapshots are
//! memoized per (program, sampling parameters, budget), so the five
//! techniques of one evaluation cell pay for a single functional profile.
//! Representatives fan out over `pre_par::try_par_map`, inheriting the
//! supervised pool's failure isolation: a panic in one slice surfaces as
//! [`SimError::Panic`] for the sampled run instead of tearing anything down.
//!
//! Every extrapolated result carries a [`SampleMeta`] so downstream
//! reporting can mark estimates (`~`) and show K / coverage / weights;
//! sampled results enter the result cache under keys that include the
//! sampling parameters, independent of full runs.

// Sampled results feed the same caches and reports as measured ones; any
// failure here must surface as a typed error, never an unwind.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::runner::{run_one, RunResult, RunSpec};
use pre_energy::EnergyModel;
use pre_model::error::SimError;
use pre_model::hash::StableHasher;
use pre_model::profile::{cluster_intervals, profile_intervals, Clustering, IntervalProfile};
use pre_model::program::{Interpreter, Program};
use pre_model::snapshot::{SimSnapshot, WarmTrace};
use pre_model::stats::SimStats;
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Sampling parameters: how many clusters (representative slices) and how
/// long each interval is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Number of k-means clusters (`n=` in the CLI grammar); one
    /// representative interval is simulated per cluster.
    pub clusters: usize,
    /// Interval size in committed micro-ops (`interval=` in the CLI
    /// grammar); also the warm-trace window for representative snapshots.
    pub interval_uops: u64,
}

impl SampleSpec {
    /// Default number of clusters.
    pub const DEFAULT_CLUSTERS: usize = 8;
    /// Default interval size in committed micro-ops.
    pub const DEFAULT_INTERVAL_UOPS: u64 = 10_000;

    /// Creates a spec with explicit parameters.
    pub fn new(clusters: usize, interval_uops: u64) -> Self {
        SampleSpec {
            clusters,
            interval_uops,
        }
    }

    /// Parses the `--sample` value grammar: `n=K,interval=N`, with either
    /// part optional (`n=4`, `interval=5000`, `n=4,interval=5000`); omitted
    /// parts take the defaults.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed part.
    pub fn parse(text: &str) -> Result<SampleSpec, String> {
        let mut spec = SampleSpec::default();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad sample part `{part}` (expected key=value)"))?;
            match key.trim() {
                "n" => {
                    spec.clusters = value
                        .trim()
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("bad cluster count `{value}`"))?;
                }
                "interval" => {
                    spec.interval_uops = value
                        .trim()
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("bad interval size `{value}`"))?;
                }
                other => return Err(format!("unknown sample key `{other}`")),
            }
        }
        Ok(spec)
    }

    /// Canonical rendering of the spec in the CLI grammar.
    pub fn label(&self) -> String {
        format!("n={},interval={}", self.clusters, self.interval_uops)
    }
}

impl Default for SampleSpec {
    fn default() -> Self {
        SampleSpec {
            clusters: SampleSpec::DEFAULT_CLUSTERS,
            interval_uops: SampleSpec::DEFAULT_INTERVAL_UOPS,
        }
    }
}

impl FromStr for SampleSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SampleSpec::parse(s)
    }
}

impl fmt::Display for SampleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One representative slice's contribution to the extrapolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepWeight {
    /// Index of the representative interval in profiling order.
    pub interval: u64,
    /// Cluster population it stands for (extrapolation weight).
    pub weight: u64,
    /// Committed micro-ops of the interval (the interval size, except for a
    /// shorter final slice).
    pub uops: u64,
}

/// Sampling metadata attached to an extrapolated [`RunResult`], so sampled
/// numbers are never mistaken for measured ones.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SampleMeta {
    /// The sampling parameters the run was performed with.
    pub spec: SampleSpec,
    /// Total intervals the profiling pass produced.
    pub intervals_total: u64,
    /// Committed micro-ops covered by the profile (what the extrapolation
    /// stands for).
    pub total_uops: u64,
    /// Committed micro-ops actually simulated in detail (sum of the
    /// representatives' interval lengths, unweighted).
    pub simulated_uops: u64,
    /// Per-representative weights, sorted by interval index.
    pub weights: Vec<RepWeight>,
}

impl SampleMeta {
    /// Number of representative intervals simulated (= number of clusters
    /// actually produced).
    pub fn intervals_simulated(&self) -> usize {
        self.weights.len()
    }

    /// Fraction of the profiled micro-ops that were simulated in detail.
    pub fn coverage(&self) -> f64 {
        if self.total_uops == 0 {
            0.0
        } else {
            self.simulated_uops as f64 / self.total_uops as f64
        }
    }

    /// One-line human-readable summary (`K=…, coverage=…%, weights=[…]`).
    pub fn summary(&self) -> String {
        let weights: Vec<String> = self
            .weights
            .iter()
            .map(|w| format!("{}×{}", w.interval, w.weight))
            .collect();
        format!(
            "K={} of {} intervals ({}), coverage={:.1}%, weights=[{}]",
            self.intervals_simulated(),
            self.intervals_total,
            self.spec.label(),
            self.coverage() * 100.0,
            weights.join(" ")
        )
    }
}

// The default SampleSpec is what `Default for SampleMeta` needs; both derive.

/// The memoized profile + clustering for one (program, sampling, budget)
/// tuple, shared by all techniques of an evaluation cell.
#[derive(Debug)]
struct SamplePlan {
    profile: IntervalProfile,
    clustering: Clustering,
}

/// Plan memo entry: the full key description (collision safety) plus the
/// shared plan.
type PlanEntry = (String, Arc<SamplePlan>);

static PLANS: OnceLock<Mutex<HashMap<u64, PlanEntry>>> = OnceLock::new();

fn plans() -> &'static Mutex<HashMap<u64, PlanEntry>> {
    PLANS.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_plans() -> MutexGuard<'static, HashMap<u64, PlanEntry>> {
    plans().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Empties the in-process plan memo (profiles, clusterings). Benches call
/// this through [`crate::stores::clear_stores`] to measure cold paths.
pub fn clear_plans() {
    lock_plans().clear();
}

/// Fixed seed component for the clustering rng; combined with the program
/// content hash so different programs explore different centroid seeds while
/// every run of the same program clusters identically.
const CLUSTER_SEED: u64 = 0x5a3c_9d11_7e24_c0de;

fn plan_key(
    program: &Program,
    sample: &SampleSpec,
    max_uops: u64,
    skip_uops: u64,
) -> (u64, String) {
    let desc = format!(
        "plan v1 program={:016x} sample={} budget={} skip={}",
        program.content_hash(),
        sample.label(),
        max_uops,
        skip_uops
    );
    let mut h = StableHasher::new();
    h.write_str(&desc);
    (h.finish(), desc)
}

/// The profile + clustering for a sampled run, computed once per (program,
/// sampling parameters, budget) and shared across techniques. On first
/// computation the representative snapshots are also captured (in one
/// interpreter pass) and published to the snapshot store.
fn plan_for(
    program: &Program,
    sample: &SampleSpec,
    max_uops: u64,
    skip_uops: u64,
) -> Arc<SamplePlan> {
    let (key, desc) = plan_key(program, sample, max_uops, skip_uops);
    if let Some((stored_desc, plan)) = lock_plans().get(&key) {
        if *stored_desc == desc {
            return Arc::clone(plan);
        }
    }
    let profile = profile_intervals(program, sample.interval_uops, max_uops, skip_uops);
    let clustering = cluster_intervals(
        &profile,
        sample.clusters,
        program.content_hash() ^ CLUSTER_SEED,
    );
    capture_representative_snapshots(program, &profile, &clustering, sample.interval_uops);
    let plan = Arc::new(SamplePlan {
        profile,
        clustering,
    });
    let mut map = lock_plans();
    let entry = map
        .entry(key)
        .or_insert_with(|| (desc.clone(), Arc::clone(&plan)));
    if entry.0 == desc {
        Arc::clone(&entry.1)
    } else {
        // 64-bit collision between two live plans: serve ours uncached.
        plan
    }
}

/// Captures every representative's windowed snapshot in **one** functional
/// pass over the program (representatives are visited in offset order) and
/// publishes them to the snapshot store, where the per-technique detailed
/// runs will find them. Equivalent to — and bit-identical with —
/// [`SimSnapshot::capture_windowed`] per offset, but O(last offset) total
/// instead of O(sum of offsets).
fn capture_representative_snapshots(
    program: &Program,
    profile: &IntervalProfile,
    clustering: &Clustering,
    interval_uops: u64,
) {
    let disk = crate::stores::env_cache_dir();
    let mut wanted: Vec<(u64, u64)> = clustering
        .representatives
        .iter()
        .map(|rep| profile.intervals[rep.interval].start_uop)
        .filter(|&offset| offset > 0)
        .map(|offset| (offset, interval_uops.min(offset)))
        .collect();
    wanted.sort_unstable();
    wanted.dedup();
    wanted.retain(|&(offset, window)| {
        crate::stores::snapshot_lookup(program, offset, window, disk.as_deref()).is_none()
    });
    if wanted.is_empty() {
        return;
    }
    let mut interp = Interpreter::new(program);
    let mut executed = 0u64;
    for &(offset, window) in &wanted {
        // Run untraced up to the window start, then traced to the offset.
        // Windows never overlap: consecutive representative offsets differ
        // by at least one interval, and windows are at most one interval.
        executed += interp.run(offset - window - executed.min(offset - window));
        let mut trace = WarmTrace::new();
        executed += interp.run_warm(offset - executed, &mut trace);
        let snap = SimSnapshot {
            warmup_uops: offset,
            executed,
            halted: interp.halted(),
            regs: *interp.regs(),
            pc: interp.pc(),
            mem: interp.clone().into_memory(),
            trace,
        };
        crate::stores::snapshot_publish(program, offset, window, snap, disk.as_deref());
    }
}

/// Runs `spec` in sampled mode (`spec.sample` must be set): profiles the
/// functional execution into intervals, clusters them, simulates one
/// representative per cluster in detail (fanned out over the supervised
/// pool) and extrapolates a full-run [`RunResult`] carrying [`SampleMeta`].
///
/// # Errors
///
/// Returns [`SimError`] when the spec carries no sampling parameters or
/// requests tracing (unsupported in sampled mode), and propagates the first
/// per-slice failure (validation errors, watchdog aborts as data, panics as
/// [`SimError::Panic`]).
pub fn run_sampled(spec: &RunSpec) -> Result<RunResult, SimError> {
    let Some(sample) = spec.sample else {
        return Err(SimError::Snapshot {
            detail: "run_sampled called without sampling parameters".to_string(),
        });
    };
    if spec.trace.is_some() {
        return Err(SimError::Trace(
            "tracing is not supported with --sample (trace a full run instead)".to_string(),
        ));
    }
    let program = crate::stores::program_for(spec.workload, &spec.params);
    let disk = crate::stores::env_cache_dir();
    let (key, desc) = crate::stores::result_key(spec, &program);
    if spec.use_result_cache {
        if let Some(hit) = crate::stores::result_lookup(key, &desc, disk.as_deref()) {
            return Ok(hit);
        }
    }

    let plan = plan_for(&program, &sample, spec.max_uops, spec.warmup_uops);
    if plan.clustering.representatives.is_empty() {
        // Nothing to profile (zero budget or the program halts before the
        // warm-up ends): degrade to an unsampled run of the same spec.
        let mut fallback = spec.clone();
        fallback.sample = None;
        fallback.use_result_cache = false;
        let mut result = run_one(&fallback)?;
        result.sample = Some(SampleMeta {
            spec: sample,
            ..SampleMeta::default()
        });
        if spec.use_result_cache {
            crate::stores::result_store(key, &desc, &result, disk.as_deref());
        }
        return Ok(result);
    }

    // One detailed-run spec per representative: fork from the interval
    // snapshot (warm window = one interval), simulate exactly the interval.
    let rep_specs: Vec<RunSpec> = plan
        .clustering
        .representatives
        .iter()
        .map(|rep| {
            let iv = &plan.profile.intervals[rep.interval];
            let mut s = spec.clone();
            s.sample = None;
            s.warmup_uops = iv.start_uop;
            s.warm_window = (iv.start_uop > 0).then(|| sample.interval_uops.min(iv.start_uop));
            s.max_uops = iv.len_uops;
            s.max_cycles = iv.len_uops.saturating_mul(200).max(1_000_000);
            s
        })
        .collect();

    let indices: Vec<usize> = (0..rep_specs.len()).collect();
    let outcomes = pre_par::try_par_map(&indices, |&i| {
        crate::fault::panic_if_cell_faulted(i);
        run_one(&rep_specs[i])
    });
    let mut slices = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        match outcome {
            Ok(Ok(result)) => slices.push(result),
            Ok(Err(error)) => return Err(error),
            Err(job) => {
                return Err(SimError::Panic {
                    detail: job.payload,
                })
            }
        }
    }

    // Weighted extrapolation: integer counters are exact functions of the
    // per-slice stats and weights.
    let mut stats = SimStats::new();
    for (rep, slice) in plan.clustering.representatives.iter().zip(&slices) {
        stats.merge_scaled(&slice.stats, rep.weight);
    }
    let energy = EnergyModel::default().evaluate(&stats, &spec.config);
    let meta = SampleMeta {
        spec: sample,
        intervals_total: plan.profile.intervals.len() as u64,
        total_uops: plan.profile.total_uops(),
        simulated_uops: plan
            .clustering
            .representatives
            .iter()
            .map(|rep| plan.profile.intervals[rep.interval].len_uops)
            .sum(),
        weights: plan
            .clustering
            .representatives
            .iter()
            .map(|rep| RepWeight {
                interval: rep.interval as u64,
                weight: rep.weight,
                uops: plan.profile.intervals[rep.interval].len_uops,
            })
            .collect(),
    };
    let result = RunResult {
        workload: spec.workload,
        technique: spec.technique,
        stats,
        energy,
        deadlocked: slices.iter().any(|s| s.deadlocked),
        cache_hit: slices.iter().all(|s| s.cache_hit),
        watchdog: slices.iter().find_map(|s| s.watchdog.clone()),
        sample: Some(meta),
    };
    if spec.use_result_cache {
        crate::stores::result_store(key, &desc, &result, disk.as_deref());
    }
    Ok(result)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use pre_runahead::Technique;
    use pre_workloads::Workload;

    #[test]
    fn sample_spec_grammar_roundtrips() {
        assert_eq!(
            SampleSpec::parse("n=4,interval=5000").unwrap(),
            SampleSpec::new(4, 5_000)
        );
        assert_eq!(
            SampleSpec::parse("interval=2000").unwrap(),
            SampleSpec::new(SampleSpec::DEFAULT_CLUSTERS, 2_000)
        );
        assert_eq!(
            SampleSpec::parse("n=3").unwrap(),
            SampleSpec::new(3, SampleSpec::DEFAULT_INTERVAL_UOPS)
        );
        assert_eq!(SampleSpec::parse("").unwrap(), SampleSpec::default());
        let spec = SampleSpec::new(6, 12_000);
        assert_eq!(spec.label().parse::<SampleSpec>().unwrap(), spec);
        assert!(SampleSpec::parse("n=0").is_err());
        assert!(SampleSpec::parse("interval=x").is_err());
        assert!(SampleSpec::parse("clusters=4").is_err());
        assert!(SampleSpec::parse("n4").is_err());
    }

    #[test]
    fn sample_meta_coverage_and_summary() {
        let meta = SampleMeta {
            spec: SampleSpec::new(2, 100),
            intervals_total: 10,
            total_uops: 1_000,
            simulated_uops: 200,
            weights: vec![
                RepWeight {
                    interval: 1,
                    weight: 7,
                    uops: 100,
                },
                RepWeight {
                    interval: 8,
                    weight: 3,
                    uops: 100,
                },
            ],
        };
        assert_eq!(meta.intervals_simulated(), 2);
        assert!((meta.coverage() - 0.2).abs() < 1e-12);
        let summary = meta.summary();
        assert!(summary.contains("K=2 of 10"), "{summary}");
        assert!(summary.contains("coverage=20.0%"), "{summary}");
        assert!(summary.contains("1×7"), "{summary}");
        assert_eq!(SampleMeta::default().coverage(), 0.0);
    }

    #[test]
    fn sampled_run_reports_metadata_and_reasonable_ipc() {
        crate::stores::clear_stores();
        let spec = RunSpec::new(Workload::ComputeBound, Technique::OutOfOrder)
            .with_budget(20_000)
            .sampled(SampleSpec::new(3, 2_000));
        let sampled = run_sampled(&spec).expect("sampled run succeeds");
        let meta = sampled.sample.as_ref().expect("metadata attached");
        assert!(meta.intervals_simulated() >= 1);
        assert!(meta.intervals_total >= meta.intervals_simulated() as u64);
        assert!(meta.coverage() > 0.0 && meta.coverage() <= 1.0);
        assert_eq!(
            meta.weights.iter().map(|w| w.weight).sum::<u64>(),
            meta.intervals_total
        );
        // The extrapolated uop count matches the profiled total up to the
        // per-slice commit-batch overshoot (the core stops at >= max_uops).
        assert!(sampled.stats.committed_uops >= meta.total_uops);
        assert!(sampled.stats.committed_uops < meta.total_uops + meta.intervals_total * 8);

        let full = run_one(
            &RunSpec::new(Workload::ComputeBound, Technique::OutOfOrder).with_budget(20_000),
        )
        .expect("full run succeeds");
        assert!(full.sample.is_none());
        let err = (sampled.ipc() - full.ipc()).abs() / full.ipc();
        assert!(
            err < 0.05,
            "sampled IPC {:.4} vs full {:.4}: {:.2}% error",
            sampled.ipc(),
            full.ipc(),
            err * 100.0
        );
    }

    #[test]
    fn sampled_runs_are_deterministic_and_cache_cleanly() {
        crate::stores::clear_stores();
        let spec = RunSpec::new(Workload::ComputeBound, Technique::Pre)
            .with_budget(12_000)
            .sampled(SampleSpec::new(2, 3_000))
            .with_result_cache(true);
        let a = run_sampled(&spec).expect("first run");
        let b = run_sampled(&spec).expect("second run");
        assert!(!a.cache_hit);
        assert!(b.cache_hit, "second sampled run is a cache hit");
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.stats.to_kv(), b.stats.to_kv());
        assert_eq!(a.sample, b.sample);

        // A full (unsampled) run of the same cell caches independently.
        let full_spec = RunSpec::new(Workload::ComputeBound, Technique::Pre)
            .with_budget(12_000)
            .with_result_cache(true);
        let full = run_one(&full_spec).expect("full run");
        assert!(
            !full.cache_hit,
            "sampled entry must not shadow the full run"
        );
    }

    #[test]
    fn sampled_run_rejects_tracing() {
        let spec = RunSpec::new(Workload::ComputeBound, Technique::Pre)
            .with_budget(4_000)
            .sampled(SampleSpec::default())
            .with_trace(pre_trace::TraceSpec::default());
        assert!(matches!(run_sampled(&spec), Err(SimError::Trace(_))));
    }
}
